"""Tests for the batched numerics kernels (repro.kernels + cache batch ops).

The contract under test everywhere: batched evaluation is *exactly*
equivalent to the scalar loop it replaces — bit-identical coordinates,
identical template objects, identical membership verdicts — including on
the degenerate/boundary cases (CNOT, SWAP, iSWAP, the base-plane epsilon
band) where vectorized shortcuts usually diverge.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coverage import (
    CoverageSet,
    KCoverage,
    RegionHull,
    build_coverage_set,
)
from repro.core.decomposition_rules import (
    BASIS_DRIVE_ANGLES,
    BaselineSqrtISwapRules,
    ParallelSqrtISwapRules,
    TemplateSpec,
)
from repro.kernels import (
    canonicalize_coordinates_many,
    first_covering_k,
    membership_matrix,
    weyl_coordinates_many,
)
from repro.quantum import gates
from repro.quantum.random import haar_unitaries_batch, random_local_pair
from repro.quantum.weyl import canonicalize_coordinates, weyl_coordinates
from repro.service.cache import DecompositionCache

_HALF_PI = np.pi / 2

_NAMED = (
    np.eye(4, dtype=complex),
    gates.CNOT,
    gates.CZ,
    gates.SWAP,
    gates.ISWAP,
    gates.DCNOT,
    gates.SQRT_ISWAP,
    gates.SQRT_CNOT,
    gates.B_GATE,
    gates.SQRT_B,
)


def _mixed_unitaries(count: int = 200, seed: int = 11) -> np.ndarray:
    """Haar samples plus named/degenerate gates, raw and locally dressed."""
    rng = np.random.default_rng(seed)
    dressed = [
        random_local_pair(rng) @ np.asarray(g, complex) @ random_local_pair(rng)
        for g in _NAMED
    ]
    return np.concatenate(
        [
            haar_unitaries_batch(4, count, seed=rng),
            np.stack([np.asarray(g, complex) for g in _NAMED]),
            np.stack(dressed),
        ]
    )


class TestWeylKernel:
    def test_bitwise_parity_with_scalar(self):
        batch = _mixed_unitaries()
        batched = weyl_coordinates_many(batch)
        scalar = np.array([weyl_coordinates(u) for u in batch])
        assert np.array_equal(batched, scalar)

    def test_degenerate_named_gates_exact(self):
        """CNOT/SWAP/iSWAP sit on classification boundaries; the batched
        fold must land on the exact canonical points."""
        batch = np.stack(
            [np.asarray(g, complex) for g in (gates.CNOT, gates.SWAP,
                                              gates.ISWAP, gates.SQRT_ISWAP)]
        )
        coords = weyl_coordinates_many(batch)
        expected = np.array(
            [
                [_HALF_PI, 0.0, 0.0],
                [_HALF_PI, _HALF_PI, _HALF_PI],
                [_HALF_PI, _HALF_PI, 0.0],
                [np.pi / 4, np.pi / 4, 0.0],
            ]
        )
        assert np.allclose(coords, expected, atol=1e-7)

    def test_scalar_is_batch_of_one(self):
        batch = _mixed_unitaries(count=16, seed=3)
        for unitary in batch:
            assert np.array_equal(
                weyl_coordinates(unitary), weyl_coordinates_many(
                    unitary[None]
                )[0],
            )

    def test_batch_invariance_under_permutation(self):
        batch = _mixed_unitaries(count=64, seed=8)
        coords = weyl_coordinates_many(batch)
        perm = np.random.default_rng(0).permutation(len(batch))
        assert np.array_equal(coords[perm], weyl_coordinates_many(batch[perm]))

    def test_empty_stack(self):
        assert weyl_coordinates_many(np.zeros((0, 4, 4))).shape == (0, 3)

    def test_rejects_bad_shape_and_nonunitary(self):
        with pytest.raises(ValueError, match="stack"):
            weyl_coordinates_many(np.eye(4))
        bad = np.stack([np.eye(4, dtype=complex), np.ones((4, 4), complex)])
        with pytest.raises(ValueError, match="not unitary"):
            weyl_coordinates_many(bad)

    def test_canonicalize_many_matches_scalar(self, rng):
        raw = rng.uniform(-3 * np.pi, 3 * np.pi, size=(500, 3))
        boundary = np.array(
            [
                [_HALF_PI, _HALF_PI, _HALF_PI],
                [np.pi, 0.0, 0.0],
                [3 * np.pi / 4, np.pi / 4, np.pi / 4],
                [_HALF_PI + 1e-10, 1e-10, -1e-10],
                [_HALF_PI + 5e-9, 1e-9, 1e-9],
            ]
        )
        raw = np.vstack([raw, boundary])
        batched = canonicalize_coordinates_many(raw)
        scalar = np.array([canonicalize_coordinates(r) for r in raw])
        assert np.array_equal(batched, scalar)

    def test_canonicalize_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            canonicalize_coordinates_many(np.zeros((4, 2)))


class TestMembershipKernels:
    def test_membership_matrix_matches_per_region(self, rng):
        regions = [
            RegionHull(rng.uniform(0, 1, size=(60, 3))) for _ in range(3)
        ]
        queries = rng.uniform(-0.2, 1.2, size=(40, 3))
        matrix = membership_matrix(regions, queries)
        assert matrix.shape == (3, 40)
        for row, region in zip(matrix, regions):
            assert np.array_equal(row, region.contains(queries))

    def test_membership_matrix_empty_regions(self):
        assert membership_matrix([], np.zeros((5, 3))).shape == (0, 5)

    def test_first_covering_k_matches_min_k(self, baseline_rules):
        coverage = baseline_rules.coverage
        pts = np.vstack(
            [
                np.random.default_rng(4).uniform(0, _HALF_PI, size=(50, 3)),
                [[np.pi / 4, 0.0, 0.0], [_HALF_PI, 0.0, 0.0]],
            ]
        )
        ks = first_covering_k(coverage.coverages, pts)
        assert np.array_equal(ks, coverage.min_k(pts))
        singles = np.array([coverage.min_k(p)[0] for p in pts])
        assert np.array_equal(ks, singles)

    def test_batched_contains_equals_solo_on_hull_boundary(
        self, baseline_rules
    ):
        """Landmarks on coverage-hull facets must classify identically
        whether queried alone or inside a larger batch."""
        region = baseline_rules.coverage.coverage_for(2)
        landmarks = np.array(
            [
                [np.pi / 4, 0.0, 0.0],  # sqrt(CNOT), on the CX-ray facet
                [_HALF_PI, 0.0, 0.0],  # CNOT
                [1.5e-6, 0.4e-6, 0.0],  # identity-corner facet
            ]
        )
        filler = np.random.default_rng(9).uniform(0, 1.2, size=(30, 3))
        batch = np.vstack([filler, landmarks, filler[::-1]])
        batched = region.contains(batch)
        for offset, point in enumerate(landmarks):
            solo = region.contains(point)[0]
            assert batched[len(filler) + offset] == solo


class TestISwapK2BasePlaneBand:
    """Batched membership on the degenerate iSWAP K=2 base-plane region.

    The region is planar (rank 2), so membership combines in-plane hull
    tests with an off-subspace displacement tolerance.  PR 2 fixed the
    1e-8/1e-9 epsilon mismatch between ``canonicalize`` and
    ``in_weyl_chamber`` on exactly this band; these tests pin that the
    vectorized path resolves the band identically to per-point calls.
    """

    @pytest.fixture(scope="class")
    def iswap_k2(self) -> CoverageSet:
        theta_c, theta_g = BASIS_DRIVE_ANGLES["iSWAP"]
        duration = (theta_c + theta_g) / _HALF_PI
        return build_coverage_set(
            gc=theta_c / duration,
            gg=theta_g / duration,
            pulse_duration=duration,
            kmax=2,
            basis_name="iSWAP",
            samples_per_k=250,
            boost_targets=False,
            seed=5,
            cache=False,
        )

    def test_k2_region_is_degenerate_plane(self, iswap_k2):
        region = iswap_k2.coverage_for(2)
        assert region.left.rank == 2
        assert not region.left.is_full_dimensional

    def test_band_membership_batched_equals_per_point(self, iswap_k2):
        region = iswap_k2.coverage_for(2)
        base = np.array(
            [
                [np.pi / 4, np.pi / 8, 0.0],
                [np.pi / 3, np.pi / 6, 0.0],
                [_HALF_PI, np.pi / 4, 0.0],
            ]
        )
        # Displace off the base plane by the PR 2 epsilon band (1e-9,
        # 1e-8), well inside the hull's off-subspace tolerance, and by
        # 1e-3, well outside it.
        probes = [base]
        for epsilon in (1e-9, 1e-8, 1e-3):
            shifted = np.array(base)
            shifted[:, 2] = epsilon
            probes.append(shifted)
        probes = np.vstack(probes)
        batched = region.contains(probes)
        singles = np.array([region.contains(p)[0] for p in probes])
        assert np.array_equal(batched, singles)
        # The band displacements are members iff the on-plane point is;
        # the 1e-3 displacement never is.
        on_plane = batched[:3]
        assert np.array_equal(batched[3:6], on_plane)
        assert np.array_equal(batched[6:9], on_plane)
        assert not batched[9:].any()

    def test_min_k_with_band_points_matches_per_point(self, iswap_k2):
        rng = np.random.default_rng(12)
        pts = np.vstack(
            [
                rng.uniform(0, _HALF_PI, size=(40, 3)),
                [[np.pi / 3, np.pi / 6, 1e-9], [np.pi / 3, np.pi / 6, 1e-8]],
            ]
        )
        batched = iswap_k2.min_k(pts)
        singles = np.array([iswap_k2.min_k(p)[0] for p in pts])
        assert np.array_equal(batched, singles)

    def test_epsilon_band_coordinates_extract_identically(self):
        """Unitaries whose coordinates sit in the base-plane epsilon
        band fold identically through the batched and scalar paths."""
        band = np.array(
            [
                [_HALF_PI - 1e-9, np.pi / 4, 1e-9],
                [_HALF_PI - 1e-8, np.pi / 4, 1e-8],
                [_HALF_PI + 2e-9, np.pi / 8, 0.0],
                [_HALF_PI + 2e-8, np.pi / 8, 0.0],
            ]
        )
        batch = np.stack([gates.canonical_gate(*c) for c in band])
        batched = weyl_coordinates_many(batch)
        scalar = np.array([weyl_coordinates(u) for u in batch])
        assert np.array_equal(batched, scalar)


class TestBatchedTemplates:
    def _probe_points(self) -> np.ndarray:
        rng = np.random.default_rng(21)
        named = np.array(
            [
                [0.0, 0.0, 0.0],
                [_HALF_PI, 0.0, 0.0],
                [_HALF_PI, _HALF_PI, 0.0],
                [_HALF_PI, _HALF_PI, _HALF_PI],
                [np.pi / 4, np.pi / 4, 0.0],
                [np.pi / 4, 0.0, 0.0],
                [np.pi / 8, 0.0, 0.0],
                [_HALF_PI, np.pi / 4, 0.0],
                [np.pi / 3, np.pi / 3, 0.0],
                [1.2e-6, 0.9e-6, 0.0],  # iSWAP-vs-CX family ambiguity
                [1.5e-6, 0.4e-6, 0.0],
            ]
        )
        return np.vstack([rng.uniform(0, _HALF_PI, size=(80, 3)), named])

    @pytest.mark.parametrize("engine", ["baseline", "parallel"])
    def test_templates_for_many_matches_scalar(
        self, engine, baseline_rules, parallel_rules
    ):
        rules = baseline_rules if engine == "baseline" else parallel_rules
        pts = self._probe_points()
        batched = rules.templates_for_many(pts)
        scalar = [rules.template_for(c) for c in pts]
        assert batched == scalar

    def test_templates_for_many_empty(self, parallel_rules):
        assert parallel_rules.templates_for_many(np.zeros((0, 3))) == []

    def test_durations_many_matches_scalar(self, parallel_rules):
        pts = self._probe_points()
        batched = parallel_rules.durations_many(pts)
        scalar = np.array([parallel_rules.duration(c) for c in pts])
        assert np.array_equal(batched, scalar)

    def test_scaled_rules_batch_parity(self, parallel_rules):
        from repro.targets.model import ScaledRules

        scaled = ScaledRules(parallel_rules, 0.75)
        pts = self._probe_points()
        assert scaled.templates_for_many(pts) == [
            scaled.template_for(c) for c in pts
        ]
        assert np.array_equal(
            scaled.durations_many(pts),
            np.array([scaled.duration(c) for c in pts]),
        )


class TestCacheBatchOps:
    COORDS = np.array(
        [
            [_HALF_PI, 0.0, 0.0],
            [np.pi / 4, np.pi / 4, 0.0],
            [_HALF_PI, 0.0, 0.0],  # duplicate of row 0
            [0.3, 0.2, 0.1],
        ]
    )

    @staticmethod
    def _factory(coords: np.ndarray) -> list[TemplateSpec]:
        return [
            TemplateSpec((float(row[0]) + 0.5,), 2, f"spec {i}")
            for i, row in enumerate(np.atleast_2d(coords))
        ]

    def test_keys_for_matches_key_for(self):
        keys = DecompositionCache.keys_for("tok", self.COORDS)
        assert keys == [
            DecompositionCache.key_for("tok", row) for row in self.COORDS
        ]

    def test_lookup_many_computes_unique_misses_once(self, tmp_path):
        cache = DecompositionCache(path=tmp_path / "t.sqlite")
        calls = []

        def factory(rows):
            calls.append(len(rows))
            return self._factory(rows)

        specs = cache.lookup_many("tok", self.COORDS, factory)
        assert len(specs) == 4
        assert specs[0] == specs[2]  # duplicate rows share one template
        assert calls == [3]  # three unique classes, one factory call
        # Stats mirror the scalar sequence: 3 misses + 1 repeat hit.
        assert cache.stats.misses == 3
        assert cache.stats.memory_hits == 1
        assert cache.stats.puts == 3
        # Fully warm second pass: all memory hits, no factory calls.
        again = cache.lookup_many("tok", self.COORDS, factory)
        assert again == specs
        assert calls == [3]
        assert cache.stats.memory_hits == 5

    def test_lookup_many_disk_hits_in_one_query(self, tmp_path):
        path = tmp_path / "t.sqlite"
        writer = DecompositionCache(path=path)
        writer.lookup_many("tok", self.COORDS, self._factory)
        writer.close()
        reader = DecompositionCache(path=path)
        specs = reader.lookup_many(
            "tok", self.COORDS, lambda rows: pytest.fail("unexpected miss")
        )
        assert specs[0] == specs[2]
        assert reader.stats.disk_hits == 3
        assert reader.stats.memory_hits == 1
        assert reader.stats.misses == 0

    def test_lookup_many_matches_scalar_lookup_results(self, tmp_path):
        batched = DecompositionCache(path=tmp_path / "a.sqlite")
        scalar = DecompositionCache(path=tmp_path / "b.sqlite")
        many = batched.lookup_many("tok", self.COORDS, self._factory)
        ones = [
            scalar.lookup(
                "tok",
                row,
                lambda row=row: self._factory(row[None])[0],
            )
            for row in self.COORDS
        ]
        assert [spec.pulses for spec in many] == [
            spec.pulses for spec in ones
        ]
        assert batched.stats.as_dict() == scalar.stats.as_dict()

    def test_put_many_single_transaction_round_trips(self, tmp_path):
        path = tmp_path / "t.sqlite"
        cache = DecompositionCache(path=path)
        coords = self.COORDS[[0, 1, 3]]
        specs = self._factory(coords)
        cache.put_many("tok", coords, specs)
        assert cache.disk_entries() == 3
        cache.close()
        fresh = DecompositionCache(path=path)
        for row, spec in zip(coords, specs):
            assert fresh.get("tok", row) == spec

    def test_put_many_length_mismatch(self):
        cache = DecompositionCache(persistent=False)
        with pytest.raises(ValueError, match="one spec per"):
            cache.put_many("tok", self.COORDS[:2], self._factory(self.COORDS))

    def test_wrong_length_factory_rejected(self, tmp_path):
        cache = DecompositionCache(path=tmp_path / "t.sqlite")
        with pytest.raises(ValueError, match="wrong-length"):
            cache.lookup_many("tok", self.COORDS, lambda rows: [])

    def test_disk_round_trip_preserves_pulses_exactly(self, tmp_path):
        """Awkward floats survive the store bit-for-bit (hex format)."""
        path = tmp_path / "t.sqlite"
        cache = DecompositionCache(path=path)
        pulses = (
            0.1 + 0.2,  # classic non-representable sum
            1.0 / 3.0,
            np.nextafter(0.5, 1.0),
            5e-324,  # smallest subnormal
            0.25,
        )
        spec = TemplateSpec(pulses, 2, "exactness probe")
        coords = np.array([0.123456789, 0.5, 0.25])
        cache.put("tok", coords, spec)
        cache.close()
        fresh = DecompositionCache(path=path)
        loaded = fresh.get("tok", coords)
        assert loaded is not None
        assert loaded.pulses == pulses
        assert all(
            a.hex() == float(b).hex() for a, b in zip(loaded.pulses, pulses)
        )

    def test_legacy_repr_rows_still_parse(self, tmp_path):
        """Stores written before the hex format keep answering."""
        path = tmp_path / "t.sqlite"
        cache = DecompositionCache(path=path)
        coords = np.array([0.5, 0.25, 0.0])
        key = cache.key_for("tok", coords)
        conn = cache._connection()
        legacy_pulses = (0.5, 0.30000000000000004)
        conn.execute(
            "INSERT OR REPLACE INTO templates VALUES (?, ?, ?, ?)",
            (key, ",".join(repr(p) for p in legacy_pulses), 3, "legacy row"),
        )
        conn.commit()
        assert cache.get("tok", coords) == TemplateSpec(
            legacy_pulses, 3, "legacy row"
        )
        specs = cache.lookup_many(
            "tok",
            coords[None],
            lambda rows: pytest.fail("legacy row should hit"),
        )
        assert specs[0].pulses == legacy_pulses


class TestTranslationBatchParity:
    def test_translate_matches_gate_at_a_time(self, parallel_rules):
        """The batched translate path emits byte-identical circuits to a
        scalar reimplementation of the historical per-gate loop."""
        from repro.circuits.workloads import get_workload
        from repro.service.jobs import circuit_digest
        from repro.transpiler.basis import translate_to_basis
        from repro.transpiler.consolidate import collect_2q_blocks

        circuit = collect_2q_blocks(get_workload("qft", 6, seed=11))
        batched = translate_to_basis(circuit, parallel_rules)

        # Scalar reference: per-gate classification and templating.
        from repro.circuits.circuit import QuantumCircuit
        from repro.circuits.gate import Gate

        out = QuantumCircuit(
            circuit.num_qubits, f"{circuit.name}_{parallel_rules.name}"
        )
        one_q = parallel_rules.one_q_duration
        for gate in circuit:
            if gate.num_qubits == 1:
                out.append(Gate("u1q", gate.qubits, duration=one_q))
                continue
            coords = weyl_coordinates(gate.to_matrix())
            spec = parallel_rules.template_for(coords)
            if spec.k == 0:
                if spec.layer_count:
                    for qubit in gate.qubits:
                        out.append(Gate("u1q", (qubit,), duration=one_q))
                continue
            interior = max(spec.layer_count - 2, 0)
            if spec.layer_count >= 1:
                for qubit in gate.qubits:
                    out.append(Gate("u1q", (qubit,), duration=one_q))
            for index, pulse in enumerate(spec.pulses):
                out.append(
                    Gate(
                        "pulse2q",
                        gate.qubits,
                        params=(float(pulse),),
                        duration=float(pulse),
                    )
                )
                if index < len(spec.pulses) - 1 and interior > 0:
                    for qubit in gate.qubits:
                        out.append(Gate("u1q", (qubit,), duration=one_q))
                    interior -= 1
            if spec.layer_count >= 2:
                for qubit in gate.qubits:
                    out.append(Gate("u1q", (qubit,), duration=one_q))
        assert circuit_digest(batched) == circuit_digest(out)
