"""Tests for Makhlin local invariants."""

import numpy as np
import pytest

from repro.quantum import gates
from repro.quantum.makhlin import (
    locally_equivalent,
    makhlin_distance,
    makhlin_from_coordinates,
    makhlin_invariants,
    makhlin_loss_to_target,
)
from repro.quantum.random import haar_unitary, random_local_pair
from repro.quantum.weyl import weyl_coordinates

#: Known invariant triples (g1, g2, g3).
_KNOWN = {
    "I": (1.0, 0.0, 3.0),
    "CNOT": (0.0, 0.0, 1.0),
    "iSWAP": (0.0, 0.0, -1.0),
    "SWAP": (-1.0, 0.0, -3.0),
    "B": (0.0, 0.0, 0.0),
    "sqrt_iSWAP": (0.25, 0.0, 1.0),
}

_MATRICES = {
    "I": np.eye(4),
    "CNOT": gates.CNOT,
    "iSWAP": gates.ISWAP,
    "SWAP": gates.SWAP,
    "B": gates.B_GATE,
    "sqrt_iSWAP": gates.SQRT_ISWAP,
}


class TestKnownValues:
    @pytest.mark.parametrize("name", sorted(_KNOWN))
    def test_invariants(self, name):
        got = makhlin_invariants(_MATRICES[name])
        assert np.allclose(got, _KNOWN[name], atol=1e-9), name

    def test_b_gate_at_origin(self):
        # The B gate famously sits at the origin of invariant space.
        assert np.linalg.norm(makhlin_invariants(gates.B_GATE)) < 1e-9


class TestConsistency:
    def test_matrix_vs_coordinate_formula(self, rng):
        for _ in range(30):
            u = haar_unitary(4, rng)
            from_matrix = makhlin_invariants(u)
            from_coords = makhlin_from_coordinates(weyl_coordinates(u))
            assert np.allclose(from_matrix, from_coords, atol=1e-6)

    def test_local_invariance(self, rng):
        u = haar_unitary(4, rng)
        dressed = random_local_pair(rng) @ u @ random_local_pair(rng)
        assert makhlin_distance(u, dressed) < 1e-9

    def test_distance_separates_classes(self):
        assert makhlin_distance(gates.CNOT, gates.SWAP) > 1.0


class TestEquivalence:
    def test_cz_cnot_equivalent(self):
        assert locally_equivalent(gates.CZ, gates.CNOT)

    def test_dcnot_iswap_equivalent(self):
        assert locally_equivalent(gates.DCNOT, gates.ISWAP)

    def test_cnot_not_equivalent_to_b(self):
        assert not locally_equivalent(gates.CNOT, gates.B_GATE)

    def test_loss_factory(self):
        loss = makhlin_loss_to_target(makhlin_invariants(gates.CNOT))
        assert loss(gates.CZ) < 1e-9
        assert loss(gates.SWAP) > 1.0
