"""Perf ledger, regression sentinel, and sampling profiler.

Covers the historical observability tier end to end: artifact
ingestion shapes, run stamping, the noise-aware baseline comparison,
the ``repro perf`` CLI round trip (including the acceptance case — a
synthetic 2x slowdown trips ``perf check`` while an unchanged rerun
passes), and the stack sampler's span attribution on both sides of the
``fan_out`` process boundary.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time

import pytest

from repro.cli import main
from repro.obs import (
    PROFILER,
    TRACER,
    GateConfig,
    LedgerError,
    MetricComparison,
    PerfLedger,
    RunStamp,
    direction_for,
    enable_tracing,
    ingest_file,
    samples_from_bench_artifact,
    samples_from_metrics_snapshot,
    samples_from_pytest_benchmark,
    trace,
)
from repro.obs.profile import (
    SamplingProfiler,
    _env_profile_interval,
    format_self_time_table,
    to_collapsed,
)
from repro.service.engine import BatchEngine, fan_out
from repro.service.jobs import CompileJob


@pytest.fixture(autouse=True)
def _clean_obs():
    """Leave tracer and profiler off and empty around every test."""
    TRACER.disable()
    TRACER.clear()
    PROFILER.stop()
    PROFILER.clear()
    yield
    TRACER.disable()
    TRACER.clear()
    PROFILER.stop()
    PROFILER.clear()


def _stamp(**overrides) -> RunStamp:
    base = dict(
        recorded_at=1700000000.0,
        git_sha="f" * 40,
        branch="main",
        host="testhost",
        python_version="3.11.0",
        numpy_version="1.26.0",
        source="test",
        note="",
    )
    base.update(overrides)
    return RunStamp(**base)


# -- direction inference -----------------------------------------------------


class TestDirections:
    def test_suffix_rules(self):
        assert direction_for("kernels.weyl.batched_s") == "lower"
        assert direction_for("obs.chrome_trace_bytes") == "lower"
        assert direction_for("obs.traced_over_untraced_ratio") == "lower"
        assert direction_for("kernels.weyl.speedup") == "higher"
        assert direction_for("synthesis.throughput_per_s") == "higher"
        assert direction_for("obs.span_count") is None


# -- ingestion ---------------------------------------------------------------


class TestIngestion:
    def test_pytest_benchmark_shape(self):
        payload = {
            "machine_info": {"node": "x"},
            "benchmarks": [
                {
                    "name": "test_kernel_microbench",
                    "stats": {"mean": 0.5, "min": 0.4, "rounds": 1},
                },
                {"name": "broken", "stats": None},
            ],
        }
        samples = samples_from_pytest_benchmark(payload)
        assert samples == {
            "pytest.test_kernel_microbench.mean_s": 0.5,
            "pytest.test_kernel_microbench.min_s": 0.4,
        }

    def test_stamped_artifact_prefers_explicit_metrics(self):
        payload = {
            "kind": "kernels",
            "schema": 1,
            "metrics": {"weyl.batched_s": 0.01, "weyl.speedup": 19.0},
            "benchmarks": [{"kernel": "ignored", "scalar_s": 99.0}],
        }
        samples = samples_from_bench_artifact(payload, "kernels")
        assert samples == {
            "kernels.weyl.batched_s": 0.01,
            "kernels.weyl.speedup": 19.0,
        }

    def test_legacy_artifact_flattens_entries(self):
        payload = {
            "benchmarks": [
                {"kernel": "weyl", "n": 256, "scalar_s": 0.2,
                 "batched_s": 0.01, "speedup": 20.0},
            ],
            "elapsed_s": 1.5,
        }
        samples = samples_from_bench_artifact(payload, "kernels")
        assert samples["kernels.weyl.n256.batched_s"] == 0.01
        assert samples["kernels.weyl.n256.speedup"] == 20.0
        assert samples["kernels.elapsed_s"] == 1.5
        assert "kernels.weyl.n256.n" not in samples

    def test_metrics_snapshot_shape(self):
        payload = {
            "schema": 1,
            "counters": {"repro.service.jobs": 4},
            "gauges": {"repro.pool.depth": 2.0},
            "histograms": {
                "repro.service.job_seconds": {
                    "bounds": [1.0], "counts": [3, 1],
                    "total": 2.0, "count": 4,
                },
            },
        }
        samples = samples_from_metrics_snapshot(payload)
        assert samples["repro.service.jobs.count"] == 4.0
        assert samples["repro.service.job_seconds.hist_mean"] == 0.5

    def test_ingest_file_dispatch_and_pointed_errors(self, tmp_path):
        good = tmp_path / "kernels_bench.json"
        good.write_text(json.dumps(
            {"kind": "kernels", "schema": 1, "metrics": {"a_s": 1.0}}
        ))
        assert ingest_file(good) == {"kernels.a_s": 1.0}

        with pytest.raises(LedgerError, match="no artifact at"):
            ingest_file(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(LedgerError, match="cannot parse"):
            ingest_file(bad)
        array = tmp_path / "array.json"
        array.write_text("[1, 2]")
        with pytest.raises(LedgerError, match="not a JSON object"):
            ingest_file(array)
        stale = tmp_path / "metrics.json"
        stale.write_text(json.dumps({"schema": 99, "counters": {}}))
        with pytest.raises(LedgerError, match="schema v99"):
            ingest_file(stale)


# -- the store ---------------------------------------------------------------


class TestPerfLedger:
    def test_record_round_trips_samples_and_stamp(self, tmp_path):
        ledger = PerfLedger(path=tmp_path / "perf.sqlite")
        run_id = ledger.record(
            {"k.a_s": 1.0, "k.b.speedup": 4.0}, stamp=_stamp()
        )
        (run,) = ledger.runs()
        assert run["id"] == run_id
        assert run["git_sha"] == "f" * 40
        assert run["branch"] == "main"
        assert run["host"] == "testhost"
        assert run["python_version"] == "3.11.0"
        assert run["numpy_version"] == "1.26.0"
        assert run["source"] == "test"
        assert run["samples"] == 2
        assert ledger.samples_for_run(run_id) == {
            "k.a_s": 1.0, "k.b.speedup": 4.0,
        }
        assert ledger.metrics(contains="speedup") == ["k.b.speedup"]

    def test_refuses_empty_run(self, tmp_path):
        ledger = PerfLedger(path=tmp_path / "perf.sqlite")
        with pytest.raises(LedgerError, match="no samples"):
            ledger.record({})

    def test_unknown_schema_is_loud(self, tmp_path):
        path = tmp_path / "perf.sqlite"
        PerfLedger(path=path).record({"a_s": 1.0}, stamp=_stamp())
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE meta SET value = '99' WHERE key = 'schema_version'"
        )
        conn.commit()
        conn.close()
        with pytest.raises(LedgerError, match="schema v99"):
            PerfLedger(path=path).runs()

    def test_stamp_collect_fills_every_field(self):
        stamp = RunStamp.collect(source="test")
        assert stamp.git_sha and stamp.branch and stamp.host
        assert stamp.python_version.count(".") == 2
        assert stamp.numpy_version
        assert stamp.recorded_at > 0

    def test_compare_latest_flags_2x_slowdown(self, tmp_path):
        ledger = PerfLedger(path=tmp_path / "perf.sqlite")
        for value in (0.010, 0.011, 0.009):
            ledger.record({"k.run_s": value}, stamp=_stamp())
        ledger.record({"k.run_s": 0.020}, stamp=_stamp())
        (comparison,) = ledger.compare_latest()
        assert comparison.regressed
        assert comparison.status == "REGRESSED"
        assert comparison.baseline == 0.010
        assert comparison.ratio == 2.0

    def test_compare_latest_passes_unchanged(self, tmp_path):
        ledger = PerfLedger(path=tmp_path / "perf.sqlite")
        for value in (0.010, 0.011, 0.009, 0.010):
            ledger.record({"k.run_s": value}, stamp=_stamp())
        (comparison,) = ledger.compare_latest()
        assert not comparison.regressed
        assert comparison.status == "ok"

    def test_compare_latest_empty_ledger_is_loud(self, tmp_path):
        ledger = PerfLedger(path=tmp_path / "perf.sqlite")
        with pytest.raises(LedgerError, match="no runs"):
            ledger.compare_latest()

    def test_new_metric_never_fails(self, tmp_path):
        ledger = PerfLedger(path=tmp_path / "perf.sqlite")
        ledger.record({"fresh_s": 1.0}, stamp=_stamp())
        (comparison,) = ledger.compare_latest()
        assert comparison.baseline is None
        assert comparison.status == "new"
        assert not comparison.regressed

    def test_v1_ledger_migrates_in_place(self, tmp_path):
        # CI caches ledgers across builds; a v1 file must keep working.
        path = tmp_path / "perf.sqlite"
        PerfLedger(path=path).record({"a_s": 1.0}, stamp=_stamp())
        conn = sqlite3.connect(path)
        conn.execute("ALTER TABLE runs DROP COLUMN array_backend")
        conn.execute(
            "UPDATE meta SET value = '1' WHERE key = 'schema_version'"
        )
        conn.commit()
        conn.close()
        ledger = PerfLedger(path=path)
        (run,) = ledger.runs()
        assert run["array_backend"] == "numpy"  # migration default
        ledger.record(
            {"a_s": 2.0}, stamp=_stamp(array_backend="torch")
        )
        backends = [r["array_backend"] for r in ledger.runs()]
        assert sorted(backends) == ["numpy", "torch"]

    def test_stamp_records_active_array_backend(self):
        assert RunStamp.collect(source="test").array_backend == "numpy"
        assert "array_backend" in RunStamp.collect(source="test").as_dict()

    def test_compare_latest_never_crosses_backends(self, tmp_path):
        ledger = PerfLedger(path=tmp_path / "perf.sqlite")
        # Fast numpy history, then a slower torch run: the torch run
        # has no same-backend baseline, so it must read as new, not as
        # a regression against numpy.
        for value in (0.010, 0.011, 0.009):
            ledger.record({"k.run_s": value}, stamp=_stamp())
        ledger.record(
            {"k.run_s": 0.050}, stamp=_stamp(array_backend="torch")
        )
        (comparison,) = ledger.compare_latest()
        assert comparison.baseline is None
        assert comparison.status == "new"
        # A second torch run gates against the first torch run only.
        ledger.record(
            {"k.run_s": 0.051}, stamp=_stamp(array_backend="torch")
        )
        (comparison,) = ledger.compare_latest()
        assert comparison.baseline == 0.050
        assert not comparison.regressed

    def test_stale_bench_artifact_schema_is_refused(self, tmp_path):
        stale = tmp_path / "kernels_bench.json"
        stale.write_text(json.dumps(
            {"kind": "kernels", "schema": 99, "metrics": {"a_s": 1.0}}
        ))
        with pytest.raises(LedgerError, match="schema v99"):
            ingest_file(stale)


class TestComparisonMath:
    def test_noise_floor_absorbs_jitter(self):
        # Noisy history: MAD is large, so a value inside the noise band
        # does not regress even though it exceeds baseline * (1 + tol).
        noisy = [1.0, 1.4, 0.6, 1.3, 0.7]  # median 1.0, MAD 0.3
        item = MetricComparison.build(
            "x_s", current=1.3, history=noisy,
            direction="lower", tolerance=0.2,
        )
        assert not item.regressed
        # A genuinely large excursion still trips.
        item = MetricComparison.build(
            "x_s", current=2.5, history=noisy,
            direction="lower", tolerance=0.2,
        )
        assert item.regressed

    def test_higher_better_mirrors(self):
        history = [10.0, 10.0, 10.0]
        item = MetricComparison.build(
            "x.speedup", current=5.0, history=history,
            direction="higher", tolerance=0.2,
        )
        assert item.regressed
        item = MetricComparison.build(
            "x.speedup", current=15.0, history=history,
            direction="higher", tolerance=0.2,
        )
        assert not item.regressed and item.improved

    def test_informational_metric_never_regresses(self):
        item = MetricComparison.build(
            "x.span_count", current=500.0, history=[10.0, 10.0],
            direction=None, tolerance=0.2,
        )
        assert not item.regressed
        assert item.status == "info"


class TestGateConfig:
    def test_longest_prefix_wins(self):
        config = GateConfig(
            default_tolerance=0.2,
            overrides={"kernels.": 0.5, "kernels.weyl.": 0.1},
        )
        assert config.tolerance_for("kernels.weyl.batched_s") == 0.1
        assert config.tolerance_for("kernels.cache.cold_s") == 0.5
        assert config.tolerance_for("synthesis.warm_s") == 0.2

    def test_from_file_round_trip_and_pointed_errors(self, tmp_path):
        path = tmp_path / "gates.json"
        path.write_text(json.dumps(
            {"default_tolerance": 0.3, "overrides": {"a.": 0.1}}
        ))
        config = GateConfig.from_file(path)
        assert config.default_tolerance == 0.3
        assert config.overrides == {"a.": 0.1}
        with pytest.raises(LedgerError, match="no gate config"):
            GateConfig.from_file(tmp_path / "missing.json")
        path.write_text(json.dumps({"tollerance": 0.3}))
        with pytest.raises(LedgerError, match="unknown keys"):
            GateConfig.from_file(path)


# -- the CLI sentinel (acceptance flow) --------------------------------------


def _write_artifact(path, run_s: float) -> None:
    path.write_text(json.dumps({
        "kind": "kernels",
        "schema": 1,
        "metrics": {"weyl.run_s": run_s, "weyl.speedup": 19.0},
    }))


class TestPerfCli:
    def test_record_then_check_round_trip(self, tmp_path, capsys):
        ledger = str(tmp_path / "perf.sqlite")
        artifact = tmp_path / "kernels_bench.json"
        for value in (0.010, 0.011, 0.009, 0.010):
            _write_artifact(artifact, value)
            assert main(
                ["perf", "record", str(artifact), "--ledger", ledger]
            ) == 0
        assert main(["perf", "check", "--ledger", ledger]) == 0
        out = capsys.readouterr().out
        assert "perf check: ok" in out
        assert main(["perf", "list", "--ledger", ledger]) == 0
        assert main(["perf", "compare", "--ledger", ledger]) == 0
        assert main(
            ["perf", "report", "--ledger", ledger, "--metric", "run_s"]
        ) == 0
        out = capsys.readouterr().out
        assert "kernels.weyl.run_s" in out

    def test_synthetic_2x_slowdown_fails_then_rerun_passes(
        self, tmp_path, capsys
    ):
        ledger = str(tmp_path / "perf.sqlite")
        artifact = tmp_path / "kernels_bench.json"
        for value in (0.010, 0.011, 0.009):
            _write_artifact(artifact, value)
            assert main(
                ["perf", "record", str(artifact), "--ledger", ledger]
            ) == 0
        # Inject a synthetic 2x slowdown: the sentinel must trip.
        _write_artifact(artifact, 0.020)
        assert main(
            ["perf", "record", str(artifact), "--ledger", ledger]
        ) == 0
        assert main(["perf", "check", "--ledger", ledger]) == 1
        err = capsys.readouterr().err
        assert "regressed" in err
        # --warn-only reports but does not fail (PR builds).
        assert main(
            ["perf", "check", "--ledger", ledger, "--warn-only"]
        ) == 0
        # An unchanged rerun recorded on top passes again.
        _write_artifact(artifact, 0.010)
        assert main(
            ["perf", "record", str(artifact), "--ledger", ledger]
        ) == 0
        assert main(["perf", "check", "--ledger", ledger]) == 0

    def test_check_empty_ledger_is_pointed(self, tmp_path, capsys):
        code = main(
            ["perf", "check", "--ledger", str(tmp_path / "none.sqlite")]
        )
        assert code == 2
        assert "no runs" in capsys.readouterr().err

    def test_record_without_artifacts_is_pointed(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv(
            "REPRO_RESULTS_DIR", str(tmp_path / "results")
        )
        monkeypatch.chdir(tmp_path)
        code = main(
            ["perf", "record", "--ledger", str(tmp_path / "perf.sqlite")]
        )
        assert code == 2
        assert "no artifacts found" in capsys.readouterr().err

    def test_record_default_globs_results_dir(
        self, tmp_path, monkeypatch, capsys
    ):
        results = tmp_path / "results"
        results.mkdir()
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(results))
        monkeypatch.chdir(tmp_path)
        _write_artifact(results / "kernels_bench.json", 0.01)
        ledger = str(tmp_path / "perf.sqlite")
        assert main(["perf", "record", "--ledger", ledger]) == 0
        assert "recorded run 1" in capsys.readouterr().out


# -- the sampling profiler ---------------------------------------------------


def _burn(seconds: float) -> int:
    """CPU-bound busy loop the sampler is guaranteed to catch."""
    deadline = time.perf_counter() + seconds
    count = 0
    while time.perf_counter() < deadline:
        count += 1
    return count


class TestProfiler:
    def test_samples_attribute_to_active_span(self):
        enable_tracing()
        profiler = PROFILER
        profiler.interval = 0.001
        profiler.start()
        with trace.span("profiled.burn"):
            _burn(0.15)
        profiler.stop()
        burn_keys = [
            key for key in profiler.samples
            if key.startswith("profiled.burn;")
        ]
        assert burn_keys, profiler.samples
        # Root-first stacks: the burn helper is the leaf frame.
        assert any("_burn" in key.split(";")[-1] for key in burn_keys)

    def test_samples_outside_spans_use_placeholder(self):
        profiler = PROFILER
        profiler.interval = 0.001
        profiler.start()
        _burn(0.1)
        profiler.stop()
        assert any(
            key.startswith("(no span);") for key in profiler.samples
        )

    def test_snapshot_delta_absorb_mirror_metrics(self):
        before = {"a;x": 2, "b;y": 1}
        after = {"a;x": 5, "c;z": 3}
        delta = SamplingProfiler.delta(before, after)
        assert delta == {"a;x": 3, "c;z": 3}
        sink = SamplingProfiler()
        sink.samples = {"a;x": 1}
        assert sink.absorb(delta) == 6
        assert sink.samples == {"a;x": 4, "c;z": 3}

    def test_collapsed_and_self_time_formats(self):
        samples = {"span.a;m:f;m:g": 10, "span.b;m:h": 30}
        text = to_collapsed(samples)
        assert "span.a;m:f;m:g 10" in text
        assert "span.b;m:h 30" in text
        table = format_self_time_table(samples, interval=0.001)
        assert "span.b" in table and "75.0" in table
        assert format_self_time_table({}, interval=0.001).startswith(
            "no profile samples"
        )

    def test_env_switch_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert _env_profile_interval() is None
        monkeypatch.setenv("REPRO_PROFILE", "off")
        assert _env_profile_interval() is None
        monkeypatch.setenv("REPRO_PROFILE", "1")
        assert _env_profile_interval() == 0.001
        monkeypatch.setenv("REPRO_PROFILE", "true")
        assert _env_profile_interval() == 0.005
        monkeypatch.setenv("REPRO_PROFILE", "2.5")
        assert _env_profile_interval() == 0.0025

    def test_compiler_config_profile_field_round_trips(self):
        from repro.transpiler.compiler import CompilerConfig

        config = CompilerConfig(profile=True)
        assert config.to_dict()["profile"] is True
        assert CompilerConfig.from_dict(config.to_dict()) == config


def _profiled_worker(payload: tuple) -> tuple[int, dict]:
    """Pool worker: restart the sampler post-fork, burn, ship delta."""
    context, interval, seconds = payload
    TRACER.activate(context)
    PROFILER.interval = interval
    PROFILER.enabled = True
    PROFILER.ensure_running()
    before = PROFILER.snapshot()
    with trace.span("worker.burn"):
        _burn(seconds)
    return os.getpid(), SamplingProfiler.delta(before, PROFILER.snapshot())


class TestCrossProcessProfile:
    def test_fan_out_worker_samples_attribute_to_worker_spans(self):
        enable_tracing()
        with trace.span("submit"):
            context = TRACER.current_context()
            results = list(fan_out(
                _profiled_worker,
                [(context, 0.001, 0.2)] * 2,
                workers=2,
            ))
        pids = {pid for pid, _ in results}
        assert os.getpid() not in pids
        total = 0
        for _, delta in results:
            # A stray sample can land between the snapshot and the span
            # opening, so filter rather than demand every key matches.
            burn = {
                key: count for key, count in delta.items()
                if key.startswith("worker.burn;")
            }
            assert burn, delta
            total += PROFILER.absorb(delta)
        assert total > 0
        assert any(
            key.startswith("worker.burn;") for key in PROFILER.samples
        )

    def test_batch_engine_ships_worker_profile_freight(self):
        enable_tracing()
        PROFILER.interval = 0.001
        PROFILER.start()
        jobs = [
            CompileJob(
                workload=workload, num_qubits=4, target="square_2x2",
                trials=1, pipeline="fast",
            )
            for workload in ("ghz", "qft")
        ]
        engine = BatchEngine(
            workers=2, use_cache=False, warm_coverage=False, retries=0
        )
        results = engine.run(jobs)
        PROFILER.stop()
        assert all(result.ok for result in results)
        # Worker-side samples were absorbed: the parent never opens
        # job.run/compile/pass spans itself under workers=2, so any
        # sample attributed to them crossed the freight channel.
        worker_side = [
            key for key in PROFILER.samples
            if key.split(";", 1)[0] == "job.run"
            or key.split(";", 1)[0] == "compile"
            or key.split(";", 1)[0].startswith("pass.")
            or key.split(";", 1)[0].startswith("synth.")
        ]
        assert worker_side, sorted(PROFILER.samples)
