"""Compile service: server lifecycle, dedup, requeue, client, queue.

Covers the network tier's contracts: digest parity with the in-process
path (the acceptance criterion every other test leans on), dedup of
identical submissions before any work is scheduled, SIGKILL-a-worker
requeue-to-success with consistent retry accounting, crash-safe queue
recovery, client timeout/backoff taxonomy, and trace-context
propagation across the HTTP boundary.

Most tests run the server in-process (:class:`ServerThread`) so they
can assert against the shared tracer/metrics registry; one test drives
a real ``repro serve`` subprocess over HTTP end to end.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.obs import REGISTRY, TRACER, MetricsRegistry, enable_tracing
from repro.service import (
    CompileJob,
    CompileResult,
    PersistentJobQueue,
    QueueError,
    ServerThread,
    ServiceClient,
    ServiceError,
    ServiceTimeout,
    ServiceUnavailable,
    wait_until_ready,
)
from repro.service.engine import execute_job

#: Seconds-scale job every service test farms (fast pipeline, 4 qubits).
_FAST = dict(
    workload="ghz", num_qubits=4, target="square_2x2",
    trials=1, rules="baseline", pipeline="fast",
)


def fast_job(**overrides) -> CompileJob:
    return CompileJob(**{**_FAST, **overrides})


def counters_delta(before: dict) -> dict:
    return MetricsRegistry.delta(before, REGISTRY.snapshot()).get(
        "counters", {}
    )


def free_port() -> int:
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


@pytest.fixture(autouse=True)
def _clean_tracer():
    """Leave the process tracer off and empty around every test."""
    TRACER.disable()
    TRACER.clear()
    yield
    TRACER.disable()
    TRACER.clear()


class TestServerLifecycle:
    def test_start_health_drain_shutdown(self):
        with ServerThread(workers=1, use_cache=False) as st:
            client = ServiceClient(st.url, timeout=30)
            health = client.health()
            assert health["status"] == "ok"
            assert health["workers"] == 1
            assert health["queue_depth"] == 0
            url = st.url
        # Context exit drained and stopped the server: gone from the
        # network, and the thread has joined.
        assert not st._thread.is_alive()
        with pytest.raises(ServiceUnavailable):
            ServiceClient(url, timeout=2, connect_retries=0).health()

    def test_shutdown_over_http(self):
        st = ServerThread(workers=1, use_cache=False).start()
        client = ServiceClient(st.url, timeout=30)
        response = client.shutdown(drain=True)
        assert response["ok"] is True
        st._thread.join(timeout=30)
        assert not st._thread.is_alive()

    def test_drain_finishes_queued_work(self):
        with ServerThread(
            workers=1, use_cache=False, worker_delay=0.3
        ) as st:
            client = ServiceClient(st.url, timeout=60)
            collected: list = []
            worker = threading.Thread(
                target=lambda: collected.extend(
                    client.submit([fast_job(tag="drain")])
                )
            )
            worker.start()
            time.sleep(0.1)  # submission admitted, job running
        # __exit__ drained: the submitted job settled before the stop.
        worker.join(timeout=60)
        assert collected and collected[0].ok

    def test_empty_submission_rejected(self):
        with ServerThread(workers=1, use_cache=False) as st:
            client = ServiceClient(st.url, timeout=30)
            with pytest.raises(ServiceError, match="no jobs"):
                list(client.submit_stream([]))

    def test_unknown_route_is_404(self):
        with ServerThread(workers=1, use_cache=False) as st:
            client = ServiceClient(st.url, timeout=30)
            with pytest.raises(ServiceError, match="no route"):
                client._request("GET", "/v1/nope")


class TestDigestParityAndDedup:
    def test_served_digest_matches_in_process(self):
        job = fast_job(tag="parity")
        local = execute_job(job, use_cache=False)
        assert local.ok
        with ServerThread(workers=2, use_cache=False) as st:
            (served,) = ServiceClient(st.url, timeout=60).submit([job])
        assert served.ok
        assert served.digest == local.digest
        assert served.attempts == 1

    def test_same_batch_duplicates_dedup(self):
        job = fast_job(tag="dup")
        before = REGISTRY.snapshot()
        with ServerThread(workers=2, use_cache=False) as st:
            results = ServiceClient(st.url, timeout=60).submit(
                [job, job, job]
            )
        digests = {r.digest for r in results}
        assert len(digests) == 1 and results[0].ok
        delta = counters_delta(before)
        assert delta.get("repro.service.dedup_hits") == 2
        # Only one job actually settled through the scheduler.
        attempts = MetricsRegistry.delta(before, REGISTRY.snapshot())[
            "histograms"
        ]["repro.service.job_attempts"]
        assert attempts["count"] == 1

    def test_concurrent_identical_submissions_run_once(self):
        job = fast_job(tag="race")
        before = REGISTRY.snapshot()
        with ServerThread(
            workers=2, use_cache=False, worker_delay=0.4
        ) as st:
            client = ServiceClient(st.url, timeout=60)
            results: dict[str, CompileResult] = {}

            def submit(name: str) -> None:
                (results[name],) = client.submit([job])

            threads = [
                threading.Thread(target=submit, args=(name,))
                for name in ("a", "b")
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
        assert results["a"].ok and results["b"].ok
        assert results["a"].digest == results["b"].digest
        delta = counters_delta(before)
        # Whichever submission lost the race deduped — against the
        # in-flight entry or (if the first finished fast) the store.
        assert delta.get("repro.service.dedup_hits") == 1
        attempts = MetricsRegistry.delta(before, REGISTRY.snapshot())[
            "histograms"
        ]["repro.service.job_attempts"]
        assert attempts["count"] == 1

    def test_warm_dedup_hits_result_store(self):
        job = fast_job(tag="warm")
        with ServerThread(workers=1, use_cache=False) as st:
            client = ServiceClient(st.url, timeout=60)
            (cold,) = client.submit([job])
            before = REGISTRY.snapshot()
            statuses = [
                event["status"]
                for event in client.submit_stream([job])
                if event.get("event") == "accepted"
            ]
        assert statuses == ["dedup_store"]
        delta = counters_delta(before)
        assert delta.get("repro.service.dedup_store") == 1
        assert cold.ok

    def test_warm_dedup_survives_restart(self, tmp_path):
        job = fast_job(tag="restart")
        results_db = tmp_path / "results.sqlite"
        with ServerThread(
            workers=1, use_cache=False, results_path=results_db
        ) as st:
            (first,) = ServiceClient(st.url, timeout=60).submit([job])
        with ServerThread(
            workers=1, use_cache=False, results_path=results_db
        ) as st:
            client = ServiceClient(st.url, timeout=60)
            events = list(client.submit_stream([job]))
        accepted = [e for e in events if e["event"] == "accepted"]
        assert accepted[0]["status"] == "dedup_store"
        (result_event,) = [e for e in events if e["event"] == "result"]
        assert result_event["result"]["digest"] == first.digest


class TestRequeue:
    def test_sigkill_worker_requeues_to_success(self):
        job = fast_job(workload="qft", tag="kill")
        local = execute_job(job, use_cache=False)
        before = REGISTRY.snapshot()
        with ServerThread(
            workers=1, use_cache=False, worker_delay=0.8,
            retries=2, backoff_base=0.05, backoff_cap=0.2,
        ) as st:
            client = ServiceClient(st.url, timeout=60)
            killed = False
            events = []
            for event in client.submit_stream([job]):
                events.append(event)
                if event["event"] == "running" and not killed:
                    os.kill(event["pid"], signal.SIGKILL)
                    killed = True
        kinds = [e["event"] for e in events]
        assert "requeued" in kinds
        (requeued,) = [e for e in events if e["event"] == "requeued"]
        assert requeued["reason"] == "worker_died"
        (result_event,) = [e for e in events if e["event"] == "result"]
        result = CompileResult.from_dict(result_event["result"])
        assert result.ok
        assert result.attempts == 2
        assert result.digest == local.digest
        delta = counters_delta(before)
        assert delta.get("repro.service.requeues") == 1
        assert delta.get("repro.service.job_retries") == 1
        attempts = MetricsRegistry.delta(before, REGISTRY.snapshot())[
            "histograms"
        ]["repro.service.job_attempts"]
        # Settled once, with the cumulative attempt count — the lost
        # execution does not double-count across freight merges.
        assert attempts["count"] == 1 and attempts["total"] == 2.0

    def test_failing_job_exhausts_retries_with_engine_semantics(self):
        """Server-side retry accounting matches the BatchEngine's
        pinned semantics (test_obs.test_retried_job_records_retry_metrics):
        retries=2 -> attempts==3, job_retries==2, jobs_failed==1."""
        job = CompileJob(
            workload="no_such_workload", num_qubits=4,
            target="square_2x2", trials=1,
        )
        before = REGISTRY.snapshot()
        with ServerThread(
            workers=1, use_cache=False, retries=2,
            backoff_base=0.01, backoff_cap=0.05,
        ) as st:
            (result,) = ServiceClient(st.url, timeout=60).submit([job])
        assert not result.ok
        assert result.attempts == 3
        delta = counters_delta(before)
        assert delta.get("repro.service.job_retries") == 2
        assert delta.get("repro.service.requeues") == 2
        assert delta.get("repro.service.jobs_failed") == 1
        assert delta.get("repro.service.job_errors") == 3
        attempts = MetricsRegistry.delta(before, REGISTRY.snapshot())[
            "histograms"
        ]["repro.service.job_attempts"]
        assert attempts["count"] == 1 and attempts["total"] == 3.0


class TestQueue:
    def test_lifecycle_round_trip(self, tmp_path):
        queue = PersistentJobQueue(tmp_path / "q.sqlite")
        job = fast_job(tag="queued")
        queue.put("k1", job)
        queue.put("k2", fast_job(tag="other"), priority=5)
        assert queue.depth() == 2
        queue.mark_running("k1", attempts=2)
        queue.mark_done("k2")
        assert queue.depth() == 1
        recovered = queue.recover()
        assert [q.key for q in recovered] == ["k1"]
        assert recovered[0].attempts == 2
        assert recovered[0].job == job
        queue.close()

    def test_recover_survives_reopen(self, tmp_path):
        path = tmp_path / "q.sqlite"
        queue = PersistentJobQueue(path)
        queue.put("k1", fast_job(tag="crash"))
        queue.mark_running("k1", attempts=1)
        queue.close()
        # A fresh process (simulated by a fresh instance) sees the
        # running row as crashed work to redo, attempts preserved.
        reopened = PersistentJobQueue(path)
        (entry,) = reopened.recover()
        assert entry.key == "k1" and entry.attempts == 1
        reopened.close()

    def test_schema_mismatch_refuses_loudly(self, tmp_path):
        path = tmp_path / "q.sqlite"
        queue = PersistentJobQueue(path)
        queue._connection().execute(
            "UPDATE meta SET value = '99' WHERE key = 'schema'"
        )
        queue._connection().commit()
        queue.close()
        with pytest.raises(QueueError, match="schema v99"):
            PersistentJobQueue(path)

    def test_server_recovers_crashed_queue(self, tmp_path):
        """Rows a dead server left behind run to completion on start."""
        queue_db = tmp_path / "queue.sqlite"
        results_db = tmp_path / "results.sqlite"
        job = fast_job(tag="recover")
        seeded = PersistentJobQueue(queue_db)
        seeded.put(job.identity_digest(), job)
        seeded.mark_running(job.identity_digest(), attempts=1)
        seeded.close()
        before = REGISTRY.snapshot()
        with ServerThread(
            workers=1, use_cache=False,
            queue_path=queue_db, results_path=results_db,
        ) as st:
            client = ServiceClient(st.url, timeout=60)
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                health = client.health()
                if health["queue_depth"] == 0 and health["results"] == 1:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("recovered job never completed")
            # The same submission now answers from the result store.
            statuses = [
                e["status"]
                for e in client.submit_stream([job])
                if e.get("event") == "accepted"
            ]
        assert statuses == ["dedup_store"]
        assert counters_delta(before).get("repro.service.recovered") == 1


class TestClientFailureModes:
    def test_unreachable_raises_after_backoff(self):
        url = f"http://127.0.0.1:{free_port()}"
        client = ServiceClient(
            url, timeout=2, connect_retries=2, backoff_base=0.05
        )
        start = time.monotonic()
        with pytest.raises(ServiceUnavailable, match="unreachable"):
            client.health()
        # Two retries backed off 0.05 + 0.1 seconds before giving up.
        assert time.monotonic() - start >= 0.15

    def test_stalled_stream_raises_timeout(self):
        with ServerThread(
            workers=1, use_cache=False, worker_delay=2.0
        ) as st:
            client = ServiceClient(st.url, timeout=0.4)
            with pytest.raises(ServiceTimeout, match="stalled"):
                list(client.submit_stream([fast_job(tag="stall")]))

    def test_wait_until_ready_times_out(self):
        url = f"http://127.0.0.1:{free_port()}"
        with pytest.raises(ServiceUnavailable, match="not ready"):
            wait_until_ready(url, timeout=0.4, interval=0.1)

    def test_https_rejected(self):
        with pytest.raises(ServiceError, match="plain http"):
            ServiceClient("https://example.com:1234")


class TestTracePropagation:
    def test_in_process_timeline_spans_client_server_worker(self):
        enable_tracing()
        from repro.obs import span

        job = fast_job(tag="traced")
        with ServerThread(workers=1, use_cache=False) as st:
            with span("client.submit"):
                (result,) = ServiceClient(st.url, timeout=60).submit(
                    [job]
                )
        assert result.ok
        names = {s.name for s in TRACER.spans}
        assert {"client.submit", "service.job", "job.run"} <= names
        submit_span = next(
            s for s in TRACER.spans if s.name == "client.submit"
        )
        service_span = next(
            s for s in TRACER.spans if s.name == "service.job"
        )
        job_span = next(s for s in TRACER.spans if s.name == "job.run")
        # One trace; the server's span parents under the submitting
        # span; the worker ran in a different (forked) process.
        assert {s.trace_id for s in (submit_span, service_span, job_span)} \
            == {TRACER.trace_id}
        assert service_span.parent_id == submit_span.span_id
        assert job_span.pid != os.getpid()
        # No span arrived twice (server forwarded freight the client
        # must not re-absorb for an in-process server).
        ids = [s.span_id for s in TRACER.spans]
        assert len(ids) == len(set(ids))

    def test_http_propagation_from_subprocess_server(self, tmp_path):
        """One timeline across a real server process: client spans,
        the server's service.job span, and worker job.run spans all
        share the client's trace id after HTTP freight absorption."""
        port = free_port()
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            (os.path.dirname(os.path.dirname(__file__)) or ".") + "/src"
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", str(port), "--workers", "2", "--no-cache",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        url = f"http://127.0.0.1:{port}"
        try:
            wait_until_ready(url, timeout=120)
            enable_tracing()
            from repro.obs import span

            job = fast_job(tag="http")
            local = execute_job(job, use_cache=False)
            TRACER.clear()
            enable_tracing()
            client = ServiceClient(url, timeout=120)
            with span("client.submit"):
                (served,) = client.submit([job])
            assert served.ok and served.digest == local.digest
            foreign = [s for s in TRACER.spans if s.pid != os.getpid()]
            assert {"service.job", "job.run"} <= {s.name for s in foreign}
            assert {s.trace_id for s in foreign} == {TRACER.trace_id}
            # Requeue counter lives server-side, visible over HTTP.
            counters = client.server_metrics()["counters"]
            assert counters.get("repro.service.submissions") == 1
            client.shutdown(drain=True)
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)


class TestServeCli:
    def test_batch_submit_routes_through_service(self, capsys):
        from repro.cli import main

        with ServerThread(workers=2, use_cache=False) as st:
            code = main(
                [
                    "batch", "--workloads", "ghz", "--rules", "baseline",
                    "--qubits", "4", "--pipeline", "fast",
                    "--trials", "1", "--submit", st.url,
                ]
            )
        out = capsys.readouterr().out
        assert code == 0
        assert "via compile service" in out
        assert "ghz-4q-baseline" in out

    def test_serve_ping_reports_health(self, capsys):
        from repro.cli import main

        with ServerThread(workers=1, use_cache=False) as st:
            code = main(["serve", "--ping", st.url])
        assert code == 0
        assert '"status": "ok"' in capsys.readouterr().out

    def test_serve_ping_unreachable_fails(self, capsys):
        from repro.cli import main

        code = main(
            ["serve", "--ping", f"http://127.0.0.1:{free_port()}",
             "--timeout", "0.4"]
        )
        assert code == 1
        assert "not ready" in capsys.readouterr().err
