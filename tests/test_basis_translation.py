"""Tests for basis translation and placeholder merging."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import asap_schedule
from repro.circuits.gate import Gate
from repro.transpiler.basis import (
    merge_adjacent_1q_placeholders,
    translate_to_basis,
)


class TestTranslate:
    def test_cnot_template_structure(self, baseline_rules):
        circuit = QuantumCircuit(2).cx(0, 1)
        translated = translate_to_basis(circuit, baseline_rules)
        counts = translated.count_ops()
        assert counts["pulse2q"] == 2  # K=2 sqrt(iSWAP)
        assert counts["u1q"] == 6  # 3 layers x 2 qubits
        schedule = asap_schedule(translated)
        assert schedule.total_duration == pytest.approx(1.75)

    def test_parallel_cnot_cheaper(self, parallel_rules):
        circuit = QuantumCircuit(2).cx(0, 1)
        translated = translate_to_basis(circuit, parallel_rules)
        schedule = asap_schedule(translated)
        assert schedule.total_duration == pytest.approx(1.5)

    def test_swap_durations(self, baseline_rules, parallel_rules):
        circuit = QuantumCircuit(2).swap(0, 1)
        base = asap_schedule(translate_to_basis(circuit, baseline_rules))
        opt = asap_schedule(translate_to_basis(circuit, parallel_rules))
        assert base.total_duration == pytest.approx(2.5)
        assert opt.total_duration == pytest.approx(2.25)

    def test_single_qubit_gates_priced(self, baseline_rules):
        circuit = QuantumCircuit(1).h(0)
        translated = translate_to_basis(circuit, baseline_rules)
        assert translated[0].duration == pytest.approx(0.25)

    def test_identity_block_collapses_to_layer(self, baseline_rules):
        circuit = QuantumCircuit(2)
        circuit.append(Gate("block", (0, 1), matrix=np.eye(4)))
        translated = translate_to_basis(circuit, baseline_rules)
        counts = translated.count_ops()
        assert counts.get("pulse2q", 0) == 0
        assert counts["u1q"] == 2

    def test_rejects_three_qubit_gates(self, baseline_rules):
        circuit = QuantumCircuit(3)
        circuit.append(Gate("big", (0, 1, 2), matrix=np.eye(8)))
        with pytest.raises(ValueError):
            translate_to_basis(circuit, baseline_rules)


class TestPlaceholderMerge:
    def test_adjacent_layers_merge(self):
        circuit = QuantumCircuit(2)
        circuit.append(Gate("u1q", (0,), duration=0.25))
        circuit.append(Gate("u1q", (0,), duration=0.25))
        circuit.append(Gate("pulse2q", (0, 1), duration=0.5))
        merged = merge_adjacent_1q_placeholders(circuit)
        assert merged.count_ops()["u1q"] == 1
        assert asap_schedule(merged).total_duration == pytest.approx(0.75)

    def test_merge_across_templates(self, baseline_rules):
        # Two consecutive CNOTs on the same pair share a merged 1Q layer
        # at the junction: 2 x 1.75 - 0.25 = 3.25.
        circuit = QuantumCircuit(2).cx(0, 1).cx(0, 1)
        translated = translate_to_basis(circuit, baseline_rules)
        merged = merge_adjacent_1q_placeholders(translated)
        assert asap_schedule(merged).total_duration == pytest.approx(3.25)

    def test_non_adjacent_layers_kept(self):
        circuit = QuantumCircuit(2)
        circuit.append(Gate("u1q", (0,), duration=0.25))
        circuit.append(Gate("pulse2q", (0, 1), duration=0.5))
        circuit.append(Gate("u1q", (0,), duration=0.25))
        merged = merge_adjacent_1q_placeholders(circuit)
        assert merged.count_ops()["u1q"] == 2
