"""Tests for the batch compilation service (jobs, cache, engine)."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.circuits.workloads import get_workload
from repro.core.decomposition_rules import TemplateSpec
from repro.targets import get_target
from repro.service import (
    BatchEngine,
    CompileJob,
    CompileResult,
    DecompositionCache,
    ResultStore,
    SUITES,
    circuit_digest,
    suite_jobs,
)
from repro.transpiler.basis import translate_to_basis
from repro.transpiler.coupling import square_lattice
from repro.transpiler.pipeline import transpile


class TestJobRoundTrip:
    def test_json_round_trip(self):
        job = CompileJob(
            workload="qft",
            num_qubits=8,
            rules="baseline",
            trials=3,
            seed=42,
            target="square_2x4",
            tag="unit",
        )
        assert CompileJob.from_json(job.to_json()) == job

    def test_job_embeds_compiler_config(self):
        from repro.transpiler.compiler import CompilerConfig

        job = CompileJob(
            workload="qft", num_qubits=8, rules="baseline", trials=3,
            target="square_2x4",
        )
        assert isinstance(job.config, CompilerConfig)
        assert job.config.pipeline == "noise_aware"  # job default
        # Convenience kwargs and an explicit config are the same job.
        assert job == CompileJob(
            workload="qft",
            num_qubits=8,
            config=CompilerConfig(
                pipeline="noise_aware", rules="baseline",
                target="square_2x4", trials=3,
            ),
        )
        # Serialized form nests the config.
        payload = job.to_dict()
        assert payload["config"]["target"] == "square_2x4"
        assert payload["config"]["rules"] == "baseline"
        assert "rules" not in payload  # flat keys no longer emitted

    def test_flat_pre_config_payload_loads(self):
        """Jobs archived before the pass-manager redesign still parse."""
        flat = {
            "workload": "qft",
            "num_qubits": 8,
            "rules": "baseline",
            "trials": 3,
            "seed": 42,
            "target": "square_2x4",
            "scheduler": "alap",
            "selection": "fidelity",
            "workload_seed": 11,
            "tag": "unit",
        }
        job = CompileJob.from_dict(flat)
        assert job.rules == "baseline"
        assert job.target == "square_2x4"
        assert job.scheduler == "alap"
        assert CompileJob.from_json(job.to_json()) == job

    def test_pipeline_kwarg_selects_pipeline(self):
        job = CompileJob(
            workload="ghz", num_qubits=4, target="square_2x2",
            pipeline="fast",
        )
        assert job.pipeline == "fast"
        assert job.trials == 1  # fast pipeline default
        assert job.scheduler == "asap"
        assert job.selection == "duration"

    def test_unknown_pipeline_rejected(self):
        with pytest.raises(ValueError, match="unknown pipeline"):
            CompileJob(workload="ghz", pipeline="warp_speed")

    def test_updated_overrides_config_and_job_fields(self):
        job = CompileJob(workload="ghz", num_qubits=8, target="square_2x4")
        twiddled = job.updated(
            trials=2, seed=123, pipeline="paper", tag="swept"
        )
        assert twiddled.trials == 2
        assert twiddled.seed == 123
        assert twiddled.pipeline == "paper"
        assert twiddled.tag == "swept"
        assert twiddled.workload == job.workload
        # None overrides are ignored (suite-override semantics).
        assert job.updated(trials=None, target=None) == job

    def test_result_json_round_trip(self):
        job = CompileJob(workload="ghz", num_qubits=4, target="square_2x2")
        result = CompileResult(
            job=job,
            duration=12.5,
            pulse_count=7,
            swap_count=1,
            total_pulse_time=5.25,
            estimated_fidelity=0.97,
            trial_index=2,
            digest="abc123",
            gate_counts={"pulse2q": 7, "u1q": 11},
            wall_time=0.5,
            attempts=2,
        )
        parsed = CompileResult.from_json(result.to_json())
        assert parsed == result
        assert parsed.ok

    def test_failure_result(self):
        job = CompileJob(workload="ghz", num_qubits=4, target="square_2x2")
        failed = CompileResult.failure(job, error="boom", wall_time=0.1)
        assert not failed.ok
        assert math.isnan(failed.duration)
        assert math.isnan(failed.estimated_fidelity)
        parsed = CompileResult.from_json(failed.to_json())
        assert parsed.error == "boom"

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown rules"):
            CompileJob(workload="ghz", rules="nope")
        with pytest.raises(ValueError, match="unknown scheduler"):
            CompileJob(workload="ghz", scheduler="greedy")
        with pytest.raises(ValueError, match="unknown selection"):
            CompileJob(workload="ghz", selection="random")
        with pytest.raises(ValueError, match="trials"):
            CompileJob(workload="ghz", trials=0)
        with pytest.raises(ValueError, match="too small"):
            CompileJob(workload="ghz", num_qubits=16, target="square_2x2")
        with pytest.raises(ValueError, match="unknown target"):
            CompileJob(workload="ghz", target="not_a_device")

    def test_label(self):
        job = CompileJob(workload="qft", num_qubits=8, target="square_2x4")
        assert job.label == "qft-8q-parallel"


class TestCouplingShimRemoved:
    """The coupling=(rows, cols) shim is gone (removal window >= PR 4)."""

    def test_constructor_rejects_coupling(self):
        with pytest.raises(TypeError, match="coupling"):
            CompileJob(workload="ghz", num_qubits=8, coupling=(2, 4))

    def test_legacy_payload_raises_with_migration_hint(self):
        legacy = {
            "workload": "qft",
            "num_qubits": 8,
            "rules": "baseline",
            "trials": 3,
            "seed": 42,
            "coupling": [2, 4],
            "workload_seed": 11,
            "tag": "unit",
        }
        with pytest.raises(ValueError, match="square_2x4"):
            CompileJob.from_dict(legacy)
        # The replacement payload loads and resolves the same lattice.
        legacy.pop("coupling")
        legacy["target"] = "square_2x4"
        job = CompileJob.from_dict(legacy)
        assert job.target == "square_2x4"
        assert get_target(job.target).num_qubits == 8

    def test_malformed_coupling_payload_still_names_replacement(self):
        with pytest.raises(ValueError, match="square_RxC"):
            CompileJob.from_dict(
                {"workload": "ghz", "coupling": "not-a-pair"}
            )

    def test_pre_target_result_payload_raises(self):
        legacy = {
            "job": {
                "workload": "ghz",
                "num_qubits": 4,
                "rules": "parallel",
                "trials": 1,
                "seed": 7,
                "coupling": [2, 2],
                "workload_seed": 11,
                "tag": "",
            },
            "duration": 10.0,
            "pulse_count": 3,
            "swap_count": 0,
            "total_pulse_time": 5.0,
            "trial_index": 0,
            "digest": "d",
            "gate_counts": {},
            "wall_time": 0.1,
            "attempts": 1,
            "error": None,
        }
        with pytest.raises(ValueError, match="coupling"):
            CompileResult.from_dict(legacy)


class TestDecompositionCache:
    COORDS = np.array([np.pi / 2, 0.0, 0.0])
    SPEC = TemplateSpec((0.5, 0.5), 3, "test template")

    def test_miss_then_hit(self, tmp_path):
        cache = DecompositionCache(path=tmp_path / "t.sqlite")
        assert cache.get("rules", self.COORDS) is None
        cache.put("rules", self.COORDS, self.SPEC)
        assert cache.get("rules", self.COORDS) == self.SPEC
        assert cache.stats.misses == 1
        assert cache.stats.memory_hits == 1

    def test_lookup_computes_once(self, tmp_path):
        cache = DecompositionCache(path=tmp_path / "t.sqlite")
        calls = []

        def factory():
            calls.append(1)
            return self.SPEC

        assert cache.lookup("rules", self.COORDS, factory) == self.SPEC
        assert cache.lookup("rules", self.COORDS, factory) == self.SPEC
        assert len(calls) == 1

    def test_key_quantization(self):
        cache = DecompositionCache(persistent=False)
        wiggled = self.COORDS + 1e-12
        assert cache.key_for("r", self.COORDS) == cache.key_for("r", wiggled)
        other = self.COORDS + 1e-6
        assert cache.key_for("r", self.COORDS) != cache.key_for("r", other)
        # Rules with the same coordinates do not share entries.
        assert cache.key_for("a", self.COORDS) != cache.key_for(
            "b", self.COORDS
        )

    def test_persistence_across_instances(self, tmp_path):
        path = tmp_path / "t.sqlite"
        first = DecompositionCache(path=path)
        first.put("rules", self.COORDS, self.SPEC)
        first.close()
        second = DecompositionCache(path=path)
        assert second.get("rules", self.COORDS) == self.SPEC
        assert second.stats.disk_hits == 1
        assert second.disk_entries() == 1

    def test_lru_eviction_falls_back_to_disk(self, tmp_path):
        cache = DecompositionCache(path=tmp_path / "t.sqlite", memory_size=2)
        specs = {}
        for i in range(3):
            coords = np.array([0.1 * (i + 1), 0.0, 0.0])
            spec = TemplateSpec((0.25 * (i + 1),), 2, f"spec {i}")
            cache.put("rules", coords, spec)
            specs[i] = (coords, spec)
        assert len(cache) == 2  # entry 0 evicted from the memory tier
        coords0, spec0 = specs[0]
        assert cache.get("rules", coords0) == spec0
        assert cache.stats.disk_hits == 1

    def test_lru_eviction_memory_only_misses(self):
        cache = DecompositionCache(persistent=False, memory_size=2)
        coords = [np.array([0.1 * (i + 1), 0.0, 0.0]) for i in range(3)]
        for i, c in enumerate(coords):
            cache.put("rules", c, TemplateSpec((0.25,), 2, f"spec {i}"))
        assert cache.get("rules", coords[0]) is None
        assert cache.get("rules", coords[2]) is not None

    def test_lru_recency_order(self):
        cache = DecompositionCache(persistent=False, memory_size=2)
        a, b, c = (np.array([0.1 * (i + 1), 0.0, 0.0]) for i in range(3))
        cache.put("rules", a, self.SPEC)
        cache.put("rules", b, self.SPEC)
        assert cache.get("rules", a) is not None  # a becomes most recent
        cache.put("rules", c, self.SPEC)  # evicts b, not a
        assert cache.get("rules", a) is not None
        assert cache.get("rules", b) is None

    def test_env_override_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DECOMP_CACHE_DIR", str(tmp_path / "d"))
        cache = DecompositionCache()
        assert cache.path is not None
        assert cache.path.parent == tmp_path / "d"

    def test_clear(self, tmp_path):
        cache = DecompositionCache(path=tmp_path / "t.sqlite")
        cache.put("rules", self.COORDS, self.SPEC)
        cache.clear(disk=True)
        assert len(cache) == 0
        assert cache.disk_entries() == 0


class TestCachedTranslation:
    def test_translation_identical_with_cache(self, tmp_path, parallel_rules):
        circuit = get_workload("qft", 6, seed=11)
        cache = DecompositionCache(path=tmp_path / "t.sqlite")
        plain = transpile(
            circuit, square_lattice(2, 3), parallel_rules, trials=2, seed=3
        )
        cached = transpile(
            circuit,
            square_lattice(2, 3),
            parallel_rules,
            trials=2,
            seed=3,
            cache=cache,
        )
        assert circuit_digest(plain.circuit) == circuit_digest(cached.circuit)
        assert cache.stats.hits > 0  # repeated blocks actually hit

    def test_cache_token_separates_rule_parameters(self):
        from repro.core.decomposition_rules import (
            BaselineSqrtISwapRules,
            ParallelSqrtISwapRules,
        )

        # Same class, different parameters -> different cache keyspace;
        # otherwise a shared store would serve wrongly-quantized pulses.
        assert (
            ParallelSqrtISwapRules().cache_token
            != ParallelSqrtISwapRules(pulse_quantum=0.5).cache_token
        )
        assert (
            BaselineSqrtISwapRules().cache_token
            != BaselineSqrtISwapRules(one_q_duration=0.5).cache_token
        )

    def test_translate_accepts_cache(self, parallel_rules):
        circuit = get_workload("ghz", 4, seed=11)
        cache = DecompositionCache(persistent=False)
        out = translate_to_basis(circuit, parallel_rules, cache=cache)
        again = translate_to_basis(circuit, parallel_rules, cache=cache)
        assert circuit_digest(out) == circuit_digest(again)
        assert cache.stats.puts > 0


class TestSuites:
    def test_known_suites(self):
        assert set(SUITES) >= {"smoke", "table4", "table5", "table7"}
        assert len(SUITES["table4"]) == 9
        assert all(job.rules == "parallel" for job in SUITES["table4"])
        assert len(SUITES["table7"]) == 18

    def test_suite_overrides(self):
        jobs = suite_jobs("table4", trials=2, seed=123)
        assert all(job.trials == 2 and job.seed == 123 for job in jobs)

    def test_unknown_suite(self):
        with pytest.raises(KeyError, match="unknown suite"):
            suite_jobs("nope")


class TestBatchEngine:
    def _sequential_digest(self, job: CompileJob) -> str:
        """Mirror execute_job's target-aware transpile in-process."""
        circuit = get_workload(
            job.workload, job.num_qubits, seed=job.workload_seed
        )
        target = get_target(job.target)
        result = transpile(
            circuit,
            target.coupling_map,
            target.build_rules(job.rules),
            trials=job.trials,
            seed=job.seed,
            fidelity_model=target.fidelity_model(),
            scheduler=job.scheduler,
            duration_of=target.gate_duration,
        )
        return circuit_digest(result.circuit)

    def test_two_workers_match_sequential(self, tmp_path, parallel_rules):
        jobs = [
            CompileJob(
                workload=name,
                num_qubits=8,
                rules="parallel",
                trials=2,
                seed=7,
                target="square_2x4",
            )
            for name in ("ghz", "qft")
        ]
        engine = BatchEngine(
            workers=2,
            use_cache=True,
            cache_path=tmp_path / "t.sqlite",
            warm_coverage=False,  # conftest fixture already warmed them
        )
        results = engine.run(jobs)
        assert [r.job for r in results] == jobs
        for job, result in zip(jobs, results):
            assert result.ok, result.error
            assert result.digest == self._sequential_digest(job)
            assert result.pulse_count > 0
            assert 0.0 < result.estimated_fidelity <= 1.0
            assert result.attempts == 1

    def test_serial_engine_without_cache(self, parallel_rules):
        job = CompileJob(
            workload="ghz",
            num_qubits=4,
            rules="parallel",
            trials=1,
            seed=7,
            target="square_2x2",
        )
        (result,) = BatchEngine(workers=1, use_cache=False).run([job])
        assert result.ok
        assert result.digest == self._sequential_digest(job)

    def test_duration_selection_reproduces_paper_pipeline(
        self, parallel_rules
    ):
        """selection='duration' on the unit-scale default target is
        byte-identical to the pre-target transpile() call."""
        job = CompileJob(
            workload="ghz",
            num_qubits=6,
            rules="parallel",
            trials=2,
            seed=7,
            target="square_2x3",
            selection="duration",
            scheduler="asap",
        )
        (result,) = BatchEngine(workers=1, use_cache=False).run([job])
        assert result.ok, result.error
        circuit = get_workload(
            job.workload, job.num_qubits, seed=job.workload_seed
        )
        legacy = transpile(
            circuit,
            square_lattice(2, 3),
            parallel_rules,
            trials=job.trials,
            seed=job.seed,
        )
        assert result.digest == circuit_digest(legacy.circuit)
        assert result.duration == pytest.approx(legacy.duration)

    def test_engine_on_scaled_target_variant(self, parallel_rules, tmp_path):
        """Fast/slow variants flow through the engine end-to-end and
        land in their own decomposition-cache keyspace."""
        base_job = CompileJob(
            workload="ghz",
            num_qubits=4,
            rules="parallel",
            trials=1,
            seed=7,
            target="square_2x2",
        )
        fast_job = CompileJob(
            workload="ghz",
            num_qubits=4,
            rules="parallel",
            trials=1,
            seed=7,
            target="square_2x2_fast",
        )
        engine = BatchEngine(
            workers=1, use_cache=True, cache_path=tmp_path / "t.sqlite"
        )
        base, fast = engine.run([base_job, fast_job])
        assert base.ok and fast.ok
        assert fast.duration < base.duration
        assert fast.estimated_fidelity > base.estimated_fidelity
        cache = DecompositionCache(path=tmp_path / "t.sqlite")
        fast_token = get_target("square_2x2_fast").build_rules(
            "parallel"
        ).cache_token
        base_token = get_target("square_2x2").build_rules(
            "parallel"
        ).cache_token
        assert cache.token_entries(fast_token) > 0
        assert cache.token_entries(base_token) > 0

    def test_engine_collects_pass_profile(self, parallel_rules):
        from repro.transpiler.passes import PassProfile

        job = CompileJob(
            workload="ghz",
            num_qubits=4,
            rules="parallel",
            trials=2,
            seed=7,
            target="square_2x2",
        )
        plain, profiled = (
            BatchEngine(workers=1, use_cache=False, profile=flag).run([job])[0]
            for flag in (False, True)
        )
        assert plain.pass_profile is None
        assert profiled.pass_profile is not None
        # Profiling must not perturb the compilation itself.
        assert profiled.digest == plain.digest
        profile = PassProfile.from_dict(profiled.pass_profile)
        assert {"Route", "TranslateToBasis", "Schedule[alap]"} <= {
            record.pass_name for record in profile.records
        }
        # The result (and its profile) still round-trips through JSON.
        parsed = CompileResult.from_json(profiled.to_json())
        assert parsed.pass_profile == profiled.pass_profile
        store = ResultStore([profiled])
        assert "TranslateToBasis" in store.format_pass_profile()

    def test_engine_runs_fast_pipeline(self, parallel_rules):
        job = CompileJob(
            workload="ghz",
            num_qubits=4,
            rules="parallel",
            seed=7,
            target="square_2x2",
            pipeline="fast",
        )
        (result,) = BatchEngine(workers=1, use_cache=False).run([job])
        assert result.ok, result.error
        assert result.trial_index == 0

    def test_failure_is_reported_not_raised(self):
        job = CompileJob(
            workload="no_such_workload",
            num_qubits=4,
            rules="parallel",
            trials=1,
            target="square_2x2",
        )
        progress_calls = []
        engine = BatchEngine(
            workers=1,
            use_cache=False,
            retries=1,
            progress=lambda done, total, res: progress_calls.append(
                (done, total, res.ok)
            ),
        )
        (result,) = engine.run([job])
        assert not result.ok
        assert "no_such_workload" in result.error
        assert result.attempts == 2  # first try + one retry
        assert progress_calls == [(1, 1, False)]

    def test_empty_job_list(self):
        assert BatchEngine(workers=1).run([]) == []


class TestResultStore:
    def _result(self, workload, rules, duration, error=None):
        job = CompileJob(
            workload=workload,
            num_qubits=4,
            rules=rules,
            trials=1,
            target="square_2x2",
        )
        if error is not None:
            return CompileResult.failure(job, error=error)
        return CompileResult(
            job=job,
            duration=duration,
            pulse_count=3,
            swap_count=0,
            total_pulse_time=duration / 2,
            estimated_fidelity=0.9,
            trial_index=0,
            digest="d",
            wall_time=0.1,
        )

    def test_summary_and_best(self):
        store = ResultStore(
            [
                self._result("ghz", "parallel", 10.0),
                self._result("ghz", "parallel", 8.0),
                self._result("ghz", "baseline", 12.0),
                self._result("qft", "parallel", 0.0, error="boom"),
            ]
        )
        assert len(store) == 4
        assert len(store.failures()) == 1
        best = store.best("ghz", "parallel")
        assert best is not None and best.duration == 8.0
        summary = store.summary()
        assert summary["ghz-4q-parallel"]["jobs"] == 2
        assert summary["ghz-4q-parallel"]["best_duration"] == 8.0
        assert summary["qft-4q-parallel"]["errors"] == 1
        assert store.best("qft", "parallel") is None

    def test_format_table_and_json(self):
        store = ResultStore([self._result("ghz", "parallel", 10.0)])
        table = store.format_table()
        assert "ghz-4q-parallel" in table
        payload = json.loads(json.dumps(store.to_dict()))
        assert payload["summary"]["ghz-4q-parallel"]["jobs"] == 1


class TestResultStorePersistence:
    """Sqlite-backed ResultStore: round-trip, merge, conflict refusal."""

    def _result(self, tag: str, digest: str, error=None) -> CompileResult:
        job = CompileJob(
            workload="ghz",
            num_qubits=4,
            rules="baseline",
            trials=1,
            target="square_2x2",
            tag=tag,
        )
        if error is not None:
            return CompileResult.failure(job, error=error)
        return CompileResult(
            job=job,
            duration=10.0,
            pulse_count=3,
            swap_count=0,
            total_pulse_time=5.0,
            estimated_fidelity=0.9,
            trial_index=0,
            digest=digest,
            wall_time=0.1,
        )

    def test_round_trip_persists_successes_only(self, tmp_path):
        path = tmp_path / "results.sqlite"
        store = ResultStore(path=path)
        good = self._result("a", "digest-a")
        store.add(good)
        store.add(self._result("b", "", error="boom"))
        store.close()
        reopened = ResultStore(path=path)
        assert len(reopened) == 1
        (loaded,) = reopened.results
        assert loaded == good
        assert reopened.get(good.job.identity_digest()) == good
        # The failure was memory-only: a transient crash must never
        # permanently shadow a job's real result.
        assert not reopened.failures()
        reopened.close()

    def test_merge_folds_fresh_and_skips_identical(self, tmp_path):
        ours = ResultStore(path=tmp_path / "ours.sqlite")
        theirs = ResultStore(path=tmp_path / "theirs.sqlite")
        shared = self._result("shared", "digest-s")
        ours.add(shared)
        ours.add(self._result("mine", "digest-m"))
        theirs.add(shared)
        theirs.add(self._result("yours", "digest-y"))
        theirs.close()
        absorbed = ours.merge(tmp_path / "theirs.sqlite")
        assert absorbed == 1
        assert len(ours.ok()) == 3
        assert "digest-y" in {r.digest for r in ours.ok()}
        # Idempotent: merging the same shard again absorbs nothing.
        assert ours.merge(tmp_path / "theirs.sqlite") == 0
        ours.close()

    def test_merge_conflict_refuses_and_leaves_store_untouched(
        self, tmp_path
    ):
        from repro.service import ResultMergeError

        ours = ResultStore(path=tmp_path / "ours.sqlite")
        theirs = ResultStore(path=tmp_path / "theirs.sqlite")
        ours.add(self._result("clash", "digest-ours"))
        theirs.add(self._result("clash", "digest-theirs"))
        theirs.add(self._result("fresh", "digest-fresh"))
        theirs.close()
        with pytest.raises(ResultMergeError, match="refusing to merge"):
            ours.merge(tmp_path / "theirs.sqlite")
        try:
            ours.merge(tmp_path / "theirs.sqlite")
        except ResultMergeError as exc:
            (conflict,) = exc.conflicts
            key, mine, other = conflict
            assert (mine, other) == ("digest-ours", "digest-theirs")
        # Nothing — not even the conflict-free row — was absorbed.
        assert len(ours.ok()) == 1
        assert "digest-fresh" not in {r.digest for r in ours.ok()}
        ours.close()

    def test_schema_mismatch_refuses_loudly(self, tmp_path):
        from repro.service import ResultStoreError

        path = tmp_path / "results.sqlite"
        store = ResultStore(path=path)
        store._connection().execute(
            "UPDATE meta SET value = '99' WHERE key = 'schema'"
        )
        store._connection().commit()
        store.close()
        with pytest.raises(ResultStoreError, match="schema v99"):
            ResultStore(path=path)
