"""Tests for decomposition rules, including Table-I construction proofs."""

import numpy as np
import pytest

from repro.core.decomposition_rules import (
    BASIS_DRIVE_ANGLES,
    NAMED_GATE_COUNTS,
    BaselineSqrtISwapRules,
    ParallelSqrtISwapRules,
    TemplateSpec,
)
from repro.core.parallel_drive import ParallelDriveTemplate, synthesize
from repro.quantum.gates import CNOT, SWAP, canonical_gate
from repro.quantum.linalg import allclose_up_to_global_phase
from repro.quantum.makhlin import locally_equivalent
from repro.quantum.weyl import named_gate_coordinates


class TestTemplateSpec:
    def test_duration_formula(self):
        spec = TemplateSpec(pulses=(0.5, 0.5), layer_count=3)
        assert spec.k == 2
        assert spec.duration(0.25) == pytest.approx(1.75)

    def test_validation(self):
        with pytest.raises(ValueError):
            TemplateSpec(pulses=(0.0,), layer_count=1)
        with pytest.raises(ValueError):
            TemplateSpec(pulses=(0.5,), layer_count=-1)


class TestConstructionProofs:
    """Numerical proofs of the Table-I named gate counts."""

    def _standard_template(self, basis: str, k: int) -> ParallelDriveTemplate:
        theta_c, theta_g = BASIS_DRIVE_ANGLES[basis]
        duration = (theta_c + theta_g) / (np.pi / 2)
        return ParallelDriveTemplate(
            gc=theta_c / duration,
            gg=theta_g / duration,
            pulse_duration=duration,
            steps_per_pulse=1,
            repetitions=k,
            parallel=False,
        )

    @pytest.mark.parametrize(
        "basis", ["iSWAP", "sqrt_iSWAP", "CNOT", "B", "sqrt_B"]
    )
    def test_cnot_reachable_at_tabulated_k(self, basis):
        k = NAMED_GATE_COUNTS[basis]["CNOT"]
        template = self._standard_template(basis, k)
        result = synthesize(
            template, named_gate_coordinates("CNOT"), seed=6, restarts=6,
            max_iterations=3000,
        )
        assert result.converged, f"{basis}: CNOT not reached at K={k}"

    @pytest.mark.parametrize("basis", ["iSWAP", "sqrt_iSWAP", "B"])
    def test_swap_reachable_at_tabulated_k(self, basis):
        k = NAMED_GATE_COUNTS[basis]["SWAP"]
        template = self._standard_template(basis, k)
        result = synthesize(
            template, named_gate_coordinates("SWAP"), seed=6, restarts=8,
            max_iterations=5000,
        )
        assert result.converged, f"{basis}: SWAP not reached at K={k}"

    @pytest.mark.parametrize("basis", ["iSWAP", "sqrt_iSWAP", "CNOT", "B"])
    def test_cnot_unreachable_below_tabulated_k(self, basis):
        k = NAMED_GATE_COUNTS[basis]["CNOT"] - 1
        if k == 0:
            pytest.skip("K=1 is the minimum template")
        template = self._standard_template(basis, k)
        result = synthesize(
            template, named_gate_coordinates("CNOT"), seed=6, restarts=3,
            max_iterations=1500,
        )
        assert not result.converged

    def test_fractional_copy_identities(self):
        """sqrt-basis pulses compose exactly into the full gate.

        This provides the proof chain for the large-K entries (e.g.
        K[SWAP](sqrt_CNOT) = 6 = 3 CNOTs x 2 sqrt-pulses each).
        """
        for basis in ("iSWAP", "CNOT", "B"):
            theta_c, theta_g = BASIS_DRIVE_ANGLES[f"sqrt_{basis}"]
            half = canonical_gate(theta_c + theta_g, theta_c - theta_g, 0)
            full_coords = named_gate_coordinates(basis)
            assert locally_equivalent(
                half @ half, canonical_gate(*full_coords)
            )

    def test_swap_from_three_cnots_identity(self):
        from repro.quantum.gates import H

        cnot_reversed = np.kron(H, H) @ CNOT @ np.kron(H, H)
        assert allclose_up_to_global_phase(
            CNOT @ cnot_reversed @ CNOT, SWAP, atol=1e-9
        )


class TestBaselineRules:
    def test_identity_is_free_pulse(self, baseline_rules):
        spec = baseline_rules.template_for(np.zeros(3))
        assert spec.k == 0
        assert spec.duration(0.25) == pytest.approx(0.25)

    def test_basis_gate_single_pulse(self, baseline_rules):
        spec = baseline_rules.template_for(
            named_gate_coordinates("sqrt_iSWAP")
        )
        assert spec.k == 1
        assert spec.duration(0.25) == pytest.approx(1.0)

    def test_cnot_paper_duration(self, baseline_rules):
        # Table III: D[CNOT] = 1.75 for baseline sqrt(iSWAP).
        duration = baseline_rules.duration(named_gate_coordinates("CNOT"))
        assert duration == pytest.approx(1.75)

    def test_swap_paper_duration(self, baseline_rules):
        duration = baseline_rules.duration(named_gate_coordinates("SWAP"))
        assert duration == pytest.approx(2.5)

    def test_generic_target_k_bounded(self, baseline_rules, rng):
        from repro.core.coverage import haar_coordinate_samples

        for coords in haar_coordinate_samples(50, seed=31):
            spec = baseline_rules.template_for(coords)
            assert 2 <= spec.k <= 3
            assert spec.layer_count == spec.k + 1


class TestParallelRules:
    def test_cnot_paper_duration(self, parallel_rules):
        # Table V: D[CNOT] = 1.5 with interior layers absorbed.
        duration = parallel_rules.duration(named_gate_coordinates("CNOT"))
        assert duration == pytest.approx(1.5)

    def test_swap_joint_rule(self, parallel_rules):
        # Fig. 11: iSWAP + sqrt(iSWAP), 2.25 total.
        spec = parallel_rules.template_for(named_gate_coordinates("SWAP"))
        assert spec.pulses == (1.0, 0.5)
        assert spec.duration(0.25) == pytest.approx(2.25)

    def test_iswap_fractional_copies(self, parallel_rules):
        spec = parallel_rules.template_for(named_gate_coordinates("iSWAP"))
        assert spec.total_pulse_duration == pytest.approx(1.0)
        assert spec.duration(0.25) == pytest.approx(1.5)

    def test_small_cphase_fractional_pulse(self, parallel_rules):
        # A QFT-style small controlled phase: CAN(pi/16, 0, 0) costs one
        # pulse quantum plus two layers — far below the baseline 1.75.
        coords = np.array([np.pi / 16, 0.0, 0.0])
        duration = parallel_rules.duration(coords)
        assert duration == pytest.approx(0.25 + 0.5)

    def test_quantization_rounds_up(self, parallel_rules):
        coords = np.array([0.3 * np.pi / 2, 0.0, 0.0])  # 0.3 pulse
        spec = parallel_rules.template_for(coords)
        assert spec.total_pulse_duration == pytest.approx(0.5)

    def test_generic_target_cheaper_than_baseline(
        self, baseline_rules, parallel_rules
    ):
        from repro.core.coverage import haar_coordinate_samples

        haar = haar_coordinate_samples(100, seed=37)
        baseline_total = sum(baseline_rules.duration(c) for c in haar)
        parallel_total = sum(parallel_rules.duration(c) for c in haar)
        assert parallel_total < baseline_total

    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelSqrtISwapRules(pulse_quantum=0.0)
        with pytest.raises(ValueError):
            BaselineSqrtISwapRules(one_q_duration=-0.1)
