"""Tests for parallel-drive templates and synthesis (paper Sec. III)."""

import numpy as np
import pytest

from repro.core.parallel_drive import (
    ParallelDriveTemplate,
    sample_template_coordinates,
    synthesize,
)
from repro.quantum.linalg import allclose_up_to_global_phase, is_unitary
from repro.quantum.weyl import named_gate_coordinates
from repro.quantum.gates import ISWAP, SQRT_ISWAP


class TestTemplate:
    def test_parameter_counting(self):
        template = ParallelDriveTemplate(
            gc=np.pi / 2, gg=0.0, pulse_duration=1.0, steps_per_pulse=4,
            repetitions=2, parallel=True,
        )
        # Per pulse: 2 phases + 2 * 4 amplitudes = 10; plus 6 interior.
        assert template.num_parameters == 2 * 10 + 6

    def test_standard_template_k1_has_no_parameters(self):
        template = ParallelDriveTemplate(
            gc=np.pi / 2, gg=0.0, pulse_duration=1.0, repetitions=1,
            parallel=False,
        )
        assert template.num_parameters == 0

    def test_undriven_template_is_basis_gate(self):
        from repro.quantum.gates import canonical_gate
        from repro.quantum.makhlin import locally_equivalent

        template = ParallelDriveTemplate(
            gc=np.pi / 2, gg=0.0, pulse_duration=1.0, repetitions=1,
            parallel=False,
        )
        unitary = template.unitary(np.zeros(0))
        assert allclose_up_to_global_phase(
            unitary, canonical_gate(np.pi / 2, np.pi / 2, 0), atol=1e-9
        )
        assert locally_equivalent(unitary, ISWAP)

    def test_half_pulse_is_sqrt_iswap_class(self):
        from repro.quantum.makhlin import locally_equivalent

        template = ParallelDriveTemplate(
            gc=np.pi / 2, gg=0.0, pulse_duration=0.5, steps_per_pulse=2,
            repetitions=1, parallel=False,
        )
        unitary = template.unitary(np.zeros(0))
        assert locally_equivalent(unitary, SQRT_ISWAP)

    def test_unitary_always_unitary(self, rng):
        template = ParallelDriveTemplate(
            gc=np.pi / 2, gg=0.3, pulse_duration=1.0, repetitions=2,
        )
        params = template.random_parameters(rng)
        assert is_unitary(template.unitary(params))

    def test_split_parameters_validation(self):
        template = ParallelDriveTemplate(
            gc=1.0, gg=0.0, pulse_duration=1.0, repetitions=1
        )
        with pytest.raises(ValueError):
            template.split_parameters(np.zeros(3))

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ParallelDriveTemplate(gc=1, gg=0, pulse_duration=0)
        with pytest.raises(ValueError):
            ParallelDriveTemplate(gc=1, gg=0, pulse_duration=1, repetitions=0)


class TestSampling:
    def test_sampled_coordinates_in_chamber(self):
        from repro.quantum.weyl import in_weyl_chamber

        template = ParallelDriveTemplate(
            gc=np.pi / 2, gg=0.0, pulse_duration=1.0, repetitions=1
        )
        coords = sample_template_coordinates(template, 200, seed=1)
        assert coords.shape == (200, 3)
        assert all(in_weyl_chamber(c, atol=1e-6) for c in coords)

    def test_standard_iswap_k1_is_single_point(self):
        template = ParallelDriveTemplate(
            gc=np.pi / 2, gg=0.0, pulse_duration=1.0, repetitions=1,
            parallel=False,
        )
        coords = sample_template_coordinates(template, 50, seed=2)
        assert np.allclose(coords, named_gate_coordinates("iSWAP"), atol=1e-7)

    def test_parallel_drive_leaves_base_plane(self):
        # The paper's key observation (Fig. 7): parallel 1Q drives lift
        # the K=1 reachable set off the chamber base plane.
        template = ParallelDriveTemplate(
            gc=np.pi / 2, gg=0.0, pulse_duration=1.0, repetitions=1,
            parallel=True,
        )
        coords = sample_template_coordinates(template, 500, seed=3)
        assert (coords[:, 2] > 0.1).mean() > 0.3

    def test_seeded_reproducibility(self):
        template = ParallelDriveTemplate(
            gc=np.pi / 2, gg=0.0, pulse_duration=1.0, repetitions=2
        )
        a = sample_template_coordinates(template, 64, seed=11)
        b = sample_template_coordinates(template, 64, seed=11)
        assert np.allclose(a, b)


class TestSynthesis:
    def test_cnot_from_parallel_iswap(self):
        # Paper Fig. 8 / Fig. 10: one parallel-driven iSWAP pulse reaches
        # the CNOT class.
        template = ParallelDriveTemplate(
            gc=np.pi / 2, gg=0.0, pulse_duration=1.0, repetitions=1
        )
        result = synthesize(
            template, named_gate_coordinates("CNOT"), seed=1, restarts=4,
            max_iterations=2500,
        )
        assert result.converged
        assert np.allclose(
            result.coordinates, named_gate_coordinates("CNOT"), atol=1e-4
        )

    def test_paper_constant_drive_solution(self):
        # Fig. 10's printed solution: eps1 = 3, eps2 = 0 on all steps.
        from repro.quantum.makhlin import makhlin_from_coordinates
        from repro.quantum.makhlin import makhlin_invariants

        template = ParallelDriveTemplate(
            gc=np.pi / 2, gg=0.0, pulse_duration=1.0, repetitions=1
        )
        params = np.zeros(template.num_parameters)
        params[2:6] = 3.0  # eps1 track
        unitary = template.unitary(params)
        target = makhlin_from_coordinates(named_gate_coordinates("CNOT"))
        assert np.linalg.norm(makhlin_invariants(unitary) - target) < 5e-3

    def test_swap_needs_two_parallel_iswaps(self):
        template_k1 = ParallelDriveTemplate(
            gc=np.pi / 2, gg=0.0, pulse_duration=1.0, repetitions=1
        )
        blocked = synthesize(
            template_k1, named_gate_coordinates("SWAP"), seed=2, restarts=3,
            max_iterations=1200,
        )
        assert not blocked.converged  # quantum-resource floor

        template_k2 = ParallelDriveTemplate(
            gc=np.pi / 2, gg=0.0, pulse_duration=1.0, repetitions=2
        )
        reached = synthesize(
            template_k2, named_gate_coordinates("SWAP"), seed=2, restarts=4,
            max_iterations=3000,
        )
        assert reached.converged

    def test_unitary_target_accepted(self):
        from repro.quantum.gates import CNOT

        template = ParallelDriveTemplate(
            gc=np.pi / 2, gg=0.0, pulse_duration=1.0, repetitions=1
        )
        result = synthesize(
            template, CNOT, seed=4, restarts=3, max_iterations=2000
        )
        assert result.converged

    def test_invalid_target_shape(self):
        template = ParallelDriveTemplate(
            gc=1.0, gg=0.0, pulse_duration=1.0
        )
        with pytest.raises(ValueError):
            synthesize(template, np.zeros(5))

    def test_history_recorded(self):
        template = ParallelDriveTemplate(
            gc=np.pi / 2, gg=0.0, pulse_duration=1.0, repetitions=1
        )
        result = synthesize(
            template,
            named_gate_coordinates("CNOT"),
            seed=5,
            restarts=1,
            max_iterations=300,
            record_history=True,
        )
        assert len(result.loss_history) == len(result.coordinate_history)
        assert len(result.loss_history) > 100
