"""Tests for repro.quantum.linalg."""

import numpy as np
import pytest

from repro.quantum import gates
from repro.quantum.linalg import (
    allclose_up_to_global_phase,
    average_gate_fidelity,
    closest_unitary,
    commutes,
    dagger,
    global_phase_difference,
    is_hermitian,
    is_special_unitary,
    is_unitary,
    kron_factor_4x4,
    to_special_unitary,
    unitary_infidelity,
)
from repro.quantum.random import haar_unitary, random_su2


class TestPredicates:
    def test_unitary_accepts_cnot(self):
        assert is_unitary(gates.CNOT)

    def test_unitary_rejects_non_square(self):
        assert not is_unitary(np.ones((2, 3)))

    def test_unitary_rejects_scaled(self):
        assert not is_unitary(2 * np.eye(3))

    def test_hermitian_pauli(self):
        assert is_hermitian(gates.X)
        assert is_hermitian(np.kron(gates.Y, gates.Z))

    def test_hermitian_rejects_s_gate(self):
        assert not is_hermitian(gates.S)

    def test_special_unitary(self):
        assert is_special_unitary(gates.X @ gates.X)
        assert not is_special_unitary(gates.S)  # det = i

    def test_commutes(self):
        assert commutes(gates.Z, gates.S)
        assert not commutes(gates.X, gates.Z)


class TestPhaseHandling:
    def test_to_special_unitary_roundtrip(self, rng):
        u = haar_unitary(4, rng)
        special, phase = to_special_unitary(u)
        assert abs(np.linalg.det(special) - 1) < 1e-9
        assert np.allclose(phase * special, u)

    def test_global_phase_difference(self, rng):
        u = haar_unitary(3, rng)
        phase = np.exp(0.77j)
        recovered = global_phase_difference(phase * u, u)
        assert abs(recovered - phase) < 1e-9

    def test_allclose_up_to_global_phase(self, rng):
        u = haar_unitary(4, rng)
        assert allclose_up_to_global_phase(u, np.exp(1.2j) * u)
        assert not allclose_up_to_global_phase(u, haar_unitary(4, rng))

    def test_phase_insensitive_infidelity(self):
        assert unitary_infidelity(gates.CNOT, 1j * gates.CNOT) < 1e-12
        assert unitary_infidelity(gates.CNOT, gates.SWAP) > 0.1


class TestFidelity:
    def test_average_gate_fidelity_identity(self):
        assert average_gate_fidelity(gates.CNOT, gates.CNOT) == pytest.approx(1.0)

    def test_average_gate_fidelity_orthogonal(self):
        # X vs I on one qubit: |tr(X)| = 0 -> F = d/(d^2+d) = 1/3.
        assert average_gate_fidelity(gates.X, gates.I2) == pytest.approx(1 / 3)


class TestKronFactor:
    def test_recovers_factors(self, rng):
        a, b = random_su2(rng), random_su2(rng)
        phase, f1, f2 = kron_factor_4x4(np.exp(0.3j) * np.kron(a, b))
        assert np.allclose(phase * np.kron(f1, f2), np.exp(0.3j) * np.kron(a, b))
        assert abs(np.linalg.det(f1) - 1) < 1e-9
        assert abs(np.linalg.det(f2) - 1) < 1e-9

    def test_rejects_entangling_gate(self):
        with pytest.raises(ValueError):
            kron_factor_4x4(gates.CNOT)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            kron_factor_4x4(np.eye(2))


class TestClosestUnitary:
    def test_projects_to_unitary(self, rng):
        noisy = haar_unitary(4, rng) + 0.05 * rng.normal(size=(4, 4))
        projected = closest_unitary(noisy)
        assert is_unitary(projected)

    def test_identity_fixed_point(self):
        assert np.allclose(closest_unitary(np.eye(3)), np.eye(3))
