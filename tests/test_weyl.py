"""Tests for Weyl-chamber coordinates."""

import numpy as np
import pytest

from repro.quantum import gates
from repro.quantum.random import (
    haar_unitaries_batch,
    random_local_pair,
)
from repro.quantum.weyl import (
    WEYL_POINTS,
    batched_weyl_coordinates,
    canonicalize_coordinates,
    coordinates_distance,
    in_weyl_chamber,
    is_base_plane,
    is_left_half,
    mirror_coordinates,
    named_gate_coordinates,
    weyl_coordinates,
)

_NAMED_MATRICES = {
    "I": np.eye(4),
    "CNOT": gates.CNOT,
    "CZ": gates.CZ,
    "iSWAP": gates.ISWAP,
    "DCNOT": gates.DCNOT,
    "SWAP": gates.SWAP,
    "B": gates.B_GATE,
    "sqrt_iSWAP": gates.SQRT_ISWAP,
    "sqrt_CNOT": gates.SQRT_CNOT,
    "sqrt_B": gates.SQRT_B,
}


class TestNamedGates:
    @pytest.mark.parametrize("name", sorted(_NAMED_MATRICES))
    def test_named_coordinates(self, name):
        got = weyl_coordinates(_NAMED_MATRICES[name])
        assert np.allclose(got, named_gate_coordinates(name), atol=1e-7)

    def test_cz_equals_cnot_class(self):
        assert np.allclose(
            weyl_coordinates(gates.CZ), weyl_coordinates(gates.CNOT)
        )

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            named_gate_coordinates("nope")

    def test_all_named_points_in_chamber(self):
        for point in WEYL_POINTS.values():
            assert in_weyl_chamber(np.array(point))


class TestInvariance:
    def test_local_invariance(self, rng):
        coords = np.array([0.9, 0.5, 0.2])
        base = gates.canonical_gate(*coords)
        for _ in range(20):
            dressed = random_local_pair(rng) @ base @ random_local_pair(rng)
            assert np.allclose(weyl_coordinates(dressed), coords, atol=1e-6)

    def test_global_phase_invariance(self, rng):
        u = gates.canonical_gate(1.1, 0.4, 0.3)
        assert np.allclose(
            weyl_coordinates(np.exp(0.7j) * u), weyl_coordinates(u)
        )

    def test_right_half_preserved(self):
        coords = np.array([2.2, 0.5, 0.3])
        got = weyl_coordinates(gates.canonical_gate(*coords))
        assert np.allclose(got, coords, atol=1e-7)
        assert not is_left_half(got)

    def test_base_plane_mirror_identified(self):
        left = weyl_coordinates(gates.canonical_gate(np.pi / 4, 0, 0))
        right = weyl_coordinates(gates.canonical_gate(3 * np.pi / 4, 0, 0))
        assert np.allclose(left, right, atol=1e-7)


class TestCanonicalization:
    def test_idempotent(self, rng):
        for _ in range(50):
            raw = rng.uniform(-2 * np.pi, 2 * np.pi, 3)
            once = canonicalize_coordinates(raw)
            twice = canonicalize_coordinates(once)
            assert np.allclose(once, twice, atol=1e-9)
            assert in_weyl_chamber(once)

    def test_matches_matrix_route(self, rng):
        for _ in range(50):
            raw = rng.uniform(-np.pi, np.pi, 3)
            via_matrix = weyl_coordinates(gates.canonical_gate(*raw))
            via_fold = canonicalize_coordinates(raw)
            assert np.allclose(via_matrix, via_fold, atol=1e-6)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            canonicalize_coordinates(np.array([1.0, 2.0]))


class TestBatched:
    def test_matches_scalar(self):
        batch = haar_unitaries_batch(4, 100, seed=17)
        vectorized = batched_weyl_coordinates(batch)
        looped = np.array([weyl_coordinates(u) for u in batch])
        assert np.allclose(vectorized, looped, atol=1e-9)

    def test_all_in_chamber(self):
        batch = haar_unitaries_batch(4, 500, seed=18)
        for coords in batched_weyl_coordinates(batch):
            assert in_weyl_chamber(coords, atol=1e-6)

    def test_rejects_single_matrix(self):
        with pytest.raises(ValueError):
            batched_weyl_coordinates(np.eye(4))


class TestGeometryHelpers:
    def test_base_plane_predicate(self):
        assert is_base_plane(named_gate_coordinates("CNOT"))
        assert not is_base_plane(named_gate_coordinates("SWAP"))

    def test_mirror(self):
        mirrored = mirror_coordinates(np.array([0.5, 0.3, 0.1]))
        assert mirrored[0] == pytest.approx(np.pi - 0.5)

    def test_distance(self):
        a = named_gate_coordinates("I")
        b = named_gate_coordinates("SWAP")
        assert coordinates_distance(a, b) == pytest.approx(
            np.sqrt(3) * np.pi / 2
        )
