"""Tests for the synthetic SNAIL characterization (Fig. 3c substitute)."""

import numpy as np
import pytest

from repro.pulse.snail import CharacterizationSweep, SNAILModel, fit_boundary


class TestModel:
    def test_boundary_monotone_decreasing(self):
        model = SNAILModel()
        gc = np.linspace(0, model.conversion_max_mhz, 200)
        boundary = model.breakdown_boundary(gc)
        assert np.all(np.diff(boundary) <= 1e-9)

    def test_conversion_twice_as_strong_as_gain(self):
        # The paper's headline asymmetry: gc can be driven much harder.
        model = SNAILModel()
        assert model.conversion_max_mhz > 2 * model.gain_max_mhz

    def test_exceeds_speed_limit(self):
        model = SNAILModel()
        assert model.exceeds_speed_limit(model.conversion_max_mhz + 1, 0.0)
        assert not model.exceeds_speed_limit(1.0, 1.0)

    def test_probability_transitions_at_boundary(self):
        model = SNAILModel()
        gc = 20.0
        boundary = float(model.breakdown_boundary(gc))
        at = model.ground_state_probability(np.array(gc), np.array(boundary))
        assert at == pytest.approx(0.5, abs=1e-9)
        inside = model.ground_state_probability(np.array(gc), np.array(0.0))
        outside = model.ground_state_probability(
            np.array(gc), np.array(boundary + 10)
        )
        assert inside > 0.99
        assert outside < 0.01

    def test_breakdown_past_conversion_intercept(self):
        # Even with zero gain, over-driving conversion breaks the coupler
        # (the margin keeps decreasing past the intercept).
        model = SNAILModel()
        at_edge = model.ground_state_probability(
            np.array(model.conversion_max_mhz), np.array(0.0)
        )
        beyond = model.ground_state_probability(
            np.array(model.conversion_max_mhz + 15.0), np.array(0.0)
        )
        assert at_edge == pytest.approx(0.5, abs=1e-6)
        assert beyond < 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            SNAILModel(conversion_max_mhz=-1)
        with pytest.raises(ValueError):
            SNAILModel(transition_width_mhz=0)


class TestSweep:
    def test_sweep_shape_and_range(self):
        model = SNAILModel()
        sweep = model.characterization_sweep(n_gc=20, n_gg=15, shots=50, seed=1)
        assert sweep.ground_population.shape == (15, 20)
        assert np.all(sweep.ground_population >= 0)
        assert np.all(sweep.ground_population <= 1)

    def test_sweep_seed_reproducible(self):
        model = SNAILModel()
        a = model.characterization_sweep(n_gc=10, n_gg=10, shots=50, seed=3)
        b = model.characterization_sweep(n_gc=10, n_gg=10, shots=50, seed=3)
        assert np.allclose(a.ground_population, b.ground_population)

    def test_sweep_validation(self):
        model = SNAILModel()
        with pytest.raises(ValueError):
            model.characterization_sweep(n_gc=1)
        with pytest.raises(ValueError):
            model.characterization_sweep(shots=0)


class TestBoundaryFit:
    def test_fit_recovers_true_boundary(self):
        model = SNAILModel()
        sweep = model.characterization_sweep(seed=7)
        gc_fit, gg_fit = fit_boundary(sweep)
        truth = model.breakdown_boundary(gc_fit)
        # Shot noise + grid resolution: sub-MHz recovery expected.
        assert np.max(np.abs(gg_fit - truth)) < 1.0

    def test_fit_covers_both_intercepts(self):
        model = SNAILModel()
        gc_fit, gg_fit = fit_boundary(model.characterization_sweep(seed=7))
        assert gc_fit[0] < 2.0  # near the gain axis
        assert abs(gc_fit[-1] - model.conversion_max_mhz) < 3.0

    def test_fit_threshold_validation(self):
        model = SNAILModel()
        sweep = model.characterization_sweep(n_gc=20, n_gg=15, seed=1)
        with pytest.raises(ValueError):
            fit_boundary(sweep, threshold=1.5)

    def test_fit_rejects_unresolvable_sweep(self):
        sweep = CharacterizationSweep(
            gc_values=np.array([0.0, 1.0]),
            gg_values=np.array([0.0, 1.0]),
            ground_population=np.ones((2, 2)),
            shots=10,
        )
        with pytest.raises(ValueError):
            fit_boundary(sweep)
