"""Tests for Cartan trajectories (paper Fig. 1 / Fig. 8d)."""

import numpy as np
import pytest

from repro.core.trajectories import (
    cnot_trajectories,
    pulse_trajectory,
    swap_trajectories,
)
from repro.pulse.schedule import ParallelDriveSchedule
from repro.quantum.weyl import (
    coordinates_distance,
    in_weyl_chamber,
    named_gate_coordinates,
)


class TestPulseTrajectory:
    def test_starts_at_identity(self):
        schedule = ParallelDriveSchedule.from_drives(
            gc=np.pi / 2, gg=0.0, duration=1.0
        )
        coords, _ = pulse_trajectory(schedule, substeps=6)
        assert np.allclose(coords[0], 0.0, atol=1e-7)

    def test_undriven_pulse_walks_iswap_ray(self):
        schedule = ParallelDriveSchedule.from_drives(
            gc=np.pi / 2, gg=0.0, duration=1.0
        )
        coords, _ = pulse_trajectory(schedule, substeps=8)
        # Straight line: c1 == c2, c3 == 0 throughout.
        assert np.allclose(coords[:, 0], coords[:, 1], atol=1e-6)
        assert np.allclose(coords[:, 2], 0.0, atol=1e-6)
        assert np.allclose(
            coords[-1], named_gate_coordinates("iSWAP"), atol=1e-6
        )

    def test_driven_pulse_bends(self):
        schedule = ParallelDriveSchedule.from_drives(
            gc=np.pi / 2, gg=0.0, duration=1.0,
            eps1=(3.0,) * 4, eps2=(0.0,) * 4,
        )
        coords, _ = pulse_trajectory(schedule, substeps=8)
        # The parallel drive bends the path off the iSWAP ray.
        deviation = np.abs(coords[:, 0] - coords[:, 1]).max()
        assert deviation > 0.3


@pytest.mark.slow
class TestFig1Trajectories:
    @pytest.fixture(scope="class")
    def cnot(self):
        return cnot_trajectories(seed=7)

    @pytest.fixture(scope="class")
    def swap(self):
        return swap_trajectories(seed=7)

    def test_cnot_endpoints(self, cnot):
        target = named_gate_coordinates("CNOT")
        for style, trajectory in cnot.items():
            assert coordinates_distance(trajectory.endpoint, target) < 1e-3

    def test_swap_endpoints(self, swap):
        target = named_gate_coordinates("SWAP")
        for style, trajectory in swap.items():
            assert coordinates_distance(trajectory.endpoint, target) < 1e-3

    def test_parallel_removes_cnot_stop(self, cnot):
        # Fig. 1b: CNOT without intermediate 1Q gates.
        assert len(cnot["traditional"].markers) == 1
        assert len(cnot["parallel"].markers) == 0

    def test_parallel_removes_one_swap_stop(self, swap):
        # Fig. 1b: one fewer interspersed 1Q layer for SWAP.
        assert len(swap["traditional"].markers) == 2
        assert len(swap["parallel"].markers) == 1

    def test_all_points_in_chamber(self, cnot):
        for trajectory in cnot.values():
            for segment in trajectory.segments:
                for coords in segment:
                    assert in_weyl_chamber(coords, atol=1e-5)
