"""Tests for the pluggable synthesis subsystem (backends, engine, store)."""

import numpy as np
import pytest

from repro.core.coverage import (
    build_coverage_set,
    coverage_cache_key,
    haar_coordinate_samples,
)
from repro.core.decomposition_rules import canonical_basis_name
from repro.core.optimal_control import FourierDriveTemplate
from repro.core.parallel_drive import ParallelDriveTemplate, synthesize
from repro.quantum.weyl import named_gate_coordinates
from repro.service.coverage_store import CoverageStore
from repro.synthesis import (
    SynthesisBackend,
    SynthesisEngine,
    backend_accepts,
    batched_template_unitaries,
    build_template,
    default_engine,
    get_backend,
    list_backends,
    register_backend,
    spawn_start_rngs,
    target_invariants,
)


class TestBackendRegistry:
    def test_builtin_backends_registered(self):
        assert {"piecewise", "fourier"} <= set(list_backends())

    def test_builtin_templates_satisfy_protocol(self):
        piecewise = build_template(
            "piecewise", gc=np.pi / 2, gg=0.0, pulse_duration=1.0
        )
        fourier = build_template(
            "fourier", gc=np.pi / 2, gg=0.0, pulse_duration=1.0
        )
        assert isinstance(piecewise, ParallelDriveTemplate)
        assert isinstance(fourier, FourierDriveTemplate)
        assert isinstance(piecewise, SynthesisBackend)
        assert isinstance(fourier, SynthesisBackend)

    def test_unknown_backend_raises(self):
        with pytest.raises(KeyError, match="registered"):
            get_backend("nope")
        with pytest.raises(KeyError):
            SynthesisEngine("nope")

    def test_duplicate_registration_guard(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("piecewise", lambda **kw: None)

    def test_register_and_overwrite(self):
        def factory(**params):
            return ParallelDriveTemplate(
                gc=params["gc"], gg=params["gg"],
                pulse_duration=params["pulse_duration"],
            )

        register_backend("test_dummy", factory, overwrite=True)
        register_backend("test_dummy", factory, overwrite=True)
        assert "test_dummy" in list_backends()
        template = build_template(
            "test_dummy", gc=1.0, gg=0.0, pulse_duration=1.0
        )
        assert isinstance(template, SynthesisBackend)

    def test_fourier_rejects_non_parallel(self):
        with pytest.raises(ValueError, match="parallel"):
            build_template(
                "fourier", gc=1.0, gg=0.0, pulse_duration=1.0,
                parallel=False,
            )


class TestEngineScalarPath:
    def test_engine_matches_module_synthesize_bitwise(self):
        # The engine's sequential path must consume the RNG exactly as
        # the legacy function: coverage digests depend on it.
        template = ParallelDriveTemplate(
            gc=np.pi / 2, gg=0.0, pulse_duration=1.0, repetitions=1
        )
        target = named_gate_coordinates("CNOT")
        via_engine = default_engine().synthesize(
            template, target, seed=3, restarts=2, max_iterations=500
        )
        via_module = synthesize(
            template, target, seed=3, restarts=2, max_iterations=500
        )
        assert np.array_equal(via_engine.parameters, via_module.parameters)
        assert via_engine.loss == via_module.loss
        assert via_engine.loss_history == via_module.loss_history

    def test_target_invariants_shapes(self):
        from repro.quantum.gates import CNOT

        by_coords = target_invariants(named_gate_coordinates("CNOT"))
        by_unitary = target_invariants(CNOT)
        assert np.allclose(by_coords, by_unitary, atol=1e-12)
        with pytest.raises(ValueError):
            target_invariants(np.zeros(5))


class TestBatchedUnitaries:
    @pytest.mark.parametrize("parallel", [True, False])
    def test_piecewise_matches_scalar(self, rng, parallel):
        template = ParallelDriveTemplate(
            gc=np.pi / 2, gg=0.3, pulse_duration=1.0, repetitions=2,
            parallel=parallel,
        )
        params = np.stack(
            [template.random_parameters(rng) for _ in range(6)]
        )
        batched = template.batched_unitaries(params)
        scalar = np.stack([template.unitary(row) for row in params])
        assert np.allclose(batched, scalar, atol=1e-12)

    def test_fourier_matches_scalar(self, rng):
        template = FourierDriveTemplate(
            gc=np.pi / 2, gg=0.2, pulse_duration=1.0, repetitions=2,
            integration_steps=16,
        )
        params = np.stack(
            [template.random_parameters(rng) for _ in range(5)]
        )
        batched = template.batched_unitaries(params)
        scalar = np.stack([template.unitary(row) for row in params])
        assert np.allclose(batched, scalar, atol=1e-12)

    def test_fallback_for_minimal_backends(self):
        class Minimal:
            num_parameters = 0

            def unitary(self, params):
                return np.eye(4, dtype=complex)

            def coordinates(self, params):
                return np.zeros(3)

            def random_parameters(self, rng):
                return np.zeros(0)

        stack = batched_template_unitaries(Minimal(), np.zeros((3, 0)))
        assert stack.shape == (3, 4, 4)

    def test_shape_validation(self):
        template = ParallelDriveTemplate(
            gc=1.0, gg=0.0, pulse_duration=1.0
        )
        with pytest.raises(ValueError):
            template.batched_unitaries(np.zeros((2, 3)))


class TestMultiStart:
    @pytest.fixture(scope="class")
    def template(self):
        return ParallelDriveTemplate(
            gc=np.pi / 2, gg=0.0, pulse_duration=1.0, repetitions=1
        )

    def test_converges_to_cnot(self, template):
        outcome = default_engine().synthesize_multistart(
            template,
            named_gate_coordinates("CNOT"),
            starts=12,
            refine=2,
            seed=7,
        )
        assert outcome.converged
        assert np.allclose(
            outcome.best.coordinates,
            named_gate_coordinates("CNOT"),
            atol=1e-4,
        )
        assert outcome.start_losses.shape == (12,)
        assert len(outcome.refined_indices) == 2

    def test_start_losses_match_scalar_evaluation(self, template):
        target = named_gate_coordinates("CNOT")
        invariants = target_invariants(target)
        outcome = default_engine().synthesize_multistart(
            template, target, starts=6, refine=1, seed=11,
            max_iterations=50,
        )
        from repro.quantum.makhlin import makhlin_invariants

        rngs = spawn_start_rngs(11, 6)
        expected = []
        for rng in rngs:
            start = template.random_parameters(rng)
            expected.append(
                float(
                    np.linalg.norm(
                        makhlin_invariants(template.unitary(start))
                        - invariants
                    )
                )
            )
        assert np.allclose(outcome.start_losses, expected, atol=1e-12)

    def test_seeded_reproducibility(self, template):
        target = named_gate_coordinates("CNOT")
        engine = default_engine()
        first = engine.synthesize_multistart(
            template, target, starts=8, refine=2, seed=5,
            max_iterations=300,
        )
        second = engine.synthesize_multistart(
            template, target, starts=8, refine=2, seed=5,
            max_iterations=300,
        )
        assert np.array_equal(first.start_losses, second.start_losses)
        assert np.array_equal(
            first.best.parameters, second.best.parameters
        )

    def test_worker_count_invariance(self, template):
        # Fanning refinements over a pool must not change the result.
        target = named_gate_coordinates("CNOT")
        serial = SynthesisEngine("piecewise", workers=1)
        pooled = SynthesisEngine("piecewise", workers=2)
        a = serial.synthesize_multistart(
            template, target, starts=6, refine=2, seed=5,
            max_iterations=300,
        )
        b = pooled.synthesize_multistart(
            template, target, starts=6, refine=2, seed=5,
            max_iterations=300,
        )
        assert np.array_equal(a.best.parameters, b.best.parameters)
        assert a.refined_losses == b.refined_losses

    def test_validation(self, template):
        engine = default_engine()
        with pytest.raises(ValueError):
            engine.synthesize_multistart(
                template, np.zeros(3), starts=0
            )
        with pytest.raises(ValueError):
            engine.synthesize_multistart(
                template, np.zeros(3), starts=4, refine=5
            )

    def test_constrained_template_shortcut(self):
        template = ParallelDriveTemplate(
            gc=np.pi / 2, gg=0.0, pulse_duration=1.0, repetitions=1,
            parallel=False,
        )
        outcome = default_engine().synthesize_multistart(
            template, named_gate_coordinates("iSWAP"), starts=4
        )
        assert outcome.converged
        assert outcome.best.parameters.size == 0


class TestCoverageStore:
    def _clouds(self, rng):
        return [
            rng.uniform(0, 1, size=(40, 3)),
            rng.uniform(0, 1, size=(50, 3)),
        ]

    def test_round_trip_bit_exact(self, tmp_path, rng):
        store = CoverageStore(path=tmp_path / "cov.sqlite")
        clouds = self._clouds(rng)
        store.put_clouds("key-a", clouds)
        loaded = store.get_clouds("key-a", 2)
        assert loaded is not None
        for original, restored in zip(clouds, loaded):
            assert np.array_equal(original, restored)
        assert store.disk_entries() == 1
        assert store.stats.disk_hits == 1

    def test_miss_and_stats(self, tmp_path):
        store = CoverageStore(path=tmp_path / "cov.sqlite")
        assert store.get_clouds("missing", 1) is None
        assert store.stats.misses == 1
        assert store.stats.hits == 0

    def test_assembled_memo_lru(self, tmp_path):
        store = CoverageStore(path=tmp_path / "cov.sqlite", memory_size=2)
        for index in range(3):
            store.remember_set(f"k{index}", object())
        assert len(store) == 2
        assert store.get_set("k0") is None  # evicted
        assert store.get_set("k2") is not None
        assert store.stats.memory_hits == 1

    def test_legacy_npz_raises_with_migration_hint(self, tmp_path, rng):
        # The npz absorption shim is gone (its one-release window
        # closed): a stale archive next to the store is an error that
        # names the rebuild command, not a silent miss.
        clouds = self._clouds(rng)
        key = "legacy_basis_gc1.000000_seed3_v2"
        np.savez_compressed(
            tmp_path / f"{key}.npz",
            **{f"k{k}": c for k, c in enumerate(clouds, start=1)},
        )
        store = CoverageStore(path=tmp_path / "coverage.sqlite")
        with pytest.raises(RuntimeError, match="repro synth"):
            store.get_clouds(key, 2)
        # With the archive gone the same lookup is an ordinary miss.
        (tmp_path / f"{key}.npz").unlink()
        fresh = CoverageStore(path=tmp_path / "coverage.sqlite")
        assert fresh.get_clouds(key, 2) is None
        assert fresh.stats.misses == 1

    def test_memory_only_store(self, rng):
        store = CoverageStore(persistent=False)
        store.put_clouds("k", self._clouds(rng))
        assert store.disk_entries() == 0
        assert store.get_clouds("k", 2) is None  # no disk tier

    def test_clear(self, tmp_path, rng):
        store = CoverageStore(path=tmp_path / "cov.sqlite")
        store.put_clouds("k", self._clouds(rng))
        store.remember_set("k", object())
        store.clear(disk=True)
        assert len(store) == 0
        assert store.disk_entries() == 0


class TestCoverageBuildParity:
    _KWARGS = dict(
        gc=np.pi / 2, gg=0.0, pulse_duration=1.0, kmax=1,
        basis_name="parity_test", parallel=False, samples_per_k=150,
        seed=3, boost_targets=False,
    )

    def test_store_reload_is_bit_identical(self, tmp_path):
        store = CoverageStore(path=tmp_path / "cov.sqlite")
        cold = build_coverage_set(store=store, **self._KWARGS)
        # Disk-tier reload (fresh instance), and a cache-free rebuild.
        reload_store = CoverageStore(path=tmp_path / "cov.sqlite")
        warm = build_coverage_set(store=reload_store, **self._KWARGS)
        rebuilt = build_coverage_set(cache=False, **self._KWARGS)
        haar = haar_coordinate_samples(400, seed=4)
        assert np.array_equal(cold.min_k(haar), warm.min_k(haar))
        assert np.array_equal(cold.min_k(haar), rebuilt.min_k(haar))
        # The stored clouds are the exact bytes the rebuild produces.
        key = coverage_cache_key(
            gc=np.pi / 2, gg=0.0, pulse_duration=1.0, kmax=1,
            basis_name="parity_test", parallel=False, samples_per_k=150,
            steps_per_pulse=4, seed=3, boost_targets=False,
            synthesis_restarts=3, synthesis_iterations=1200,
        )
        first = reload_store.get_clouds(key, 1)
        second_store = CoverageStore(path=tmp_path / "cov2.sqlite")
        build_coverage_set(store=second_store, **self._KWARGS)
        second = second_store.get_clouds(key, 1)
        assert first is not None and second is not None
        assert np.array_equal(first[0], second[0])

    def test_default_key_matches_legacy_npz_stem(self):
        key = coverage_cache_key(
            gc=np.pi / 2, gg=0.0, pulse_duration=0.5, kmax=3,
            basis_name="sqrt_iSWAP", parallel=False, samples_per_k=3000,
            steps_per_pulse=2, seed=20230302, boost_targets=True,
            synthesis_restarts=3, synthesis_iterations=1200,
        )
        assert key == (
            "sqrt_iSWAP_gc1.570796_gg0.000000_d0.5000_k3_n3000_s2"
            "_std_b1_r3_i1200_seed20230302_v2"
        )
        tagged = coverage_cache_key(
            gc=np.pi / 2, gg=0.0, pulse_duration=0.5, kmax=3,
            basis_name="sqrt_iSWAP", parallel=False, samples_per_k=3000,
            steps_per_pulse=2, seed=20230302, boost_targets=True,
            synthesis_restarts=3, synthesis_iterations=1200,
            backend="fourier",
        )
        assert tagged.endswith("_be-fourier")

    def test_backend_options_split_the_keyspace(self):
        base = dict(
            gc=np.pi / 2, gg=0.0, pulse_duration=1.0, kmax=1,
            basis_name="t", parallel=True, samples_per_k=100,
            steps_per_pulse=0, seed=1, boost_targets=False,
            synthesis_restarts=1, synthesis_iterations=100,
            backend="fourier",
        )
        three = coverage_cache_key(
            backend_options={"num_harmonics": 3}, **base
        )
        five = coverage_cache_key(
            backend_options={"num_harmonics": 5}, **base
        )
        plain = coverage_cache_key(**base)
        assert len({three, five, plain}) == 3

    def test_steps_knob_only_keys_for_backends_that_take_it(
        self, tmp_path
    ):
        from repro.synthesis import backend_accepts

        assert backend_accepts("piecewise", "steps_per_pulse")
        assert not backend_accepts("fourier", "steps_per_pulse")
        # Two fourier builds differing only in the (ignored)
        # steps_per_pulse knob share one store row.
        store = CoverageStore(path=tmp_path / "c.sqlite")
        engine = SynthesisEngine("fourier", integration_steps=8)
        kwargs = dict(
            gc=np.pi / 2, gg=0.0, pulse_duration=1.0, kmax=1,
            basis_name="steps_test", parallel=True, samples_per_k=60,
            seed=2, boost_targets=False, engine=engine, store=store,
        )
        build_coverage_set(steps_per_pulse=4, **kwargs)
        build_coverage_set(steps_per_pulse=8, **kwargs)
        assert store.disk_entries() == 1
        assert store.stats.puts == 1

    def test_unwritable_store_degrades_to_memory_only(self, tmp_path):
        # A plain file where the cache directory should be: the mkdir
        # inside _connection raises OSError (works even as root, where
        # permission bits would not block the write).
        blocked = tmp_path / "blocked"
        blocked.write_text("not a directory")
        store = CoverageStore(path=blocked / "sub" / "cov.sqlite")
        assert store.get_clouds("k", 1) is None
        store.put_clouds("k", [np.zeros((4, 3))])
        assert not store.persistent

    def test_legacy_npz_fails_build_with_hint(self, tmp_path, rng):
        # A stale legacy archive surfaces through build_coverage_set as
        # the migration error, not as a silent cache-free rebuild.
        key = coverage_cache_key(
            gc=np.pi / 2, gg=0.0, pulse_duration=1.0, kmax=1,
            basis_name="parity_test", parallel=False, samples_per_k=150,
            steps_per_pulse=4, seed=3, boost_targets=False,
            synthesis_restarts=3, synthesis_iterations=1200,
        )
        np.savez_compressed(
            tmp_path / f"{key}.npz",
            **{"k1": rng.uniform(0, 1, size=(40, 3))},
        )
        store = CoverageStore(path=tmp_path / "coverage.sqlite")
        with pytest.raises(RuntimeError, match="repro synth"):
            build_coverage_set(store=store, **self._KWARGS)


class TestEngineCoverage:
    def test_engine_coverage_set_delegates(self, tmp_path):
        engine = SynthesisEngine(
            "piecewise", store=CoverageStore(path=tmp_path / "c.sqlite")
        )
        coverage = engine.coverage_set(
            gc=np.pi / 2, gg=0.0, pulse_duration=1.0, kmax=1,
            basis_name="engine_test", parallel=False, samples_per_k=150,
            seed=3, boost_targets=False,
        )
        assert coverage.kmax == 1
        assert engine.store.disk_entries() == 1

    def test_generic_backend_sampling(self):
        engine = SynthesisEngine("fourier", integration_steps=8)
        template = engine.template(
            gc=np.pi / 2, gg=0.0, pulse_duration=1.0
        )
        coords = engine.sample_coordinates(template, 32, seed=5)
        assert coords.shape == (32, 3)
        from repro.quantum.weyl import in_weyl_chamber

        assert all(in_weyl_chamber(c, atol=1e-6) for c in coords)


class TestBasisNameResolution:
    def test_canonical_spellings(self):
        assert canonical_basis_name("sqrt_iswap") == "sqrt_iSWAP"
        assert canonical_basis_name("sqrt_iSWAP") == "sqrt_iSWAP"
        assert canonical_basis_name("iswap") == "iSWAP"
        assert canonical_basis_name("b") == "B"
        with pytest.raises(KeyError, match="known"):
            canonical_basis_name("xy")

    def test_target_coverage_set_rides_engine(self):
        from repro.targets import get_target

        target = get_target("snail_4x4")
        coverage = target.coverage_set(
            kmax=1, parallel=False, samples_per_k=200, seed=6
        )
        assert coverage.basis_name == "sqrt_iSWAP"
        # Speed variants share the cloud: the reachable set is
        # scale-independent, so the memoized object is the same.
        fast = get_target("snail_4x4_fast").coverage_set(
            kmax=1, parallel=False, samples_per_k=200, seed=6
        )
        assert fast is coverage
