"""Tests for the hardware-target subsystem (model, registry, wiring)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.circuits.gate import Gate
from repro.circuits.workloads import get_workload
from repro.targets import (
    EdgeProperties,
    HardwareTarget,
    ScaledRules,
    get_target,
    list_targets,
)
from repro.transpiler.pipeline import transpile


def _toy_target(**overrides) -> HardwareTarget:
    kwargs = dict(
        name="toy",
        edges=((0, 1), (1, 2)),
        t1_us=(100.0, 80.0, 120.0),
        t2_us=(200.0, 160.0, 240.0),
    )
    kwargs.update(overrides)
    return HardwareTarget(**kwargs)


class TestModel:
    def test_derived_structure(self):
        target = _toy_target()
        assert target.num_qubits == 3
        assert target.coupling_map.num_qubits == 3
        assert target.coupling_map.are_adjacent(0, 1)
        assert not target.coupling_map.are_adjacent(0, 2)
        assert target.one_q_duration == pytest.approx(0.25)

    def test_edges_normalized_and_deduped(self):
        target = _toy_target(edges=((1, 0), (2, 1), (0, 1)))
        assert target.edges == ((0, 1), (1, 2))

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            _toy_target(edges=())
        with pytest.raises(ValueError, match="contiguous"):
            _toy_target(edges=((0, 2),), t1_us=(1.0, 1.0), t2_us=(1.0, 1.0))
        with pytest.raises(ValueError, match="T1/T2"):
            _toy_target(t1_us=(100.0,))
        with pytest.raises(ValueError, match="positive"):
            _toy_target(t1_us=(100.0, -1.0, 100.0))
        with pytest.raises(ValueError, match="speed_limit_scale"):
            _toy_target(speed_limit_scale=0.0)
        with pytest.raises(ValueError, match="self-loop"):
            _toy_target(edges=((0, 0), (0, 1)))
        with pytest.raises(ValueError, match="non-edge"):
            _toy_target(
                edge_overrides=(((0, 2), EdgeProperties()),)
            )

    def test_json_round_trip(self):
        target = _toy_target(
            speed_limit_scale=1.5,
            edge_overrides=(
                ((1, 0), EdgeProperties("iswap", 2.0)),
            ),
            t2_us=(200.0, math.inf, 240.0),
        )
        parsed = HardwareTarget.from_json(target.to_json())
        assert parsed == target
        assert math.isinf(parsed.t2_us[1])
        assert parsed.edge_properties(0, 1) == EdgeProperties("iswap", 2.0)

    def test_edge_properties_default_and_override(self):
        target = _toy_target(
            basis_gate="sqrt_iswap",
            edge_overrides=(((1, 2), EdgeProperties(speed_limit_scale=1.3)),),
        )
        assert target.edge_properties(0, 1).speed_limit_scale == 1.0
        assert target.edge_properties(2, 1).speed_limit_scale == 1.3

    def test_gate_duration_applies_edge_override(self):
        target = _toy_target(
            edge_overrides=(((1, 2), EdgeProperties(speed_limit_scale=1.5)),)
        )
        plain = Gate("pulse2q", (0, 1), duration=0.5)
        slowed = Gate("pulse2q", (2, 1), duration=0.5)
        one_q = Gate("u1q", (2,), duration=0.25)
        assert target.gate_duration(plain) == pytest.approx(0.5)
        assert target.gate_duration(slowed) == pytest.approx(0.75)
        assert target.gate_duration(one_q) == pytest.approx(0.25)

    def test_fidelity_model_mirrors_noise(self):
        model = _toy_target().fidelity_model()
        assert model.t1_us == (100.0, 80.0, 120.0)
        assert model.num_qubits == 3

    def test_variant(self):
        fast = _toy_target().variant("fast", 0.5)
        assert fast.name == "toy_fast"
        assert fast.speed_limit_scale == 0.5
        assert fast.edges == _toy_target().edges


class TestScaledRules:
    def test_scales_pulses_not_layers(self, parallel_rules):
        scaled = ScaledRules(parallel_rules, 2.0)
        coords = np.array([np.pi / 2, np.pi / 2, 0.0])  # iSWAP class
        base_spec = parallel_rules.template_for(coords)
        spec = scaled.template_for(coords)
        assert spec.layer_count == base_spec.layer_count
        assert spec.pulses == tuple(2.0 * p for p in base_spec.pulses)

    def test_cache_token_includes_scale(self, parallel_rules):
        fast = ScaledRules(parallel_rules, 0.5)
        slow = ScaledRules(parallel_rules, 2.0)
        assert fast.cache_token != slow.cache_token
        assert parallel_rules.cache_token not in (
            fast.cache_token,
            slow.cache_token,
        )
        assert fast.cache_token.startswith(parallel_rules.cache_token)

    def test_unit_scale_target_returns_base_rules(self):
        target = get_target("snail_4x4")
        rules = target.build_rules("parallel")
        assert not isinstance(rules, ScaledRules)
        scaled = get_target("snail_4x4_slow").build_rules("parallel")
        assert isinstance(scaled, ScaledRules)
        assert scaled.scale == 2.0

    def test_validation(self, parallel_rules):
        with pytest.raises(ValueError):
            ScaledRules(parallel_rules, 0.0)


class TestRegistry:
    def test_presets_and_variants_listed(self):
        names = list_targets()
        for base in (
            "snail_4x4", "line_16", "heavy_hex_16", "heavy_hex_27",
            "all_to_all_16",
        ):
            assert base in names
            assert f"{base}_fast" in names
            assert f"{base}_slow" in names

    def test_snail_matches_paper_lattice(self):
        from repro.transpiler.coupling import square_lattice

        target = get_target("snail_4x4")
        assert target.num_qubits == 16
        assert target.edges == tuple(square_lattice(4, 4).edges)
        assert set(target.t1_us) == {100.0}

    def test_heavy_hex_16_is_connected_induced_patch(self):
        target = get_target("heavy_hex_16")
        assert target.num_qubits == 16
        assert target.coupling_map.num_qubits == 16  # implies connected
        assert min(target.t1_us) < max(target.t1_us)  # graded noise
        assert target.edge_properties(3, 5).speed_limit_scale != 1.0

    def test_dynamic_names(self):
        square = get_target("square_2x4")
        assert square.num_qubits == 8
        line = get_target("line_5")
        assert line.num_qubits == 5
        dense = get_target("all_to_all_4")
        assert len(dense.edges) == 6
        fast = get_target("square_2x4_fast")
        assert fast.speed_limit_scale == 0.5

    def test_instances_cached(self):
        assert get_target("snail_4x4") is get_target("snail_4x4")

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown target"):
            get_target("not_a_device")
        with pytest.raises(KeyError, match="unknown target"):
            get_target("not_a_device_fast")


class TestNoiseAwareSelection:
    """Acceptance: on every preset, fidelity selection is never worse
    (in estimated fidelity) than the paper's duration selection."""

    @pytest.mark.parametrize("name", sorted(list_targets()))
    def test_fidelity_selection_beats_duration_selection(
        self, name, parallel_rules
    ):
        target = get_target(name)
        model = target.fidelity_model()
        circuit = get_workload("ghz", 6, seed=11)
        kwargs = dict(
            trials=3,
            seed=7,
            fidelity_model=model,
            scheduler="alap",
            duration_of=target.gate_duration,
        )
        rules = target.build_rules("parallel")
        by_fidelity = transpile(
            circuit, target.coupling_map, rules,
            selection="fidelity", **kwargs,
        )
        by_duration = transpile(
            circuit, target.coupling_map, rules,
            selection="duration", **kwargs,
        )
        assert by_fidelity.estimated_fidelity is not None
        assert by_duration.estimated_fidelity is not None
        assert (
            by_fidelity.estimated_fidelity
            >= by_duration.estimated_fidelity - 1e-12
        )
