"""Tests for the gate library."""

import numpy as np
import pytest

from repro.quantum import gates
from repro.quantum.linalg import allclose_up_to_global_phase, is_unitary


class TestConstants:
    @pytest.mark.parametrize(
        "matrix",
        [
            gates.X, gates.Y, gates.Z, gates.H, gates.S, gates.T, gates.SX,
            gates.CNOT, gates.CZ, gates.SWAP, gates.ISWAP, gates.DCNOT,
            gates.SQRT_ISWAP, gates.SQRT_CNOT, gates.B_GATE, gates.SQRT_B,
            gates.MAGIC_BASIS,
        ],
    )
    def test_all_unitary(self, matrix):
        assert is_unitary(matrix)

    def test_pauli_algebra(self):
        assert np.allclose(gates.X @ gates.Y, 1j * gates.Z)
        assert np.allclose(gates.X @ gates.X, gates.I2)

    def test_sx_squares_to_x(self):
        assert np.allclose(gates.SX @ gates.SX, gates.X)

    def test_dcnot_is_two_cnots(self):
        cnot_reversed = gates.SWAP @ gates.CNOT @ gates.SWAP
        assert np.allclose(gates.DCNOT, cnot_reversed @ gates.CNOT)


class TestRotations:
    def test_rx_pi_is_x(self):
        assert allclose_up_to_global_phase(gates.rx(np.pi), gates.X)

    def test_rz_composition(self):
        combined = gates.rz(0.3) @ gates.rz(0.4)
        assert np.allclose(combined, gates.rz(0.7))

    def test_u3_generic_matches_euler(self):
        theta, phi, lam = 0.5, 1.1, -0.7
        euler = gates.rz(phi) @ gates.ry(theta) @ gates.rz(lam)
        assert allclose_up_to_global_phase(gates.u3(theta, phi, lam), euler)

    def test_axis_rotation_matches_rx(self):
        assert np.allclose(
            gates.random_axes_rotation([1, 0, 0], 0.8), gates.rx(0.8)
        )

    def test_axis_rotation_rejects_zero_axis(self):
        with pytest.raises(ValueError):
            gates.random_axes_rotation([0, 0, 0], 1.0)


class TestCanonicalGate:
    def test_cnot_class(self):
        can = gates.canonical_gate(np.pi / 2, 0, 0)
        # (I - i XX)/sqrt(2) is locally equivalent to CNOT: same spectrum
        # of the gamma invariant; checked exactly in test_weyl.
        assert is_unitary(can)

    def test_commuting_factors(self):
        direct = gates.canonical_gate(0.3, 0.2, 0.1)
        reordered = (
            gates.rzz(0.1) @ gates.rxx(0.3) @ gates.ryy(0.2)
        )
        assert np.allclose(direct, reordered)

    def test_iswap_power_composition(self):
        half = gates.iswap_power(0.5)
        assert np.allclose(half @ half, gates.ISWAP)
        quarter = gates.iswap_power(0.25)
        assert np.allclose(quarter @ quarter, half)

    def test_cnot_power_composition(self):
        assert np.allclose(gates.cnot_power(1.0), gates.CNOT)
        assert np.allclose(
            gates.cnot_power(0.5) @ gates.cnot_power(0.5), gates.CNOT
        )

    def test_b_gate_power(self):
        assert np.allclose(
            gates.b_gate_power(0.5) @ gates.b_gate_power(0.5), gates.B_GATE
        )

    def test_cphase_diagonal(self):
        cp = gates.cphase(0.4)
        assert np.allclose(np.diag(np.diag(cp)), cp)
        assert cp[3, 3] == pytest.approx(np.exp(0.4j))


class TestControlled:
    def test_controlled_x_is_cnot(self):
        assert np.allclose(gates.controlled(gates.X), gates.CNOT)

    def test_controlled_z_is_cz(self):
        assert np.allclose(gates.controlled(gates.Z), gates.CZ)

    def test_controlled_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            gates.controlled(np.eye(4))
