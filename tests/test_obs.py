"""Observability subsystem: tracer, metrics registry, exporters.

Covers the cross-process contracts the batch engine relies on —
context propagation into workers, span freight absorbed back into the
parent with correct parent ids and pids, metric deltas that survive a
fork without double-counting — plus the no-op guarantees (tracing off
returns the cached null span) and the exporter formats.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.obs import (
    REGISTRY,
    TRACER,
    MetricsRegistry,
    Span,
    TraceContext,
    Tracer,
    enable_tracing,
    format_metrics_table,
    format_span_summary,
    load_metrics_snapshot,
    metrics,
    span,
    to_chrome_trace,
    to_jsonl,
    trace,
    write_chrome_trace,
    write_metrics_snapshot,
)
from repro.obs.trace import _NULL_SPAN
from repro.service.engine import BatchEngine, fan_out
from repro.service.jobs import CompileJob


@pytest.fixture(autouse=True)
def _clean_tracer():
    """Leave the process tracer off and empty around every test."""
    TRACER.disable()
    TRACER.clear()
    yield
    TRACER.disable()
    TRACER.clear()


class TestMetrics:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        registry.gauge("g").set(2.5)
        hist = registry.histogram("h", (1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        snap = registry.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == 2.5
        assert snap["histograms"]["h"]["counts"] == [1, 1, 1]
        assert snap["histograms"]["h"]["count"] == 3
        assert hist.mean == pytest.approx(55.5 / 3)

    def test_same_name_shares_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("h") is registry.histogram("h", (1, 2))

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("bad", (3.0, 1.0))

    def test_delta_is_monotonic_difference(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(2)
        registry.histogram("h", (1.0,)).observe(0.5)
        before = registry.snapshot()
        registry.counter("a").inc(3)
        registry.counter("new").inc()
        registry.histogram("h", (1.0,)).observe(2.0)
        delta = MetricsRegistry.delta(before, registry.snapshot())
        assert delta["counters"] == {"a": 3, "new": 1}
        assert delta["histograms"]["h"]["counts"] == [0, 1]
        assert delta["histograms"]["h"]["count"] == 1

    def test_merge_snapshot_folds_counts(self):
        source = MetricsRegistry()
        source.counter("jobs").inc(2)
        source.histogram("t", (1.0, 2.0)).observe(1.5)
        sink = MetricsRegistry()
        sink.counter("jobs").inc(1)
        sink.merge_snapshot(source.snapshot())
        snap = sink.snapshot()
        assert snap["counters"]["jobs"] == 3
        assert snap["histograms"]["t"]["count"] == 1

    def test_merge_rejects_bounds_mismatch(self):
        source = MetricsRegistry()
        source.histogram("t", (1.0,)).observe(0.5)
        sink = MetricsRegistry()
        sink.histogram("t", (2.0,))
        with pytest.raises(ValueError, match="bounds mismatch"):
            sink.merge_snapshot(source.snapshot())

    def test_merge_bounds_mismatch_leaves_other_sections_applied(self):
        # The counter section merges before the offending histogram is
        # reached; the error still surfaces so callers notice.
        source = MetricsRegistry()
        source.counter("jobs").inc(2)
        source.histogram("t", (1.0,)).observe(0.5)
        sink = MetricsRegistry()
        sink.histogram("t", (2.0,))
        with pytest.raises(ValueError, match="bounds mismatch"):
            sink.merge_snapshot(source.snapshot())
        assert sink.snapshot()["counters"]["jobs"] == 2

    def test_delta_drops_disappeared_metric(self):
        # delta() iterates the *after* snapshot: a metric present only
        # in `before` (a registry reset between snapshots) contributes
        # nothing rather than a negative count.
        registry = MetricsRegistry()
        registry.counter("gone").inc(5)
        before = registry.snapshot()
        after_registry = MetricsRegistry()
        after_registry.counter("kept").inc(1)
        delta = MetricsRegistry.delta(before, after_registry.snapshot())
        assert "gone" not in delta["counters"]
        assert delta["counters"]["kept"] == 1

    def test_cache_stats_mirror_into_registry(self):
        from repro.service.cache import CacheStats

        before = REGISTRY.snapshot()["counters"]
        stats = CacheStats()
        stats.memory_hits += 3
        stats.misses += 1
        after = REGISTRY.snapshot()["counters"]
        key = "repro.cache.decomp.memory_hits"
        assert after[key] - before.get(key, 0) == 3
        assert stats.memory_hits == 3  # per-instance view intact
        assert stats.hits == 3

    def test_coverage_stats_mirror_into_registry(self):
        from repro.service.coverage_store import CoverageStoreStats

        before = REGISTRY.snapshot()["counters"]
        stats = CoverageStoreStats()
        stats.disk_hits += 2
        after = REGISTRY.snapshot()["counters"]
        key = "repro.cache.coverage.disk_hits"
        assert after[key] - before.get(key, 0) == 2
        assert "legacy_hits" not in stats.as_dict()


class TestTracer:
    def test_disabled_span_is_cached_null(self):
        assert span("anything", n=1) is _NULL_SPAN
        assert TRACER.span("x") is _NULL_SPAN
        with span("nothing") as inert:
            inert.set(a=1)  # no-op, no error
        assert TRACER.spans == []

    def test_span_nesting_parents(self):
        enable_tracing()
        with span("outer") as outer:
            with span("inner", n=2):
                pass
            outer.set(done=True)
        inner, outer = TRACER.spans
        assert inner.name == "inner"
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.attrs == {"n": 2}
        assert outer.attrs == {"done": True}
        assert inner.pid == os.getpid()
        assert inner.trace_id == outer.trace_id == TRACER.trace_id

    def test_exception_recorded_and_stack_unwound(self):
        enable_tracing()
        with pytest.raises(RuntimeError):
            with span("boom"):
                raise RuntimeError("nope")
        (recorded,) = TRACER.spans
        assert recorded.attrs["error"] == "RuntimeError"
        assert TRACER._stack == []

    def test_span_round_trip(self):
        enable_tracing()
        with span("s", k=1):
            pass
        (recorded,) = TRACER.spans
        clone = Span.from_dict(
            json.loads(json.dumps(recorded.to_dict()))
        )
        assert clone == recorded

    def test_activate_adopts_context(self):
        fresh = Tracer(enabled=False)
        context = TraceContext(trace_id="feed", parent_id="dead-1")
        fresh.activate(context.to_dict())
        assert fresh.enabled and fresh.trace_id == "feed"
        with fresh.span("child"):
            pass
        (child,) = fresh.spans
        assert child.parent_id == "dead-1"
        assert child.trace_id == "feed"
        # Re-activation of the same trace changes nothing (fork path).
        fresh.activate(TraceContext(trace_id="feed", parent_id="other"))
        with fresh.span("second"):
            pass
        assert fresh.spans[1].parent_id == "dead-1"

    def test_absorb_skips_own_pid(self):
        enable_tracing()
        with span("local"):
            pass
        shipped = TRACER.drain_since(0)
        foreign = dict(shipped[0])
        foreign.update(pid=os.getpid() + 1, span_id="f-1")
        kept = TRACER.absorb([shipped[0], foreign])
        assert kept == 1
        assert len(TRACER.spans) == 2

    def test_current_context_none_when_off(self):
        assert TRACER.current_context() is None
        enable_tracing()
        with span("active"):
            context = TRACER.current_context()
            assert context.trace_id == TRACER.trace_id
            assert context.parent_id == TRACER._stack[-1]


class TestExporters:
    def _spans(self):
        enable_tracing(trace_id := "deadbeef")
        with span("a", n=1):
            with span("b"):
                pass
        return TRACER.spans, trace_id

    def test_jsonl(self):
        spans, _ = self._spans()
        lines = to_jsonl(spans).splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["name"] == "b"

    def test_chrome_trace_events(self, tmp_path):
        spans, _ = self._spans()
        path = write_chrome_trace(
            spans, tmp_path / "trace.json", main_pid=os.getpid()
        )
        data = json.loads(path.read_text())
        complete = [e for e in data["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in data["traceEvents"] if e["ph"] == "M"]
        assert len(complete) == 2 and len(meta) == 1
        assert meta[0]["args"]["name"] == "repro main"
        starts = [e["ts"] for e in complete]
        assert min(starts) == 0.0  # rebased to the earliest span
        by_name = {e["name"]: e for e in complete}
        assert (
            by_name["b"]["args"]["parent_id"]
            == by_name["a"]["args"]["span_id"]
        )

    def test_chrome_trace_empty(self):
        from repro.obs import TRACE_SCHEMA_VERSION

        assert to_chrome_trace([]) == {
            "traceEvents": [],
            "displayTimeUnit": "ms",
            "schema": TRACE_SCHEMA_VERSION,
        }

    def test_chrome_trace_empty_round_trips_through_loader(self, tmp_path):
        from repro.obs import format_chrome_trace_summary, load_chrome_trace

        path = write_chrome_trace([], tmp_path / "trace.json")
        loaded = load_chrome_trace(path)
        assert loaded["traceEvents"] == []
        assert "no spans" in format_chrome_trace_summary(loaded)

    def test_chrome_trace_loader_rejects_unknown_schema(self, tmp_path):
        from repro.obs import SchemaError, load_chrome_trace

        path = tmp_path / "trace.json"
        path.write_text(json.dumps({"traceEvents": [], "schema": 99}))
        with pytest.raises(SchemaError, match="schema v99"):
            load_chrome_trace(path)
        path.write_text(json.dumps({"something": "else"}))
        with pytest.raises(SchemaError, match="traceEvents"):
            load_chrome_trace(path)

    def test_span_summary_table(self):
        spans, _ = self._spans()
        text = format_span_summary(spans)
        assert "a" in text and "b" in text and "pids" in text
        assert "no spans" in format_span_summary([])

    def test_metrics_snapshot_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("repro.test.events").inc(7)
        registry.histogram("repro.test.seconds", (1.0,)).observe(0.5)
        path = write_metrics_snapshot(
            registry.snapshot(), tmp_path / "metrics.json"
        )
        loaded = load_metrics_snapshot(path)
        assert loaded["counters"]["repro.test.events"] == 7
        table = format_metrics_table(loaded)
        assert "repro.test.events" in table
        assert "repro.test.seconds" in table
        assert format_metrics_table({}) == "no metrics recorded"


def _traced_sleeper(payload: tuple) -> tuple[int, list[dict]]:
    """Pool worker: adopt a context, emit one span, ship it back."""
    context, delay = payload
    TRACER.activate(context)
    marker = TRACER.mark()
    with trace.span("worker.sleep", delay=delay):
        time.sleep(delay)
    return os.getpid(), TRACER.drain_since(marker)


class TestCrossProcess:
    def test_fan_out_spans_from_two_pids_parent_correctly(self):
        enable_tracing()
        with span("submit") as submitting:
            context = TRACER.current_context()
            parent_id = context.parent_id
            results = list(
                fan_out(_traced_sleeper, [(context, 0.3)] * 2, workers=2)
            )
            for _, shipped in results:
                TRACER.absorb(shipped)
        pids = {pid for pid, _ in results}
        assert len(pids) == 2  # both pool workers really ran
        assert os.getpid() not in pids
        worker_spans = [
            s for s in TRACER.spans if s.name == "worker.sleep"
        ]
        assert len(worker_spans) == 2
        for recorded in worker_spans:
            assert recorded.pid in pids
            assert recorded.parent_id == parent_id
            assert recorded.trace_id == TRACER.trace_id
        # The submitting span closed after the workers were absorbed.
        assert TRACER.spans[-1].name == "submit"
        assert TRACER.spans[-1].span_id == parent_id
        del submitting

    def test_batch_engine_merges_worker_spans_and_metrics(self):
        enable_tracing()
        jobs = [
            CompileJob(
                workload=workload, num_qubits=4, target="square_2x2",
                trials=1, pipeline="fast",
            )
            for workload in ("ghz", "qft")
        ]
        before = REGISTRY.snapshot()
        engine = BatchEngine(
            workers=2, use_cache=False, warm_coverage=False, retries=0
        )
        results = engine.run(jobs)
        assert all(result.ok for result in results)
        job_spans = [s for s in TRACER.spans if s.name == "job.run"]
        batch_spans = [s for s in TRACER.spans if s.name == "batch.run"]
        assert len(job_spans) == 2 and len(batch_spans) == 1
        for recorded in job_spans:
            assert recorded.pid != os.getpid()
            assert recorded.parent_id == batch_spans[0].span_id
        # Pass spans crossed the boundary too, nested under their job.
        pass_spans = [
            s for s in TRACER.spans if s.name.startswith("pass.")
        ]
        assert pass_spans
        job_ids = {s.span_id for s in job_spans}
        compile_ids = {
            s.span_id for s in TRACER.spans if s.name == "compile"
        }
        assert all(
            s.parent_id in compile_ids | job_ids for s in pass_spans
        )
        # Worker metric deltas merged: pass runs counted in the parent.
        delta = MetricsRegistry.delta(before, REGISTRY.snapshot())
        assert delta["counters"]["repro.service.jobs"] == 2
        assert delta["counters"]["repro.pass.runs"] > 0

    def test_serial_round_records_spans_once(self):
        enable_tracing()
        job = CompileJob(
            workload="ghz", num_qubits=4, target="square_2x2",
            trials=1, pipeline="fast",
        )
        engine = BatchEngine(
            workers=1, use_cache=False, warm_coverage=False, retries=0
        )
        (result,) = engine.run([job])
        assert result.ok
        assert len(
            [s for s in TRACER.spans if s.name == "job.run"]
        ) == 1

    def test_retried_job_records_retry_metrics(self):
        before = REGISTRY.snapshot()
        job = CompileJob(
            workload="no_such_workload", num_qubits=4,
            target="square_2x2", trials=1,
        )
        engine = BatchEngine(
            workers=1, use_cache=False, warm_coverage=False, retries=2
        )
        (result,) = engine.run([job])
        assert not result.ok
        assert result.attempts == 3
        delta = MetricsRegistry.delta(before, REGISTRY.snapshot())
        assert delta["counters"]["repro.service.job_retries"] == 2
        assert delta["counters"]["repro.service.jobs_failed"] == 1
        assert delta["counters"]["repro.service.job_errors"] == 3
        attempts = delta["histograms"]["repro.service.job_attempts"]
        assert attempts["count"] == 1 and attempts["total"] == 3.0


class TestConfigSwitch:
    def test_compiler_config_trace_field_round_trips(self):
        from repro.transpiler.compiler import CompilerConfig

        config = CompilerConfig(trace=True)
        assert CompilerConfig.from_json(config.to_json()) == config
        assert CompilerConfig().trace is False

    def test_config_trace_enables_tracing(self):
        import repro
        from repro.circuits.workloads import get_workload

        assert not TRACER.enabled
        circuit = get_workload("ghz", 4)
        repro.compile(
            circuit,
            target="square_2x2",
            config=repro.CompilerConfig(pipeline="fast", trace=True),
        )
        assert TRACER.enabled
        assert any(s.name == "compile" for s in TRACER.spans)

    def test_env_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert Tracer().enabled
        monkeypatch.setenv("REPRO_TRACE", "off")
        assert not Tracer().enabled
        monkeypatch.delenv("REPRO_TRACE")
        assert not Tracer().enabled
