"""Tests for the benchmark workload generators."""

import numpy as np
import pytest

from repro.circuits.simulation import simulate_statevector, zero_state
from repro.circuits.workloads import WORKLOADS, get_workload
from repro.circuits.workloads.adder import adder_register_layout, cuccaro_adder
from repro.circuits.workloads.multiplier import (
    draper_multiplier,
    multiplier_register_layout,
)
from repro.circuits.workloads.qft import qft
from repro.circuits.simulation import circuit_unitary


def _encode_bits(assignments: dict[int, int], num_qubits: int) -> np.ndarray:
    index = 0
    for qubit in range(num_qubits):
        index = (index << 1) | assignments.get(qubit, 0)
    state = np.zeros(2**num_qubits, dtype=complex)
    state[index] = 1.0
    return state


def _decode_register(state: np.ndarray, qubits: list[int], n: int) -> int:
    index = int(np.argmax(np.abs(state) ** 2))
    bits = [(index >> (n - 1 - q)) & 1 for q in range(n)]
    return sum(bits[q] << k for k, q in enumerate(qubits))


class TestRegistry:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_buildable_at_16(self, name):
        circuit = get_workload(name, 16)
        assert circuit.num_qubits == 16
        assert len(circuit) > 0
        assert all(g.num_qubits <= 2 for g in circuit)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_workload("frobnicate")

    def test_seeded_workloads_reproducible(self):
        a = get_workload("qaoa", 16, seed=11)
        b = get_workload("qaoa", 16, seed=11)
        assert [g.name for g in a] == [g.name for g in b]
        assert all(ga.params == gb.params for ga, gb in zip(a, b))

    def test_multiplier_size_validation(self):
        with pytest.raises(ValueError):
            get_workload("multiplier", 15)


class TestQFT:
    def test_matches_dft_matrix(self):
        for n in (2, 3, 4):
            dim = 2**n
            dft = np.array(
                [
                    [np.exp(2j * np.pi * x * y / dim) for y in range(dim)]
                    for x in range(dim)
                ]
            ) / np.sqrt(dim)
            assert np.allclose(circuit_unitary(qft(n)), dft, atol=1e-9)

    def test_no_swaps_variant(self):
        assert "swap" not in qft(4, with_swaps=False).count_ops()


class TestAdder:
    @pytest.mark.parametrize("bits", [1, 2, 3])
    def test_exhaustive_addition(self, bits):
        circuit = cuccaro_adder(bits)
        layout = adder_register_layout(bits)
        n = circuit.num_qubits
        for a in range(2**bits):
            for b in range(2**bits):
                assignments = {}
                for k in range(bits):
                    assignments[layout["a"][k]] = (a >> k) & 1
                    assignments[layout["b"][k]] = (b >> k) & 1
                out = simulate_statevector(
                    circuit, _encode_bits(assignments, n)
                )
                result = _decode_register(
                    out, layout["b"] + layout["cout"], n
                )
                assert result == a + b, (a, b)
                # a register restored
                assert _decode_register(out, layout["a"], n) == a

    def test_validation(self):
        with pytest.raises(ValueError):
            cuccaro_adder(0)


class TestMultiplier:
    def test_exhaustive_2bit_products(self):
        bits = 2
        circuit = draper_multiplier(bits)
        layout = multiplier_register_layout(bits)
        n = circuit.num_qubits
        for a in range(4):
            for b in range(4):
                assignments = {}
                for k in range(bits):
                    assignments[layout["a"][k]] = (a >> k) & 1
                    assignments[layout["b"][k]] = (b >> k) & 1
                out = simulate_statevector(
                    circuit, _encode_bits(assignments, n)
                )
                peak = np.max(np.abs(out) ** 2)
                assert peak > 0.999  # computational-basis output
                assert _decode_register(out, layout["out"], n) == a * b

    def test_only_two_qubit_gates(self):
        assert all(g.num_qubits <= 2 for g in draper_multiplier(4))


class TestStructuralProperties:
    def test_ghz_produces_ghz_state(self):
        state = simulate_statevector(get_workload("ghz", 4))
        expected = np.zeros(16, dtype=complex)
        expected[0] = expected[15] = 1 / np.sqrt(2)
        assert np.allclose(state, expected, atol=1e-9)

    def test_hlf_is_clifford_depth(self):
        circuit = get_workload("hlf", 16, seed=5)
        counts = circuit.count_ops()
        assert counts["h"] == 32  # two Hadamard walls
        assert counts.get("cz", 0) > 10

    def test_vqe_full_has_all_pairs(self):
        circuit = get_workload("vqe_full", 8)
        pairs = {
            tuple(sorted(g.qubits)) for g in circuit.two_qubit_gates()
        }
        assert len(pairs) == 8 * 7 // 2

    def test_quantum_volume_layers(self):
        circuit = get_workload("quantum_volume", 16, seed=3)
        assert len(circuit.two_qubit_gates()) == 16 * 8
        assert all(g.matrix is not None for g in circuit)

    def test_qaoa_regular_graph_edges(self):
        circuit = get_workload("qaoa", 16, seed=11)
        # 3-regular, 16 nodes: 24 edges, expanded as CX-RZ-CX per layer.
        counts = circuit.count_ops()
        assert counts["cx"] % 48 == 0
