"""Tests for the decoherence fidelity models (paper Eq. 10-11)."""

import math

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import asap_schedule
from repro.circuits.gate import Gate
from repro.transpiler.fidelity import (
    PAPER_FIDELITY_MODEL,
    FidelityModel,
    HeterogeneousFidelityModel,
)


class TestModel:
    def test_paper_quantum_volume_numbers(self):
        """The paper's QV sanity check: 133 units -> FQ 0.875, FT 0.119."""
        model = PAPER_FIDELITY_MODEL
        fq = model.path_fidelity(133.0)
        assert fq == pytest.approx(0.8756, abs=2e-3)
        assert model.total_fidelity(133.0, 16) == pytest.approx(0.119, abs=5e-3)

    def test_paper_optimized_quantum_volume(self):
        model = PAPER_FIDELITY_MODEL
        assert model.total_fidelity(118.4, 16) == pytest.approx(0.151, abs=5e-3)

    def test_one_q_normalized_duration(self):
        assert PAPER_FIDELITY_MODEL.one_q_duration == pytest.approx(0.25)

    def test_zero_duration_perfect(self):
        assert PAPER_FIDELITY_MODEL.path_fidelity(0.0) == 1.0
        assert PAPER_FIDELITY_MODEL.total_fidelity(0.0, 16) == 1.0

    def test_fidelity_monotone_in_duration(self):
        model = PAPER_FIDELITY_MODEL
        durations = np.linspace(0, 500, 20)
        values = [model.path_fidelity(d) for d in durations]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_exponential_in_qubits(self):
        model = PAPER_FIDELITY_MODEL
        fq = model.path_fidelity(50.0)
        assert model.total_fidelity(50.0, 4) == pytest.approx(fq**4)

    def test_gate_infidelity_paper_cnot(self):
        # Table VI: baseline CNOT at 1.75 units -> 1 - F = 0.0035.
        infidelity = PAPER_FIDELITY_MODEL.gate_infidelity(1.75)
        assert infidelity == pytest.approx(0.0035, abs=1e-4)

    def test_validation(self):
        with pytest.raises(ValueError):
            FidelityModel(t1_us=-1.0)
        with pytest.raises(ValueError):
            PAPER_FIDELITY_MODEL.path_fidelity(-2.0)
        with pytest.raises(ValueError):
            PAPER_FIDELITY_MODEL.total_fidelity(1.0, 0)

    def test_unit_conversion(self):
        assert PAPER_FIDELITY_MODEL.to_nanoseconds(2.5) == pytest.approx(250.0)


def _busy_schedule(num_qubits: int, duration: float):
    """Every wire busy for the whole makespan (no idle anywhere)."""
    circuit = QuantumCircuit(num_qubits, "busy")
    for q in range(num_qubits):
        circuit.append(Gate("u1q", (q,), duration=duration))
    return asap_schedule(circuit)


class TestHeterogeneousModel:
    def test_matches_uniform_model_without_idle(self):
        """With every wire busy for the whole makespan and no T2 term,
        the heterogeneous model reduces to Eq. 10-11 exactly."""
        model = HeterogeneousFidelityModel.uniform(
            4, t1_us=100.0, t2_us=math.inf
        )
        schedule = _busy_schedule(4, 133.0)
        assert model.circuit_fidelity(schedule) == pytest.approx(
            PAPER_FIDELITY_MODEL.total_fidelity(133.0, 4)
        )

    def test_uniform_constructor_defaults_t2(self):
        model = HeterogeneousFidelityModel.uniform(3, t1_us=80.0)
        assert model.t1_us == (80.0,) * 3
        assert model.t2_us == (160.0,) * 3

    def test_idle_costs_extra_through_t2(self):
        lazy = HeterogeneousFidelityModel.uniform(1, t1_us=100.0, t2_us=200.0)
        assert lazy.wire_fidelity(0, 10.0, 5.0) < lazy.wire_fidelity(
            0, 10.0, 0.0
        )
        free = HeterogeneousFidelityModel.uniform(
            1, t1_us=100.0, t2_us=math.inf
        )
        assert free.wire_fidelity(0, 10.0, 5.0) == free.wire_fidelity(
            0, 10.0, 0.0
        )

    def test_weak_qubit_dominates(self):
        strong = HeterogeneousFidelityModel(
            t1_us=(100.0, 100.0), t2_us=(200.0, 200.0)
        )
        weak = HeterogeneousFidelityModel(
            t1_us=(100.0, 10.0), t2_us=(200.0, 20.0)
        )
        schedule = _busy_schedule(2, 50.0)
        assert weak.circuit_fidelity(schedule) < strong.circuit_fidelity(
            schedule
        )

    def test_gateless_wires_are_free(self):
        model = HeterogeneousFidelityModel.uniform(3, t1_us=100.0)
        circuit = QuantumCircuit(3, "partial")
        circuit.append(Gate("u1q", (0,), duration=50.0))
        schedule = asap_schedule(circuit)
        lone = HeterogeneousFidelityModel.uniform(1, t1_us=100.0)
        assert model.circuit_fidelity(schedule) == pytest.approx(
            lone.circuit_fidelity(_busy_schedule(1, 50.0))
        )

    def test_wire_report(self):
        model = HeterogeneousFidelityModel.uniform(2, t1_us=100.0)
        circuit = QuantumCircuit(2, "r")
        circuit.append(Gate("u1q", (0,), duration=2.0))
        report = model.wire_report(asap_schedule(circuit))
        assert report[0]["busy"] == pytest.approx(2.0)
        assert report[0]["idle"] == pytest.approx(0.0)
        assert report[1]["gates"] == 0
        assert report[1]["fidelity"] == 1.0
        product = report[0]["fidelity"] * report[1]["fidelity"]
        assert model.circuit_fidelity(
            asap_schedule(circuit)
        ) == pytest.approx(product)

    def test_validation(self):
        with pytest.raises(ValueError):
            HeterogeneousFidelityModel(t1_us=(), t2_us=())
        with pytest.raises(ValueError):
            HeterogeneousFidelityModel(t1_us=(1.0,), t2_us=(1.0, 1.0))
        with pytest.raises(ValueError):
            HeterogeneousFidelityModel(t1_us=(-1.0,), t2_us=(1.0,))
        with pytest.raises(ValueError):
            HeterogeneousFidelityModel.uniform(0)
        model = HeterogeneousFidelityModel.uniform(1)
        with pytest.raises(ValueError):
            model.wire_fidelity(0, 1.0, 2.0)  # idle > exposure
        small = _busy_schedule(2, 1.0)
        with pytest.raises(ValueError, match="model describes"):
            HeterogeneousFidelityModel.uniform(1).circuit_fidelity(small)
