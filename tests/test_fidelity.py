"""Tests for the decoherence fidelity model (paper Eq. 10-11)."""

import numpy as np
import pytest

from repro.transpiler.fidelity import PAPER_FIDELITY_MODEL, FidelityModel


class TestModel:
    def test_paper_quantum_volume_numbers(self):
        """The paper's QV sanity check: 133 units -> FQ 0.875, FT 0.119."""
        model = PAPER_FIDELITY_MODEL
        fq = model.path_fidelity(133.0)
        assert fq == pytest.approx(0.8756, abs=2e-3)
        assert model.total_fidelity(133.0, 16) == pytest.approx(0.119, abs=5e-3)

    def test_paper_optimized_quantum_volume(self):
        model = PAPER_FIDELITY_MODEL
        assert model.total_fidelity(118.4, 16) == pytest.approx(0.151, abs=5e-3)

    def test_one_q_normalized_duration(self):
        assert PAPER_FIDELITY_MODEL.one_q_duration == pytest.approx(0.25)

    def test_zero_duration_perfect(self):
        assert PAPER_FIDELITY_MODEL.path_fidelity(0.0) == 1.0
        assert PAPER_FIDELITY_MODEL.total_fidelity(0.0, 16) == 1.0

    def test_fidelity_monotone_in_duration(self):
        model = PAPER_FIDELITY_MODEL
        durations = np.linspace(0, 500, 20)
        values = [model.path_fidelity(d) for d in durations]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_exponential_in_qubits(self):
        model = PAPER_FIDELITY_MODEL
        fq = model.path_fidelity(50.0)
        assert model.total_fidelity(50.0, 4) == pytest.approx(fq**4)

    def test_gate_infidelity_paper_cnot(self):
        # Table VI: baseline CNOT at 1.75 units -> 1 - F = 0.0035.
        infidelity = PAPER_FIDELITY_MODEL.gate_infidelity(1.75)
        assert infidelity == pytest.approx(0.0035, abs=1e-4)

    def test_validation(self):
        with pytest.raises(ValueError):
            FidelityModel(t1_us=-1.0)
        with pytest.raises(ValueError):
            PAPER_FIDELITY_MODEL.path_fidelity(-2.0)
        with pytest.raises(ValueError):
            PAPER_FIDELITY_MODEL.total_fidelity(1.0, 0)

    def test_unit_conversion(self):
        assert PAPER_FIDELITY_MODEL.to_nanoseconds(2.5) == pytest.approx(250.0)
