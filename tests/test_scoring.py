"""Tests for the scoring module's generic machinery."""

import numpy as np
import pytest

from repro.core.scoring import (
    DEFAULT_LAMBDA,
    frequency_weighted_score,
    weighted_score,
)
from repro.quantum.weyl import named_gate_coordinates


class TestWeightedScore:
    def test_paper_lambda_arithmetic(self):
        # Table I: K[W] for iSWAP = .47*2 + .53*3 = 2.53.
        assert weighted_score(2, 3) == pytest.approx(2.53, abs=0.01)

    def test_lambda_extremes(self):
        assert weighted_score(1.0, 9.0, lam=1.0) == 1.0
        assert weighted_score(1.0, 9.0, lam=0.0) == 9.0

    def test_lambda_validation(self):
        with pytest.raises(ValueError):
            weighted_score(1, 2, lam=1.5)


class TestFrequencyWeightedScore:
    def test_reduces_to_w_for_two_point_distribution(self, baseline_rules):
        coords = np.array(
            [
                named_gate_coordinates("CNOT"),
                named_gate_coordinates("SWAP"),
            ]
        )
        frequencies = np.array([731.0, 828.0])
        full = frequency_weighted_score(
            coords, frequencies, baseline_rules.duration
        )
        two_point = weighted_score(
            baseline_rules.duration(coords[0]),
            baseline_rules.duration(coords[1]),
            lam=DEFAULT_LAMBDA,
        )
        assert full == pytest.approx(two_point)

    def test_normalization_invariance(self, baseline_rules):
        coords = np.array(
            [
                named_gate_coordinates("CNOT"),
                named_gate_coordinates("iSWAP"),
            ]
        )
        once = frequency_weighted_score(
            coords, np.array([1.0, 3.0]), baseline_rules.duration
        )
        scaled = frequency_weighted_score(
            coords, np.array([10.0, 30.0]), baseline_rules.duration
        )
        assert once == pytest.approx(scaled)

    def test_validation(self, baseline_rules):
        coords = named_gate_coordinates("CNOT")[None, :]
        with pytest.raises(ValueError):
            frequency_weighted_score(
                coords, np.array([1.0, 2.0]), baseline_rules.duration
            )
        with pytest.raises(ValueError):
            frequency_weighted_score(
                coords, np.array([-1.0]), baseline_rules.duration
            )
        with pytest.raises(ValueError):
            frequency_weighted_score(
                coords, np.array([0.0]), baseline_rules.duration
            )

    def test_engine_prices_through_batched_durations(self, parallel_rules):
        # Passing the engine itself takes the durations_many fast path;
        # it must price identically to the scalar bound method.
        coords = np.array(
            [
                named_gate_coordinates("CNOT"),
                named_gate_coordinates("SWAP"),
                named_gate_coordinates("iSWAP"),
            ]
        )
        frequencies = np.array([731.0, 828.0, 150.0])
        batched = frequency_weighted_score(
            coords, frequencies, parallel_rules
        )
        scalar = frequency_weighted_score(
            coords, frequencies, parallel_rules.duration
        )
        assert batched == scalar

    def test_parallel_rules_beat_baseline_on_fig3b_mix(
        self, baseline_rules, parallel_rules
    ):
        # A CNOT/SWAP/iSWAP mix like the paper's shot chart.
        coords = np.array(
            [
                named_gate_coordinates("CNOT"),
                named_gate_coordinates("SWAP"),
                named_gate_coordinates("iSWAP"),
            ]
        )
        frequencies = np.array([731.0, 828.0, 150.0])
        base = frequency_weighted_score(
            coords, frequencies, baseline_rules.duration
        )
        optimized = frequency_weighted_score(
            coords, frequencies, parallel_rules.duration
        )
        assert optimized < base
