"""Tests for the end-to-end transpilation pipeline."""

import pytest

from repro.circuits.workloads import get_workload
from repro.transpiler.coupling import square_lattice
from repro.transpiler.layout import trivial_layout
from repro.transpiler.pipeline import transpile, transpile_once
from repro.transpiler.routing import route_circuit


@pytest.fixture(scope="module")
def lattice():
    return square_lattice(4, 4)


class TestTranspileOnce:
    def test_produces_priced_circuit(self, lattice, baseline_rules):
        circuit = get_workload("ghz", 16)
        result = transpile_once(
            circuit, lattice, baseline_rules,
            trivial_layout(16, lattice), seed=1,
        )
        assert result.duration > 0
        assert result.pulse_count > 0
        for gate in result.circuit:
            assert gate.name in ("pulse2q", "u1q")
            assert gate.duration is not None

    def test_shared_routing_isolates_decomposition(
        self, lattice, baseline_rules, parallel_rules
    ):
        circuit = get_workload("qft", 16)
        routed = route_circuit(
            circuit, lattice, trivial_layout(16, lattice), seed=3
        )
        base = transpile_once(
            circuit, lattice, baseline_rules,
            trivial_layout(16, lattice), routed=routed,
        )
        opt = transpile_once(
            circuit, lattice, parallel_rules,
            trivial_layout(16, lattice), routed=routed,
        )
        assert base.swap_count == opt.swap_count
        assert opt.duration < base.duration

    def test_total_pulse_time_bounded_by_duration_times_qubits(
        self, lattice, baseline_rules
    ):
        circuit = get_workload("hlf", 16)
        result = transpile_once(
            circuit, lattice, baseline_rules,
            trivial_layout(16, lattice), seed=2,
        )
        # Each pulse occupies two qubits; the circuit-wide pulse time
        # cannot exceed duration x qubits / 2.
        assert result.total_pulse_time <= result.duration * 8 + 1e-9


class TestBestOfN:
    def test_multi_trial_no_worse_than_single(self, lattice, baseline_rules):
        circuit = get_workload("qaoa", 16)
        single = transpile(circuit, lattice, baseline_rules, trials=1, seed=5)
        multi = transpile(circuit, lattice, baseline_rules, trials=5, seed=5)
        assert multi.duration <= single.duration + 1e-9

    def test_validation(self, lattice, baseline_rules):
        circuit = get_workload("ghz", 16)
        with pytest.raises(ValueError):
            transpile(circuit, lattice, baseline_rules, trials=0)


class TestPaperImprovements:
    @pytest.mark.parametrize("workload", ["ghz", "qft", "vqe_linear", "hlf"])
    def test_parallel_drive_improves_duration(
        self, lattice, baseline_rules, parallel_rules, workload
    ):
        circuit = get_workload(workload, 16)
        base = transpile(circuit, lattice, baseline_rules, trials=3, seed=7)
        opt = transpile(circuit, lattice, parallel_rules, trials=3, seed=7)
        improvement = (base.duration - opt.duration) / base.duration
        # Paper Table VII reports 11-28%; our fractional-pulse rule is
        # even cheaper on small controlled phases (QFT reaches ~44%), so
        # the accepted band is wider on the high side.
        assert 0.05 < improvement < 0.55, (
            f"{workload}: improvement {improvement:.1%} outside band"
        )
