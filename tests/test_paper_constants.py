"""Internal-consistency checks on the embedded paper constants.

The experiment drivers carry the paper's published table values for
comparison.  These tests confirm the transcriptions are arithmetically
self-consistent (e.g. every W column really is the lambda-weighted
combination of its CNOT and SWAP columns), guarding against copy
errors in the reference data itself.
"""

import numpy as np
import pytest

from repro.core.scoring import DEFAULT_LAMBDA
from repro.experiments.table7 import PAPER_TABLE7
from repro.experiments.tables import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    PAPER_TABLE5,
    PAPER_TABLE6,
)


class TestWeightedColumns:
    def test_table1_w_column(self):
        for basis, (k_cnot, k_swap, _, k_w) in PAPER_TABLE1.items():
            expected = DEFAULT_LAMBDA * k_cnot + (1 - DEFAULT_LAMBDA) * k_swap
            assert k_w == pytest.approx(expected, abs=0.011), basis

    def test_table3_w_column(self):
        for basis, (d_cnot, d_swap, _, d_w) in PAPER_TABLE3.items():
            expected = DEFAULT_LAMBDA * d_cnot + (1 - DEFAULT_LAMBDA) * d_swap
            assert d_w == pytest.approx(expected, abs=0.011), basis

    def test_table5_w_column(self):
        for basis, (d_cnot, d_swap, _, d_w) in PAPER_TABLE5.items():
            expected = DEFAULT_LAMBDA * d_cnot + (1 - DEFAULT_LAMBDA) * d_swap
            assert d_w == pytest.approx(expected, abs=0.011), basis


class TestEquationSevenConsistency:
    def test_table3_rows_follow_eq7(self):
        # D = K tmin + (K+1) D[1Q] with tmin = 0.5 for square roots,
        # 1.0 otherwise, D[1Q] = 0.25, K from Table I.
        for basis, (d_cnot, d_swap, _, _) in PAPER_TABLE3.items():
            k_cnot, k_swap, _, _ = PAPER_TABLE1[basis]
            tmin = 0.5 if basis.startswith("sqrt_") else 1.0
            assert d_cnot == pytest.approx(
                k_cnot * tmin + (k_cnot + 1) * 0.25, abs=0.011
            ), basis
            assert d_swap == pytest.approx(
                k_swap * tmin + (k_swap + 1) * 0.25, abs=0.011
            ), basis

    def test_table2_linear_scales_table1(self):
        for basis, row in PAPER_TABLE2["linear"].items():
            d_basis, d_cnot, d_swap = row[0], row[1], row[2]
            k_cnot, k_swap, _, _ = PAPER_TABLE1[basis]
            assert d_cnot == pytest.approx(k_cnot * d_basis, abs=0.02), basis
            assert d_swap == pytest.approx(k_swap * d_basis, abs=0.02), basis


class TestTable6Consistency:
    def test_infidelities_match_durations(self):
        # 1 - F = 1 - exp(-2 * D * 100ns / 100us) ~ 0.002 * D.
        durations = {
            "CNOT": (1.75, 1.50),
            "SWAP": (2.50, 2.25),
        }
        for target, (base_d, opt_d) in durations.items():
            paper_base, paper_opt, _ = PAPER_TABLE6[target]
            assert paper_base == pytest.approx(
                1 - np.exp(-2 * base_d * 1e-3), abs=5e-5
            ), target
            assert paper_opt == pytest.approx(
                1 - np.exp(-2 * opt_d * 1e-3), abs=5e-5
            ), target


class TestTable7Consistency:
    def test_duration_percent_matches_columns(self):
        for name, (base, opt, percent, _, _) in PAPER_TABLE7.items():
            computed = 100 * (base - opt) / base
            assert computed == pytest.approx(percent, abs=0.6), name

    def test_average_improvement_is_published_value(self):
        percents = [row[2] for row in PAPER_TABLE7.values()]
        assert np.mean(percents) == pytest.approx(17.84, abs=0.2)

    def test_fidelity_columns_follow_model(self):
        # FQ% = 100 (exp(-opt/1000) - exp(-base/1000)) / exp(-base/1000).
        for name, (base, opt, _, fq_percent, _) in PAPER_TABLE7.items():
            expected = 100 * (np.exp((base - opt) / 1000.0) - 1)
            assert fq_percent == pytest.approx(expected, rel=0.1), name
