"""Tests for explicit circuit synthesis (beyond duration templates)."""

import numpy as np
import pytest

from repro.core.synthesis import exterior_locals, synthesize_circuit
from repro.quantum import gates
from repro.quantum.random import haar_unitary, random_local_pair
from repro.quantum.weyl import named_gate_coordinates


class TestExteriorLocals:
    def test_recovers_dressing(self, rng):
        base = gates.canonical_gate(0.8, 0.5, 0.2)
        left = random_local_pair(rng)
        right = random_local_pair(rng)
        target = left @ base @ right
        k1l, k2l, k1r, k2r = exterior_locals(base, target)
        rebuilt = np.kron(k1l, k2l) @ base @ np.kron(k1r, k2r)
        from repro.quantum.linalg import allclose_up_to_global_phase

        assert allclose_up_to_global_phase(rebuilt, target, atol=1e-6)

    def test_rejects_different_class(self):
        with pytest.raises(ValueError):
            exterior_locals(gates.CNOT, gates.SWAP)


class TestAnalyticFamily:
    def test_iswap_target(self):
        result = synthesize_circuit(gates.ISWAP)
        assert result.pulse_count == 1
        assert result.verify(atol=1e-6)

    def test_sqrt_iswap_target(self):
        result = synthesize_circuit(gates.SQRT_ISWAP)
        assert result.pulse_count == 1
        assert result.verify(atol=1e-6)

    def test_local_gate_target(self, rng):
        result = synthesize_circuit(random_local_pair(rng))
        assert result.pulse_count == 0
        assert result.verify(atol=1e-6)

    def test_dcnot_is_iswap_family(self):
        result = synthesize_circuit(gates.DCNOT)
        assert result.pulse_count == 1
        assert result.verify(atol=1e-6)


@pytest.mark.slow
class TestNumericSynthesis:
    def test_cnot_two_pulses(self):
        result = synthesize_circuit(gates.CNOT, seed=3)
        assert result.pulse_count == 2
        assert result.infidelity < 1e-5
        assert result.verify(atol=1e-4)

    def test_swap_three_pulses(self):
        result = synthesize_circuit(gates.SWAP, seed=3)
        assert result.pulse_count == 3
        assert result.infidelity < 1e-5

    def test_random_targets(self, rng):
        for _ in range(3):
            target = haar_unitary(4, rng)
            result = synthesize_circuit(target, seed=5)
            assert result.pulse_count <= 3
            assert result.infidelity < 1e-4

    def test_emitted_circuit_vocabulary(self):
        result = synthesize_circuit(gates.CNOT, seed=3)
        names = {g.name for g in result.circuit}
        assert names <= {"u3", "can"}


@pytest.mark.slow
class TestRulesAgainstSynthesis:
    def test_transpiled_block_templates_are_achievable(self, baseline_rules):
        """Rule-assigned K values admit explicit K-pulse circuits.

        Routes a QFT, consolidates blocks, and for small-K blocks checks
        that an explicit synthesis with at most K pulses exists and
        simulates to the block unitary.
        """
        from repro.circuits import get_workload
        from repro.quantum.weyl import weyl_coordinates
        from repro.transpiler import (
            line_topology,
            route_circuit,
            trivial_layout,
        )
        from repro.transpiler.consolidate import (
            collect_2q_blocks,
            merge_1q_runs,
        )

        coupling = line_topology(6)
        circuit = get_workload("qft", 6)
        routed = route_circuit(
            circuit, coupling, trivial_layout(6, coupling), seed=1
        )
        blocked = collect_2q_blocks(merge_1q_runs(routed.circuit))
        checked = 0
        for gate in blocked:
            if gate.num_qubits != 2 or checked >= 3:
                continue
            coords = weyl_coordinates(gate.to_matrix())
            spec = baseline_rules.template_for(coords)
            if 0 < spec.k <= 2:
                result = synthesize_circuit(
                    gate.to_matrix(), max_pulses=spec.k, seed=3
                )
                assert result.pulse_count <= spec.k
                assert result.infidelity < 1e-4
                checked += 1
        assert checked >= 2
