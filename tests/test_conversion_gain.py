"""Tests for the conversion–gain gate-family module (paper Sec. II-A)."""

import numpy as np
import pytest

from repro.core.conversion_gain import (
    B_FAMILY,
    CNOT_FAMILY,
    ISWAP_CONVERSION_FAMILY,
    ISWAP_GAIN_FAMILY,
    cg_unitary,
    coordinates_for_drive,
    drive_angles_for_coordinates,
    drive_ratio,
    family_for_coordinates,
)
from repro.pulse.hamiltonian import conversion_gain_hamiltonian
from repro.pulse.evolution import propagate_piecewise
from repro.quantum.weyl import named_gate_coordinates


class TestUnitary:
    def test_matches_hamiltonian_evolution(self, rng):
        for _ in range(10):
            theta_c, theta_g = rng.uniform(0, np.pi, 2)
            phi_c, phi_g = rng.uniform(0, 2 * np.pi, 2)
            ham = conversion_gain_hamiltonian(theta_c, theta_g, phi_c, phi_g)
            evolved = propagate_piecewise([ham], [1.0])
            closed_form = cg_unitary(theta_c, theta_g, phi_c, phi_g)
            assert np.allclose(evolved, closed_form, atol=1e-10)

    def test_paper_eq2_zero_phase(self):
        theta_c, theta_g = 0.3, 0.7
        unitary = cg_unitary(theta_c, theta_g)
        assert unitary[1, 1] == pytest.approx(np.cos(theta_c))
        assert unitary[0, 3] == pytest.approx(-1j * np.sin(theta_g))


class TestCoordinateMaps:
    def test_round_trip(self, rng):
        for _ in range(30):
            # Round trip holds inside the fundamental cell
            # (theta_c + theta_g <= pi/2); beyond it, canonicalization
            # folds to an equivalent shorter pulse by design.
            theta_c = rng.uniform(0, np.pi / 2)
            theta_g = rng.uniform(0, min(theta_c, np.pi / 2 - theta_c))
            coords = coordinates_for_drive(theta_c, theta_g)
            back_c, back_g = drive_angles_for_coordinates(coords)
            assert (back_c, back_g) == pytest.approx((theta_c, theta_g))

    def test_iswap_drive(self):
        coords = coordinates_for_drive(np.pi / 2, 0.0)
        assert np.allclose(coords, named_gate_coordinates("iSWAP"))

    def test_cnot_drive_equal_ratio(self):
        # Paper Eq. 4: theta_c = theta_g = pi/4 hits CNOT.
        coords = coordinates_for_drive(np.pi / 4, np.pi / 4)
        assert np.allclose(coords, named_gate_coordinates("CNOT"))

    def test_b_gate_one_third_ratio(self):
        theta_c, theta_g = drive_angles_for_coordinates(
            named_gate_coordinates("B")
        )
        assert theta_g / theta_c == pytest.approx(1 / 3)

    def test_off_plane_rejected(self):
        with pytest.raises(ValueError):
            drive_angles_for_coordinates(np.array([1.0, 0.5, 0.2]))


class TestFamilies:
    def test_family_fractions(self):
        assert np.allclose(
            CNOT_FAMILY.coordinates(1.0), named_gate_coordinates("CNOT")
        )
        assert np.allclose(
            CNOT_FAMILY.coordinates(0.5), named_gate_coordinates("sqrt_CNOT")
        )
        assert np.allclose(
            B_FAMILY.coordinates(1.0), named_gate_coordinates("B")
        )
        assert np.allclose(
            ISWAP_CONVERSION_FAMILY.coordinates(0.5),
            named_gate_coordinates("sqrt_iSWAP"),
        )

    def test_gain_family_mirrors_conversion(self):
        conversion = ISWAP_CONVERSION_FAMILY.coordinates(0.7)
        gain = ISWAP_GAIN_FAMILY.coordinates(0.7)
        assert np.allclose(conversion, gain)  # same class, different pump

    def test_family_detection(self):
        family = family_for_coordinates(named_gate_coordinates("B"))
        assert family.beta == pytest.approx(1 / 3)
        family = family_for_coordinates(named_gate_coordinates("CNOT"))
        assert family.beta == pytest.approx(1.0)

    def test_drive_ratio_iswap_is_zero(self):
        assert drive_ratio(named_gate_coordinates("iSWAP")) == 0.0
