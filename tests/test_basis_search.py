"""Tests for the best-basis search (paper Figs. 5-6)."""

import numpy as np
import pytest

from repro.core.basis_search import (
    CandidateBasis,
    default_candidates,
    fractional_iswap_curve,
    score_candidate,
)
from repro.core.coverage import haar_coordinate_samples
from repro.core.speed_limit import LinearSpeedLimit
from repro.quantum.weyl import named_gate_coordinates


@pytest.fixture(scope="module")
def haar():
    return haar_coordinate_samples(1500, seed=99)


class TestCandidates:
    def test_grid_contains_named_bases(self):
        labels = {c.label for c in default_candidates()}
        assert {"iSWAP^1", "iSWAP^0.5", "CNOT^1", "B^1"} <= labels

    def test_candidate_coordinates(self):
        full_iswap = CandidateBasis("iSWAP", beta=0.0, fraction=1.0)
        assert np.allclose(
            full_iswap.coordinates, named_gate_coordinates("iSWAP")
        )
        half_cnot = CandidateBasis("CNOT", beta=1.0, fraction=0.5)
        assert np.allclose(
            half_cnot.coordinates, named_gate_coordinates("sqrt_CNOT")
        )

    def test_drive_angles_split_by_ratio(self):
        candidate = CandidateBasis("B", beta=1 / 3, fraction=1.0)
        theta_c, theta_g = candidate.drive_angles
        assert theta_g / theta_c == pytest.approx(1 / 3)


class TestScoring:
    def test_sqrt_iswap_known_costs(self, haar):
        candidate = CandidateBasis("iSWAP", beta=0.0, fraction=0.5)
        score = score_candidate(candidate, LinearSpeedLimit(), 0.25, haar)
        # Table III row: D[CNOT]=1.75, D[SWAP]=2.50.
        assert score.d_cnot == pytest.approx(1.75)
        assert score.d_swap == pytest.approx(2.5)
        assert score.pulse_time == pytest.approx(0.5)

    def test_quarter_iswap_named_counts(self, haar):
        # Sec. IV: the 4th-root iSWAP needs 4 pulses for CNOT, 6 for SWAP.
        candidate = CandidateBasis("iSWAP", beta=0.0, fraction=0.25)
        score = score_candidate(candidate, LinearSpeedLimit(), 0.25, haar)
        assert score.d_cnot == pytest.approx(4 * 0.25 + 5 * 0.25)
        assert score.d_swap == pytest.approx(6 * 0.25 + 7 * 0.25)

    def test_metric_lookup(self, haar):
        candidate = CandidateBasis("iSWAP", beta=0.0, fraction=0.5)
        score = score_candidate(candidate, LinearSpeedLimit(), 0.25, haar)
        assert score.metric("cnot") == score.d_cnot
        assert score.metric("w") == score.d_weighted
        with pytest.raises(KeyError):
            score.metric("nope")


class TestFig6Curve:
    @pytest.fixture(scope="class")
    def curves(self):
        return fractional_iswap_curve(
            fractions=(0.25, 0.5, 1.0), samples_per_k=1000
        )

    def test_free_1q_favors_short_pulses(self, curves):
        # With D[1Q] = 0, shorter fractional bases always win (Fig. 6).
        points = dict(curves[0.0])
        assert points[0.25] < points[0.5] < points[1.0]

    def test_appreciable_1q_favors_sqrt_iswap(self, curves):
        # At D[1Q] = 0.25 the optimum moves to the half pulse.
        points = dict(curves[0.25])
        assert points[0.5] < points[0.25]
        assert points[0.5] < points[1.0]

    def test_expected_duration_close_to_paper(self, curves):
        # Fig. 6 / Table III: E[D[Haar]] of sqrt(iSWAP) at D[1Q]=0.25 is
        # about 1.91 (without boost our hulls land slightly above).
        points = dict(curves[0.25])
        assert points[0.5] == pytest.approx(1.91, abs=0.2)
