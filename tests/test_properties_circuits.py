"""Property-based tests for the circuit and transpiler layers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import asap_schedule
from repro.circuits.qasm import from_qasm, to_qasm
from repro.circuits.simulation import circuit_unitary, permutation_matrix
from repro.quantum.linalg import allclose_up_to_global_phase
from repro.transpiler.consolidate import collect_2q_blocks, merge_1q_runs
from repro.transpiler.coupling import square_lattice
from repro.transpiler.layout import trivial_layout
from repro.transpiler.routing import route_circuit

_ONE_Q = ("h", "s", "t", "x", "sdg")
_TWO_Q = ("cx", "cz", "swap", "iswap")
_PARAM_1Q = ("rx", "ry", "rz", "p")
_PARAM_2Q = ("cp", "rzz")


@st.composite
def random_circuits(draw, num_qubits=4, max_gates=24):
    """Random circuits over the registry vocabulary."""
    circuit = QuantumCircuit(num_qubits)
    count = draw(st.integers(min_value=1, max_value=max_gates))
    for _ in range(count):
        kind = draw(st.integers(0, 3))
        if kind == 0:
            name = draw(st.sampled_from(_ONE_Q))
            circuit.add(name, [draw(st.integers(0, num_qubits - 1))])
        elif kind == 1:
            name = draw(st.sampled_from(_PARAM_1Q))
            angle = draw(st.floats(-np.pi, np.pi, allow_nan=False))
            circuit.add(name, [draw(st.integers(0, num_qubits - 1))], angle)
        elif kind == 2:
            name = draw(st.sampled_from(_TWO_Q))
            a = draw(st.integers(0, num_qubits - 1))
            b = draw(st.integers(0, num_qubits - 2))
            if b >= a:
                b += 1
            circuit.add(name, [a, b])
        else:
            name = draw(st.sampled_from(_PARAM_2Q))
            angle = draw(st.floats(-np.pi, np.pi, allow_nan=False))
            a = draw(st.integers(0, num_qubits - 1))
            b = draw(st.integers(0, num_qubits - 2))
            if b >= a:
                b += 1
            circuit.add(name, [a, b], angle)
    return circuit


@given(circuit=random_circuits())
@settings(max_examples=30, deadline=None)
def test_inverse_composition_is_identity(circuit):
    total = circuit.copy().compose(circuit.inverse())
    assert allclose_up_to_global_phase(
        circuit_unitary(total), np.eye(2**circuit.num_qubits), atol=1e-8
    )


@given(circuit=random_circuits())
@settings(max_examples=30, deadline=None)
def test_qasm_round_trip_preserves_unitary(circuit):
    parsed = from_qasm(to_qasm(circuit))
    assert allclose_up_to_global_phase(
        circuit_unitary(parsed), circuit_unitary(circuit), atol=1e-8
    )


@given(circuit=random_circuits())
@settings(max_examples=25, deadline=None)
def test_consolidation_preserves_unitary(circuit):
    blocked = collect_2q_blocks(merge_1q_runs(circuit))
    assert allclose_up_to_global_phase(
        circuit_unitary(blocked), circuit_unitary(circuit), atol=1e-8
    )


@given(circuit=random_circuits(), seed=st.integers(0, 2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_routing_preserves_unitary_up_to_permutation(circuit, seed):
    coupling = square_lattice(2, 2)
    routed = route_circuit(
        circuit, coupling, trivial_layout(4, coupling), seed=seed
    )
    for gate in routed.circuit:
        if gate.num_qubits == 2:
            assert coupling.are_adjacent(*gate.qubits)
    permutation = permutation_matrix(routed.final_permutation(), 4)
    assert allclose_up_to_global_phase(
        permutation @ circuit_unitary(circuit),
        circuit_unitary(routed.circuit),
        atol=1e-8,
    )


@given(circuit=random_circuits())
@settings(max_examples=25, deadline=None)
def test_schedule_invariants(circuit):
    priced = QuantumCircuit(circuit.num_qubits)
    for gate in circuit:
        from dataclasses import replace

        priced.append(replace(gate, duration=0.5 * gate.num_qubits))
    schedule = asap_schedule(priced)
    # Start times respect per-qubit ordering and the makespan bounds.
    assert schedule.total_duration >= max(
        schedule.durations, default=0.0
    )
    busy: dict[int, float] = {q: 0.0 for q in range(circuit.num_qubits)}
    for gate, start, duration in zip(
        priced, schedule.start_times, schedule.durations
    ):
        for q in gate.qubits:
            assert start >= busy[q] - 1e-12
            busy[q] = start + duration
    assert schedule.total_duration == max(busy.values())
