"""Tests for racing refinement (repro.synthesis.racing + strategy wiring).

Race semantics under test: the first refinement whose loss clears the
threshold wins and the rest are cancelled (``cancelled > 0`` on any
multi-candidate race with an early winner); a race nobody wins falls
back to the best completed refinement; and the accepted result is a
real refinement output — on the serial one-worker path it is the very
parameters the rank strategy would have produced.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs import metrics
from repro.synthesis import (
    RaceOutcome,
    RefinementRacer,
    SynthesisEngine,
)
from repro.quantum import gates

_LOSSES = {0: 0.5, 1: 2e-7, 2: 0.3, 3: 4e-9}


def _fake_refine(payload):
    """Pool-picklable stand-in for ``engine._refine_payload``."""
    index = payload[0]
    return index, np.full(3, float(index)), _LOSSES[index]


class TestRefinementRacer:
    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError, match="threshold must be positive"):
            RefinementRacer(threshold=0.0)

    def test_serial_race_stops_at_first_winner(self):
        racer = RefinementRacer(workers=1, threshold=1e-6)
        refined, outcome = racer.race(
            _fake_refine, [(i,) for i in range(4)]
        )
        # Quality order is the payload order; start 1 is the first to
        # clear the threshold, so starts 2 and 3 are never refined.
        assert outcome.winner == 1
        assert outcome.accepted
        assert outcome.completed == (0, 1)
        assert outcome.cancelled == 2
        assert set(refined) == {0, 1}
        assert refined[1][1] == pytest.approx(2e-7)

    def test_fallback_when_nothing_clears(self):
        racer = RefinementRacer(workers=1, threshold=1e-12)
        refined, outcome = racer.race(
            _fake_refine, [(i,) for i in range(4)]
        )
        assert outcome.winner is None
        assert not outcome.accepted
        assert outcome.cancelled == 0
        assert outcome.completed == (0, 1, 2, 3)
        assert len(refined) == 4

    def test_metrics_recorded(self):
        registry = metrics.REGISTRY
        before = registry.snapshot().get("counters", {}).get(
            "repro.synth.race.cancelled", 0
        )
        racer = RefinementRacer(workers=1, threshold=1e-6)
        racer.race(_fake_refine, [(i,) for i in range(4)])
        snapshot = registry.snapshot()
        assert (
            snapshot["counters"]["repro.synth.race.cancelled"] - before == 2
        )
        assert "repro.synth.race.accept_seconds" in snapshot["histograms"]

    def test_outcome_saved_estimate_scales_with_cancelled(self):
        racer = RefinementRacer(workers=1, threshold=1e-6)
        _, outcome = racer.race(_fake_refine, [(i,) for i in range(4)])
        mean = outcome.elapsed_seconds / len(outcome.completed)
        assert outcome.tail_latency_saved_seconds == pytest.approx(
            mean * outcome.cancelled
        )


class TestRaceStrategy:
    """strategy="race" wiring through SynthesisEngine.multistart."""

    @pytest.fixture(scope="class")
    def engine_and_template(self):
        engine = SynthesisEngine("piecewise", workers=1)
        template = engine.template(
            gc=1.0, gg=0.0, pulse_duration=np.pi / 2, repetitions=1
        )
        return engine, template

    def test_unknown_strategy_is_loud(self, engine_and_template):
        engine, template = engine_and_template
        with pytest.raises(ValueError, match="unknown multistart strategy"):
            engine.synthesize_multistart(
                template, gates.CNOT, starts=4, strategy="lottery"
            )

    def test_race_cancels_and_matches_rank_winner(self, engine_and_template):
        engine, template = engine_and_template
        registry = metrics.REGISTRY
        before = registry.snapshot().get("counters", {}).get(
            "repro.synth.race.cancelled", 0
        )
        rank = engine.synthesize_multistart(
            template, gates.CNOT, starts=8, refine=4, seed=7
        )
        race = engine.synthesize_multistart(
            template,
            gates.CNOT,
            starts=8,
            refine=4,
            seed=7,
            strategy="race",
            race_threshold=1e-6,
        )
        assert rank.race is None
        assert isinstance(race.race, RaceOutcome)
        assert race.race.accepted
        assert race.race.cancelled > 0
        cancelled = registry.snapshot()["counters"][
            "repro.synth.race.cancelled"
        ]
        assert cancelled - before == race.race.cancelled
        # The accepted result is a real refinement output: it clears
        # the threshold and is bit-identical to what the rank strategy
        # computed for the same start (one worker, same seed).
        assert race.best.loss < 1e-6
        assert race.race.winner in rank.refined_losses
        assert race.best.loss == rank.refined_losses[race.race.winner]
        # Only completed refinements are reported as refined.
        assert set(race.refined_indices) <= set(rank.refined_indices)
        assert len(race.refined_indices) < len(rank.refined_indices)

    def test_race_fallback_returns_best_completed(self, engine_and_template):
        engine, template = engine_and_template
        result = engine.synthesize_multistart(
            template,
            gates.CNOT,
            starts=6,
            refine=2,
            seed=7,
            max_iterations=3,  # starve the optimizer: nobody converges
            strategy="race",
            race_threshold=1e-30,
        )
        assert result.race is not None
        assert result.race.winner is None
        assert result.race.cancelled == 0
        assert not result.best.converged
        assert np.isfinite(result.best.loss)

    def test_pool_race_terminates_losers(self, engine_and_template):
        engine = SynthesisEngine("piecewise", workers=2)
        template = engine.template(
            gc=1.0, gg=0.0, pulse_duration=np.pi / 2, repetitions=1
        )
        result = engine.synthesize_multistart(
            template,
            gates.CNOT,
            starts=8,
            refine=4,
            seed=7,
            strategy="race",
            race_threshold=1e-6,
        )
        assert result.race is not None
        assert result.race.accepted
        assert result.best.loss < 1e-6
