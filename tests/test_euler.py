"""Tests for single-qubit Euler decompositions."""

import numpy as np
import pytest

from repro.quantum import gates
from repro.quantum.euler import u3_angles, xyx_angles, zyz_angles, zyz_matrix
from repro.quantum.linalg import allclose_up_to_global_phase
from repro.quantum.random import haar_unitary


class TestZYZ:
    def test_random_round_trip(self, rng):
        for _ in range(50):
            u = haar_unitary(2, rng)
            alpha, phi, theta, lam = zyz_angles(u)
            assert np.allclose(zyz_matrix(alpha, phi, theta, lam), u, atol=1e-9)

    @pytest.mark.parametrize(
        "matrix",
        [gates.I2, gates.X, gates.Y, gates.Z, gates.H, gates.S, gates.T,
         gates.SX, gates.rz(0.4), gates.ry(np.pi)],
        ids=["I", "X", "Y", "Z", "H", "S", "T", "SX", "rz", "ry_pi"],
    )
    def test_degenerate_cases(self, matrix):
        alpha, phi, theta, lam = zyz_angles(matrix)
        assert np.allclose(
            zyz_matrix(alpha, phi, theta, lam), matrix, atol=1e-9
        )

    def test_rejects_two_qubit(self):
        with pytest.raises(ValueError):
            zyz_angles(gates.CNOT)

    def test_rejects_non_unitary(self):
        with pytest.raises(ValueError):
            zyz_angles(np.array([[1, 1], [0, 1]], dtype=complex))


class TestXYX:
    def test_round_trip(self, rng):
        from repro.quantum.gates import rx, ry

        for _ in range(30):
            u = haar_unitary(2, rng)
            alpha, phi, theta, lam = xyx_angles(u)
            rebuilt = np.exp(1j * alpha) * rx(phi) @ ry(theta) @ rx(lam)
            assert np.allclose(rebuilt, u, atol=1e-9)


class TestU3:
    def test_matches_up_to_phase(self, rng):
        from repro.quantum.gates import u3

        for _ in range(30):
            u = haar_unitary(2, rng)
            theta, phi, lam = u3_angles(u)
            assert allclose_up_to_global_phase(u3(theta, phi, lam), u)
