"""Tests for the magic-basis transformations."""

import numpy as np
import pytest

from repro.quantum import gates
from repro.quantum.linalg import allclose_up_to_global_phase
from repro.quantum.magic import (
    from_magic_basis,
    is_orthogonal,
    local_pair_to_so4,
    so4_to_local_pair,
    to_magic_basis,
)
from repro.quantum.random import random_su2


class TestTransforms:
    def test_round_trip(self, rng):
        from repro.quantum.random import haar_unitary

        u = haar_unitary(4, rng)
        assert np.allclose(from_magic_basis(to_magic_basis(u)), u)

    def test_locals_become_orthogonal(self, rng):
        local = np.kron(random_su2(rng), random_su2(rng))
        assert is_orthogonal(to_magic_basis(local))

    def test_canonical_gates_become_diagonal(self):
        can = gates.canonical_gate(0.4, 0.3, 0.2)
        magic = to_magic_basis(can)
        assert np.allclose(magic, np.diag(np.diag(magic)))

    def test_entangler_not_orthogonal(self):
        assert not is_orthogonal(to_magic_basis(gates.SQRT_ISWAP))


class TestSO4Conversion:
    def test_so4_to_local_pair_roundtrip(self, rng):
        k1, k2 = random_su2(rng), random_su2(rng)
        ortho = local_pair_to_so4(k1, k2)
        assert is_orthogonal(ortho)
        phase, f1, f2 = so4_to_local_pair(ortho)
        reconstructed = phase * np.kron(f1, f2)
        assert allclose_up_to_global_phase(reconstructed, np.kron(k1, k2))

    def test_rejects_non_orthogonal(self):
        with pytest.raises(ValueError):
            so4_to_local_pair(to_magic_basis(gates.CNOT))

    def test_rejects_non_special_factors(self):
        with pytest.raises(ValueError):
            # S has det i, so kron(S, I) is not in SU(2) x SU(2).
            local_pair_to_so4(gates.S, gates.I2)


class TestOrthogonalPredicate:
    def test_identity(self):
        assert is_orthogonal(np.eye(4))

    def test_rejects_complex(self):
        assert not is_orthogonal(1j * np.eye(4))

    def test_rejects_rectangular(self):
        assert not is_orthogonal(np.ones((3, 4)))
