"""Property-based tests (hypothesis) for the quantum substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum import gates
from repro.quantum.kak import kak_decompose
from repro.quantum.linalg import allclose_up_to_global_phase
from repro.quantum.makhlin import makhlin_from_coordinates, makhlin_invariants
from repro.quantum.random import haar_unitary, random_local_pair
from repro.quantum.weyl import (
    canonicalize_coordinates,
    in_weyl_chamber,
    weyl_coordinates,
)

_angles = st.floats(
    min_value=-2 * np.pi,
    max_value=2 * np.pi,
    allow_nan=False,
    allow_infinity=False,
)
_seeds = st.integers(min_value=0, max_value=2**31 - 1)


@given(c1=_angles, c2=_angles, c3=_angles)
@settings(max_examples=60, deadline=None)
def test_canonicalization_lands_in_chamber(c1, c2, c3):
    folded = canonicalize_coordinates(np.array([c1, c2, c3]))
    assert in_weyl_chamber(folded)


@given(c1=_angles, c2=_angles, c3=_angles)
@settings(max_examples=60, deadline=None)
def test_canonicalization_preserves_class(c1, c2, c3):
    """Folding must not change the local-equivalence class."""
    raw = np.array([c1, c2, c3])
    folded = canonicalize_coordinates(raw)
    raw_invariants = makhlin_invariants(gates.canonical_gate(*raw))
    folded_invariants = makhlin_from_coordinates(folded)
    assert np.allclose(raw_invariants, folded_invariants, atol=1e-7)


@given(seed=_seeds)
@settings(max_examples=40, deadline=None)
def test_kak_reconstructs_haar_unitaries(seed):
    u = haar_unitary(4, seed)
    assert allclose_up_to_global_phase(
        kak_decompose(u).unitary(), u, atol=1e-6
    )


@given(seed=_seeds)
@settings(max_examples=40, deadline=None)
def test_weyl_coordinates_local_invariance(seed):
    rng = np.random.default_rng(seed)
    u = haar_unitary(4, rng)
    dressed = random_local_pair(rng) @ u @ random_local_pair(rng)
    assert np.allclose(
        weyl_coordinates(u), weyl_coordinates(dressed), atol=1e-6
    )


@given(seed=_seeds)
@settings(max_examples=40, deadline=None)
def test_invariants_consistent_with_coordinates(seed):
    u = haar_unitary(4, seed)
    assert np.allclose(
        makhlin_invariants(u),
        makhlin_from_coordinates(weyl_coordinates(u)),
        atol=1e-6,
    )


@given(seed=_seeds)
@settings(max_examples=30, deadline=None)
def test_adjoint_lands_on_mirror_class(seed):
    """U and U† are mirror classes: same invariants except the g2 sign.

    (The transpose, by contrast, preserves the class: it is the adjoint
    of the conjugate, and each of those mirrors once.)
    """
    u = haar_unitary(4, seed)
    direct = makhlin_invariants(u)
    adjoint = makhlin_invariants(u.conj().T)
    transposed = makhlin_invariants(u.T)
    assert np.allclose(direct[[0, 2]], adjoint[[0, 2]], atol=1e-7)
    assert abs(direct[1] + adjoint[1]) < 1e-7
    assert np.allclose(direct, transposed, atol=1e-7)
