"""The example scripts must run end to end (they are documentation)."""

import runpy
import sys
from pathlib import Path

import pytest

_EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def _run(name: str, argv: list[str] | None = None) -> None:
    path = _EXAMPLES / name
    old_argv = sys.argv
    sys.argv = [str(path)] + (argv or [])
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_examples_directory_complete():
    names = {p.name for p in _EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "basis_gate_selection.py",
        "batch_compile.py",
        "custom_backend.py",
        "custom_pipeline.py",
        "parallel_drive_cnot.py",
        "transpile_workload.py",
        "snail_characterization.py",
        "explicit_synthesis.py",
    } <= names


def test_quickstart_runs(capsys):
    _run("quickstart.py")
    out = capsys.readouterr().out
    assert "converged: True" in out


def test_snail_characterization_runs(capsys):
    _run("snail_characterization.py")
    out = capsys.readouterr().out
    assert "fitted boundary" in out


def test_parallel_drive_cnot_runs(capsys):
    _run("parallel_drive_cnot.py")
    out = capsys.readouterr().out
    assert "converged=True" in out


def test_custom_backend_runs(capsys):
    _run("custom_backend.py")
    out = capsys.readouterr().out
    assert "'ramp'" in out
    assert "converged=True" in out
    assert "repro synth exit code: 0" in out


@pytest.mark.slow
def test_explicit_synthesis_runs(capsys):
    _run("explicit_synthesis.py")
    out = capsys.readouterr().out
    assert "verified=True" in out
    assert "OPENQASM" in out


@pytest.mark.slow
def test_basis_gate_selection_runs(capsys):
    _run("basis_gate_selection.py")
    out = capsys.readouterr().out
    assert "best W-score basis" in out


@pytest.mark.slow
def test_transpile_workload_runs(capsys):
    _run("transpile_workload.py", ["ghz"])
    out = capsys.readouterr().out
    assert "duration improvement" in out


@pytest.mark.slow
def test_custom_pipeline_runs(capsys):
    _run("custom_pipeline.py", ["ghz"])
    out = capsys.readouterr().out
    assert "per-pass profile" in out
    assert "PulseHistogram" in out
    assert "pulse histogram of the winning trial" in out


@pytest.mark.slow
def test_batch_compile_runs(capsys, monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_DECOMP_CACHE_DIR", str(tmp_path))
    _run("batch_compile.py", ["smoke", "2"])
    out = capsys.readouterr().out
    assert "persistent cache" in out
    assert "faster" in out
