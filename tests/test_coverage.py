"""Tests for coverage sets (paper Alg. 2, Figs. 4/7/9)."""

import numpy as np
import pytest

from repro.core.coverage import (
    KCoverage,
    RegionHull,
    build_coverage_set,
    cache_enabled,
    expected_cost,
    haar_coordinate_samples,
)

_HALF_PI = np.pi / 2


class TestRegionHull:
    def test_full_dimensional_cube(self, rng):
        points = rng.uniform(0, 1, size=(200, 3))
        hull = RegionHull(points)
        assert hull.is_full_dimensional
        assert hull.contains(np.array([0.5, 0.5, 0.5]))[0]
        assert not hull.contains(np.array([2.0, 2.0, 2.0]))[0]

    def test_planar_region(self, rng):
        points = np.column_stack(
            [rng.uniform(0, 1, 100), rng.uniform(0, 1, 100), np.zeros(100)]
        )
        hull = RegionHull(points)
        assert hull.rank == 2
        assert hull.contains(np.array([0.5, 0.5, 0.0]))[0]
        assert not hull.contains(np.array([0.5, 0.5, 0.3]))[0]

    def test_line_segment(self):
        points = np.outer(np.linspace(0, 1, 20), np.array([1.0, 1.0, 0.0]))
        hull = RegionHull(points)
        assert hull.rank == 1
        assert hull.contains(np.array([0.5, 0.5, 0.0]))[0]
        assert not hull.contains(np.array([2.0, 2.0, 0.0]))[0]
        assert not hull.contains(np.array([0.5, 0.4, 0.0]))[0]

    def test_single_point(self):
        hull = RegionHull(np.tile([0.1, 0.2, 0.3], (5, 1)))
        assert hull.rank == 0
        assert hull.contains(np.array([0.1, 0.2, 0.3]))[0]
        assert not hull.contains(np.array([0.1, 0.2, 0.4]))[0]

    def test_vectorized_membership(self, rng):
        points = rng.uniform(0, 1, size=(100, 3))
        hull = RegionHull(points)
        queries = rng.uniform(-0.5, 1.5, size=(50, 3))
        results = hull.contains(queries)
        assert results.shape == (50,)

    def test_validation(self):
        with pytest.raises(ValueError):
            RegionHull(np.zeros((0, 3)))
        with pytest.raises(ValueError):
            RegionHull(np.zeros((5, 2)))


class TestCoverageSets:
    @pytest.fixture(scope="class")
    def sqrt_iswap_coverage(self):
        return build_coverage_set(
            gc=np.pi / 2, gg=0.0, pulse_duration=0.5, kmax=3,
            basis_name="sqrt_iswap_test", parallel=False,
            samples_per_k=1500, seed=8, steps_per_pulse=2, cache=False,
            synthesis_restarts=2, synthesis_iterations=800,
        )

    def test_min_k_monotone_against_membership(self, sqrt_iswap_coverage):
        haar = haar_coordinate_samples(500, seed=12)
        ks = sqrt_iswap_coverage.min_k(haar)
        for coords, k in zip(haar, ks):
            if k <= sqrt_iswap_coverage.kmax:
                region = sqrt_iswap_coverage.coverage_for(int(k))
                assert region.contains(coords)[0]

    def test_known_haar_fraction(self, sqrt_iswap_coverage):
        # ~79% of Haar gates fit in two sqrt(iSWAP) applications.
        haar = haar_coordinate_samples(2000, seed=13)
        fraction = sqrt_iswap_coverage.coverage_for(2).contains(haar).mean()
        assert 0.70 < fraction < 0.88

    def test_k3_covers_chamber(self, sqrt_iswap_coverage):
        haar = haar_coordinate_samples(2000, seed=14)
        fraction = sqrt_iswap_coverage.coverage_for(3).contains(haar).mean()
        assert fraction > 0.98

    def test_coverage_for_bounds(self, sqrt_iswap_coverage):
        with pytest.raises(ValueError):
            sqrt_iswap_coverage.coverage_for(0)
        with pytest.raises(ValueError):
            sqrt_iswap_coverage.coverage_for(7)

    def test_expected_haar_k(self, sqrt_iswap_coverage):
        haar = haar_coordinate_samples(2000, seed=15)
        expected, fractions = sqrt_iswap_coverage.expected_haar_k(haar)
        assert 2.1 < expected < 2.35  # paper: 2.21
        assert fractions.sum() == pytest.approx(1.0)


class TestCaching:
    def test_cache_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_COVERAGE_CACHE", raising=False)
        kwargs = dict(
            gc=np.pi / 2, gg=0.0, pulse_duration=1.0, kmax=1,
            basis_name="cache_test", parallel=False, samples_per_k=200,
            seed=3, boost_targets=False,
        )
        first = build_coverage_set(**kwargs)
        # Clouds persist in the sqlite-backed CoverageStore (the legacy
        # per-key .npz layout is read-only migration now).
        assert (tmp_path / "coverage.sqlite").exists()
        assert len(list(tmp_path.glob("*.npz"))) == 0
        second = build_coverage_set(**kwargs)
        haar = haar_coordinate_samples(300, seed=4)
        assert np.array_equal(
            first.min_k(haar), second.min_k(haar)
        )

    def test_cache_disabled_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_COVERAGE_CACHE", "off")
        build_coverage_set(
            gc=np.pi / 2, gg=0.0, pulse_duration=1.0, kmax=1,
            basis_name="cache_off_test", parallel=False,
            samples_per_k=150, seed=3, boost_targets=False,
        )
        assert not (tmp_path / "coverage.sqlite").exists()

    @pytest.mark.parametrize(
        "value",
        ["0", "false", "off", "no", "FALSE", "Off", "NO", " 0 ", "\tOff\n"],
    )
    def test_cache_disabled_spellings(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_COVERAGE_CACHE", value)
        assert not cache_enabled()

    @pytest.mark.parametrize("value", ["1", "true", "on", "yes", "", "anything"])
    def test_cache_enabled_spellings(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_COVERAGE_CACHE", value)
        assert cache_enabled()

    def test_cache_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_COVERAGE_CACHE", raising=False)
        assert cache_enabled()


class TestExpectedCost:
    def test_cheapest_candidate_wins(self):
        def cube(low: float, high: float) -> np.ndarray:
            axis = np.array([low, high])
            grid = np.meshgrid(axis, axis, axis, indexing="ij")
            return np.column_stack([g.ravel() for g in grid])

        big = RegionHull(cube(0.0, 1.0))
        small = RegionHull(cube(0.4, 0.6))
        big_region = KCoverage(k=1, left=big, right=None, num_points=8)
        small_region = KCoverage(k=1, left=small, right=None, num_points=8)
        samples = np.array([[0.5, 0.5, 0.5], [0.1, 0.1, 0.1]])
        cost = expected_cost(
            [(big_region, 2.0), (small_region, 1.0)], samples
        )
        # Center point priced at 1.0, outer point at 2.0.
        assert cost == pytest.approx(1.5)

    def test_uncovered_raises_without_fallback(self, rng):
        region = KCoverage(
            k=1,
            left=RegionHull(rng.uniform(0, 0.1, (50, 3))),
            right=None,
            num_points=50,
        )
        with pytest.raises(ValueError):
            expected_cost([(region, 1.0)], np.array([[0.9, 0.9, 0.9]]))

    def test_fallback_cost_applied(self, rng):
        region = KCoverage(
            k=1,
            left=RegionHull(rng.uniform(0, 0.1, (50, 3))),
            right=None,
            num_points=50,
        )
        cost = expected_cost(
            [(region, 1.0)], np.array([[0.9, 0.9, 0.9]]), fallback_cost=5.0
        )
        assert cost == pytest.approx(5.0)
