"""Shared fixtures.

Coverage-set fixtures reuse the sqlite-backed coverage store
(``~/.cache/repro-coverage/coverage.sqlite`` or ``REPRO_CACHE_DIR``),
so the first full test run pays the sampling cost once and later runs
are fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coverage import haar_coordinate_samples
from repro.core.decomposition_rules import (
    BaselineSqrtISwapRules,
    ParallelSqrtISwapRules,
)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic per-test RNG."""
    return np.random.default_rng(20230302)


@pytest.fixture(scope="session")
def haar_samples() -> np.ndarray:
    """Shared Haar coordinate sample set for scoring checks."""
    return haar_coordinate_samples(3000, seed=99)


@pytest.fixture(scope="session")
def baseline_rules() -> BaselineSqrtISwapRules:
    """Baseline sqrt(iSWAP) rules with warmed coverage."""
    rules = BaselineSqrtISwapRules()
    _ = rules.coverage
    return rules


@pytest.fixture(scope="session")
def parallel_rules() -> ParallelSqrtISwapRules:
    """Parallel-drive rules with warmed extended coverage."""
    rules = ParallelSqrtISwapRules()
    _ = rules.iswap_parallel_k1
    _ = rules.sqrt_parallel_k1
    _ = rules.sqrt_parallel_k2
    return rules
