"""Tests for the amplitude-damping validation of the fidelity model."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gate import Gate
from repro.pulse.decoherence import (
    amplitude_damping_kraus,
    apply_channel,
    evolve_with_damping,
    simulate_circuit_fidelity,
    state_fidelity,
)


class TestChannel:
    def test_kraus_completeness(self):
        for gamma in (0.0, 0.3, 1.0):
            k0, k1 = amplitude_damping_kraus(gamma)
            assert np.allclose(
                k0.conj().T @ k0 + k1.conj().T @ k1, np.eye(2)
            )

    def test_gamma_validation(self):
        with pytest.raises(ValueError):
            amplitude_damping_kraus(1.5)

    def test_excited_state_decays(self):
        rho = np.diag([0.0, 1.0]).astype(complex)
        kraus = amplitude_damping_kraus(0.4)
        damped = apply_channel(rho, kraus, 0, 1)
        assert damped[0, 0] == pytest.approx(0.4)
        assert damped[1, 1] == pytest.approx(0.6)

    def test_ground_state_fixed_point(self):
        rho = np.diag([1.0, 0.0]).astype(complex)
        kraus = amplitude_damping_kraus(0.7)
        assert np.allclose(apply_channel(rho, kraus, 0, 1), rho)

    def test_trace_preserved_multi_qubit(self, rng):
        dim = 8
        mat = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
        rho = mat @ mat.conj().T
        rho /= np.trace(rho)
        kraus = amplitude_damping_kraus(0.25)
        damped = apply_channel(rho, kraus, 1, 3)
        assert np.trace(damped) == pytest.approx(1.0)


class TestModelValidation:
    def test_excited_wire_matches_exponential(self):
        # A single excited qubit idling for duration D has exactly
        # FQ = exp(-D/T1): the model's base case.
        circuit = QuantumCircuit(1)
        circuit.x(0)
        circuit.append(Gate("id", (0,), duration=2.0))
        rho = evolve_with_damping(circuit, t1=10.0)
        assert rho[2 - 1, 2 - 1].real == pytest.approx(
            np.exp(-2.0 / 10.0), abs=1e-9
        )

    def test_ghz_fidelity_tracks_model(self):
        # GHZ states decay at about half the all-excited rate per qubit
        # (only the |11..1> branch damps), so the Eq. 10-11 model is a
        # lower bound of the right order.
        circuit = QuantumCircuit(3)
        circuit.h(0)
        for q in range(2):
            circuit.append(Gate("cx", (q, q + 1), duration=0.5))
        simulated, model = simulate_circuit_fidelity(circuit, t1=20.0)
        assert 0 < model < simulated <= 1.0
        assert simulated - model < 0.2

    def test_excited_register_matches_model_closely(self):
        # The all-excited product state is the model's worst case and
        # should match exp(-N D / T1) tightly.
        circuit = QuantumCircuit(3)
        for q in range(3):
            circuit.append(Gate("x", (q,), duration=0.25))
        circuit.append(Gate("id", (0,), duration=2.0))
        simulated, model = simulate_circuit_fidelity(circuit, t1=15.0)
        assert simulated == pytest.approx(model, rel=0.02)

    def test_qubit_cap(self):
        with pytest.raises(ValueError):
            evolve_with_damping(QuantumCircuit(7).h(0), t1=1.0)

    def test_state_fidelity_pure_match(self):
        psi = np.array([1, 0, 0, 0], dtype=complex)
        rho = np.outer(psi, psi.conj())
        assert state_fidelity(rho, psi) == pytest.approx(1.0)
