"""Tests for the circuit IR: gates, circuits, scheduling."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import asap_schedule, dependency_layers
from repro.circuits.gate import Gate, gate_matrix
from repro.circuits.simulation import circuit_unitary
from repro.quantum.gates import CNOT, H, I2
from repro.quantum.linalg import allclose_up_to_global_phase


class TestGate:
    def test_matrix_resolution(self):
        assert np.allclose(Gate("h", (0,)).to_matrix(), H)
        assert np.allclose(Gate("cx", (0, 1)).to_matrix(), CNOT)

    def test_explicit_matrix_wins(self):
        gate = Gate("weird", (0,), matrix=H)
        assert np.allclose(gate.to_matrix(), H)

    def test_matrix_shape_validated(self):
        with pytest.raises(ValueError):
            Gate("bad", (0, 1), matrix=np.eye(2)).to_matrix()

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            Gate("frobnicate", (0,)).to_matrix()

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(ValueError):
            Gate("cx", (1, 1))

    def test_inverse_parameterized(self):
        gate = Gate("rz", (0,), params=(0.7,))
        inverse = gate.inverse()
        assert np.allclose(
            gate.to_matrix() @ inverse.to_matrix(), I2, atol=1e-10
        )

    @pytest.mark.parametrize(
        "name,qubits,params",
        [
            ("h", (0,), ()),
            ("s", (0,), ()),
            ("t", (0,), ()),
            ("sx", (0,), ()),
            ("rx", (0,), (0.4,)),
            ("u3", (0,), (0.3, 0.7, -0.2)),
            ("cp", (0, 1), (1.1,)),
            ("iswap", (0, 1), ()),
            ("sqrt_iswap", (0, 1), ()),
            ("swap", (0, 1), ()),
            ("can", (0, 1), (0.5, 0.3, 0.1)),
        ],
    )
    def test_inverse_property(self, name, qubits, params):
        gate = Gate(name, qubits, params=params)
        product = gate.to_matrix() @ gate.inverse().to_matrix()
        assert allclose_up_to_global_phase(
            product, np.eye(product.shape[0]), atol=1e-9
        )

    def test_remapped(self):
        gate = Gate("cx", (0, 1))
        assert gate.remapped({0: 5, 1: 2}).qubits == (5, 2)


class TestCircuit:
    def test_append_validates_indices(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(ValueError):
            circuit.cx(0, 5)

    def test_builder_chain(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        assert len(circuit) == 2
        assert circuit.depth() == 2

    def test_count_ops(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).cx(1, 2).h(2)
        counts = circuit.count_ops()
        assert counts["h"] == 2
        assert counts["cx"] == 2

    def test_compose_with_mapping(self):
        inner = QuantumCircuit(2).cx(0, 1)
        outer = QuantumCircuit(4)
        outer.compose(inner, qubits=[3, 1])
        assert outer[0].qubits == (3, 1)

    def test_compose_size_mismatch(self):
        with pytest.raises(ValueError):
            QuantumCircuit(4).compose(QuantumCircuit(2), qubits=[0])

    def test_inverse_cancels(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).t(1).cx(0, 1).rz(0.3, 1).iswap(0, 1)
        total = circuit.copy().compose(circuit.inverse())
        assert allclose_up_to_global_phase(
            circuit_unitary(total), np.eye(4), atol=1e-9
        )

    def test_ccx_matches_toffoli(self):
        circuit = QuantumCircuit(3).ccx(0, 1, 2)
        toffoli = np.eye(8, dtype=complex)
        toffoli[6:, 6:] = np.array([[0, 1], [1, 0]])
        assert allclose_up_to_global_phase(
            circuit_unitary(circuit), toffoli, atol=1e-9
        )

    def test_depth_parallel_gates(self):
        circuit = QuantumCircuit(4)
        circuit.h(0).h(1).h(2).h(3).cx(0, 1).cx(2, 3)
        assert circuit.depth() == 2


class TestScheduling:
    def test_asap_respects_dependencies(self):
        circuit = QuantumCircuit(2)
        circuit.append(Gate("h", (0,), duration=1.0))
        circuit.append(Gate("cx", (0, 1), duration=2.0))
        circuit.append(Gate("h", (1,), duration=1.0))
        schedule = asap_schedule(circuit)
        assert schedule.start_times == (0.0, 1.0, 3.0)
        assert schedule.total_duration == 4.0

    def test_parallel_wires_overlap(self):
        circuit = QuantumCircuit(2)
        circuit.append(Gate("h", (0,), duration=3.0))
        circuit.append(Gate("h", (1,), duration=1.0))
        schedule = asap_schedule(circuit)
        assert schedule.total_duration == 3.0
        assert schedule.qubit_finish_times == (3.0, 1.0)

    def test_missing_durations_are_virtual(self):
        circuit = QuantumCircuit(1).h(0).h(0)
        assert asap_schedule(circuit).total_duration == 0.0

    def test_negative_duration_rejected(self):
        circuit = QuantumCircuit(1)
        circuit.append(Gate("h", (0,), duration=-1.0))
        with pytest.raises(ValueError):
            asap_schedule(circuit)

    def test_critical_path_is_connected_chain(self):
        circuit = QuantumCircuit(3)
        circuit.append(Gate("h", (0,), duration=1.0))
        circuit.append(Gate("cx", (0, 1), duration=1.0))
        circuit.append(Gate("cx", (1, 2), duration=1.0))
        schedule = asap_schedule(circuit)
        path = schedule.critical_path()
        assert path == [0, 1, 2]

    def test_dependency_layers(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).h(1).cx(0, 1).h(2)
        layers = dependency_layers(circuit)
        assert layers[0] == [0, 1, 3]
        assert layers[1] == [2]
