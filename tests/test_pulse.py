"""Tests for the pulse substrate: operators, Hamiltonians, evolution."""

import numpy as np
import pytest

from repro.pulse.evolution import (
    batched_piecewise_propagators,
    batched_step_propagators,
    propagate_piecewise,
    step_propagator,
)
from repro.pulse.hamiltonian import (
    ConversionGainParameters,
    conversion_gain_hamiltonian,
    parallel_drive_hamiltonian,
)
from repro.pulse.operators import (
    conversion_operator,
    drive_operator,
    gain_operator,
    pauli_string,
    qubit_lowering,
)
from repro.pulse.schedule import ParallelDriveSchedule
from repro.quantum.gates import ISWAP, canonical_gate
from repro.quantum.linalg import allclose_up_to_global_phase, is_hermitian, is_unitary


class TestOperators:
    def test_conversion_is_inner_block_xy(self):
        op = conversion_operator(0.0)
        assert np.allclose(op, (pauli_string("XX") + pauli_string("YY")) / 2)

    def test_gain_is_outer_block(self):
        op = gain_operator(0.0)
        assert np.allclose(op, (pauli_string("XX") - pauli_string("YY")) / 2)

    def test_operators_hermitian_for_any_phase(self):
        for phi in (0.0, 0.7, np.pi, 4.0):
            assert is_hermitian(conversion_operator(phi))
            assert is_hermitian(gain_operator(phi))

    def test_drive_operator_is_x(self):
        assert np.allclose(drive_operator(0), pauli_string("XI"))
        assert np.allclose(drive_operator(1), pauli_string("IX"))

    def test_lowering_shape(self):
        low = qubit_lowering(0, 2)
        assert low.shape == (4, 4)
        # a|10> = |00>
        state = np.zeros(4)
        state[2] = 1
        assert np.allclose(low @ state, [1, 0, 0, 0])

    def test_pauli_string_validation(self):
        with pytest.raises(ValueError):
            pauli_string("XQ")
        with pytest.raises(ValueError):
            pauli_string("")


class TestHamiltonians:
    def test_conversion_gain_hermitian(self):
        ham = conversion_gain_hamiltonian(0.3, 0.7, 1.1, 0.2)
        assert is_hermitian(ham)

    def test_parallel_drive_adds_x_terms(self):
        base = conversion_gain_hamiltonian(0.3, 0.7)
        driven = parallel_drive_hamiltonian(0.3, 0.7, eps1=0.5, eps2=0.2)
        delta = driven - base
        expected = 0.5 * pauli_string("XI") + 0.2 * pauli_string("IX")
        assert np.allclose(delta, expected)

    def test_iswap_from_conversion_only(self):
        # The conversion drive generates CAN(pi/2, pi/2, 0): the -i sign
        # convention of the iSWAP class (locally equivalent to ISWAP).
        ham = conversion_gain_hamiltonian(np.pi / 2, 0.0)
        unitary = propagate_piecewise([ham], [1.0])
        assert allclose_up_to_global_phase(
            unitary, canonical_gate(np.pi / 2, np.pi / 2, 0), atol=1e-9
        )
        from repro.quantum.makhlin import locally_equivalent

        assert locally_equivalent(unitary, ISWAP)

    def test_cnot_class_from_equal_drives(self):
        # Paper Eq. 4: theta_c = theta_g = pi/4 gives the CNOT class.
        ham = conversion_gain_hamiltonian(np.pi / 4, np.pi / 4)
        unitary = propagate_piecewise([ham], [1.0])
        assert allclose_up_to_global_phase(
            unitary, canonical_gate(np.pi / 2, 0, 0), atol=1e-9
        )

    def test_parameters_validation(self):
        with pytest.raises(ValueError):
            ConversionGainParameters(gc=1.0, gg=0.0, duration=0.0)
        with pytest.raises(ValueError):
            ConversionGainParameters(
                gc=1.0, gg=0.0, duration=1.0, eps1=(1.0,), eps2=(1.0, 2.0)
            )

    def test_parameters_angles(self):
        params = ConversionGainParameters(gc=2.0, gg=0.5, duration=0.25)
        assert params.theta_c == pytest.approx(0.5)
        assert params.theta_g == pytest.approx(0.125)


class TestEvolution:
    def test_step_propagator_matches_expm(self, rng):
        from scipy.linalg import expm

        ham = conversion_gain_hamiltonian(0.4, 0.9, 0.3, 1.7)
        assert np.allclose(
            step_propagator(ham, 0.37), expm(-1j * ham * 0.37), atol=1e-10
        )

    def test_piecewise_order(self):
        # Two non-commuting steps: order must be first-step-first.
        h1 = parallel_drive_hamiltonian(1.0, 0.0)
        h2 = parallel_drive_hamiltonian(0.0, 0.0, eps1=1.0)
        combined = propagate_piecewise([h1, h2], [0.5, 0.5])
        manual = step_propagator(h2, 0.5) @ step_propagator(h1, 0.5)
        assert np.allclose(combined, manual)

    def test_piecewise_validation(self):
        with pytest.raises(ValueError):
            propagate_piecewise([np.eye(4)], [0.1, 0.2])
        with pytest.raises(ValueError):
            propagate_piecewise([], [])

    def test_piecewise_parity_with_scalar_loop(self, rng):
        # propagate_piecewise now rides one stacked eigendecomposition
        # (batched_step_propagators); it must match the historical
        # scalar step_propagator loop on every schedule shape.
        for num_steps in (1, 3, 7):
            hams = rng.normal(size=(num_steps, 4, 4)) + 1j * rng.normal(
                size=(num_steps, 4, 4)
            )
            hams = hams + np.conj(np.transpose(hams, (0, 2, 1)))
            dts = rng.uniform(0.05, 0.4, size=num_steps)
            old_loop = np.eye(4, dtype=complex)
            for ham, dt in zip(hams, dts):
                old_loop = step_propagator(ham, float(dt)) @ old_loop
            batched = propagate_piecewise(list(hams), list(dts))
            assert np.allclose(batched, old_loop, atol=1e-13)

    def test_batched_matches_loop(self, rng):
        hams = rng.normal(size=(8, 4, 4))
        hams = hams + np.transpose(hams, (0, 2, 1))  # symmetrize
        batched = batched_step_propagators(hams, 0.3)
        for index in range(8):
            assert np.allclose(
                batched[index], step_propagator(hams[index], 0.3), atol=1e-10
            )

    def test_batched_piecewise_matches_loop(self, rng):
        steps = rng.normal(size=(5, 3, 4, 4))
        steps = steps + np.transpose(steps, (0, 1, 3, 2))
        dts = np.array([0.2, 0.3, 0.1])
        batched = batched_piecewise_propagators(steps, dts)
        for index in range(5):
            manual = propagate_piecewise(list(steps[index]), list(dts))
            assert np.allclose(batched[index], manual, atol=1e-10)

    def test_batched_piecewise_shape_validation(self):
        with pytest.raises(ValueError):
            batched_piecewise_propagators(np.zeros((3, 4, 4)), [0.1])


class TestSchedule:
    def test_full_iswap_pulse(self):
        schedule = ParallelDriveSchedule.from_drives(
            gc=np.pi / 2, gg=0.0, duration=1.0
        )
        assert allclose_up_to_global_phase(
            schedule.unitary(), canonical_gate(np.pi / 2, np.pi / 2, 0)
        )

    def test_driven_pulse_unitary(self):
        schedule = ParallelDriveSchedule.from_drives(
            gc=np.pi / 2, gg=0.0, duration=1.0,
            eps1=(3.0, 3.0, 3.0, 3.0), eps2=(0.0, 0.0, 0.0, 0.0),
        )
        assert is_unitary(schedule.unitary())

    def test_partial_unitaries_endpoints(self):
        schedule = ParallelDriveSchedule.from_drives(
            gc=np.pi / 2, gg=0.0, duration=1.0, eps1=(1.0, 2.0), eps2=(0.5, 0.5)
        )
        partials = schedule.partial_unitaries(substeps_per_step=4)
        assert np.allclose(partials[0], np.eye(4))
        assert np.allclose(partials[-1], schedule.unitary(), atol=1e-9)
        assert len(partials) == 2 * 4 + 1

    def test_partial_unitaries_validation(self):
        schedule = ParallelDriveSchedule.from_drives(
            gc=1.0, gg=0.0, duration=1.0
        )
        with pytest.raises(ValueError):
            schedule.partial_unitaries(substeps_per_step=0)
