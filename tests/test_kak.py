"""Tests for the KAK (Cartan) decomposition."""

import numpy as np
import pytest

from repro.quantum import gates
from repro.quantum.kak import kak_decompose
from repro.quantum.linalg import allclose_up_to_global_phase
from repro.quantum.random import haar_unitary, random_local_pair
from repro.quantum.weyl import in_weyl_chamber, weyl_coordinates


class TestReconstruction:
    def test_random_unitaries(self, rng):
        for _ in range(50):
            u = haar_unitary(4, rng)
            decomposition = kak_decompose(u)
            assert allclose_up_to_global_phase(
                decomposition.unitary(), u, atol=1e-6
            )

    @pytest.mark.parametrize(
        "matrix",
        [
            np.eye(4), gates.CNOT, gates.CZ, gates.SWAP, gates.ISWAP,
            gates.DCNOT, gates.B_GATE, gates.SQRT_ISWAP, gates.SQRT_CNOT,
            gates.SQRT_B, gates.cphase(0.3),
        ],
        ids=[
            "I", "CNOT", "CZ", "SWAP", "iSWAP", "DCNOT", "B",
            "sqrt_iSWAP", "sqrt_CNOT", "sqrt_B", "cphase",
        ],
    )
    def test_degenerate_spectra(self, matrix):
        decomposition = kak_decompose(matrix)
        assert allclose_up_to_global_phase(
            decomposition.unitary(), matrix, atol=1e-6
        )

    def test_pure_local_gate(self, rng):
        local = random_local_pair(rng)
        decomposition = kak_decompose(local)
        assert np.allclose(decomposition.coordinates, 0.0, atol=1e-6)
        assert allclose_up_to_global_phase(
            decomposition.unitary(), local, atol=1e-6
        )


class TestStructure:
    def test_coordinates_canonical(self, rng):
        for _ in range(30):
            decomposition = kak_decompose(haar_unitary(4, rng))
            assert in_weyl_chamber(decomposition.coordinates)

    def test_coordinates_match_weyl_module(self, rng):
        for _ in range(30):
            u = haar_unitary(4, rng)
            assert np.allclose(
                kak_decompose(u).coordinates,
                weyl_coordinates(u),
                atol=1e-6,
            )

    def test_locals_are_special_unitary(self, rng):
        decomposition = kak_decompose(haar_unitary(4, rng))
        for factor in (
            decomposition.k1l,
            decomposition.k2l,
            decomposition.k1r,
            decomposition.k2r,
        ):
            assert factor.shape == (2, 2)
            assert abs(np.linalg.det(factor) - 1) < 1e-6

    def test_canonical_matrix_property(self):
        decomposition = kak_decompose(gates.B_GATE)
        can = decomposition.canonical_matrix
        assert np.allclose(
            weyl_coordinates(can), decomposition.coordinates, atol=1e-6
        )


class TestValidation:
    def test_rejects_non_unitary(self):
        with pytest.raises(ValueError):
            kak_decompose(np.ones((4, 4)))

    def test_rejects_wrong_size(self):
        with pytest.raises(ValueError):
            kak_decompose(np.eye(2))

    def test_known_construction_sqrt_iswap_squared(self):
        # Composing two sqrt(iSWAP) pulses must land on the iSWAP class.
        product = gates.SQRT_ISWAP @ gates.SQRT_ISWAP
        decomposition = kak_decompose(product)
        assert np.allclose(
            decomposition.coordinates,
            [np.pi / 2, np.pi / 2, 0.0],
            atol=1e-7,
        )
