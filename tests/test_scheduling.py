"""Tests for ASAP/ALAP scheduling and per-wire idle accounting."""

from __future__ import annotations

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import alap_schedule, asap_schedule
from repro.circuits.gate import Gate
from repro.circuits.workloads import get_workload
from repro.transpiler.fidelity import HeterogeneousFidelityModel


def _timed(num_qubits: int, gates: list[tuple[str, tuple[int, ...], float]]):
    circuit = QuantumCircuit(num_qubits, "timed")
    for name, qubits, duration in gates:
        circuit.append(Gate(name, qubits, duration=duration))
    return circuit


def _unit_duration(_gate: Gate) -> float:
    return 1.0


class TestAlapAgainstAsap:
    @pytest.mark.parametrize("workload", ["ghz", "qft", "qaoa"])
    def test_same_makespan_on_workloads(self, workload):
        circuit = get_workload(workload, 6, seed=5)
        asap = asap_schedule(circuit, _unit_duration)
        alap = alap_schedule(circuit, _unit_duration)
        assert alap.total_duration == pytest.approx(asap.total_duration)

    def test_alap_never_starts_earlier(self):
        circuit = get_workload("qft", 6, seed=5)
        asap = asap_schedule(circuit, _unit_duration)
        alap = alap_schedule(circuit, _unit_duration)
        for early, late in zip(asap.start_times, alap.start_times):
            assert late >= early - 1e-12

    def test_rigid_chain_schedules_identically(self):
        # A pure dependency chain has zero slack: ALAP == ASAP.
        circuit = _timed(
            4,
            [
                ("cx", (0, 1), 1.0),
                ("cx", (1, 2), 1.0),
                ("cx", (2, 3), 1.0),
            ],
        )
        asap = asap_schedule(circuit)
        alap = alap_schedule(circuit)
        assert alap.start_times == asap.start_times

    def test_validation(self):
        circuit = _timed(2, [("cx", (0, 1), 1.0)])
        with pytest.raises(ValueError, match="negative duration"):
            alap_schedule(circuit, lambda g: -1.0)


class TestStaircaseIdleReduction:
    """The ISSUE's staircase: an early 1Q gate on the last wire of a CX
    staircase has maximal slack, so ALAP pushes it from t=0 to just
    before its consumer, collapsing the wire's idle window."""

    @staticmethod
    def _staircase() -> QuantumCircuit:
        return _timed(
            4,
            [
                ("u1q", (3,), 0.25),
                ("cx", (0, 1), 1.0),
                ("cx", (1, 2), 1.0),
                ("cx", (2, 3), 1.0),
            ],
        )

    def test_hand_computed_schedules(self):
        circuit = self._staircase()
        asap = asap_schedule(circuit)
        alap = alap_schedule(circuit)
        assert asap.start_times == (0.0, 0.0, 1.0, 2.0)
        assert alap.start_times == (1.75, 0.0, 1.0, 2.0)
        assert asap.total_duration == alap.total_duration == 3.0

    def test_idle_window_shrinks(self):
        circuit = self._staircase()
        asap_wire3 = asap_schedule(circuit).wire_activity()[3]
        alap_wire3 = alap_schedule(circuit).wire_activity()[3]
        # Exposure window = makespan - first gate start.
        assert 3.0 - asap_wire3.first_start == pytest.approx(3.0)
        assert 3.0 - alap_wire3.first_start == pytest.approx(1.25)
        assert asap_wire3.busy == alap_wire3.busy == pytest.approx(1.25)

    def test_alap_estimates_higher_fidelity(self):
        circuit = self._staircase()
        model = HeterogeneousFidelityModel.uniform(4, t1_us=100.0)
        asap_ft = model.circuit_fidelity(asap_schedule(circuit))
        alap_ft = model.circuit_fidelity(alap_schedule(circuit))
        assert alap_ft > asap_ft


class TestWireActivity:
    def test_hand_computed_accounting(self):
        # q0: gates at [0, 1) and [2, 3) -> busy 2, span 3, idle 1.
        # q1: one gate at [0, 1)         -> busy 1, span 1, idle 0.
        # q2: gates at [0, 2) and [2, 3) -> busy 3, span 3, idle 0.
        # q3: no gates.
        circuit = _timed(
            4,
            [
                ("cx", (0, 1), 1.0),
                ("u1q", (2,), 2.0),
                ("cx", (0, 2), 1.0),
            ],
        )
        schedule = asap_schedule(circuit)
        w0, w1, w2, w3 = schedule.wire_activity()
        assert (w0.first_start, w0.last_end, w0.busy, w0.gates) == (
            0.0, 3.0, 2.0, 2
        )
        assert w0.idle_within_span == pytest.approx(1.0)
        assert (w1.first_start, w1.last_end, w1.busy, w1.gates) == (
            0.0, 1.0, 1.0, 1
        )
        assert (w2.first_start, w2.last_end, w2.busy, w2.gates) == (
            0.0, 3.0, 3.0, 2
        )
        assert w3.gates == 0 and w3.busy == 0.0

    def test_model_matches_hand_computed_product(self):
        import numpy as np

        circuit = _timed(
            2, [("cx", (0, 1), 1.0), ("u1q", (0,), 1.0)]
        )
        schedule = asap_schedule(circuit)
        model = HeterogeneousFidelityModel(
            t1_us=(100.0, 50.0), t2_us=(200.0, 100.0), iswap_ns=100.0
        )
        # Makespan 2.  q0: exposure 2, idle 0.  q1: exposure 2, idle 1.
        # Units: 1 normalized unit = 100 ns = 0.1 us.
        expected = (
            np.exp(-0.2 / 100.0)
            * np.exp(-0.2 / 50.0)
            * np.exp(-0.1 / 100.0)
        )
        assert model.circuit_fidelity(schedule) == pytest.approx(expected)
