"""Tests for the pass-manager compiler API.

Covers the passes package (each stage in isolation, property-set
threading, per-pass profiling), the pipeline and selection registries,
``CompilerConfig`` + the ``repro.compile`` facade, and the digest-parity
guarantees: ``PassManager("paper")`` must reproduce legacy
``transpile()`` gate-for-gate, and the per-trial RNG streams spawned
from a job seed are pinned by exact circuit digests.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.workloads import get_workload
from repro.service.jobs import circuit_digest
from repro.transpiler.compiler import CompilerConfig
from repro.transpiler.coupling import line_topology, square_lattice
from repro.transpiler.layout import trivial_layout
from repro.transpiler.passes import (
    Collect2QBlocks,
    Merge1QRuns,
    MergePlaceholders,
    Pass,
    PassContext,
    PassManager,
    PassProfile,
    PipelineSpec,
    RandomLayout,
    Route,
    Schedule,
    SelectionStrategy,
    SetLayout,
    TranslateToBasis,
    TrivialLayout,
    get_pipeline,
    get_selection,
    known_pipelines,
    known_selections,
    register_pipeline,
    register_selection,
    spawn_trial_rngs,
)
from repro.transpiler.pipeline import transpile, transpile_once


@pytest.fixture(scope="module")
def lattice():
    return square_lattice(2, 4)


def _context(circuit, coupling, rules, seed=0, **kwargs):
    return PassContext(
        circuit=circuit,
        coupling=coupling,
        rules=rules,
        rng=np.random.default_rng(seed),
        **kwargs,
    )


class TestIndividualPasses:
    """Each stage runs in isolation on a hand-built circuit."""

    def test_layout_passes(self, baseline_rules):
        coupling = line_topology(4)
        circuit = QuantumCircuit(3).add("h", [0]).add("cx", [0, 2])
        ctx = _context(circuit, coupling, baseline_rules)
        TrivialLayout().run(ctx)
        assert [ctx.layout.physical(i) for i in range(3)] == [0, 1, 2]
        ctx = _context(circuit, coupling, baseline_rules, seed=3)
        RandomLayout().run(ctx)
        assert ctx.layout.num_logical == 3
        fixed = trivial_layout(3, coupling)
        ctx = _context(circuit, coupling, baseline_rules)
        SetLayout(fixed).run(ctx)
        assert ctx.layout.as_dict() == fixed.as_dict()
        assert ctx.layout is not fixed  # defensive copy

    def test_route_inserts_swaps_for_distant_pair(self, baseline_rules):
        coupling = line_topology(4)
        circuit = QuantumCircuit(4).add("cx", [0, 3])
        ctx = _context(circuit, coupling, baseline_rules)
        TrivialLayout().run(ctx)
        Route().run(ctx)
        assert ctx.routing is not None
        assert ctx.routing.swap_count == 2  # distance 3 -> two swaps
        assert ctx.circuit is ctx.routing.circuit

    def test_route_requires_layout(self, baseline_rules):
        circuit = QuantumCircuit(2).add("cx", [0, 1])
        ctx = _context(circuit, line_topology(2), baseline_rules)
        with pytest.raises(ValueError, match="no 'layout'"):
            Route().run(ctx)

    def test_route_adopts_preset_routing(self, baseline_rules):
        from repro.transpiler.routing import route_circuit

        coupling = line_topology(3)
        circuit = QuantumCircuit(3).add("cx", [0, 2])
        shared = route_circuit(
            circuit, coupling, trivial_layout(3, coupling), seed=5
        )
        ctx = _context(circuit, coupling, baseline_rules, routing=shared)
        Route().run(ctx)
        assert ctx.routing is shared
        assert ctx.circuit is shared.circuit

    def test_merge_1q_runs(self, baseline_rules):
        circuit = (
            QuantumCircuit(2)
            .add("h", [0]).add("h", [0]).add("h", [1]).add("cx", [0, 1])
        )
        ctx = _context(circuit, line_topology(2), baseline_rules)
        Merge1QRuns().run(ctx)
        names = [g.name for g in ctx.circuit]
        assert names == ["u1q", "u1q", "cx"]

    def test_collect_2q_blocks(self, baseline_rules):
        circuit = (
            QuantumCircuit(2)
            .add("cx", [0, 1]).add("h", [0]).add("cx", [0, 1])
        )
        ctx = _context(circuit, line_topology(2), baseline_rules)
        Collect2QBlocks().run(ctx)
        assert [g.name for g in ctx.circuit] == ["block"]

    def test_translate_and_merge_placeholders(self, baseline_rules):
        circuit = QuantumCircuit(2).add("h", [0]).add("cx", [0, 1])
        ctx = _context(circuit, line_topology(2), baseline_rules)
        TranslateToBasis().run(ctx)
        assert all(g.name in ("u1q", "pulse2q") for g in ctx.circuit)
        assert all(g.duration is not None for g in ctx.circuit)
        before = len(ctx.circuit)
        MergePlaceholders().run(ctx)
        assert len(ctx.circuit) <= before

    def test_schedule_pass(self, baseline_rules):
        circuit = QuantumCircuit(2).add("cx", [0, 1])
        ctx = _context(circuit, line_topology(2), baseline_rules)
        TranslateToBasis().run(ctx)
        Schedule("asap").run(ctx)
        asap_duration = ctx.schedule.total_duration
        Schedule("alap").run(ctx)
        assert ctx.schedule.total_duration == pytest.approx(asap_duration)

    def test_schedule_rejects_unknown_scheduler(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            Schedule("greedy")


class TestPassContext:
    def test_property_set_threading(self, baseline_rules, lattice):
        """User passes communicate via the free-form properties dict."""

        class CountPulses(Pass):
            def run(self, context: PassContext) -> None:
                context.properties["pulses"] = sum(
                    1 for g in context.circuit if g.name == "pulse2q"
                )

        class AssertCounted(Pass):
            def run(self, context: PassContext) -> None:
                context.properties["echo"] = context.properties["pulses"]

        circuit = get_workload("ghz", 4)
        manager = PassManager(
            [
                TrivialLayout(),
                Route(),
                TranslateToBasis(),
                CountPulses(),
                AssertCounted(),
                Schedule("asap"),
            ],
            name="counted",
        )
        ctx = manager.run_once(circuit, lattice, baseline_rules, seed=1)
        assert ctx.properties["pulses"] > 0
        assert ctx.properties["echo"] == ctx.properties["pulses"]

    def test_require_names_missing_field(self, baseline_rules):
        ctx = _context(QuantumCircuit(2), line_topology(2), baseline_rules)
        with pytest.raises(ValueError, match="no 'schedule'"):
            ctx.require("schedule")


class TestPassProfile:
    def test_records_every_pass_per_trial(self, baseline_rules, lattice):
        profile = PassProfile()
        manager = PassManager("paper", trials=3)
        manager.run(
            get_workload("ghz", 6), lattice, baseline_rules,
            seed=7, profile=profile,
        )
        # 7 stage passes per trial (layout + 6 pipeline stages).
        assert len(profile) == 3 * 7
        by_pass = profile.by_pass()
        assert by_pass["Route"]["calls"] == 3
        assert by_pass["TrivialLayout"]["calls"] == 1
        assert by_pass["RandomLayout"]["calls"] == 2
        assert by_pass["Schedule[asap]"]["calls"] == 3

    def test_timing_monotonicity(self, baseline_rules, lattice):
        """Wall times are non-negative and accumulate monotonically."""
        profile = PassProfile()
        PassManager("paper", trials=2).run(
            get_workload("ghz", 4), lattice, baseline_rules,
            seed=3, profile=profile,
        )
        assert all(r.wall_time_s >= 0.0 for r in profile.records)
        cumulative = 0.0
        for record in profile.records:
            new_total = cumulative + record.wall_time_s
            assert new_total >= cumulative
            cumulative = new_total
        assert profile.total_wall_time == pytest.approx(cumulative)

    def test_gate_count_deltas(self, baseline_rules, lattice):
        profile = PassProfile()
        PassManager("paper", trials=1).run(
            get_workload("qft", 4), lattice, baseline_rules,
            seed=3, profile=profile,
        )
        by_pass = profile.by_pass()
        # Translation expands blocks into pulse templates; the merge
        # pass only ever removes placeholders.
        assert (
            by_pass["TranslateToBasis"]["gates_out"]
            > by_pass["TranslateToBasis"]["gates_in"]
        )
        assert (
            by_pass["MergePlaceholders"]["gates_out"]
            <= by_pass["MergePlaceholders"]["gates_in"]
        )

    def test_round_trip_and_table(self, baseline_rules, lattice):
        profile = PassProfile()
        PassManager("paper", trials=1).run(
            get_workload("ghz", 4), lattice, baseline_rules,
            seed=3, profile=profile,
        )
        clone = PassProfile.from_dict(
            json.loads(json.dumps(profile.to_dict()))
        )
        assert clone.to_dict() == profile.to_dict()
        table = profile.format_table()
        assert "TranslateToBasis" in table
        assert "TOTAL" in table


class TestDigestParity:
    """PassManager('paper') == legacy transpile(), gate for gate."""

    @pytest.mark.parametrize("engine", ["baseline", "parallel"])
    def test_manager_reproduces_transpile(
        self, engine, baseline_rules, parallel_rules, lattice
    ):
        rules = baseline_rules if engine == "baseline" else parallel_rules
        circuit = get_workload("qft", 8)
        legacy = transpile(circuit, lattice, rules, trials=3, seed=7)
        managed = PassManager("paper", trials=3).run(
            circuit, lattice, rules, seed=7
        )
        assert circuit_digest(managed.circuit) == circuit_digest(
            legacy.circuit
        )
        assert managed.trial_index == legacy.trial_index
        assert managed.duration == pytest.approx(legacy.duration)

    def test_transpile_once_matches_run_once(self, baseline_rules, lattice):
        circuit = get_workload("ghz", 8)
        layout = trivial_layout(8, lattice)
        legacy = transpile_once(
            circuit, lattice, baseline_rules, layout, seed=5
        )
        ctx = PassManager("paper").run_once(
            circuit, lattice, baseline_rules, layout=layout, seed=5
        )
        assert circuit_digest(ctx.circuit) == circuit_digest(legacy.circuit)


class TestTrialStreams:
    """Per-trial RNG streams spawned from the job seed (SeedSequence)."""

    #: Exact digests for (workload, rules) at trials=3, seed=7 on the
    #: 2x4 lattice.  These pin the SeedSequence.spawn trial-stream
    #: derivation: any change to per-trial seeding, layout order, or
    #: routing tie-breaks shows up here first.
    PINNED = {
        ("ghz", "baseline"): (
            "f5b64634a6042fdcf7caca2fffc428a1d7e246f73ac31bd5fcdc741fcae593a3"
        ),
        ("ghz", "parallel"): (
            "4b4c91ebf810613a1345bea3d962b27e733f298f5444702f610639acace13cd0"
        ),
        ("qft", "baseline"): (
            "ba3bd5035ba530a66bf6b6fe2cd3cf993b96c9aaad5bc33100137675a7b62656"
        ),
        ("qft", "parallel"): (
            "957ff9fbeb65bd49b8937d3cfc5ddfdf4c72303e58a86223033728843a7b7361"
        ),
    }

    @pytest.mark.parametrize("workload", ["ghz", "qft"])
    @pytest.mark.parametrize("engine", ["baseline", "parallel"])
    def test_pinned_digests(
        self, workload, engine, baseline_rules, parallel_rules, lattice
    ):
        rules = baseline_rules if engine == "baseline" else parallel_rules
        result = transpile(
            get_workload(workload, 8), lattice, rules, trials=3, seed=7
        )
        assert circuit_digest(result.circuit) == self.PINNED[
            (workload, engine)
        ]

    def test_winning_trial_exercises_random_layout(
        self, parallel_rules, lattice
    ):
        """The qft pin covers a random-layout trial, not just trial 0."""
        result = transpile(
            get_workload("qft", 8), lattice, parallel_rules, trials=3, seed=7
        )
        assert result.trial_index > 0

    def test_each_trial_independently_reproducible(
        self, parallel_rules, lattice
    ):
        """Trial i can be re-run standalone from (seed, i) alone."""
        from repro.transpiler.layout import random_layout

        circuit = get_workload("qft", 8)
        manager = PassManager("paper", trials=3)
        best = manager.run(circuit, lattice, parallel_rules, seed=7)
        streams = spawn_trial_rngs(7, 3)
        rng = streams[best.trial_index]
        layout = (
            trivial_layout(8, lattice)
            if best.trial_index == 0
            else random_layout(8, lattice, rng)
        )
        ctx = manager.run_once(
            circuit, lattice, parallel_rules, layout=layout, seed=rng,
            trial_index=best.trial_index,
        )
        assert circuit_digest(ctx.circuit) == circuit_digest(best.circuit)

    def test_spawn_validates_trials(self):
        with pytest.raises(ValueError, match="at least one trial"):
            spawn_trial_rngs(7, 0)

    def test_streams_differ_between_trials(self):
        a, b = spawn_trial_rngs(42, 2)
        assert a.random() != b.random()


class TestSelectionRegistry:
    def test_known_strategies(self):
        assert {"duration", "fidelity"} <= set(known_selections())
        assert get_selection("duration").name == "duration"
        assert get_selection("fidelity").requires_fidelity

    def test_unknown_selection(self):
        with pytest.raises(ValueError, match="unknown selection"):
            get_selection("coin_flip")

    def test_duplicate_registration_rejected(self):
        from repro.transpiler.passes.selection import DurationSelection

        with pytest.raises(ValueError, match="already registered"):
            register_selection(DurationSelection())

    def test_custom_strategy_drives_trial_choice(
        self, baseline_rules, lattice
    ):
        class MostSwaps(SelectionStrategy):
            name = "test_most_swaps"

            def better(self, candidate, incumbent):
                return candidate.swap_count > incumbent.swap_count

        register_selection(MostSwaps(), replace=True)
        circuit = get_workload("qft", 8)
        most = PassManager(
            "paper", trials=3, selection="test_most_swaps"
        ).run(circuit, lattice, baseline_rules, seed=7)
        least = PassManager("paper", trials=3).run(
            circuit, lattice, baseline_rules, seed=7
        )
        assert most.swap_count >= least.swap_count

    def test_fidelity_selection_needs_model(self, baseline_rules, lattice):
        with pytest.raises(ValueError, match="needs a fidelity_model"):
            PassManager("paper", trials=2, selection="fidelity").run(
                get_workload("ghz", 4), lattice, baseline_rules, seed=1
            )


class TestPipelineRegistry:
    def test_presets_registered(self):
        assert {"paper", "noise_aware", "fast"} <= set(known_pipelines())

    def test_unknown_pipeline(self):
        with pytest.raises(ValueError, match="unknown pipeline"):
            get_pipeline("warp_speed")

    def test_paper_spec_shape(self):
        spec = get_pipeline("paper")
        assert (spec.scheduler, spec.selection, spec.trials) == (
            "asap", "duration", 10,
        )
        names = [type(p).__name__ for p in spec.build_passes()]
        assert names == [
            "Route", "Merge1QRuns", "Collect2QBlocks", "TranslateToBasis",
            "MergePlaceholders", "Schedule",
        ]

    def test_fast_skips_consolidation_single_trial(self):
        spec = get_pipeline("fast")
        assert spec.trials == 1
        assert not spec.randomize_layout
        names = [type(p).__name__ for p in spec.build_passes()]
        assert "Merge1QRuns" not in names
        assert "Collect2QBlocks" not in names

    def test_fast_pipeline_runs(self, baseline_rules, lattice):
        result = PassManager("fast").run(
            get_workload("ghz", 6), lattice, baseline_rules, seed=1
        )
        assert result.trial_index == 0
        assert result.duration > 0

    def test_register_custom_pipeline(self, baseline_rules, lattice):
        register_pipeline(
            PipelineSpec(
                name="test_alap_single",
                description="unit-test pipeline",
                scheduler="alap",
                trials=1,
            ),
            replace=True,
        )
        result = PassManager("test_alap_single").run(
            get_workload("ghz", 4), lattice, baseline_rules, seed=1
        )
        assert result.duration > 0

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            PipelineSpec(name="x", description="", scheduler="greedy")
        with pytest.raises(ValueError, match="trials"):
            PipelineSpec(name="x", description="", trials=0)


class TestPassManagerConstruction:
    def test_explicit_sequence_rejects_scheduler_kwarg(self):
        with pytest.raises(ValueError, match="named pipelines"):
            PassManager([Route()], scheduler="alap")

    def test_trials_validation(self):
        with pytest.raises(ValueError, match="at least one trial"):
            PassManager("paper", trials=0)

    def test_repr(self):
        text = repr(PassManager("paper"))
        assert "paper" in text and "trials=10" in text


class TestCompilerConfig:
    def test_json_round_trip(self):
        config = CompilerConfig(
            pipeline="noise_aware", rules="baseline", target="line_16",
            trials=4,
        )
        assert CompilerConfig.from_json(config.to_json()) == config

    def test_pipeline_default_resolution(self):
        config = CompilerConfig(pipeline="noise_aware")
        assert config.trials is None
        assert config.resolved_trials == 10
        assert config.resolved_scheduler == "alap"
        assert config.resolved_selection == "fidelity"
        explicit = CompilerConfig(pipeline="noise_aware", scheduler="asap")
        assert explicit.resolved_scheduler == "asap"

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown pipeline"):
            CompilerConfig(pipeline="warp_speed")
        with pytest.raises(ValueError, match="unknown rules"):
            CompilerConfig(rules="nope")
        with pytest.raises(ValueError, match="unknown scheduler"):
            CompilerConfig(scheduler="greedy")
        with pytest.raises(ValueError, match="unknown selection"):
            CompilerConfig(selection="coin_flip")
        with pytest.raises(ValueError, match="trials"):
            CompilerConfig(trials=0)

    def test_with_overrides_ignores_none(self):
        config = CompilerConfig(trials=5)
        assert config.with_overrides(trials=None) is config
        assert config.with_overrides(trials=2).trials == 2

    def test_build_manager(self):
        manager = CompilerConfig(pipeline="fast").build_manager()
        assert manager.trials == 1


class TestCompileFacade:
    def test_facade_on_named_target(self):
        result = repro.compile(
            get_workload("ghz", 6),
            target="square_2x3",
            config=repro.CompilerConfig(trials=2),
            seed=7,
        )
        assert result.duration > 0
        assert 0.0 < result.estimated_fidelity <= 1.0

    def test_facade_accepts_target_object(self):
        from repro.targets import get_target

        target = get_target("square_2x3")
        result = repro.compile(
            get_workload("ghz", 6),
            target=target,
            config=repro.CompilerConfig(pipeline="fast"),
        )
        assert result.trial_index == 0

    def test_facade_collects_profile(self):
        profile = PassProfile()
        repro.compile(
            get_workload("ghz", 4),
            target="square_2x2",
            config=repro.CompilerConfig(pipeline="fast"),
            profile=profile,
        )
        assert len(profile) > 0

    def test_facade_matches_engine_digest(self):
        """repro.compile == BatchEngine's execute_job, byte for byte."""
        from repro.service.engine import execute_job
        from repro.service.jobs import CompileJob

        job = CompileJob(
            workload="ghz", num_qubits=6, trials=2, seed=7,
            target="square_2x3",
        )
        engine_result = execute_job(job, use_cache=False)
        assert engine_result.ok, engine_result.error
        facade = repro.compile(
            get_workload("ghz", 6, seed=job.workload_seed),
            config=job.config,
            seed=job.seed,
        )
        assert circuit_digest(facade.circuit) == engine_result.digest
