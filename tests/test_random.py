"""Tests for Haar-random sampling."""

import numpy as np
import pytest

from repro.quantum.linalg import is_unitary
from repro.quantum.random import (
    as_rng,
    haar_unitaries_batch,
    haar_unitary,
    random_local_pair,
    random_local_pairs_batch,
    random_su2,
    random_su2_batch,
    random_su4,
)


class TestBasicSamplers:
    def test_haar_unitary_is_unitary(self, rng):
        for dim in (2, 3, 4):
            assert is_unitary(haar_unitary(dim, rng))

    def test_rejects_bad_dim(self):
        with pytest.raises(ValueError):
            haar_unitary(0)

    def test_seed_reproducibility(self):
        assert np.allclose(haar_unitary(4, 5), haar_unitary(4, 5))

    def test_su_normalization(self, rng):
        assert abs(np.linalg.det(random_su2(rng)) - 1) < 1e-9
        assert abs(np.linalg.det(random_su4(rng)) - 1) < 1e-9

    def test_local_pair_shape(self, rng):
        pair = random_local_pair(rng)
        assert pair.shape == (4, 4)
        assert is_unitary(pair)

    def test_as_rng_passthrough(self):
        generator = np.random.default_rng(1)
        assert as_rng(generator) is generator


class TestBatchedSamplers:
    def test_batch_eigenphases_uniform(self):
        # Haar eigenphases are uniform on (-pi, pi]: their mean vanishes
        # and their second moment is pi^2 / 3.
        batch = haar_unitaries_batch(4, 400, seed=11)
        phases = np.angle(np.linalg.eigvals(batch)).ravel()
        assert abs(phases.mean()) < 0.12
        assert abs((phases**2).mean() - np.pi**2 / 3) < 0.3

    def test_batch_unitarity(self):
        batch = haar_unitaries_batch(4, 50, seed=3)
        products = np.einsum("nij,nkj->nik", batch, batch.conj())
        assert np.allclose(products, np.eye(4), atol=1e-9)

    def test_su2_batch_dets(self):
        batch = random_su2_batch(64, seed=5)
        assert np.allclose(np.linalg.det(batch), 1.0, atol=1e-9)

    def test_local_pairs_batch_structure(self):
        from repro.quantum.linalg import kron_factor_4x4

        batch = random_local_pairs_batch(10, seed=9)
        for matrix in batch:
            kron_factor_4x4(matrix)  # raises if not a local product

    def test_batch_rejects_bad_count(self):
        with pytest.raises(ValueError):
            haar_unitaries_batch(4, 0)


class TestHaarMoments:
    def test_first_moment_vanishes(self):
        batch = haar_unitaries_batch(4, 2000, seed=21)
        assert np.abs(batch.mean(axis=0)).max() < 0.06

    def test_entry_second_moment(self):
        # E[|U_ij|^2] = 1/d for Haar measure.
        batch = haar_unitaries_batch(4, 2000, seed=22)
        second = (np.abs(batch) ** 2).mean(axis=0)
        assert np.allclose(second, 0.25, atol=0.03)
