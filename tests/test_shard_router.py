"""Sharded compile service: digest-range routing, merge, degradation.

The acceptance criteria under test:

* the keyspace partition tiles exactly and ``shard_index`` inverts it;
* digests served through a 4-shard router are bit-identical to the
  single-process path, and each shard's result partition only holds
  keys inside its range;
* folding shard partitions into one canonical store yields exactly the
  union of the shards (plus the conflict/refusal edge cases of
  :meth:`ResultStore.merge` itself);
* a down shard degrades *its* digest range — ``shard_down`` event,
  per-job failure results naming the range, degraded health — while
  other ranges keep serving;
* the keep-alive client reuses one connection across calls and
  survives a server restart on the same port;
* the ``repro store`` CLI folds and inspects store databases.
"""

from __future__ import annotations

import socket
import time
from pathlib import Path

import pytest

from repro.obs import REGISTRY, MetricsRegistry, TRACER
from repro.service import (
    CompileJob,
    CompileResult,
    PersistentJobQueue,
    QueueError,
    ResultMergeError,
    ResultStore,
    ResultStoreError,
    RouterThread,
    ServerThread,
    ServiceClient,
    merge_shard_stores,
    shard_index,
    shard_ranges,
    shard_store_path,
)
from repro.service.engine import execute_job
from repro.service.router import _KEYSPACE

_FAST = dict(
    workload="ghz", num_qubits=4, target="square_2x2",
    trials=1, rules="baseline", pipeline="fast",
)


def fast_job(**overrides) -> CompileJob:
    return CompileJob(**{**_FAST, **overrides})


def counters_delta(before: dict) -> dict:
    return MetricsRegistry.delta(before, REGISTRY.snapshot()).get(
        "counters", {}
    )


def free_port() -> int:
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def jobs_covering_shards(
    count: int, shards: int, minimum: int = 2
) -> list[CompileJob]:
    """``count`` deterministic jobs whose digests hit >= ``minimum`` shards."""
    minimum = min(minimum, shards)
    picked: list[CompileJob] = []
    seen: set[int] = set()
    for index in range(512):
        job = fast_job(tag=f"cover{index}")
        shard = shard_index(job.identity_digest(), shards)
        if shard not in seen:
            seen.add(shard)
            picked.append(job)
            if len(seen) >= minimum:
                break
    if len(seen) < minimum:
        raise AssertionError("could not cover enough shards in 512 tags")
    for index in range(count):
        if len(picked) >= count:
            break
        picked.append(fast_job(tag=f"fill{index}"))
    return picked[:count]


@pytest.fixture(autouse=True)
def _clean_tracer():
    TRACER.disable()
    TRACER.clear()
    yield
    TRACER.disable()
    TRACER.clear()


class TestRanges:
    def test_partition_tiles_keyspace(self):
        for count in (1, 2, 3, 4, 5, 8):
            ranges = shard_ranges(count)
            assert ranges[0].lo == 0
            assert ranges[-1].hi == _KEYSPACE
            for left, right in zip(ranges, ranges[1:]):
                assert left.hi == right.lo  # gap-free, overlap-free

    def test_shard_index_inverts_partition(self):
        for count in (1, 2, 3, 4, 7):
            ranges = shard_ranges(count)
            for bucket in range(0, _KEYSPACE, 97):
                digest = format(bucket, "04x") + "f" * 60
                index = shard_index(digest, count)
                assert ranges[index].contains(digest)

    def test_key_bounds_compose_with_iter_range(self):
        ranges = shard_ranges(4)
        assert ranges[1].key_bounds() == ("4000", "8000")
        # The last range is unbounded above for string keys.
        assert ranges[3].key_bounds() == ("c000", None)
        assert ranges[3].label == "[c000, 10000)"

    def test_invalid_count(self):
        with pytest.raises(ValueError, match=">= 1"):
            shard_ranges(0)

    def test_shard_store_path(self):
        assert shard_store_path("a/results.sqlite", 2) == str(
            Path("a/results.shard2.sqlite")
        )
        assert shard_store_path(None, 0) is None


class TestRouterParity:
    def test_four_shard_digests_match_single_process(self, tmp_path):
        jobs = jobs_covering_shards(6, shards=4, minimum=2)
        with ServerThread(workers=2, use_cache=False) as single:
            baseline = ServiceClient(single.url, timeout=60).submit(jobs)
        assert all(r.ok for r in baseline)
        shard_threads = [
            ServerThread(
                workers=2, use_cache=False,
                results_path=tmp_path / f"results.shard{i}.sqlite",
            )
            for i in range(4)
        ]
        try:
            for thread in shard_threads:
                thread.start()
            with RouterThread([t.url for t in shard_threads]) as rt:
                client = ServiceClient(rt.url, timeout=60)
                routed = client.submit(jobs)
                client.close()
        finally:
            for thread in shard_threads:
                thread.stop()
        assert all(r.ok for r in routed)
        assert [r.digest for r in routed] == [r.digest for r in baseline]
        # Each shard's partition only holds keys inside its range.
        ranges = shard_ranges(4)
        union = 0
        for index in range(4):
            store = ResultStore(
                path=tmp_path / f"results.shard{index}.sqlite"
            )
            keys = [row[0] for row in store.iter_range()]
            union += len(keys)
            assert all(ranges[index].contains(key) for key in keys)
            store.close()
        assert union == len({j.identity_digest() for j in jobs})
        # Post-drain fold: the canonical store is exactly the union.
        canonical = tmp_path / "results.sqlite"
        absorbed = merge_shard_stores(canonical, 4)
        assert absorbed == union
        merged = ResultStore(path=canonical)
        assert merged.row_count() == union
        merged.close()

    def test_router_memo_answers_repeats(self):
        job = fast_job(tag="memo")
        before = REGISTRY.snapshot()
        with ServerThread(workers=1, use_cache=False) as shard:
            with RouterThread([shard.url]) as rt:
                client = ServiceClient(rt.url, timeout=60)
                (cold,) = client.submit([job])
                statuses = [
                    e["status"]
                    for e in client.submit_stream([job])
                    if e.get("event") == "accepted"
                ]
                client.close()
        assert cold.ok
        assert statuses == ["dedup_router"]
        delta = counters_delta(before)
        assert delta.get("repro.service.router.dedup_hits") == 1
        assert delta.get("repro.service.router.submissions") == 2

    def test_router_health_aggregates_shards(self):
        with ServerThread(workers=1, use_cache=False) as shard:
            with RouterThread([shard.url]) as rt:
                client = ServiceClient(rt.url, timeout=30)
                health = client.health()
                client.close()
        assert health["router"] is True
        assert health["status"] == "ok"
        assert health["degraded_ranges"] == []
        assert len(health["shards"]) == 1
        assert health["shards"][0]["range"] == "[0000, 10000)"


class TestDegradation:
    def test_down_shard_degrades_only_its_range(self):
        jobs = jobs_covering_shards(4, shards=2, minimum=2)
        with ServerThread(workers=2, use_cache=False) as alive:
            dead = ServerThread(workers=1, use_cache=False)
            dead.start()
            dead.stop()
            before = REGISTRY.snapshot()
            with RouterThread([alive.url, dead.url]) as rt:
                client = ServiceClient(rt.url, timeout=60)
                assert client.health()["status"] == "degraded"
                events = list(client.submit_stream(jobs))
                client.close()
        downs = [e for e in events if e["event"] == "shard_down"]
        assert len(downs) == 1 and downs[0]["shard"] == 1
        assert downs[0]["range"] == "[8000, 10000)"
        results = {
            e["index"]: e for e in events if e["event"] == "result"
        }
        assert len(results) == len(jobs)
        for index, job in enumerate(jobs):
            event = results[index]
            if shard_index(job.identity_digest(), 2) == 0:
                assert event["ok"]
            else:
                assert not event["ok"]
                error = event["result"]["error"]
                assert "[8000, 10000)" in error and "degraded" in error
        delta = counters_delta(before)
        assert delta.get("repro.service.router.shard_down") == 1
        assert delta.get("repro.service.shard.1.errors") == 1

    def test_client_surfaces_degraded_ranges(self):
        job = fast_job(tag="degraded-surface")
        dead = ServerThread(workers=1, use_cache=False)
        dead.start()
        dead.stop()
        with RouterThread([dead.url]) as rt:
            client = ServiceClient(rt.url, timeout=30)
            (result,) = client.submit([job])
            assert not result.ok
            assert client.degraded_ranges
            assert client.degraded_ranges[0]["range"] == "[0000, 10000)"
            client.close()


class TestKeepAlive:
    def test_one_connection_across_calls(self):
        job = fast_job(tag="keepalive")
        with ServerThread(workers=1, use_cache=False) as st:
            client = ServiceClient(st.url, timeout=60)
            client.health()
            first = client._local.conn
            assert first is not None
            client.submit([job])
            client.submit([job])  # warm dedup, same socket
            client.server_metrics()
            assert client._local.conn is first
            client.close()
            assert client._local.conn is None

    def test_stale_connection_redials_transparently(self):
        first = ServerThread(workers=1, use_cache=False)
        first.start()
        port = first.server.port
        client = ServiceClient(first.url, timeout=30, connect_retries=8)
        assert client.health()["status"] == "ok"
        first.stop()
        # New server on the same port: the cached socket is dead, so
        # the next request must re-dial transparently, not raise.
        second = ServerThread(workers=1, use_cache=False, port=port)
        second.start()
        try:
            deadline = time.monotonic() + 30
            while True:
                try:
                    assert client.health()["status"] == "ok"
                    break
                except Exception:
                    if time.monotonic() > deadline:
                        raise
                    time.sleep(0.1)
            client.close()
        finally:
            second.stop()


class TestResultStoreMergeEdges:
    def _persisted(self, path, results) -> None:
        store = ResultStore(path=path)
        for result in results:
            store.add(result)
        store.close()

    def test_merge_empty_shard_absorbs_nothing(self, tmp_path):
        # Constructing a backed store creates its schema eagerly, so
        # an empty partition is a real (zero-row) database on disk.
        self._persisted(tmp_path / "empty.sqlite", [])
        dest = ResultStore(path=tmp_path / "dest.sqlite")
        assert dest.merge(tmp_path / "empty.sqlite") == 0
        assert dest.row_count() == 0
        dest.close()

    def test_mixin_merge_missing_source_refuses(self, tmp_path):
        queue = PersistentJobQueue(tmp_path / "q.sqlite")
        with pytest.raises(QueueError, match="no job queue to merge"):
            queue.merge(tmp_path / "never-written.sqlite")
        queue.close()

    def test_self_merge_refused(self, tmp_path):
        path = tmp_path / "self.sqlite"
        store = ResultStore(path=path)
        with pytest.raises(ResultStoreError, match="into itself"):
            store.merge(path)
        store.close()

    def test_three_way_fold_reports_conflict_pairs(self, tmp_path):
        job_a, job_b = fast_job(tag="a"), fast_job(tag="b")
        result_a = execute_job(job_a, use_cache=False)
        result_b = execute_job(job_b, use_cache=False)
        assert result_a.ok and result_b.ok
        # Shard 1 holds job_a as compiled, shard 2 holds job_b, and
        # shard 3 claims job_a again with a doctored digest — a
        # determinism violation the fold must refuse loudly.
        self._persisted(tmp_path / "s1.sqlite", [result_a])
        self._persisted(tmp_path / "s2.sqlite", [result_b])
        forged = CompileResult.from_dict(
            {**result_a.to_dict(), "digest": "f" * 64}
        )
        self._persisted(tmp_path / "s3.sqlite", [forged])
        dest = ResultStore(path=tmp_path / "dest.sqlite")
        assert dest.merge(tmp_path / "s1.sqlite") == 1
        assert dest.merge(tmp_path / "s2.sqlite") == 1
        with pytest.raises(ResultMergeError, match="refusing to merge") as e:
            dest.merge(tmp_path / "s3.sqlite")
        (conflict,) = e.value.conflicts
        key, ours, theirs = conflict
        assert key == job_a.identity_digest()
        assert ours == result_a.digest
        assert theirs == "f" * 64
        assert key[:12] in str(e.value)
        # The refused fold wrote nothing.
        assert dest.row_count() == 2
        dest.close()

    def test_idempotent_refold(self, tmp_path):
        result = execute_job(fast_job(tag="idem"), use_cache=False)
        self._persisted(tmp_path / "s1.sqlite", [result])
        dest = ResultStore(path=tmp_path / "dest.sqlite")
        assert dest.merge(tmp_path / "s1.sqlite") == 1
        assert dest.merge(tmp_path / "s1.sqlite") == 0
        assert dest.row_count() == 1
        dest.close()


class TestStoreCli:
    def test_store_merge_and_stats(self, tmp_path, capsys):
        from repro.cli import main

        result = execute_job(fast_job(tag="cli-store"), use_cache=False)
        shard0 = ResultStore(path=tmp_path / "r.shard0.sqlite")
        shard0.add(result)
        shard0.close()
        ResultStore(path=tmp_path / "r.shard1.sqlite").close()  # empty
        dest = str(tmp_path / "r.sqlite")
        code = main(
            ["store", "merge", "--into", dest,
             str(tmp_path / "r.shard0.sqlite"),
             str(tmp_path / "r.shard1.sqlite")]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "absorbed 1 row(s)" in out
        code = main(["store", "stats", dest])
        out = capsys.readouterr().out
        assert code == 0
        assert "result store (results), 1 row(s)" in out

    def test_store_merge_conflict_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        result = execute_job(fast_job(tag="cli-conflict"), use_cache=False)
        a = ResultStore(path=tmp_path / "a.sqlite")
        a.add(result)
        a.close()
        forged = CompileResult.from_dict(
            {**result.to_dict(), "digest": "e" * 64}
        )
        b = ResultStore(path=tmp_path / "b.sqlite")
        b.add(forged)
        b.close()
        code = main(
            ["store", "merge", "--into", str(tmp_path / "dest.sqlite"),
             str(tmp_path / "a.sqlite"), str(tmp_path / "b.sqlite")]
        )
        err = capsys.readouterr().err
        assert code == 1
        assert "merge refused" in err and "conflict job" in err

    def test_store_stats_unknown_db(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["store", "stats", str(tmp_path / "nope.sqlite")])
        assert code == 1
        assert "no store database" in capsys.readouterr().err

    def test_store_merge_refuses_mixed_kinds(self, tmp_path, capsys):
        from repro.cli import main

        ResultStore(path=tmp_path / "r.sqlite").close()
        PersistentJobQueue(tmp_path / "q.sqlite").close()
        code = main(
            ["store", "merge", "--into", str(tmp_path / "dest.sqlite"),
             str(tmp_path / "r.sqlite"), str(tmp_path / "q.sqlite")]
        )
        assert code == 1
        assert "mix store kinds" in capsys.readouterr().err

    def test_queue_store_merges_via_mixin(self, tmp_path, capsys):
        from repro.cli import main

        job = fast_job(tag="qmerge")
        source = PersistentJobQueue(tmp_path / "q.shard0.sqlite")
        source.put(job.identity_digest(), job)
        source.close()
        code = main(
            ["store", "merge", "--into", str(tmp_path / "q.sqlite"),
             str(tmp_path / "q.shard0.sqlite")]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "absorbed 1 row(s)" in out
        merged = PersistentJobQueue(tmp_path / "q.sqlite")
        assert merged.depth() == 1
        merged.close()


class TestServeShardedCli:
    def test_serve_shards_end_to_end(self, tmp_path):
        """``repro serve --shards 2``: parity, drain, and the fold."""
        import os
        import subprocess
        import sys

        from repro.service import wait_until_ready

        port = free_port()
        results_db = tmp_path / "results.sqlite"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--shards", "2", "--port", str(port),
                "--workers", "2", "--no-cache",
                "--results-db", str(results_db),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        url = f"http://127.0.0.1:{port}"
        try:
            wait_until_ready(url, timeout=120)
            jobs = jobs_covering_shards(4, shards=2, minimum=2)
            local = {
                job.identity_digest():
                    execute_job(job, use_cache=False).digest
                for job in jobs
            }
            client = ServiceClient(url, timeout=120)
            served = client.submit(jobs)
            assert all(r.ok for r in served)
            for job, result in zip(jobs, served):
                assert result.digest == local[job.identity_digest()]
            client.shutdown(drain=True)
            output, _ = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=30)
        assert "folded" in output
        for shard in range(2):
            partition = ResultStore(
                path=shard_store_path(results_db, shard)
            )
            assert all(
                shard_index(row[0], 2) == shard
                for row in partition.iter_range()
            )
            partition.close()
        merged = ResultStore(path=results_db)
        assert merged.row_count() == len(local)
        merged.close()
