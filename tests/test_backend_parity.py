"""Array-backend contract tests (repro.kernels.backend).

Two distinct parity promises are under test:

* **bitwise** — the numpy backend is a literal pass-through, so running
  the kernels through the resolver must produce byte-identical output
  to the default path (the digest-stability contract);
* **allclose** — adapter backends (torch, cupy) agree with numpy to
  numerical tolerance on the same inputs.  Adapter tests auto-skip on
  hosts where the library is not importable, and run for real on the
  CI torch-CPU leg (``REPRO_ARRAY_BACKEND=torch``).

Plus the selection machinery itself: registry, env/context precedence,
``auto`` resolution, and the ``CompilerConfig(array_backend=...)``
round-trip.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.parallel_drive import (
    ParallelDriveTemplate,
    sample_template_coordinates,
)
from repro.kernels import (
    canonicalize_coordinates_many,
    first_covering_k,
    membership_matrix,
    weyl_coordinates_many,
)
from repro.kernels.backend import (
    ArrayBackend,
    ArrayBackendError,
    active_backend,
    available_backends,
    get_namespace,
    register_backend,
    registered_backends,
    resolve_backend,
    use_array_backend,
)
from repro.pulse.evolution import (
    batched_piecewise_propagators,
    batched_step_propagators,
    propagate_piecewise,
    step_propagator,
)
from repro.quantum import gates
from repro.quantum.random import haar_unitaries_batch
from repro.transpiler.compiler import CompilerConfig

_ADAPTERS = [
    name for name in ("torch", "cupy") if name in available_backends()
]


@pytest.fixture(autouse=True)
def _numpy_default(monkeypatch):
    """Pin the ambient default to numpy whatever the runner exports.

    Every parity test compares an explicitly scoped backend against
    the *default* path; a REPRO_ARRAY_BACKEND leaking in from the
    environment (e.g. the CI torch leg) would silently turn bitwise
    baselines into adapter output.  Tests that exercise env selection
    set the variable themselves.
    """
    monkeypatch.delenv("REPRO_ARRAY_BACKEND", raising=False)


def _unitary_stack(count: int = 24, seed: int = 3) -> np.ndarray:
    named = np.stack(
        [np.eye(4, dtype=complex), gates.CNOT, gates.SWAP, gates.ISWAP]
    )
    return np.concatenate([named, haar_unitaries_batch(4, count, seed=seed)])


def _hamiltonian_steps(
    count: int, steps: int, dim: int = 4, seed: int = 5
) -> np.ndarray:
    rng = np.random.default_rng(seed)
    raw = rng.normal(size=(count, steps, dim, dim)) + 1j * rng.normal(
        size=(count, steps, dim, dim)
    )
    return (raw + np.swapaxes(raw, -1, -2).conj()) / 2


class TestSelection:
    def test_numpy_is_default_and_registered(self):
        assert active_backend().name == "numpy"
        assert "numpy" in registered_backends()
        assert "torch" in registered_backends()
        assert "cupy" in registered_backends()
        assert "numpy" in available_backends()

    def test_unknown_name_is_loud(self):
        with pytest.raises(ArrayBackendError, match="unknown array backend"):
            resolve_backend("not_a_backend")

    def test_duplicate_registration_refused(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("numpy", ArrayBackend)

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARRAY_BACKEND", "numpy")
        assert active_backend().name == "numpy"
        monkeypatch.setenv("REPRO_ARRAY_BACKEND", "bogus")
        with pytest.raises(ArrayBackendError):
            active_backend()

    def test_context_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARRAY_BACKEND", "bogus")
        with use_array_backend("numpy") as backend:
            assert backend.name == "numpy"
            assert active_backend() is backend

    def test_context_unwinds_on_error(self):
        with pytest.raises(RuntimeError, match="boom"):
            with use_array_backend("numpy"):
                raise RuntimeError("boom")
        assert active_backend().name == "numpy"

    def test_context_fails_eagerly_on_unknown(self):
        with pytest.raises(ArrayBackendError):
            with use_array_backend("nope"):
                pass  # pragma: no cover - must not be reached

    def test_auto_resolves_to_something_importable(self):
        assert resolve_backend("auto").name in available_backends()

    def test_get_namespace_defaults_to_active(self):
        assert get_namespace() is np
        assert get_namespace(np.zeros(3)) is np

    def test_unknown_dtype_kind(self):
        with pytest.raises(ValueError, match="unknown dtype kind"):
            ArrayBackend().dtype("quaternion")

    def test_compiler_config_round_trip(self):
        config = CompilerConfig(array_backend="numpy")
        assert CompilerConfig.from_json(config.to_json()) == config
        with pytest.raises(ValueError, match="unknown array_backend"):
            CompilerConfig(array_backend="bogus")


class TestNumpyBitwiseParity:
    """Kernels through the resolver == kernels on the default path."""

    def test_weyl_stack(self):
        unitaries = _unitary_stack()
        baseline = weyl_coordinates_many(unitaries)
        with use_array_backend("numpy"):
            routed = weyl_coordinates_many(unitaries)
        assert routed.tobytes() == baseline.tobytes()

    def test_canonicalize(self):
        rng = np.random.default_rng(17)
        coords = rng.uniform(-np.pi, np.pi, size=(64, 3))
        baseline = canonicalize_coordinates_many(coords)
        with use_array_backend("numpy"):
            routed = canonicalize_coordinates_many(coords)
        assert routed.tobytes() == baseline.tobytes()

    def test_membership(self, baseline_rules):
        coords = weyl_coordinates_many(_unitary_stack())
        regions = baseline_rules.coverage.coverages
        baseline_m = membership_matrix(regions, coords)
        baseline_k = first_covering_k(regions, coords)
        with use_array_backend("numpy"):
            routed_m = membership_matrix(regions, coords)
            routed_k = first_covering_k(regions, coords)
        assert routed_m.tobytes() == baseline_m.tobytes()
        assert routed_k.tobytes() == baseline_k.tobytes()

    def test_propagators(self):
        hams = _hamiltonian_steps(6, 5)
        dts = np.linspace(0.05, 0.3, 5)
        baseline = batched_piecewise_propagators(hams, dts)
        baseline_steps = batched_step_propagators(hams[:, 0], 0.1)
        baseline_piece = propagate_piecewise(list(hams[0]), dts)
        with use_array_backend("numpy"):
            assert (
                batched_piecewise_propagators(hams, dts).tobytes()
                == baseline.tobytes()
            )
            assert (
                batched_step_propagators(hams[:, 0], 0.1).tobytes()
                == baseline_steps.tobytes()
            )
            assert (
                propagate_piecewise(list(hams[0]), dts).tobytes()
                == baseline_piece.tobytes()
            )

    def test_sample_template_coordinates(self):
        # repetitions=2 exercises the interior Haar-local layer; the
        # seeded host RNG draw order is part of the parity contract.
        template = ParallelDriveTemplate(
            gc=1.0, gg=0.5, pulse_duration=1.0, repetitions=2
        )
        baseline = sample_template_coordinates(template, 32, seed=7)
        with use_array_backend("numpy"):
            routed = sample_template_coordinates(template, 32, seed=7)
        assert routed.tobytes() == baseline.tobytes()


@pytest.mark.parametrize("name", _ADAPTERS)
class TestAdapterParity:
    """torch/cupy agree with numpy to tolerance (skipped when absent)."""

    def test_weyl_stack_allclose(self, name):
        unitaries = _unitary_stack()
        baseline = weyl_coordinates_many(unitaries)
        with use_array_backend(name):
            routed = weyl_coordinates_many(unitaries)
        assert routed.dtype == baseline.dtype
        np.testing.assert_allclose(routed, baseline, atol=1e-9)

    def test_canonicalize_allclose(self, name):
        rng = np.random.default_rng(23)
        coords = rng.uniform(-np.pi, np.pi, size=(64, 3))
        baseline = canonicalize_coordinates_many(coords)
        with use_array_backend(name):
            routed = canonicalize_coordinates_many(coords)
        np.testing.assert_allclose(routed, baseline, atol=1e-12)

    def test_membership_identical(self, name, baseline_rules):
        coords = weyl_coordinates_many(_unitary_stack())
        regions = baseline_rules.coverage.coverages
        baseline = first_covering_k(regions, coords)
        with use_array_backend(name):
            routed = first_covering_k(regions, coords)
        # Hull tests run on the host either way; verdicts must match
        # exactly, not just closely.
        assert np.array_equal(routed, baseline)

    def test_propagators_allclose(self, name):
        hams = _hamiltonian_steps(6, 5)
        dts = np.linspace(0.05, 0.3, 5)
        baseline = batched_piecewise_propagators(hams, dts)
        single = step_propagator(hams[0, 0], 0.2)
        with use_array_backend(name):
            routed = batched_piecewise_propagators(hams, dts)
            routed_single = step_propagator(hams[0, 0], 0.2)
        assert isinstance(routed, np.ndarray)
        np.testing.assert_allclose(routed, baseline, atol=1e-10)
        np.testing.assert_allclose(routed_single, single, atol=1e-12)

    def test_template_unitaries_allclose(self, name):
        template = ParallelDriveTemplate(
            gc=1.0, gg=0.5, pulse_duration=1.0, repetitions=2
        )
        rng = np.random.default_rng(31)
        params = rng.uniform(
            -np.pi, np.pi, size=(8, template.num_parameters)
        )
        baseline = template.batched_unitaries(params)
        with use_array_backend(name):
            routed = template.batched_unitaries(params)
        assert isinstance(routed, np.ndarray)
        np.testing.assert_allclose(routed, baseline, atol=1e-10)

    def test_sample_coordinates_allclose(self, name):
        template = ParallelDriveTemplate(
            gc=1.0, gg=0.5, pulse_duration=1.0, repetitions=2
        )
        baseline = sample_template_coordinates(template, 16, seed=11)
        with use_array_backend(name):
            routed = sample_template_coordinates(template, 16, seed=11)
        assert isinstance(routed, np.ndarray)
        np.testing.assert_allclose(routed, baseline, atol=1e-9)
