"""Smoke and sanity tests for the experiment drivers."""

import numpy as np
import pytest

from repro.experiments import (
    EXPERIMENTS,
    run_experiment,
    run_fig3a,
    run_fig3b,
    run_fig3c,
    run_fig7,
    run_fig8,
)
from repro.experiments.common import ExperimentResult, format_table


class TestInfrastructure:
    def test_registry_covers_all_paper_artifacts(self):
        expected = {
            "fig1", "fig3a", "fig3b", "fig3c", "fig4", "fig5", "fig6",
            "fig7", "fig8", "fig9", "fig12",
            "table1", "table2", "table3", "table4", "table5", "table6",
            "table7", "target_sweep",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.345], [10, 0.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_result_save_round_trip(self, tmp_path):
        result = ExperimentResult(
            "demo", "Demo", "x", {"value": np.float64(1.5)}
        )
        path = result.save(tmp_path)
        assert path.exists()
        assert (tmp_path / "demo.json").exists()


class TestHamiltonianExperiments:
    def test_fig3a_stays_on_base_plane(self):
        result = run_fig3a(grid=13)
        points = np.asarray(result.data["points"])
        assert np.abs(points[:, 4]).max() < 1e-7
        assert all(result.data["named_hits"].values())

    def test_fig3b_lambda_in_band(self):
        result = run_fig3b(workloads=("qft", "ghz", "qaoa", "hlf"))
        # With a suite subset lambda varies; it must stay a sane mix of
        # CNOT and SWAP targets.
        assert 0.15 < result.data["lambda"] < 0.85
        assert result.data["counts"]["SWAP"] > 0
        assert result.data["counts"]["CNOT"] > 0

    def test_fig3c_boundary_fit(self):
        result = run_fig3c(seed=7)
        boundary = np.asarray(result.data["boundary_gg"])
        assert len(boundary) > 10
        assert boundary[0] > boundary[-1]  # decreasing toward conversion


class TestCoverageExperiments:
    def test_fig7_paper_claims(self):
        result = run_fig7(haar_count=2000)
        assert result.data["full_dimensional"]
        contains = result.data["contains"]
        assert contains["CNOT"]
        assert contains["iSWAP"]
        assert contains["(pi/2, pi/4, pi/4)"]
        assert not contains["SWAP"]  # resource floor keeps SWAP out
        assert 0.5 < result.data["haar_fraction"] < 0.95


class TestOptimizerExperiment:
    def test_fig8_converges(self):
        result = run_fig8(seed=1, restarts=3)
        assert result.data["final_loss"] < 1e-8
        losses = result.data["loss_history"]
        assert losses[-1] <= losses[0]


class TestTargetSweep:
    def test_sweep_over_speed_variants(self):
        from repro.experiments import run_target_sweep

        result = run_target_sweep(
            targets=("square_2x2", "square_2x2_fast", "square_2x2_slow"),
            workloads=("ghz",),
            num_qubits=4,
            trials=1,
            use_cache=False,
        )
        data = result.data
        assert set(data) == {
            "square_2x2", "square_2x2_fast", "square_2x2_slow"
        }
        base = data["square_2x2"]["workloads"]["ghz"]
        fast = data["square_2x2_fast"]["workloads"]["ghz"]
        slow = data["square_2x2_slow"]["workloads"]["ghz"]
        assert fast["duration"] < base["duration"] < slow["duration"]
        assert fast["estimated_fidelity"] > slow["estimated_fidelity"]
        assert "square_2x2_fast" in result.table

    def test_sweep_validation(self):
        from repro.experiments import run_target_sweep

        with pytest.raises(ValueError, match="at least one target"):
            run_target_sweep(targets=())
        with pytest.raises(ValueError, match="at least one workload"):
            run_target_sweep(targets=("square_2x2",), workloads=())
        with pytest.raises(ValueError, match="at least one rule"):
            run_target_sweep(targets=("square_2x2",), rules=())
