"""Tests for the continuous (Fourier) drive extension."""

import numpy as np
import pytest

from repro.core.optimal_control import FourierDriveTemplate, envelope_samples
from repro.core.parallel_drive import synthesize
from repro.quantum.linalg import is_unitary
from repro.quantum.weyl import named_gate_coordinates


class TestEnvelope:
    def test_single_harmonic_shape(self):
        samples = envelope_samples(np.array([2.0]), 64)
        # Half-sine: positive, symmetric, peaked mid-pulse, ~0 at edges.
        assert samples.min() > 0
        assert np.argmax(samples) in (31, 32)
        assert samples[0] < 0.2
        assert np.allclose(samples, samples[::-1], atol=1e-12)

    def test_harmonic_superposition(self):
        combined = envelope_samples(np.array([1.0, 0.5]), 32)
        first = envelope_samples(np.array([1.0]), 32)
        second = envelope_samples(np.array([0.0, 0.5]), 32)
        assert np.allclose(combined, first + second)

    def test_zero_coefficients_give_zero_envelope(self):
        assert np.array_equal(
            envelope_samples(np.zeros(4), 16), np.zeros(16)
        )

    def test_single_harmonic_is_exact_half_sine(self):
        steps = 16
        samples = envelope_samples(np.array([1.5]), steps)
        midpoints = (np.arange(steps) + 0.5) / steps
        assert np.allclose(samples, 1.5 * np.sin(np.pi * midpoints))

    def test_edge_pinned_ramps(self, rng):
        # The sine basis vanishes at t = 0 and t = T, so the first/last
        # midpoint samples are bounded by the series' slope times half a
        # step — the ramps stay hardware-friendly for any coefficients.
        steps = 64
        for _ in range(5):
            coefficients = rng.normal(0, 2.0, size=4)
            samples = envelope_samples(coefficients, steps)
            harmonics = np.arange(1, 5)
            slope_bound = float(
                np.sum(np.abs(coefficients) * harmonics) * np.pi
            )
            edge_bound = slope_bound * (0.5 / steps)
            assert abs(samples[0]) <= edge_bound + 1e-12
            assert abs(samples[-1]) <= edge_bound + 1e-12
            # And the exact series is zero at the pulse edges.
            for t in (0.0, 1.0):
                value = float(
                    np.sum(coefficients * np.sin(np.pi * harmonics * t))
                )
                assert abs(value) < 1e-12


class TestTemplate:
    def test_parameter_counting(self):
        template = FourierDriveTemplate(
            gc=np.pi / 2, gg=0.0, pulse_duration=1.0, num_harmonics=3,
            repetitions=2,
        )
        assert template.num_parameters == 2 * (2 + 6) + 6

    def test_zero_coefficients_give_bare_pulse(self):
        from repro.quantum.gates import canonical_gate
        from repro.quantum.linalg import allclose_up_to_global_phase

        template = FourierDriveTemplate(
            gc=np.pi / 2, gg=0.0, pulse_duration=1.0
        )
        params = np.zeros(template.num_parameters)
        assert allclose_up_to_global_phase(
            template.unitary(params),
            canonical_gate(np.pi / 2, np.pi / 2, 0),
            atol=1e-9,
        )

    def test_unitarity_random_params(self, rng):
        template = FourierDriveTemplate(
            gc=np.pi / 2, gg=0.3, pulse_duration=1.0, repetitions=2
        )
        assert is_unitary(template.unitary(template.random_parameters(rng)))

    def test_validation(self):
        with pytest.raises(ValueError):
            FourierDriveTemplate(gc=1, gg=0, pulse_duration=0)
        with pytest.raises(ValueError):
            FourierDriveTemplate(gc=1, gg=0, pulse_duration=1, num_harmonics=0)
        template = FourierDriveTemplate(gc=1, gg=0, pulse_duration=1)
        with pytest.raises(ValueError):
            template.unitary(np.zeros(3))

    def test_pinned_seed_synthesis_parity_with_piecewise(self):
        # Both template families, trained toward the same CX-family
        # target from the same pinned seed, must land in the same local
        # equivalence class — the backends are interchangeable.
        from repro.core.parallel_drive import ParallelDriveTemplate

        target = np.array([np.pi / 4, 0.0, 0.0])  # sqrt(CNOT) class
        smooth = FourierDriveTemplate(
            gc=np.pi / 2, gg=0.0, pulse_duration=1.0, num_harmonics=2,
            integration_steps=12,
        )
        discrete = ParallelDriveTemplate(
            gc=np.pi / 2, gg=0.0, pulse_duration=1.0, repetitions=1
        )
        smooth_result = synthesize(
            smooth, target, seed=13, restarts=4, max_iterations=2500,
            tolerance=1e-6, record_history=False,
        )
        discrete_result = synthesize(
            discrete, target, seed=13, restarts=4, max_iterations=2500,
            tolerance=1e-6, record_history=False,
        )
        assert smooth_result.converged
        assert discrete_result.converged
        # Parity in invariant space (the optimizer's own metric): the
        # Weyl chamber's CX ray has a Makhlin-degenerate mirror at
        # pi - c1, so raw coordinates may land on either image.
        from repro.quantum.makhlin import (
            makhlin_from_coordinates,
            makhlin_invariants,
        )

        target_triple = makhlin_from_coordinates(target)
        for result in (smooth_result, discrete_result):
            achieved = makhlin_invariants(result.unitary)
            assert np.linalg.norm(achieved - target_triple) < 1e-6
            c1 = result.coordinates[0]
            assert min(abs(c1 - np.pi / 4), abs(c1 - 3 * np.pi / 4)) < 5e-3
            assert abs(result.coordinates[1]) < 5e-3
            assert abs(result.coordinates[2]) < 5e-3


@pytest.mark.slow
class TestContinuousSynthesis:
    def test_cnot_from_smooth_iswap_pulse(self):
        # The paper's future-work extension: the smooth-envelope version
        # of Fig. 8 converges too.
        template = FourierDriveTemplate(
            gc=np.pi / 2, gg=0.0, pulse_duration=1.0, num_harmonics=3,
            repetitions=1,
        )
        result = synthesize(
            template, named_gate_coordinates("CNOT"), seed=2, restarts=5,
            max_iterations=3000,
        )
        assert result.converged

    def test_smooth_coverage_matches_discrete(self):
        # Sampled coordinate clouds of smooth vs 4-step drives should
        # fill comparable fractions of the chamber (the paper's "4 steps
        # is as good as 250" claim, continuous edition).
        from repro.core.coverage import RegionHull, haar_coordinate_samples
        from repro.core.parallel_drive import (
            ParallelDriveTemplate,
            sample_template_coordinates,
        )

        rng = np.random.default_rng(8)
        smooth = FourierDriveTemplate(
            gc=np.pi / 2, gg=0.0, pulse_duration=1.0, num_harmonics=3,
            integration_steps=16,
        )
        cloud = np.array([
            smooth.coordinates(smooth.random_parameters(rng))
            for _ in range(400)
        ])
        discrete_template = ParallelDriveTemplate(
            gc=np.pi / 2, gg=0.0, pulse_duration=1.0, repetitions=1
        )
        discrete = sample_template_coordinates(
            discrete_template, 4000, seed=9
        )
        haar = haar_coordinate_samples(1500, seed=10)
        left = haar[haar[:, 0] <= np.pi / 2 + 1e-9]
        smooth_frac = RegionHull(
            cloud[cloud[:, 0] <= np.pi / 2 + 1e-9]
        ).contains(left).mean()
        discrete_frac = RegionHull(
            discrete[discrete[:, 0] <= np.pi / 2 + 1e-9]
        ).contains(left).mean()
        assert abs(smooth_frac - discrete_frac) < 0.25
        assert smooth_frac > 0.3
