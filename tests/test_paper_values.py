"""Headline assertions: our numbers against the paper's published tables.

Deterministic entries (named gate counts, speed-limit durations, the W
scores, Table VI's CNOT/SWAP/W rows) are asserted to rounding precision;
Monte-Carlo entries (Haar expectations) are asserted within tolerance
bands around the paper's values.
"""

import numpy as np
import pytest

from repro.core.scoring import (
    DEFAULT_LAMBDA,
    PAPER_BASES,
    duration_score,
    gate_count_score,
    parallel_duration_score,
    parallel_gate_count_score,
)
from repro.core.speed_limit import (
    LinearSpeedLimit,
    SquaredSpeedLimit,
    snail_speed_limit,
)
from repro.experiments.tables import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    PAPER_TABLE5,
    PAPER_TABLE6,
)
from repro.transpiler.fidelity import PAPER_FIDELITY_MODEL


def test_lambda_matches_paper_fit():
    assert DEFAULT_LAMBDA == pytest.approx(0.47, abs=0.005)


class TestTable1:
    @pytest.mark.parametrize("basis", PAPER_BASES)
    def test_row(self, basis, haar_samples):
        score = gate_count_score(basis, haar_samples)
        k_cnot, k_swap, e_haar, k_w = PAPER_TABLE1[basis]
        assert score.k_cnot == k_cnot
        assert score.k_swap == k_swap
        assert score.k_weighted == pytest.approx(k_w, abs=0.01)
        assert score.expected_haar == pytest.approx(e_haar, abs=0.08)


class TestTable2:
    @pytest.mark.parametrize(
        "slf_name,slf_builder",
        [
            ("linear", LinearSpeedLimit),
            ("squared", SquaredSpeedLimit),
            ("snail", snail_speed_limit),
        ],
    )
    def test_deterministic_columns(self, slf_name, slf_builder, haar_samples):
        slf = slf_builder()
        for basis in PAPER_BASES:
            score = duration_score(basis, slf, 0.0, haar_samples)
            d_basis, d_cnot, d_swap, _, d_w = PAPER_TABLE2[slf_name][basis]
            # The paper prints two decimals (e.g. 0.35 for 1/(2 sqrt 2));
            # the characterized SNAIL row additionally carries the
            # hardware fit noise (DBasis 1.80 but D[CNOT] implies 1.78).
            rel = 0.03 if slf_name == "snail" else 0.0
            assert score.d_basis == pytest.approx(d_basis, rel=rel, abs=0.006)
            assert score.d_cnot == pytest.approx(d_cnot, rel=rel, abs=0.03)
            assert score.d_swap == pytest.approx(d_swap, rel=rel, abs=0.05)
            assert score.d_weighted == pytest.approx(d_w, rel=rel, abs=0.05)

    def test_linear_haar_column(self, haar_samples):
        slf = LinearSpeedLimit()
        for basis in PAPER_BASES:
            score = duration_score(basis, slf, 0.0, haar_samples)
            expected = PAPER_TABLE2["linear"][basis][3]
            assert score.expected_haar == pytest.approx(expected, abs=0.06)


class TestTable3:
    @pytest.mark.parametrize("basis", PAPER_BASES)
    def test_row(self, basis, haar_samples):
        score = duration_score(
            basis, LinearSpeedLimit(), 0.25, haar_samples
        )
        d_cnot, d_swap, e_haar, d_w = PAPER_TABLE3[basis]
        assert score.d_cnot == pytest.approx(d_cnot, abs=0.01)
        assert score.d_swap == pytest.approx(d_swap, abs=0.01)
        assert score.d_weighted == pytest.approx(d_w, abs=0.01)
        assert score.expected_haar == pytest.approx(e_haar, abs=0.08)


class TestTable4:
    @pytest.mark.parametrize("basis", PAPER_BASES)
    def test_named_counts(self, basis, haar_samples):
        score = parallel_gate_count_score(basis, haar_samples)
        k_cnot, k_swap, _, _ = PAPER_TABLE4[basis]
        assert score.k_cnot == k_cnot
        assert score.k_swap == k_swap

    @pytest.mark.parametrize("basis", PAPER_BASES)
    def test_haar_column_band(self, basis, haar_samples):
        score = parallel_gate_count_score(basis, haar_samples)
        expected = PAPER_TABLE4[basis][2]
        # Hull-based estimates vs the paper's own numerics: 0.35 band.
        assert score.expected_haar == pytest.approx(expected, abs=0.35)

    def test_parallel_improves_every_basis(self, haar_samples):
        for basis in PAPER_BASES:
            standard = gate_count_score(basis, haar_samples).expected_haar
            extended = parallel_gate_count_score(
                basis, haar_samples
            ).expected_haar
            assert extended <= standard + 0.05, basis


class TestTable5:
    @pytest.mark.parametrize("basis", PAPER_BASES)
    def test_deterministic_columns(self, basis, haar_samples):
        score = parallel_duration_score(basis, 0.25, haar_samples)
        d_cnot, d_swap, _, d_w = PAPER_TABLE5[basis]
        assert score.d_cnot == pytest.approx(d_cnot, abs=0.01)
        assert score.d_swap == pytest.approx(d_swap, abs=0.01)
        assert score.d_weighted == pytest.approx(d_w, abs=0.01)

    def test_sqrt_iswap_remains_best_weighted(self, haar_samples):
        # The paper's conclusion: sqrt(iSWAP) wins the W score after
        # parallel drive.
        scores = {
            basis: parallel_duration_score(basis, 0.25, haar_samples)
            for basis in PAPER_BASES
        }
        best = min(scores, key=lambda b: scores[b].d_weighted)
        assert best == "sqrt_iSWAP"


class TestTable6:
    def test_deterministic_rows(self, haar_samples):
        model = PAPER_FIDELITY_MODEL
        baseline = duration_score(
            "sqrt_iSWAP", LinearSpeedLimit(), 0.25, haar_samples
        )
        optimized = parallel_duration_score("sqrt_iSWAP", 0.25, haar_samples)
        for target, base_d, opt_d in (
            ("CNOT", baseline.d_cnot, optimized.d_cnot),
            ("SWAP", baseline.d_swap, optimized.d_swap),
            ("W(.47)", baseline.d_weighted, optimized.d_weighted),
        ):
            paper_base, paper_opt, _ = PAPER_TABLE6[target]
            assert model.gate_infidelity(base_d) == pytest.approx(
                paper_base, abs=1e-4
            ), target
            assert model.gate_infidelity(opt_d) == pytest.approx(
                paper_opt, abs=1e-4
            ), target

    def test_haar_row_improves(self, haar_samples):
        model = PAPER_FIDELITY_MODEL
        baseline = duration_score(
            "sqrt_iSWAP", LinearSpeedLimit(), 0.25, haar_samples
        )
        optimized = parallel_duration_score("sqrt_iSWAP", 0.25, haar_samples)
        base_inf = model.gate_infidelity(baseline.expected_haar)
        opt_inf = model.gate_infidelity(optimized.expected_haar)
        improvement = 100 * (base_inf - opt_inf) / base_inf
        # Paper: 10.5%; hull estimates put ours in a wider band.
        assert 5.0 < improvement < 20.0
