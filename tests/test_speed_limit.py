"""Tests for speed-limit functions and Algorithm 1 (duration scaling)."""

import numpy as np
import pytest

from repro.core.speed_limit import (
    CharacterizedSpeedLimit,
    LinearSpeedLimit,
    SquaredSpeedLimit,
    decomposition_duration,
    snail_speed_limit,
)
from repro.quantum.weyl import named_gate_coordinates

_HALF_PI = np.pi / 2


class TestLinear:
    def test_intercepts(self):
        slf = LinearSpeedLimit()
        assert slf.max_conversion == pytest.approx(_HALF_PI)
        assert slf.max_gain == pytest.approx(_HALF_PI)

    def test_ray_intersection(self):
        slf = LinearSpeedLimit()
        gc, gg = slf.max_strengths(beta=1.0)
        assert gc == pytest.approx(_HALF_PI / 2)
        assert gg == pytest.approx(gc)

    def test_iswap_normalized_to_one(self):
        slf = LinearSpeedLimit()
        assert slf.min_duration(_HALF_PI, 0.0) == pytest.approx(1.0)

    @pytest.mark.parametrize(
        "gate,expected",
        [
            ("iSWAP", 1.0), ("sqrt_iSWAP", 0.5), ("CNOT", 1.0),
            ("sqrt_CNOT", 0.5), ("B", 1.0), ("sqrt_B", 0.5),
        ],
    )
    def test_paper_table2_linear_row(self, gate, expected):
        slf = LinearSpeedLimit()
        duration = slf.gate_duration(named_gate_coordinates(gate))
        assert duration == pytest.approx(expected, abs=1e-9)

    def test_feasible_region(self):
        slf = LinearSpeedLimit()
        assert slf.feasible(0.5, 0.5)
        assert not slf.feasible(1.5, 0.5)
        assert not slf.feasible(-0.1, 0.0)


class TestSquared:
    @pytest.mark.parametrize(
        "gate,expected",
        [
            ("iSWAP", 1.0), ("sqrt_iSWAP", 0.5), ("CNOT", 0.7071),
            ("sqrt_CNOT", 0.3536), ("B", 0.7906), ("sqrt_B", 0.3953),
        ],
    )
    def test_paper_table2_squared_row(self, gate, expected):
        slf = SquaredSpeedLimit()
        duration = slf.gate_duration(named_gate_coordinates(gate))
        assert duration == pytest.approx(expected, abs=1e-3)

    def test_convexity_advantage(self):
        # The squared SLF lets combined drives run faster than linear.
        linear = LinearSpeedLimit().min_duration(np.pi / 4, np.pi / 4)
        squared = SquaredSpeedLimit().min_duration(np.pi / 4, np.pi / 4)
        assert squared < linear


class TestCharacterized:
    @pytest.fixture(scope="class")
    def snail(self):
        return snail_speed_limit(seed=7)

    @pytest.mark.parametrize(
        "gate,paper",
        [
            ("iSWAP", 1.00), ("sqrt_iSWAP", 0.50), ("CNOT", 1.80),
            ("sqrt_CNOT", 0.90), ("B", 1.40), ("sqrt_B", 0.70),
        ],
    )
    def test_paper_table2_snail_row(self, snail, gate, paper):
        duration = snail.gate_duration(named_gate_coordinates(gate))
        assert duration == pytest.approx(paper, rel=0.03)

    def test_conversion_preferred(self, snail):
        # "gc can be driven much harder than gg".
        assert snail.max_conversion > 2 * snail.max_gain

    def test_boundary_nonlinear(self, snail):
        # Sampled midpoints deviate from the straight line between
        # intercepts: the SNAIL SLF is non-linear.
        gc = np.linspace(0, snail.max_conversion, 50)
        chord = snail.max_gain * (1 - gc / snail.max_conversion)
        boundary = np.array([snail.boundary(x) for x in gc])
        assert np.max(np.abs(boundary - chord)) > 0.05 * snail.max_gain

    def test_validation(self):
        with pytest.raises(ValueError):
            CharacterizedSpeedLimit(np.array([0.0, 1.0]), np.array([1.0, 0.0]))
        with pytest.raises(ValueError):
            CharacterizedSpeedLimit(
                np.array([1.0, 0.5, 2.0]), np.array([1.0, 0.5, 0.0])
            )


class TestAlgorithm1:
    def test_gain_only_gate(self):
        slf = LinearSpeedLimit()
        assert slf.min_duration(0.0, _HALF_PI) == pytest.approx(1.0)

    def test_identity_gate_free(self):
        assert LinearSpeedLimit().min_duration(0.0, 0.0) == 0.0

    def test_rejects_negative_beta(self):
        with pytest.raises(ValueError):
            LinearSpeedLimit().max_strengths(-1.0)

    def test_off_base_plane_rejected(self):
        with pytest.raises(ValueError):
            LinearSpeedLimit().gate_duration(np.array([1.0, 0.5, 0.3]))

    def test_duration_formula(self):
        # Eq. 7: K * tmin + (K+1) * D[1Q].
        assert decomposition_duration(2, 0.5, 0.25) == pytest.approx(1.75)
        assert decomposition_duration(3, 0.5, 0.25) == pytest.approx(2.5)
        assert decomposition_duration(0, 1.0, 0.25) == pytest.approx(0.25)

    def test_duration_validation(self):
        with pytest.raises(ValueError):
            decomposition_duration(-1, 0.5)
        with pytest.raises(ValueError):
            decomposition_duration(1, -0.5)
