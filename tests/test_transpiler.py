"""Tests for coupling maps, layouts, routing, and consolidation."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, circuit_unitary, permutation_matrix
from repro.circuits.workloads import get_workload
from repro.quantum.linalg import allclose_up_to_global_phase
from repro.transpiler.consolidate import collect_2q_blocks, merge_1q_runs
from repro.transpiler.coupling import (
    heavy_hex,
    line_topology,
    square_lattice,
)
from repro.transpiler.layout import Layout, random_layout, trivial_layout
from repro.transpiler.routing import route_circuit


class TestCoupling:
    def test_square_lattice_structure(self):
        lattice = square_lattice(4, 4)
        assert lattice.num_qubits == 16
        assert len(lattice.edges) == 24  # 2 * 4 * 3
        assert lattice.are_adjacent(0, 1)
        assert not lattice.are_adjacent(0, 5)

    def test_lattice_distances(self):
        lattice = square_lattice(4, 4)
        assert lattice.distance(0, 15) == 6  # Manhattan corner-to-corner
        assert lattice.distance(5, 5) == 0

    def test_line_topology(self):
        line = line_topology(5)
        assert line.distance(0, 4) == 4

    def test_heavy_hex_connected(self):
        patch = heavy_hex()
        assert patch.num_qubits == 27
        assert patch.distance(0, 26) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            square_lattice(0, 4)
        with pytest.raises(ValueError):
            line_topology(1)


class TestLayout:
    def test_trivial_layout(self):
        lattice = square_lattice(2, 2)
        layout = trivial_layout(3, lattice)
        assert layout.physical(2) == 2
        assert layout.logical(3) is None

    def test_swap_physical_updates_both_directions(self):
        layout = Layout([0, 1, 2], 4)
        layout.swap_physical(0, 3)
        assert layout.physical(0) == 3
        assert layout.logical(3) == 0
        assert layout.logical(0) is None

    def test_random_layout_injective(self, rng):
        lattice = square_lattice(4, 4)
        layout = random_layout(10, lattice, rng)
        physicals = [layout.physical(q) for q in range(10)]
        assert len(set(physicals)) == 10

    def test_oversubscription_rejected(self):
        with pytest.raises(ValueError):
            trivial_layout(5, square_lattice(2, 2))

    def test_non_injective_rejected(self):
        with pytest.raises(ValueError):
            Layout([0, 0], 4)


class TestRouting:
    @pytest.mark.parametrize("workload", ["qft", "qaoa", "hlf"])
    def test_routed_gates_adjacent(self, workload):
        lattice = square_lattice(4, 4)
        circuit = get_workload(workload, 16)
        routed = route_circuit(
            circuit, lattice, trivial_layout(16, lattice), seed=1
        )
        for gate in routed.circuit:
            if gate.num_qubits == 2:
                assert lattice.are_adjacent(*gate.qubits)

    def test_unitary_equivalence_small(self):
        lattice = square_lattice(2, 3)
        circuit = get_workload("qft", 6)
        routed = route_circuit(
            circuit, lattice, trivial_layout(6, lattice), seed=2
        )
        permutation = permutation_matrix(routed.final_permutation(), 6)
        assert allclose_up_to_global_phase(
            permutation @ circuit_unitary(circuit),
            circuit_unitary(routed.circuit),
            atol=1e-7,
        )

    def test_adjacent_circuit_needs_no_swaps(self):
        lattice = line_topology(4)
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1).cx(1, 2).cx(2, 3)
        routed = route_circuit(
            circuit, lattice, trivial_layout(4, lattice), seed=0
        )
        assert routed.swap_count == 0

    def test_rejects_three_qubit_gates(self):
        from repro.circuits.gate import Gate

        lattice = line_topology(4)
        circuit = QuantumCircuit(4)
        circuit.append(Gate("big", (0, 1, 2), matrix=np.eye(8)))
        with pytest.raises(ValueError):
            route_circuit(circuit, lattice, trivial_layout(4, lattice))

    def test_deterministic_given_seed(self):
        lattice = square_lattice(4, 4)
        circuit = get_workload("qaoa", 16)
        layout = trivial_layout(16, lattice)
        first = route_circuit(circuit, lattice, layout, seed=5)
        second = route_circuit(circuit, lattice, layout, seed=5)
        assert first.swap_count == second.swap_count
        assert [g.qubits for g in first.circuit] == [
            g.qubits for g in second.circuit
        ]


class TestConsolidation:
    def test_merge_1q_runs_preserves_unitary(self, rng):
        circuit = QuantumCircuit(2)
        circuit.h(0).t(0).rx(0.3, 0).cx(0, 1).s(1).sdg(1).h(1)
        merged = merge_1q_runs(circuit)
        assert allclose_up_to_global_phase(
            circuit_unitary(merged), circuit_unitary(circuit), atol=1e-9
        )
        # h-t-rx fused into one gate before the cx.
        assert merged.count_ops()["u1q"] == 2

    def test_collect_blocks_preserves_unitary(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).rz(0.2, 1).cx(0, 1).cx(1, 2).swap(1, 2)
        blocked = collect_2q_blocks(circuit)
        assert allclose_up_to_global_phase(
            circuit_unitary(blocked), circuit_unitary(circuit), atol=1e-9
        )

    def test_cnot_swap_merges_to_iswap_class(self):
        from repro.quantum.weyl import weyl_coordinates

        circuit = QuantumCircuit(2)
        circuit.cx(0, 1).swap(0, 1)
        blocked = collect_2q_blocks(circuit)
        blocks = [g for g in blocked if g.name == "block"]
        assert len(blocks) == 1
        coords = weyl_coordinates(blocks[0].to_matrix())
        # Paper footnote 2: CNOT followed by SWAP is an iSWAP equivalent.
        assert np.allclose(coords, [np.pi / 2, np.pi / 2, 0], atol=1e-7)

    def test_blocks_respect_interleaving_barrier(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1).cx(1, 2).cx(0, 1)
        blocked = collect_2q_blocks(circuit)
        blocks = [g for g in blocked if g.name == "block"]
        # cx(1,2) interrupts the (0,1) run: three separate blocks.
        assert len(blocks) == 3

    def test_reversed_orientation_absorbed(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1).cx(1, 0)
        blocked = collect_2q_blocks(circuit)
        blocks = [g for g in blocked if g.name == "block"]
        assert len(blocks) == 1
        assert allclose_up_to_global_phase(
            circuit_unitary(blocked), circuit_unitary(circuit), atol=1e-9
        )


class TestRouterParameters:
    def test_lookahead_validation(self):
        lattice = square_lattice(2, 2)
        circuit = QuantumCircuit(4).cx(0, 3)
        with pytest.raises(ValueError):
            route_circuit(
                circuit, lattice, trivial_layout(4, lattice), lookahead=0
            )
        with pytest.raises(ValueError):
            route_circuit(
                circuit, lattice, trivial_layout(4, lattice), decay=0.0
            )

    def test_greedy_mode_still_correct(self):
        lattice = square_lattice(4, 4)
        circuit = get_workload("qaoa", 16)
        routed = route_circuit(
            circuit, lattice, trivial_layout(16, lattice), seed=2,
            lookahead=1,
        )
        for gate in routed.circuit:
            if gate.num_qubits == 2:
                assert lattice.are_adjacent(*gate.qubits)

    def test_heavy_hex_routing(self):
        patch = heavy_hex()
        circuit = get_workload("ghz", 16)
        routed = route_circuit(
            circuit, patch, trivial_layout(16, patch), seed=4
        )
        for gate in routed.circuit:
            if gate.num_qubits == 2:
                assert patch.are_adjacent(*gate.qubits)
        # Heavy hex is sparser than the square lattice: routing a chain
        # over the first 16 physical qubits needs SWAPs.
        assert routed.swap_count > 0
