"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_artifacts(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for artifact in ("table1", "table7", "fig3a", "fig12"):
            assert artifact in out


class TestRun:
    def test_unknown_experiment_fails(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_and_saves(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert main(["run", "fig3a"]) == 0
        out = capsys.readouterr().out
        assert "fig3a" in out
        assert (tmp_path / "fig3a.txt").exists()
        assert (tmp_path / "fig3a.json").exists()


@pytest.mark.slow
class TestTranspile:
    def test_transpile_command(self, capsys):
        assert main(["transpile", "ghz", "--trials", "2"]) == 0
        out = capsys.readouterr().out
        assert "faster" in out
