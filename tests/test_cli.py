"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_artifacts(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for artifact in ("table1", "table7", "fig3a", "fig12"):
            assert artifact in out


class TestRun:
    def test_unknown_experiment_fails(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_and_saves(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert main(["run", "fig3a"]) == 0
        out = capsys.readouterr().out
        assert "fig3a" in out
        assert (tmp_path / "fig3a.txt").exists()
        assert (tmp_path / "fig3a.json").exists()


class TestTargets:
    def test_lists_presets(self, capsys):
        assert main(["targets"]) == 0
        out = capsys.readouterr().out
        for name in ("snail_4x4", "heavy_hex_16", "line_16_fast"):
            assert name in out

    def test_show_dumps_json(self, capsys):
        import json

        assert main(["targets", "show", "heavy_hex_16"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "heavy_hex_16"
        assert len(payload["t1_us"]) == 16

    def test_show_requires_name(self, capsys):
        assert main(["targets", "show"]) == 2
        assert "missing target name" in capsys.readouterr().err

    def test_show_unknown_target(self, capsys):
        assert main(["targets", "show", "nope"]) == 2
        assert "unknown target" in capsys.readouterr().err

    def test_show_invalid_dynamic_target(self, capsys):
        # Parses as a dynamic name but fails validation: friendly
        # message + exit 2, not a traceback.
        assert main(["targets", "show", "line_1"]) == 2
        assert "targets:" in capsys.readouterr().err


class TestSynth:
    def test_list_backends(self, capsys):
        assert main(["synth", "--list-backends"]) == 0
        out = capsys.readouterr().out
        assert "piecewise" in out and "fourier" in out

    def test_synthesize_named_target(self, capsys):
        code = main(
            ["synth", "CNOT", "--basis", "iSWAP", "--starts", "8",
             "--refine", "1", "--seed", "7"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "converged=True" in out
        assert "starts: 8" in out

    def test_coordinate_target_and_json(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "synth.json"
        code = main(
            ["synth", "1.5707963", "0", "0", "--starts", "6",
             "--refine", "1", "--seed", "7", "--json", str(out_path)]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["converged"] is True
        assert len(payload["start_losses"]) == 6

    def test_unknown_backend_fails(self, capsys):
        assert main(["synth", "CNOT", "--backend", "nope"]) == 2
        assert "backend" in capsys.readouterr().err

    def test_unknown_basis_fails(self, capsys):
        assert main(["synth", "CNOT", "--basis", "nope"]) == 2
        assert "basis" in capsys.readouterr().err

    def test_missing_target_fails(self, capsys):
        assert main(["synth"]) == 2
        assert "target" in capsys.readouterr().err

    def test_coverage_flow(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_COVERAGE_CACHE", raising=False)
        code = main(
            ["synth", "--basis", "sqrt_iSWAP", "--coverage", "1",
             "--samples", "150", "--no-parallel", "--seed", "3"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "K=1: Haar fraction" in out
        assert "coverage store" in out
        assert (tmp_path / "coverage.sqlite").exists()

    def test_coverage_flow_respects_kill_switch(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_COVERAGE_CACHE", "off")
        code = main(
            ["synth", "--basis", "sqrt_iSWAP", "--coverage", "1",
             "--samples", "150", "--no-parallel", "--seed", "3"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "disabled (REPRO_COVERAGE_CACHE)" in out
        # The kill-switch promises no writes: not even an empty db.
        assert not (tmp_path / "coverage.sqlite").exists()


class TestBatchTarget:
    def test_batch_on_named_target(self, tmp_path, capsys):
        # The acceptance flow: the smoke suite retargeted end-to-end
        # (1 trial keeps it seconds-scale in-process).
        out_json = tmp_path / "out.json"
        assert main([
            "batch", "--suite", "smoke", "--target", "heavy_hex_16",
            "--trials", "1", "--workers", "1",
            "--cache-path", str(tmp_path / "cache.sqlite"),
            "--json", str(out_json),
        ]) == 0
        out = capsys.readouterr().out
        assert "heavy_hex_16" in out
        import json

        payload = json.loads(out_json.read_text())
        assert all(
            result["job"]["config"]["target"] == "heavy_hex_16"
            for result in payload["results"]
        )
        assert all(
            0.0 < result["estimated_fidelity"] <= 1.0
            for result in payload["results"]
        )

    def test_batch_target_too_small(self, capsys):
        assert main([
            "batch", "--suite", "table4", "--target", "square_2x2",
        ]) == 2
        assert "too small" in capsys.readouterr().err

    def test_batch_pipeline_and_profile(self, tmp_path, capsys):
        # The acceptance flow for the pass API: a named pipeline plus
        # the per-pass timing table backed by PassProfile records.
        out_json = tmp_path / "out.json"
        assert main([
            "batch", "--workloads", "ghz", "--rules", "parallel",
            "--qubits", "4", "--trials", "2", "--workers", "1",
            "--pipeline", "paper", "--profile", "--no-cache",
            "--json", str(out_json),
        ]) == 0
        out = capsys.readouterr().out
        assert "per-pass profile" in out
        for pass_name in ("Route", "TranslateToBasis", "Schedule[asap]"):
            assert pass_name in out
        import json

        payload = json.loads(out_json.read_text())
        (result,) = payload["results"]
        assert result["job"]["config"]["pipeline"] == "paper"
        assert result["pass_profile"]["records"]

    def test_batch_fast_pipeline_keeps_single_trial_default(
        self, tmp_path, capsys
    ):
        # Without --trials, the named pipeline's trial default wins:
        # "fast" compiles exactly one trivial-layout trial per job.
        out_json = tmp_path / "out.json"
        assert main([
            "batch", "--workloads", "ghz", "--rules", "parallel",
            "--qubits", "4", "--workers", "1", "--pipeline", "fast",
            "--profile", "--no-cache", "--json", str(out_json),
        ]) == 0
        import json

        (result,) = json.loads(out_json.read_text())["results"]
        assert result["job"]["config"]["trials"] is None  # pipeline default
        records = result["pass_profile"]["records"]
        assert {r["trial"] for r in records} == {0}
        assert "Collect2QBlocks" not in {r["pass"] for r in records}

    def test_batch_unknown_pipeline(self, capsys):
        assert main([
            "batch", "--suite", "smoke", "--pipeline", "warp_speed",
        ]) == 2
        assert "unknown pipeline" in capsys.readouterr().err

    def test_coupling_flag_removed(self, capsys):
        """The deprecated --coupling shim is gone; argparse rejects it."""
        with pytest.raises(SystemExit) as excinfo:
            main([
                "batch", "--workloads", "ghz", "--rules", "parallel",
                "--qubits", "4", "--coupling", "2", "2", "--trials", "1",
                "--workers", "1", "--no-cache",
            ])
        assert excinfo.value.code == 2
        assert "--coupling" in capsys.readouterr().err


class TestObsConsumers:
    """Pointed failures for the trace/metrics artifact consumers."""

    def test_metrics_missing_snapshot(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert main(["metrics"]) == 2
        err = capsys.readouterr().err
        assert "no snapshot" in err and "repro trace" in err

    def test_metrics_unknown_schema(self, tmp_path, capsys):
        import json

        path = tmp_path / "metrics.json"
        path.write_text(json.dumps({"schema": 99, "counters": {}}))
        assert main(["metrics", "--path", str(path)]) == 2
        err = capsys.readouterr().err
        assert "schema v99" in err and "Traceback" not in err

    def test_metrics_unrecognizable_snapshot(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        path.write_text("{not json")
        assert main(["metrics", "--path", str(path)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_metrics_spans_missing_trace(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert main(["metrics", "--spans"]) == 2
        assert "no trace" in capsys.readouterr().err

    def test_metrics_spans_unknown_schema(self, tmp_path, capsys):
        import json

        path = tmp_path / "trace.json"
        path.write_text(json.dumps({"traceEvents": [], "schema": 99}))
        assert main(
            ["metrics", "--spans", "--trace-path", str(path)]
        ) == 2
        assert "schema v99" in capsys.readouterr().err

    def test_metrics_spans_summarizes_trace(self, tmp_path, capsys):
        from repro.obs import Span, write_chrome_trace

        span = Span(
            name="compile", trace_id="t", span_id="1", parent_id=None,
            start=0.0, duration=0.5, pid=123,
        )
        path = write_chrome_trace([span], tmp_path / "trace.json")
        assert main(
            ["metrics", "--spans", "--trace-path", str(path)]
        ) == 0
        out = capsys.readouterr().out
        assert "compile" in out and "total ms" in out

    def test_trace_profile_exports_collapsed_stacks(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.obs import PROFILER, TRACER

        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        try:
            assert main(["trace", "--profile", "targets"]) == 0
        finally:
            PROFILER.stop()
            PROFILER.clear()
            TRACER.disable()
            TRACER.clear()
        out = capsys.readouterr().out
        assert "collapsed stacks written to" in out
        assert (tmp_path / "profile_collapsed.txt").exists()
        assert (tmp_path / "trace.json").exists()


@pytest.mark.slow
class TestTranspile:
    def test_transpile_command(self, capsys):
        assert main(["transpile", "ghz", "--trials", "2"]) == 0
        out = capsys.readouterr().out
        assert "faster" in out
