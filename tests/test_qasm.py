"""Tests for OpenQASM 2.0 export/import."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.qasm import from_qasm, to_qasm
from repro.circuits.simulation import circuit_unitary
from repro.circuits.workloads import get_workload
from repro.quantum.linalg import allclose_up_to_global_phase


class TestRoundTrip:
    def test_simple_circuit(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).rz(0.25, 1).cp(np.pi / 8, 1, 2).swap(0, 2)
        parsed = from_qasm(to_qasm(circuit))
        assert parsed.num_qubits == 3
        assert [g.name for g in parsed] == [g.name for g in circuit]
        assert allclose_up_to_global_phase(
            circuit_unitary(parsed), circuit_unitary(circuit), atol=1e-9
        )

    @pytest.mark.parametrize("workload", ["qft", "ghz", "qaoa", "adder"])
    def test_workload_round_trip(self, workload):
        circuit = get_workload(workload, 8)
        parsed = from_qasm(to_qasm(circuit))
        assert len(parsed) == len(circuit)
        assert allclose_up_to_global_phase(
            circuit_unitary(parsed), circuit_unitary(circuit), atol=1e-7
        )

    def test_parameter_precision(self):
        circuit = QuantumCircuit(1).rz(0.123456789012345, 0)
        parsed = from_qasm(to_qasm(circuit))
        assert parsed[0].params[0] == pytest.approx(
            0.123456789012345, abs=1e-15
        )


class TestValidation:
    def test_matrix_gates_rejected(self):
        circuit = QuantumCircuit(2)
        circuit.unitary(np.eye(4), (0, 1))
        with pytest.raises(ValueError):
            to_qasm(circuit)

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            from_qasm("OPENQASM 2.0;\nqreg q[2];\nwat??;\n")

    def test_missing_qreg_rejected(self):
        with pytest.raises(ValueError):
            from_qasm("OPENQASM 2.0;\nh q[0];\n")

    def test_unknown_gate_rejected(self):
        with pytest.raises(ValueError):
            from_qasm("qreg q[1];\nfrobnicate q[0];\n")

    def test_comments_ignored(self):
        parsed = from_qasm(
            "// header\nqreg q[1]; // register\nh q[0]; // gate\n"
        )
        assert len(parsed) == 1
