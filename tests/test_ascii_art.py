"""Tests for the ASCII chamber renderer."""

import numpy as np
import pytest

from repro.experiments.ascii_art import (
    CHAMBER_LANDMARKS,
    render_base_plane,
    render_projection,
)


class TestRenderProjection:
    def test_raster_dimensions(self):
        points = np.random.default_rng(1).uniform(0, 1, (100, 3))
        text = render_projection(points, width=30, height=10)
        lines = text.splitlines()
        assert len(lines) == 10
        assert all(len(line) == 32 for line in lines)  # 2-space indent

    def test_dense_regions_darker(self):
        # All mass at one cell: exactly one non-space shade plus blanks.
        points = np.tile([0.5, 0.3, 0.0], (50, 1))
        text = render_projection(points, width=20, height=8, landmarks={})
        shades = {ch for ch in text if ch not in " \n"}
        assert len(shades) == 1

    def test_landmarks_stamped(self):
        points = np.zeros((1, 3))
        text = render_base_plane(points)
        for label in CHAMBER_LANDMARKS:
            assert label in text

    def test_validation(self):
        with pytest.raises(ValueError):
            render_projection(np.zeros((3, 2)))
        with pytest.raises(ValueError):
            render_projection(np.zeros((3, 3)), width=2)

    def test_empty_region_blank(self):
        points = np.tile([0.1, 0.05, 0.0], (5, 1))
        text = render_projection(points, width=40, height=12, landmarks={})
        # Mass confined near the origin corner: the far corner is blank.
        top_line = text.splitlines()[0]
        assert top_line.strip() == ""
