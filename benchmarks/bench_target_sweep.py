"""Cross-target scenario sweep over the whole hardware-target registry.

Reproduces the workload table across every preset target (topologies
plus fast/slow speed-limit variants) through the batch engine, and
asserts the physics the target subsystem encodes:

* fast variants (2Q pulses x0.5) finish in less normalized time than
  their base target, slow variants (x2.0) in more;
* estimated fidelities are proper probabilities, and a target's fast
  variant never estimates worse fidelity than its slow variant;
* denser connectivity helps: the all-to-all register never routes more
  SWAPs than the line for the same workload.
"""

from conftest import run_once

from repro.experiments.target_sweep import run_target_sweep
from repro.targets import list_targets


def test_target_sweep(benchmark, record_result):
    result = run_once(
        benchmark, run_target_sweep, num_qubits=8, trials=3, seed=7
    )
    record_result(result)
    data = result.data
    assert set(data) == set(list_targets())

    for name, entry in data.items():
        for workload, row in entry["workloads"].items():
            assert row["duration"] > 0
            assert 0.0 < row["estimated_fidelity"] <= 1.0, (
                f"{name}/{workload}: FT {row['estimated_fidelity']}"
            )

    def durations(name, workload):
        return data[name]["workloads"][workload]["duration"]

    def fidelity(name, workload):
        return data[name]["workloads"][workload]["estimated_fidelity"]

    bases = [n for n in data if f"{n}_fast" in data and f"{n}_slow" in data]
    assert bases, "registry lost its speed-limit variants"
    for base in bases:
        for workload in data[base]["workloads"]:
            assert durations(f"{base}_fast", workload) < durations(
                base, workload
            ), f"{base}/{workload}: fast variant not faster"
            assert durations(f"{base}_slow", workload) > durations(
                base, workload
            ), f"{base}/{workload}: slow variant not slower"
            assert fidelity(f"{base}_fast", workload) >= fidelity(
                f"{base}_slow", workload
            ), f"{base}/{workload}: fast variant worse than slow"

    for workload in data["line_16"]["workloads"]:
        line = data["line_16"]["workloads"][workload]["swaps"]
        dense = data["all_to_all_16"]["workloads"][workload]["swaps"]
        assert dense <= line, f"{workload}: all-to-all routed more SWAPs"
