"""Benchmark harness configuration.

Every benchmark regenerates one paper artifact (table or figure) via the
experiment drivers, prints the regenerated rows next to the paper's
published values, and persists them under ``results/``.  Timings come
from pytest-benchmark (single-round pedantic mode: these are experiment
pipelines, not microbenchmarks).
"""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentResult, results_dir


@pytest.fixture
def record_result(capsys):
    """Save an experiment result and echo its table into the bench log."""

    def _record(result: ExperimentResult) -> ExperimentResult:
        result.save(results_dir())
        with capsys.disabled():
            print(f"\n{result}\n")
        return result

    return _record


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(
        func, args=args, kwargs=kwargs, rounds=1, iterations=1,
        warmup_rounds=0,
    )
