"""Regenerate paper Table V: parallel-drive durations (joint templates)."""

from conftest import run_once

from repro.experiments import run_table5
from repro.experiments.tables import PAPER_TABLE5


def test_table5_parallel_durations(benchmark, record_result):
    result = run_once(benchmark, run_table5)
    record_result(result)
    for basis, (d_cnot, d_swap, e_haar, d_w) in PAPER_TABLE5.items():
        row = result.data[basis]
        assert abs(row["D[CNOT]"] - d_cnot) < 0.01
        assert abs(row["D[SWAP]"] - d_swap) < 0.01
        assert abs(row["D[W]"] - d_w) < 0.01
        assert abs(row["E[D[Haar]]"] - e_haar) < 0.35, basis
    # The paper's conclusion: sqrt(iSWAP) stays the best W-score basis.
    weighted = {b: result.data[b]["D[W]"] for b in result.data}
    assert min(weighted, key=weighted.get) == "sqrt_iSWAP"
