"""Compile-service load bench: cold vs. warm throughput over HTTP.

Drives a live :class:`~repro.service.server.CompileServer` (in-process
thread, real sockets, real forked workers) with a distinct-job load,
then replays the identical load so every submission answers from the
result store's dedup tier.  Records jobs/sec for both passes, the
dedup hit rate, and p50/p99 per-job latencies into
``results/service_bench.json`` (CI names the pytest-benchmark JSON
``BENCH_service.json``), all ledger-ingestible.

The shard-scaling leg drives the same protocol through the digest-range
router (``repro serve --shards N`` topology, in-process): a
digest-balanced load against one server vs. two shard servers behind a
:class:`~repro.service.router.ShardRouter`, with an artificial
per-execution worker delay so throughput measures scheduling capacity,
not compile noise.  Cold QPS must scale with the doubled worker pool,
and the router's warm path (LRU memo answering repeats without a shard
hop) must stay within a few percent of a single server's store-dedup
path.  Results land in ``results/service_shards_bench.json``.

The perf smokes pin the tiers' reasons to exist: a warm dedup hit
skips compilation entirely, so warm throughput must beat cold
throughput by at least 5x; a second shard doubles scheduling capacity,
so 2-shard cold QPS must beat single-process by at least 1.3x while
router warm overhead stays <= 10%.  The asserts catch the tier falling
out of the admission/routing path, not runner noise.
"""

from __future__ import annotations

from time import perf_counter

from repro.obs import REGISTRY, MetricsRegistry
from repro.service import (
    CompileJob,
    RouterThread,
    ServerThread,
    ServiceClient,
    shard_index,
)

from _artifact import write_bench_artifact
from conftest import run_once

#: Distinct seconds-scale jobs (the cold pass compiles each once).
JOBS = [
    CompileJob(
        workload=workload,
        num_qubits=4,
        rules=rules,
        trials=1,
        seed=7,
        target="square_2x2",
        pipeline="fast",
        tag=f"qps{index}",
    )
    for index, (workload, rules) in enumerate(
        (w, r)
        for w in ("ghz", "qft")
        for r in ("baseline", "parallel")
    )
]

#: Replays of the identical load against the warm result store.
WARM_ROUNDS = 3


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))]


def _submit_load(client: ServiceClient, jobs) -> tuple[float, list[float]]:
    """One full-load submission: (wall seconds, per-job latencies).

    Latency is submission-start to result-event arrival — what a
    streaming caller actually waits, dedup answers included.
    """
    start = perf_counter()
    latencies = []
    for event in client.submit_stream(jobs):
        if event.get("event") == "result":
            latencies.append(perf_counter() - start)
    assert len(latencies) == len(jobs)
    return perf_counter() - start, latencies


def _run_load(jobs, workers: int = 2) -> dict:
    """Cold pass then warm replays against one server lifetime."""
    before = REGISTRY.snapshot()
    with ServerThread(workers=workers, use_cache=False) as server:
        client = ServiceClient(server.url, timeout=300)
        cold_s, cold_latencies = _submit_load(client, jobs)
        warm_s = 0.0
        warm_latencies: list[float] = []
        for _ in range(WARM_ROUNDS):
            wall, latencies = _submit_load(client, jobs)
            warm_s += wall
            warm_latencies += latencies
    delta = MetricsRegistry.delta(before, REGISTRY.snapshot())
    counters = delta.get("counters", {})
    warm_submissions = len(jobs) * WARM_ROUNDS
    return {
        "jobs": len(jobs),
        "workers": workers,
        "warm_rounds": WARM_ROUNDS,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "cold_qps": len(jobs) / cold_s,
        "warm_qps": warm_submissions / warm_s,
        "warm_over_cold_speedup": (
            (warm_submissions / warm_s) / (len(jobs) / cold_s)
        ),
        "dedup_hit_rate": (
            counters.get("repro.service.dedup_hits", 0) / warm_submissions
        ),
        "cold_p50_s": _percentile(cold_latencies, 0.50),
        "cold_p99_s": _percentile(cold_latencies, 0.99),
        "warm_p50_s": _percentile(warm_latencies, 0.50),
        "warm_p99_s": _percentile(warm_latencies, 0.99),
    }


def test_service_qps_bench(benchmark, capsys):
    payload = run_once(benchmark, _run_load, JOBS)
    assert payload["dedup_hit_rate"] == 1.0
    out = write_bench_artifact(
        "service",
        payload,
        metrics={
            key: payload[key]
            for key in (
                "cold_qps", "warm_qps", "warm_over_cold_speedup",
                "dedup_hit_rate", "cold_p50_s", "cold_p99_s",
                "warm_p50_s", "warm_p99_s",
            )
        },
    )
    with capsys.disabled():
        print(
            f"\nservice qps bench ({payload['jobs']} jobs, "
            f"{payload['workers']} workers, "
            f"{payload['warm_rounds']} warm rounds):"
        )
        for key in (
            "cold_qps", "warm_qps", "warm_over_cold_speedup",
            "dedup_hit_rate", "cold_p50_s", "cold_p99_s",
            "warm_p50_s", "warm_p99_s",
        ):
            print(f"  {key:>24}: {payload[key]:.4g}")
        print(f"written to {out}")


def test_perf_smoke_service_warm_dedup():
    """Warm dedup throughput >= 5x cold (acceptance criterion).

    A dedup hit answers from the result store without scheduling a
    worker, so the only way this fails is dedup falling out of the
    admission path (every warm submission recompiling) — a correctness
    regression dressed as a perf one.
    """
    payload = _run_load(JOBS[:3])
    assert payload["dedup_hit_rate"] == 1.0
    assert payload["warm_over_cold_speedup"] >= 5.0, payload


# -- shard scaling -------------------------------------------------------------

#: Artificial per-execution delay for the scaling legs: makes one job's
#: service time deterministic, so cold QPS measures worker-pool
#: capacity (the thing sharding doubles) rather than compile noise.
SHARD_WORKER_DELAY_S = 0.3


def _balanced_jobs(per_shard: int, shards: int = 2) -> list[CompileJob]:
    """Distinct jobs, ``per_shard`` owned by each digest range.

    Scans deterministic tags and keeps the first ``per_shard`` whose
    identity digest lands in each shard's range — a balanced load, so
    the sharded leg's ideal speedup is exactly the worker-pool ratio.
    """
    buckets: dict[int, list[CompileJob]] = {s: [] for s in range(shards)}
    for index in range(4096):
        if all(len(jobs) >= per_shard for jobs in buckets.values()):
            break
        job = CompileJob(
            workload="ghz", num_qubits=4, rules="baseline", trials=1,
            seed=7, target="square_2x2", pipeline="fast",
            tag=f"shardqps{index}",
        )
        bucket = buckets[shard_index(job.identity_digest(), shards)]
        if len(bucket) < per_shard:
            bucket.append(job)
    jobs = [job for shard in range(shards) for job in buckets[shard]]
    assert len(jobs) == per_shard * shards
    return jobs


def _timed_rounds(client: ServiceClient, jobs, rounds: int) -> float:
    total = 0.0
    for _ in range(rounds):
        wall, _ = _submit_load(client, jobs)
        total += wall
    return total


def _run_shard_scaling(
    per_shard: int = 4, shards: int = 2, warm_rounds: int = 12
) -> dict:
    """Single-process vs. N-shard legs over one digest-balanced load.

    Cold passes compile every job once (worker-delay dominated); warm
    rounds replay the identical load against the single server's store
    dedup and the router's LRU memo respectively.

    One priming compile runs in this process first: workers are forked
    per job, so they inherit the parent's warmed module-level caches
    and each execution costs ~the worker delay.  Without it every fork
    rebuilds that state, and on small hosts the CPU-bound warmup
    serializes across workers — measuring core count, not the
    scheduling capacity sharding doubles.
    """
    from repro.service.engine import execute_job

    execute_job(
        CompileJob(
            workload="ghz", num_qubits=4, rules="baseline", trials=1,
            seed=7, target="square_2x2", pipeline="fast", tag="prime",
        ),
        use_cache=False,
    )
    jobs = _balanced_jobs(per_shard, shards)
    with ServerThread(
        workers=2, use_cache=False, worker_delay=SHARD_WORKER_DELAY_S
    ) as server:
        client = ServiceClient(server.url, timeout=300)
        single_cold_s, _ = _submit_load(client, jobs)
        single_warm_s = _timed_rounds(client, jobs, warm_rounds)
        client.close()
    shard_threads = [
        ServerThread(
            workers=2, use_cache=False, worker_delay=SHARD_WORKER_DELAY_S
        )
        for _ in range(shards)
    ]
    for thread in shard_threads:
        thread.start()
    try:
        with RouterThread([t.url for t in shard_threads]) as rt:
            client = ServiceClient(rt.url, timeout=300)
            shard_cold_s, _ = _submit_load(client, jobs)
            router_warm_s = _timed_rounds(client, jobs, warm_rounds)
            client.close()
    finally:
        for thread in shard_threads:
            thread.stop()
    count = len(jobs)
    warm_submissions = count * warm_rounds
    return {
        "shards": shards,
        "jobs": count,
        "workers_per_shard": 2,
        "worker_delay_s": SHARD_WORKER_DELAY_S,
        "warm_rounds": warm_rounds,
        "single_cold_s": single_cold_s,
        "shard2_cold_s": shard_cold_s,
        "single_cold_qps": count / single_cold_s,
        "shard2_cold_qps": count / shard_cold_s,
        "shard2_over_single_speedup": single_cold_s / shard_cold_s,
        "single_warm_qps": warm_submissions / single_warm_s,
        "router_warm_qps": warm_submissions / router_warm_s,
        "router_warm_overhead_ratio": router_warm_s / single_warm_s,
    }


def test_service_shard_scaling_bench(benchmark, capsys):
    payload = run_once(benchmark, _run_shard_scaling)
    out = write_bench_artifact(
        "service_shards",
        {"shard_scaling": payload},
        metrics={
            key: payload[key]
            for key in (
                "single_cold_qps", "shard2_cold_qps",
                "shard2_over_single_speedup", "single_warm_qps",
                "router_warm_qps", "router_warm_overhead_ratio",
            )
        },
    )
    with capsys.disabled():
        print(
            f"\nservice shard-scaling bench ({payload['jobs']} jobs, "
            f"{payload['shards']} shards x "
            f"{payload['workers_per_shard']} workers, "
            f"{payload['warm_rounds']} warm rounds):"
        )
        for key in (
            "single_cold_qps", "shard2_cold_qps",
            "shard2_over_single_speedup", "single_warm_qps",
            "router_warm_qps", "router_warm_overhead_ratio",
        ):
            print(f"  {key:>28}: {payload[key]:.4g}")
        print(f"written to {out}")


def test_perf_smoke_shard_scaling():
    """2-shard cold QPS >= 1.3x single-process; memo overhead <= 10%.

    With the worker delay dominating service time, doubling the worker
    pool should come close to doubling cold throughput — failing 1.3x
    means the router serialized the shard fan-out.  The warm ratio
    compares one HTTP round trip + memo lookup against one round trip
    + store lookup over many submissions; beyond 10% the router is
    doing per-request work it shouldn't.
    """
    payload = _run_shard_scaling(per_shard=2, warm_rounds=25)
    assert payload["shard2_over_single_speedup"] >= 1.3, payload
    assert payload["router_warm_overhead_ratio"] <= 1.10, payload
