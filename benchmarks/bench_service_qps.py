"""Compile-service load bench: cold vs. warm throughput over HTTP.

Drives a live :class:`~repro.service.server.CompileServer` (in-process
thread, real sockets, real forked workers) with a distinct-job load,
then replays the identical load so every submission answers from the
result store's dedup tier.  Records jobs/sec for both passes, the
dedup hit rate, and p50/p99 per-job latencies into
``results/service_bench.json`` (CI names the pytest-benchmark JSON
``BENCH_service.json``), all ledger-ingestible.

The perf smoke pins the service's reason to exist: a warm dedup hit
skips compilation entirely, so warm throughput must beat cold
throughput by at least 5x (observed margin is orders of magnitude —
the assert catches dedup accidentally falling out of the admission
path, not runner noise).
"""

from __future__ import annotations

from time import perf_counter

from repro.obs import REGISTRY, MetricsRegistry
from repro.service import CompileJob, ServerThread, ServiceClient

from _artifact import write_bench_artifact
from conftest import run_once

#: Distinct seconds-scale jobs (the cold pass compiles each once).
JOBS = [
    CompileJob(
        workload=workload,
        num_qubits=4,
        rules=rules,
        trials=1,
        seed=7,
        target="square_2x2",
        pipeline="fast",
        tag=f"qps{index}",
    )
    for index, (workload, rules) in enumerate(
        (w, r)
        for w in ("ghz", "qft")
        for r in ("baseline", "parallel")
    )
]

#: Replays of the identical load against the warm result store.
WARM_ROUNDS = 3


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))]


def _submit_load(client: ServiceClient, jobs) -> tuple[float, list[float]]:
    """One full-load submission: (wall seconds, per-job latencies).

    Latency is submission-start to result-event arrival — what a
    streaming caller actually waits, dedup answers included.
    """
    start = perf_counter()
    latencies = []
    for event in client.submit_stream(jobs):
        if event.get("event") == "result":
            latencies.append(perf_counter() - start)
    assert len(latencies) == len(jobs)
    return perf_counter() - start, latencies


def _run_load(jobs, workers: int = 2) -> dict:
    """Cold pass then warm replays against one server lifetime."""
    before = REGISTRY.snapshot()
    with ServerThread(workers=workers, use_cache=False) as server:
        client = ServiceClient(server.url, timeout=300)
        cold_s, cold_latencies = _submit_load(client, jobs)
        warm_s = 0.0
        warm_latencies: list[float] = []
        for _ in range(WARM_ROUNDS):
            wall, latencies = _submit_load(client, jobs)
            warm_s += wall
            warm_latencies += latencies
    delta = MetricsRegistry.delta(before, REGISTRY.snapshot())
    counters = delta.get("counters", {})
    warm_submissions = len(jobs) * WARM_ROUNDS
    return {
        "jobs": len(jobs),
        "workers": workers,
        "warm_rounds": WARM_ROUNDS,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "cold_qps": len(jobs) / cold_s,
        "warm_qps": warm_submissions / warm_s,
        "warm_over_cold_speedup": (
            (warm_submissions / warm_s) / (len(jobs) / cold_s)
        ),
        "dedup_hit_rate": (
            counters.get("repro.service.dedup_hits", 0) / warm_submissions
        ),
        "cold_p50_s": _percentile(cold_latencies, 0.50),
        "cold_p99_s": _percentile(cold_latencies, 0.99),
        "warm_p50_s": _percentile(warm_latencies, 0.50),
        "warm_p99_s": _percentile(warm_latencies, 0.99),
    }


def test_service_qps_bench(benchmark, capsys):
    payload = run_once(benchmark, _run_load, JOBS)
    assert payload["dedup_hit_rate"] == 1.0
    out = write_bench_artifact(
        "service",
        payload,
        metrics={
            key: payload[key]
            for key in (
                "cold_qps", "warm_qps", "warm_over_cold_speedup",
                "dedup_hit_rate", "cold_p50_s", "cold_p99_s",
                "warm_p50_s", "warm_p99_s",
            )
        },
    )
    with capsys.disabled():
        print(
            f"\nservice qps bench ({payload['jobs']} jobs, "
            f"{payload['workers']} workers, "
            f"{payload['warm_rounds']} warm rounds):"
        )
        for key in (
            "cold_qps", "warm_qps", "warm_over_cold_speedup",
            "dedup_hit_rate", "cold_p50_s", "cold_p99_s",
            "warm_p50_s", "warm_p99_s",
        ):
            print(f"  {key:>24}: {payload[key]:.4g}")
        print(f"written to {out}")


def test_perf_smoke_service_warm_dedup():
    """Warm dedup throughput >= 5x cold (acceptance criterion).

    A dedup hit answers from the result store without scheduling a
    worker, so the only way this fails is dedup falling out of the
    admission path (every warm submission recompiling) — a correctness
    regression dressed as a perf one.
    """
    payload = _run_load(JOBS[:3])
    assert payload["dedup_hit_rate"] == 1.0
    assert payload["warm_over_cold_speedup"] >= 5.0, payload
