"""Scalar-vs-batched timing of the compilation numerics kernels.

Times the three hot-path kernels the compiler batches per circuit —
Weyl-coordinate extraction (``repro.kernels.weyl_coordinates_many``),
coverage membership (``CoverageSet.min_k``), and decomposition-cache
traffic (``DecompositionCache.lookup_many``, cold / disk-hit / warm) —
against the equivalent scalar per-gate loops they replaced, verifies the
results are identical, and writes the speedup table to
``results/kernels_bench.json`` so the CI bench job accumulates it with
the rest of the ``BENCH_*.json`` perf trajectory.

``test_perf_smoke_weyl_batch`` is the cheap CI guard: it only requires
the batched Weyl kernel to be at least as fast as the scalar loop at
N=256 (a coarse 1.0x bound — the observed margin is ~19x, so the guard
trips on wired-through-the-scalar-path regressions, not on machine
noise).
"""

from __future__ import annotations

import time
from collections.abc import Callable

import numpy as np

from repro.core.coverage import CoverageSet, build_coverage_set
from repro.core.decomposition_rules import BASIS_DRIVE_ANGLES, TemplateSpec
from repro.kernels import (
    available_backends,
    use_array_backend,
    weyl_coordinates_many,
)
from repro.pulse.evolution import batched_piecewise_propagators
from repro.quantum.random import haar_unitaries_batch
from repro.quantum.weyl import weyl_coordinates
from repro.service.cache import DecompositionCache

from _artifact import write_bench_artifact
from conftest import run_once

#: Stack sizes for the Weyl kernel (256 is the acceptance/guard size).
WEYL_SIZES = (256, 1024)
#: Query points for coverage membership.
MEMBERSHIP_POINTS = 1024
#: Coordinate rows per cache-traffic round.
CACHE_POINTS = 512


def _best_of(fn: Callable[[], object], repeats: int = 3) -> float:
    """Minimum wall time of ``repeats`` runs (first run included: the
    kernels under test have no JIT warm-up, only allocator noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _entry(kernel: str, n: int, scalar_s: float, batched_s: float) -> dict:
    return {
        "kernel": kernel,
        "n": n,
        "scalar_s": scalar_s,
        "batched_s": batched_s,
        "speedup": scalar_s / batched_s,
    }


def _bench_coverage_set() -> CoverageSet:
    """A small self-contained sqrt(iSWAP) coverage set (no disk cache)."""
    theta_c, theta_g = BASIS_DRIVE_ANGLES["sqrt_iSWAP"]
    duration = (theta_c + theta_g) / (np.pi / 2)
    return build_coverage_set(
        gc=theta_c / duration,
        gg=theta_g / duration,
        pulse_duration=duration,
        kmax=3,
        basis_name="sqrt_iSWAP",
        samples_per_k=800,
        seed=5,
        cache=False,
    )


def _bench_weyl() -> list[dict]:
    entries = []
    for n in WEYL_SIZES:
        stack = haar_unitaries_batch(4, n, seed=3)
        scalar_coords = np.stack([weyl_coordinates(u) for u in stack])
        batched_coords = weyl_coordinates_many(stack)
        assert np.array_equal(scalar_coords, batched_coords), (
            "batched Weyl kernel diverged from the scalar path"
        )
        scalar_s = _best_of(lambda: [weyl_coordinates(u) for u in stack])
        batched_s = _best_of(lambda: weyl_coordinates_many(stack))
        entries.append(_entry("weyl_coordinates", n, scalar_s, batched_s))
    return entries


def _bench_membership(coverage: CoverageSet) -> dict:
    rng = np.random.default_rng(7)
    points = rng.uniform(0.0, np.pi / 2, size=(MEMBERSHIP_POINTS, 3))
    per_point = np.array([coverage.min_k(p)[0] for p in points])
    batched = coverage.min_k(points)
    assert np.array_equal(per_point, batched), (
        "batched min_k diverged from per-point membership"
    )
    scalar_s = _best_of(
        lambda: np.array([coverage.min_k(p)[0] for p in points])
    )
    batched_s = _best_of(lambda: coverage.min_k(points))
    return _entry("coverage_min_k", MEMBERSHIP_POINTS, scalar_s, batched_s)


def _bench_cache(tmp_dir) -> list[dict]:
    rng = np.random.default_rng(11)
    coords = rng.uniform(0.0, np.pi / 2, size=(CACHE_POINTS, 3))
    spec = TemplateSpec((0.5, 0.25, 0.5), 3, "bench template")

    def factory_many(rows: np.ndarray) -> list[TemplateSpec]:
        return [spec] * len(rows)

    def scalar_sweep(cache: DecompositionCache) -> list[TemplateSpec]:
        return [cache.lookup("bench", c, lambda: spec) for c in coords]

    def batched_sweep(cache: DecompositionCache) -> list[TemplateSpec]:
        return cache.lookup_many("bench", coords, factory_many)

    entries = []
    scalar_store = tmp_dir / "scalar.sqlite"
    batched_store = tmp_dir / "batched.sqlite"

    # Cold: empty stores, every key is a miss + write (single run; a
    # repeat would be a warm run).
    scalar_cold = DecompositionCache(path=scalar_store)
    batched_cold = DecompositionCache(path=batched_store)
    scalar_s = _best_of(lambda: scalar_sweep(scalar_cold), repeats=1)
    batched_s = _best_of(lambda: batched_sweep(batched_cold), repeats=1)
    entries.append(_entry("cache_cold", CACHE_POINTS, scalar_s, batched_s))

    # Warm: every key answered by the in-memory LRU front.
    assert scalar_sweep(scalar_cold) == batched_sweep(batched_cold)
    scalar_s = _best_of(lambda: scalar_sweep(scalar_cold))
    batched_s = _best_of(lambda: batched_sweep(batched_cold))
    entries.append(_entry("cache_warm", CACHE_POINTS, scalar_s, batched_s))

    # Disk hit: fresh processes (empty memory tier) over the warm stores.
    scalar_disk = DecompositionCache(path=scalar_store)
    batched_disk = DecompositionCache(path=batched_store)
    scalar_s = _best_of(lambda: scalar_sweep(scalar_disk), repeats=1)
    batched_s = _best_of(lambda: batched_sweep(batched_disk), repeats=1)
    assert scalar_disk.stats.disk_hits == CACHE_POINTS
    assert batched_disk.stats.disk_hits > 0 and batched_disk.stats.misses == 0
    entries.append(_entry("cache_disk_hit", CACHE_POINTS, scalar_s, batched_s))
    return entries


def _format_table(entries: list[dict]) -> str:
    header = f"{'kernel':<18} {'N':>5} {'scalar':>10} {'batched':>10} {'speedup':>8}"
    lines = [header, "-" * len(header)]
    for e in entries:
        lines.append(
            f"{e['kernel']:<18} {e['n']:>5} {e['scalar_s'] * 1e3:>8.2f}ms "
            f"{e['batched_s'] * 1e3:>8.2f}ms {e['speedup']:>7.1f}x"
        )
    return "\n".join(lines)


def test_kernel_microbench(benchmark, capsys, tmp_path):
    """Full scalar-vs-batched sweep; emits results/kernels_bench.json."""
    coverage = _bench_coverage_set()

    def sweep() -> list[dict]:
        entries = _bench_weyl()
        entries.append(_bench_membership(coverage))
        entries.extend(_bench_cache(tmp_path))
        return entries

    entries = run_once(benchmark, sweep)

    by_kernel = {(e["kernel"], e["n"]): e for e in entries}
    # The batched Weyl kernel is the headline: >= 3x at N >= 256 is the
    # PR's acceptance bar (observed ~19x; 3x leaves ample CI headroom).
    for n in WEYL_SIZES:
        assert by_kernel["weyl_coordinates", n]["speedup"] >= 3.0
    # Coarse >= 1x guards on the rest: batching must never lose.
    assert by_kernel["coverage_min_k", MEMBERSHIP_POINTS]["speedup"] >= 1.0
    assert by_kernel["cache_cold", CACHE_POINTS]["speedup"] >= 1.0
    assert by_kernel["cache_warm", CACHE_POINTS]["speedup"] >= 1.0

    ledger_metrics: dict[str, float] = {}
    for e in entries:
        label = f"{e['kernel']}.n{e['n']}"
        ledger_metrics[f"{label}.scalar_s"] = e["scalar_s"]
        ledger_metrics[f"{label}.batched_s"] = e["batched_s"]
        ledger_metrics[f"{label}.speedup"] = e["speedup"]
    out = write_bench_artifact(
        "kernels", {"benchmarks": entries}, metrics=ledger_metrics
    )
    with capsys.disabled():
        print("\nscalar vs batched kernels (best-of-3 wall time):")
        print(_format_table(entries))
        print(f"written to {out}")


def test_kernel_backend_sweep(benchmark, capsys):
    """Per-array-backend timing of the ported kernels.

    Sweeps every backend whose library imports on this host (numpy
    always; torch/cupy on the CI adapter legs and GPU boxes), checks
    adapters stay ``allclose`` to the numpy reference, and emits a
    per-backend metrics block to
    ``results/kernel_backends_bench.json``.
    """
    stack = haar_unitaries_batch(4, 512, seed=3)
    rng = np.random.default_rng(9)
    raw = rng.normal(size=(64, 6, 4, 4)) + 1j * rng.normal(size=(64, 6, 4, 4))
    hams = (raw + np.swapaxes(raw, -1, -2).conj()) / 2
    dts = np.linspace(0.05, 0.3, 6)

    def sweep() -> list[dict]:
        reference_coords = weyl_coordinates_many(stack)
        reference_props = batched_piecewise_propagators(hams, dts)
        entries = []
        for name in available_backends():
            with use_array_backend(name):
                coords = weyl_coordinates_many(stack)
                props = batched_piecewise_propagators(hams, dts)
                np.testing.assert_allclose(
                    coords, reference_coords, atol=1e-9
                )
                np.testing.assert_allclose(
                    props, reference_props, atol=1e-10
                )
                weyl_s = _best_of(lambda: weyl_coordinates_many(stack))
                propagate_s = _best_of(
                    lambda: batched_piecewise_propagators(hams, dts)
                )
            entries.append({
                "name": f"backend_{name}",
                "weyl_n512_s": weyl_s,
                "propagate_n64_s": propagate_s,
            })
        return entries

    entries = run_once(benchmark, sweep)
    assert any(e["name"] == "backend_numpy" for e in entries)

    ledger_metrics: dict[str, float] = {}
    for e in entries:
        ledger_metrics[f"{e['name']}.weyl_n512_s"] = e["weyl_n512_s"]
        ledger_metrics[f"{e['name']}.propagate_n64_s"] = e["propagate_n64_s"]
    out = write_bench_artifact(
        "kernel_backends", {"benchmarks": entries}, metrics=ledger_metrics
    )
    with capsys.disabled():
        print("\nper-array-backend kernel timings (best-of-3 wall time):")
        for e in entries:
            print(
                f"  {e['name']:<16} weyl(512) {e['weyl_n512_s'] * 1e3:>8.2f}ms"
                f"  propagate(64x6) {e['propagate_n64_s'] * 1e3:>8.2f}ms"
            )
        print(f"written to {out}")


def test_perf_smoke_weyl_batch():
    """CI perf smoke: batched Weyl >= scalar loop at N=256 (coarse 1.0x).

    Runs in seconds and carries a ~19x margin, so a failure means the
    batched kernel genuinely degenerated to (or below) per-gate work —
    e.g. the fallback scalar path firing for every row — not that the
    runner was busy.
    """
    stack = haar_unitaries_batch(4, 256, seed=3)
    scalar_coords = np.stack([weyl_coordinates(u) for u in stack])
    batched_coords = weyl_coordinates_many(stack)
    assert np.array_equal(scalar_coords, batched_coords)
    scalar_s = _best_of(lambda: [weyl_coordinates(u) for u in stack])
    batched_s = _best_of(lambda: weyl_coordinates_many(stack))
    assert batched_s <= scalar_s, (
        f"batched Weyl extraction ({batched_s * 1e3:.1f} ms) slower than "
        f"the scalar loop ({scalar_s * 1e3:.1f} ms) at N=256"
    )
