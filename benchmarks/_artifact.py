"""One emission path for every ``results/*_bench.json`` artifact.

Each benchmark used to hand-write its JSON with whatever shape it
grew; the perf ledger needs every artifact to carry the same
provenance.  :func:`write_bench_artifact` stamps the schema version,
the artifact kind, and a full :class:`~repro.obs.ledger.RunStamp`
(git sha, branch, timestamp, host, python/numpy versions) into the
document, and carries an explicit ``metrics`` block — flat
``name -> number`` — which is exactly what
``repro perf record`` ingests (names keep the repo's suffix
conventions: ``*_s`` lower-is-better, ``*speedup`` higher-is-better).

The benchmark-specific payload (tables, per-entry breakdowns) rides
alongside untouched, so human consumers of the artifacts lose nothing.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.common import results_dir
from repro.obs.ledger import BENCH_ARTIFACT_SCHEMA, RunStamp

__all__ = ["BENCH_ARTIFACT_SCHEMA", "write_bench_artifact"]


def write_bench_artifact(
    kind: str,
    payload: dict,
    metrics: dict[str, float],
    filename: str | None = None,
) -> Path:
    """Write one stamped, ledger-ingestible bench artifact.

    ``kind`` prefixes every ledger metric name; ``filename`` defaults
    to ``<kind>_bench.json`` under the results directory.
    """
    document = {
        "kind": kind,
        "schema": BENCH_ARTIFACT_SCHEMA,
        "stamp": RunStamp.collect(source="bench").as_dict(),
        "metrics": dict(metrics),
        **payload,
    }
    out = results_dir() / (filename or f"{kind}_bench.json")
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(document, indent=2, sort_keys=True), encoding="utf-8"
    )
    return out
