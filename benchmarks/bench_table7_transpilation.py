"""Regenerate paper Table VII: transpilation results on all 9 workloads.

The absolute durations depend on the router (the paper used Qiskit
v0.20.2 -O3; we use our own lookahead router), so the assertion targets
are the paper's *shape*: parallel drive wins on every workload and the
average improvement lands near the reported 17.84%.
"""

from conftest import run_once

from repro.experiments.table7 import PAPER_TABLE7, run_table7


def test_table7_transpilation(benchmark, record_result):
    result = run_once(benchmark, run_table7, trials=10, seed=7)
    record_result(result)
    for name in PAPER_TABLE7:
        row = result.data[name]
        assert row["duration_percent"] > 0, f"{name}: no improvement"
        assert row["optimized"] < row["baseline"]
        assert row["ft_percent"] > 0
    average = result.data["average_duration_percent"]
    # Paper: 17.84% average duration reduction.  Our fractional-pulse
    # rule is cheaper still on CPhase-heavy workloads (QFT/multiplier),
    # so the accepted band extends higher.
    assert 10.0 < average < 40.0
