"""Regenerate paper Table VI: baseline vs optimized gate infidelities."""

from conftest import run_once

from repro.experiments import run_table6
from repro.experiments.tables import PAPER_TABLE6


def test_table6_infidelity(benchmark, record_result):
    result = run_once(benchmark, run_table6)
    record_result(result)
    for target, (base, opt, improved) in PAPER_TABLE6.items():
        row = result.data[target]
        if target == "E[Haar]":
            # Monte-Carlo row: match the paper's improvement direction
            # and magnitude band.
            assert 5.0 < row["improved_percent"] < 20.0
            continue
        assert abs(row["baseline"] - base) < 1e-4, target
        assert abs(row["optimized"] - opt) < 1e-4, target
        assert abs(row["improved_percent"] - improved) < 0.5, target
