"""Regenerate paper Fig. 7: K=1 native set of parallel-driven iSWAP."""

from conftest import run_once

from repro.experiments import run_fig7


def test_fig7_parallel_native_set(benchmark, record_result):
    result = run_once(benchmark, run_fig7)
    record_result(result)
    assert result.data["full_dimensional"]  # lifts off the base plane
    contains = result.data["contains"]
    assert contains["CNOT"]
    assert contains["iSWAP"]
    assert contains["B"]
    assert contains["(pi/2, pi/4, pi/4)"]  # the paper's example point
    assert not contains["SWAP"]  # the resource floor
    assert 0.55 < result.data["haar_fraction"] < 0.9
