"""Regenerate paper Fig. 4: traditional gate coverage sets."""

from conftest import run_once

from repro.experiments import run_fig4


def test_fig4_coverage_sets(benchmark, record_result):
    result = run_once(benchmark, run_fig4)
    record_result(result)
    # Known landmarks from the paper's Fig. 4 panels:
    assert result.data["B"][1] > 0.98  # B spans the chamber at k=2
    assert 0.70 < result.data["sqrt_iSWAP"][1] < 0.88  # ~79% at k=2
    assert result.data["iSWAP"][1] < 0.02  # base plane only at k=2
    assert result.data["iSWAP"][2] > 0.98  # everything at k=3
    assert result.data["sqrt_CNOT"][2] < 0.9  # slow burner (k=6 to span)
