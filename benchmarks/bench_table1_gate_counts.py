"""Regenerate paper Table I: decomposition gate counts."""

from conftest import run_once

from repro.experiments import run_table1
from repro.experiments.tables import PAPER_TABLE1


def test_table1_gate_counts(benchmark, record_result):
    result = run_once(benchmark, run_table1)
    record_result(result)
    for basis, (k_cnot, k_swap, e_haar, k_w) in PAPER_TABLE1.items():
        row = result.data[basis]
        assert row["K[CNOT]"] == k_cnot
        assert row["K[SWAP]"] == k_swap
        assert abs(row["K[W]"] - k_w) < 0.01
        assert abs(row["E[K[Haar]]"] - e_haar) < 0.1, basis
