"""Regenerate paper Fig. 9: parallel-drive extended coverage sets."""

from conftest import run_once

from repro.experiments import run_fig4, run_fig9


def test_fig9_extended_coverage(benchmark, record_result):
    result = run_once(benchmark, run_fig9)
    record_result(result)
    # Paper's three observations on Fig. 9 vs Fig. 4:
    # (1) K=1 regions acquire nonzero volume;
    assert result.data["iSWAP"][0] > 0.3
    assert result.data["B"][0] > 0.2
    # (2) every K region is a superset of the traditional one;
    standard = run_fig4()
    for basis, fractions in result.data.items():
        for k, fraction in enumerate(fractions):
            assert fraction >= standard.data[basis][k] - 0.03, (basis, k)
    # (3) SWAP is still the last corner reached: no basis becomes
    # complete at K=1.
    for basis, fractions in result.data.items():
        assert fractions[0] < 0.995, basis
