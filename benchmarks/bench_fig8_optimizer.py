"""Regenerate paper Fig. 8: optimizer convergence to CNOT."""

from conftest import run_once

from repro.experiments import run_fig8


def test_fig8_optimizer_convergence(benchmark, record_result):
    result = run_once(benchmark, run_fig8, seed=1)
    record_result(result)
    assert result.data["final_loss"] < 1e-8
    losses = result.data["loss_history"]
    # Monotone best-so-far curve reaching (near) machine precision,
    # mirroring the paper's Fig. 8b.
    assert losses[-1] <= 1e-8
    assert losses[0] > losses[-1]
