"""Regenerate paper Fig. 3: Hamiltonian design-space analysis.

3a: conversion+gain natively spans the Weyl base plane;
3b: transpiled workload gate frequencies (the lambda fit);
3c: the simulated SNAIL speed-limit sweep.
"""

from conftest import run_once

from repro.experiments import run_fig3a, run_fig3b, run_fig3c


def test_fig3a_native_gates(benchmark, record_result):
    result = run_once(benchmark, run_fig3a)
    record_result(result)
    assert all(result.data["named_hits"].values())


def test_fig3b_gate_frequency(benchmark, record_result):
    result = run_once(benchmark, run_fig3b)
    record_result(result)
    counts = result.data["counts"]
    # The paper's headline observation: SWAP and CNOT dominate.
    assert counts["SWAP"] + counts["CNOT"] > counts.get("other", 0)
    # Our router induces a lambda in the paper's neighbourhood (0.47).
    assert 0.25 < result.data["lambda"] < 0.70


def test_fig3c_snail_sweep(benchmark, record_result):
    result = run_once(benchmark, run_fig3c)
    record_result(result)
    boundary = result.data["boundary_gg"]
    assert boundary[0] > boundary[-1]
