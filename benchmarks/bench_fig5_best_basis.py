"""Regenerate paper Fig. 5: best basis per metric across SLFs."""

from conftest import run_once

from repro.experiments import run_fig5


def test_fig5_best_basis(benchmark, record_result):
    result = run_once(benchmark, run_fig5)
    record_result(result)
    # Paper Sec. II-D: with appreciable 1Q gates under the linear SLF the
    # best Haar gate is the sqrt(iSWAP)-fraction family member.
    linear_25 = result.data["linear_d1q0.25"]
    assert linear_25["haar"]["winner"] == "iSWAP^0.5"
    # With free 1Q gates the optimum moves toward identity (smaller
    # fractions) for every SLF.
    for slf in ("linear", "squared", "snail"):
        free = result.data[f"{slf}_d1q0"]["haar"]["cost"]
        costly = result.data[f"{slf}_d1q0.25"]["haar"]["cost"]
        assert free < costly
