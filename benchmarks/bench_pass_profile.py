"""Per-pass timing profile of the compilation pipeline.

Runs a small two-job suite (ghz + qft under the parallel-drive rules)
through the batch engine with per-pass profiling enabled, asserts the
profile invariants (every stage recorded, non-negative wall times,
translation dominating the cost), and writes the aggregated per-pass
timing JSON next to the other artifacts so CI uploads it with the
``BENCH_*.json`` perf trajectory.

The emitted ``pass_profile_bench.json`` is the stage-level perf
baseline: regressions in a single pass (routing blow-up, translation
cache miss storms) show up here — and in the perf ledger's per-pass
metrics — before they move end-to-end suite timings.
"""

from __future__ import annotations

from repro.service import BatchEngine, CompileJob, ResultStore
from repro.transpiler.passes import PassProfile

from _artifact import write_bench_artifact
from conftest import run_once

#: Two-job smoke suite: one shallow and one dense workload.
JOBS = [
    CompileJob(
        workload=workload,
        num_qubits=8,
        rules="parallel",
        trials=2,
        seed=7,
        target="square_2x4",
        pipeline="paper",
    )
    for workload in ("ghz", "qft")
]

#: Stage names the paper pipeline must record for every trial.
EXPECTED_PASSES = (
    "Route",
    "Merge1QRuns",
    "Collect2QBlocks",
    "TranslateToBasis",
    "MergePlaceholders",
    "Schedule[asap]",
)


def test_pass_profile_timings(benchmark, capsys):
    engine = BatchEngine(workers=1, use_cache=False, profile=True)
    results = run_once(benchmark, engine.run, JOBS)
    store = ResultStore(results)
    assert not store.failures(), [r.error for r in store.failures()]

    profile = store.pass_profile()
    by_pass = profile.by_pass()
    for name in EXPECTED_PASSES:
        assert name in by_pass, f"missing pass {name}"
        # 2 jobs x 2 trials each.
        assert by_pass[name]["calls"] == 4
    assert all(r.wall_time_s >= 0.0 for r in profile.records)

    # Basis translation is the dominant stage by construction (template
    # synthesis); everything else is bookkeeping around it.
    translate = by_pass["TranslateToBasis"]["wall_time_s"]
    assert translate == max(
        entry["wall_time_s"] for entry in by_pass.values()
    )

    # Round-trip sanity for the emitted artifact.
    payload = {
        "suite": [job.label for job in JOBS],
        "profile": profile.to_dict(),
    }
    assert PassProfile.from_dict(payload["profile"]).to_dict() == (
        profile.to_dict()
    )
    out = write_bench_artifact(
        "pass_profile",
        payload,
        metrics={
            f"{name}.wall_time_s": entry["wall_time_s"]
            for name, entry in by_pass.items()
        },
    )

    with capsys.disabled():
        print("\nper-pass timing profile (2 jobs x 2 trials):")
        print(profile.format_table())
        print(f"written to {out}")
