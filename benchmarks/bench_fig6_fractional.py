"""Regenerate paper Fig. 6: Haar duration vs fractional iSWAP basis."""

from conftest import run_once

from repro.experiments import run_fig6


def test_fig6_fractional_curve(benchmark, record_result):
    result = run_once(benchmark, run_fig6)
    record_result(result)
    # Free 1Q gates: smaller fractions keep winning (curve decreasing).
    assert result.data["d1q_0"]["best_fraction"] <= 0.375
    # D[1Q] = 0.25: the optimum is sqrt(iSWAP) (paper's conclusion).
    assert result.data["d1q_0.25"]["best_fraction"] == 0.5
    # D[1Q] = 0.1: optimum at or below the half pulse.
    assert result.data["d1q_0.1"]["best_fraction"] <= 0.5
