"""Regenerate paper Table II: speed-limit scaled durations (D[1Q]=0)."""

from conftest import run_once

from repro.experiments import run_table2
from repro.experiments.tables import PAPER_TABLE2


def test_table2_slf_durations(benchmark, record_result):
    result = run_once(benchmark, run_table2)
    record_result(result)
    for slf_name, rows in PAPER_TABLE2.items():
        tolerance = 0.06 if slf_name == "snail" else 0.02
        for basis, (d_basis, d_cnot, d_swap, _, _) in rows.items():
            ours = result.data[slf_name][basis]
            assert abs(ours["DBasis"] - d_basis) <= tolerance, (
                slf_name, basis, "DBasis"
            )
            assert abs(ours["D[CNOT]"] - d_cnot) <= 2 * tolerance
            assert abs(ours["D[SWAP]"] - d_swap) <= 3 * tolerance
