"""Cold-vs-warm decomposition-cache speedup for the batch service.

Runs the parallel-drive workload suite (``--suite table4``) through the
``python -m repro batch`` CLI in fresh subprocesses so each phase pays
its real process-lifetime costs:

* **cold** — empty decomposition cache: every 2Q coordinate class is
  templated from scratch, and the coverage-set hulls are assembled
  along the way;
* **warm** — second run against the same store: all template lookups
  hit sqlite, and the lazy coverage machinery is never touched;
* **no-cache** — caching disabled, as a parity control;
* **2 workers** — warm again, through the multiprocessing pool.

Only the decomposition cache is isolated to the temp dir; the
coverage *point-cloud* cache (``REPRO_CACHE_DIR``) is deliberately
shared by all phases, so the cold/warm delta isolates exactly what the
decomposition cache saves a fresh process: per-K hull assembly
(SVD + Delaunay, seconds) plus every ``template_for`` call.  Cold
pays that in every regime — clouds on disk or not — so the strict
``warm < cold`` assertion is stable without multi-minute Algorithm-2
rebuilds per phase.

Asserts the paper-suite guarantees: the warm run is strictly faster
than the cold one, and every phase produces byte-identical circuits
(per-job digests) for the same seeds.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

SUITE = "table4"
TRIALS = 3  # keep the bench minutes-scale on one core


def _run_batch(
    tmp_path: Path, tag: str, extra: list[str]
) -> tuple[dict, float]:
    """Run one CLI batch phase in a fresh process; return (json, wall)."""
    out = tmp_path / f"{tag}.json"
    command = [
        sys.executable, "-m", "repro", "batch",
        "--suite", SUITE, "--trials", str(TRIALS),
        "--retries", "0", "--json", str(out), *extra,
    ]
    env = dict(os.environ)
    env["REPRO_DECOMP_CACHE_DIR"] = str(tmp_path / "decomp")
    src = Path(__file__).resolve().parents[1] / "src"
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = f"{src}:{existing}" if existing else str(src)
    start = time.perf_counter()
    proc = subprocess.run(
        command, env=env, capture_output=True, text=True
    )
    wall = time.perf_counter() - start
    assert proc.returncode == 0, (
        f"{tag} phase failed:\n{proc.stdout}\n{proc.stderr}"
    )
    return json.loads(out.read_text()), wall


def _digests(payload: dict) -> dict[str, str]:
    return {
        result["job"]["workload"]: result["digest"]
        for result in payload["results"]
    }


def test_batch_cache_cold_vs_warm(tmp_path, capsys):
    cold, cold_wall = _run_batch(tmp_path, "cold", ["--workers", "1"])
    warm, warm_wall = _run_batch(tmp_path, "warm", ["--workers", "1"])
    nocache, nocache_wall = _run_batch(
        tmp_path, "nocache", ["--workers", "1", "--no-cache"]
    )
    pooled, pooled_wall = _run_batch(
        tmp_path, "pooled", ["--workers", "2"]
    )

    # Parity: the cache and the worker pool change nothing but speed.
    reference = _digests(nocache)
    assert _digests(cold) == reference
    assert _digests(warm) == reference
    assert _digests(pooled) == reference

    cold_s = cold["elapsed_seconds"]
    warm_s = warm["elapsed_seconds"]
    with capsys.disabled():
        print(
            f"\nbatch service, suite={SUITE} trials={TRIALS} "
            f"({len(reference)} workloads):\n"
            f"  cold cache   {cold_s:7.2f}s engine ({cold_wall:.2f}s wall)\n"
            f"  warm cache   {warm_s:7.2f}s engine ({warm_wall:.2f}s wall)"
            f"  -> {cold_s / warm_s:.2f}x speedup\n"
            f"  no cache     {nocache['elapsed_seconds']:7.2f}s engine "
            f"({nocache_wall:.2f}s wall)\n"
            f"  2 workers    {pooled['elapsed_seconds']:7.2f}s engine "
            f"({pooled_wall:.2f}s wall)\n"
        )
    assert warm_s < cold_s, (
        f"warm cache ({warm_s:.2f}s) not faster than cold ({cold_s:.2f}s)"
    )
