"""Synthesis-engine timings: multi-start training and the CoverageStore.

Two measurements feed the ``BENCH_synthesis.json`` perf trajectory:

* **multi-start vs single-start** — the engine's batched multi-start
  flow (all starts priced in one vectorized pass through the batched
  propagators, only the best few refined) against the legacy
  sequential-restart ``synthesize`` at matched optimization budgets;
  reported as throughput (converged syntheses per second) plus the
  loss each path reaches;
* **cold vs warm CoverageStore** — a full Alg. 2 coverage build against
  re-loading the same clouds from the sqlite store (disk tier: a fresh
  store instance, nothing memoized in-process).

``test_perf_smoke_coverage_store`` is the cheap CI guard: the warm
store must be at least 2x faster than the cold build on the small
preset (observed ~40x, so the bound trips on a genuinely broken store,
not on runner noise).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.coverage import (
    build_coverage_set,
    coverage_cache_key,
    haar_coordinate_samples,
)
from repro.quantum.weyl import named_gate_coordinates
from repro.service.coverage_store import CoverageStore
from repro.synthesis import SynthesisEngine, synthesize

from _artifact import write_bench_artifact
from conftest import run_once

#: Small coverage preset shared by the bench and the CI smoke guard.
SMALL_PRESET = dict(
    gc=np.pi / 2,
    gg=0.0,
    pulse_duration=0.5,
    kmax=2,
    basis_name="bench_sqrt_iswap",
    parallel=False,
    samples_per_k=400,
    steps_per_pulse=2,
    seed=5,
    synthesis_restarts=1,
    synthesis_iterations=300,
)


def _multistart_entry() -> dict:
    """Single-start vs batched multi-start at a matched budget."""
    engine = SynthesisEngine("piecewise")
    template = engine.template(
        gc=np.pi / 2, gg=0.0, pulse_duration=1.0, repetitions=1
    )
    target = named_gate_coordinates("CNOT")

    start = time.perf_counter()
    sequential = synthesize(
        template, target, seed=7, restarts=4, max_iterations=2000
    )
    sequential_s = time.perf_counter() - start

    start = time.perf_counter()
    multi = engine.synthesize_multistart(
        template, target, starts=16, refine=2, seed=7, max_iterations=2000
    )
    multistart_s = time.perf_counter() - start

    return {
        "kernel": "multistart_vs_single",
        "target": "CNOT",
        "sequential_s": sequential_s,
        "sequential_loss": sequential.loss,
        "sequential_converged": bool(sequential.converged),
        "multistart_s": multistart_s,
        "multistart_loss": multi.best.loss,
        "multistart_converged": bool(multi.converged),
        "multistart_starts": len(multi.start_losses),
        "speedup": sequential_s / multistart_s,
        "throughput_per_s": 1.0 / multistart_s,
    }


def _race_entry(seeds=(3, 7, 11, 19, 23)) -> dict:
    """Race-vs-sequential refinement latency across seeds (p50/p99).

    One worker and ``race_threshold == tolerance`` make the race an
    early-stopped prefix of exactly the sequential strategy's work, so
    its latency distribution is stochastically dominated by the
    sequential one — the p99 comparison below is a structural
    guarantee, not a lucky draw.
    """
    engine = SynthesisEngine("piecewise")
    template = engine.template(
        gc=np.pi / 2, gg=0.0, pulse_duration=1.0, repetitions=1
    )
    target = named_gate_coordinates("CNOT")
    budget = dict(starts=8, refine=4, max_iterations=2000, tolerance=1e-8)

    sequential_times, race_times, cancelled = [], [], 0
    for seed in seeds:
        start = time.perf_counter()
        engine.synthesize_multistart(template, target, seed=seed, **budget)
        sequential_times.append(time.perf_counter() - start)

        start = time.perf_counter()
        outcome = engine.synthesize_multistart(
            template, target, seed=seed, strategy="race", **budget
        )
        race_times.append(time.perf_counter() - start)
        cancelled += outcome.race.cancelled

    return {
        "kernel": "race_vs_sequential",
        "target": "CNOT",
        "seeds": len(seeds),
        "sequential_p50_s": float(np.percentile(sequential_times, 50)),
        "sequential_p99_s": float(np.percentile(sequential_times, 99)),
        "race_p50_s": float(np.percentile(race_times, 50)),
        "race_p99_s": float(np.percentile(race_times, 99)),
        "race_cancelled_total": cancelled,
    }


def _store_entry(tmp_path) -> dict:
    """Cold Alg. 2 build vs warm sqlite reload (disk tier)."""
    store_path = tmp_path / "coverage.sqlite"
    cold_store = CoverageStore(path=store_path)
    start = time.perf_counter()
    cold = build_coverage_set(store=cold_store, **SMALL_PRESET)
    cold_s = time.perf_counter() - start

    # Fresh instance: empty memory tier, clouds come from sqlite.
    warm_store = CoverageStore(path=store_path)
    start = time.perf_counter()
    warm = build_coverage_set(store=warm_store, **SMALL_PRESET)
    warm_s = time.perf_counter() - start
    assert warm_store.stats.disk_hits == 1, "warm build missed the store"

    haar = haar_coordinate_samples(500, seed=9)
    assert np.array_equal(cold.min_k(haar), warm.min_k(haar)), (
        "warm store reload diverged from the cold build"
    )
    return {
        "kernel": "coverage_store_cold_vs_warm",
        "key": coverage_cache_key(
            backend="piecewise",
            boost_targets=True,
            **SMALL_PRESET,
        ),
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / warm_s,
    }


def test_synthesis_bench(benchmark, capsys, tmp_path):
    """Full synthesis sweep; emits results/synthesis_bench.json."""

    def sweep() -> list[dict]:
        return [_multistart_entry(), _race_entry(), _store_entry(tmp_path)]

    entries = run_once(benchmark, sweep)
    multi, race, store = entries

    assert multi["multistart_converged"], "multi-start failed to converge"
    assert race["race_p99_s"] <= race["sequential_p99_s"], (
        "racing made the refinement tail worse"
    )
    assert store["speedup"] >= 2.0, (
        f"warm CoverageStore only {store['speedup']:.1f}x over cold"
    )

    out = write_bench_artifact(
        "synthesis",
        {"benchmarks": entries},
        metrics={
            "multistart.sequential_s": multi["sequential_s"],
            "multistart.multistart_s": multi["multistart_s"],
            "multistart.speedup": multi["speedup"],
            "multistart.throughput_per_s": multi["throughput_per_s"],
            "race.sequential_p50_s": race["sequential_p50_s"],
            "race.sequential_p99_s": race["sequential_p99_s"],
            "race.p50_s": race["race_p50_s"],
            "race.p99_s": race["race_p99_s"],
            "coverage_store.cold_s": store["cold_s"],
            "coverage_store.warm_s": store["warm_s"],
            "coverage_store.speedup": store["speedup"],
        },
    )
    with capsys.disabled():
        print("\nsynthesis engine timings:")
        print(
            f"  single-start (4 restarts): {multi['sequential_s']:.2f}s "
            f"loss {multi['sequential_loss']:.1e}"
        )
        print(
            f"  multi-start (16 starts, refine 2): "
            f"{multi['multistart_s']:.2f}s loss "
            f"{multi['multistart_loss']:.1e} "
            f"({multi['speedup']:.1f}x)"
        )
        print(
            f"  race vs sequential (p50/p99 over {race['seeds']} seeds): "
            f"{race['race_p50_s']:.2f}s/{race['race_p99_s']:.2f}s vs "
            f"{race['sequential_p50_s']:.2f}s/"
            f"{race['sequential_p99_s']:.2f}s, "
            f"{race['race_cancelled_total']} refinements cancelled"
        )
        print(
            f"  coverage store: cold {store['cold_s']:.2f}s, warm "
            f"{store['warm_s']:.3f}s ({store['speedup']:.1f}x)"
        )
        print(f"written to {out}")


def test_perf_smoke_race():
    """CI perf smoke: race p99 must not exceed the sequential p99.

    With one worker and the race threshold equal to the tolerance, the
    race executes a strict prefix of the sequential strategy's
    refinement schedule (same seeds, same order, early stop), so this
    bound holds structurally — a failure means racing stopped cutting
    work, not that the runner was busy.
    """
    entry = _race_entry(seeds=(3, 7, 11))
    assert entry["race_cancelled_total"] > 0, (
        "race never cancelled a refinement; early acceptance is broken"
    )
    assert entry["race_p99_s"] <= entry["sequential_p99_s"], (
        f"race p99 ({entry['race_p99_s']:.2f}s) exceeded sequential p99 "
        f"({entry['sequential_p99_s']:.2f}s)"
    )


def test_perf_smoke_coverage_store(tmp_path):
    """CI perf smoke: warm store >= 2x cold build on the small preset.

    Runs in well under a minute and carries a ~40x margin; a failure
    means the store genuinely stopped serving (every build re-samples),
    not that the runner was busy.
    """
    entry = _store_entry(tmp_path)
    assert entry["speedup"] >= 2.0, (
        f"warm CoverageStore ({entry['warm_s']:.2f}s) less than 2x faster "
        f"than the cold build ({entry['cold_s']:.2f}s)"
    )
