"""Ablation studies for the design choices DESIGN.md calls out.

Not paper artifacts — these probe the knobs behind them:

* discrete 1Q-drive steps per pulse (the paper claims 4 steps match 250);
* the parallel-drive amplitude bound;
* the router's lookahead window;
* the closed-form fidelity model (Eq. 10-11) against an actual
  amplitude-damping density-matrix simulation.
"""

import numpy as np
from conftest import run_once

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gate import Gate
from repro.circuits.workloads import get_workload
from repro.core.parallel_drive import (
    ParallelDriveTemplate,
    sample_template_coordinates,
)
from repro.core.coverage import RegionHull, haar_coordinate_samples
from repro.pulse.decoherence import simulate_circuit_fidelity
from repro.transpiler.coupling import square_lattice
from repro.transpiler.layout import trivial_layout
from repro.transpiler.routing import route_circuit


def _k1_haar_fraction(steps: int, eps_bound: float, haar) -> float:
    template = ParallelDriveTemplate(
        gc=np.pi / 2, gg=0.0, pulse_duration=1.0, steps_per_pulse=steps,
        repetitions=1, parallel=True,
    )
    points = sample_template_coordinates(
        template, 4000, seed=5, eps_bound=eps_bound
    )
    left = points[points[:, 0] <= np.pi / 2 + 1e-9]
    hull = RegionHull(left)
    on_left = haar[haar[:, 0] <= np.pi / 2 + 1e-9]
    return float(hull.contains(on_left).mean())


def test_ablation_drive_time_steps(benchmark):
    """Paper Sec. III-B: 4 drive steps give (near) converged coverage."""
    haar = haar_coordinate_samples(3000, seed=9)

    def run():
        return {
            steps: _k1_haar_fraction(steps, 2 * np.pi, haar)
            for steps in (1, 2, 4, 8)
        }

    fractions = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nK=1 parallel-iSWAP left-half Haar coverage vs drive steps:")
    for steps, fraction in fractions.items():
        print(f"  steps={steps}: {fraction:.3f}")
    # The true reachable sets are nested in step count, but the *hull
    # estimates* at a fixed sample budget are not: each added step
    # doubles the drive dimensions and spreads the same samples thinner
    # (steps=8 recovers toward steps=4 as the budget grows).  This is
    # why the paper — and this library — standardize on 4 steps: near
    # the few-step expressiveness plateau, still cheap to sample.
    assert fractions[1] >= fractions[8]  # thinning effect, documented
    assert min(fractions.values()) > 0.4  # every variant fills the bulk


def test_ablation_drive_amplitude_bound(benchmark):
    """Stronger 1Q drives reach more of the chamber, saturating by 2pi."""
    haar = haar_coordinate_samples(3000, seed=9)

    def run():
        return {
            bound: _k1_haar_fraction(4, bound, haar)
            for bound in (np.pi / 2, np.pi, 2 * np.pi)
        }

    fractions = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nK=1 coverage vs 1Q amplitude bound:")
    for bound, fraction in fractions.items():
        print(f"  eps <= {bound:.2f}: {fraction:.3f}")
    assert fractions[2 * np.pi] >= fractions[np.pi / 2]


def test_ablation_router_lookahead(benchmark):
    """Lookahead routing vs purely greedy: fewer SWAPs on QFT-16."""
    coupling = square_lattice(4, 4)
    circuit = get_workload("qft", 16)

    def run():
        counts = {}
        for window in (1, 5, 20):
            result = route_circuit(
                circuit, coupling, trivial_layout(16, coupling),
                seed=3, lookahead=window,
            )
            counts[window] = result.swap_count
        return counts

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nQFT-16 SWAP count vs router lookahead window:")
    for window, swaps in counts.items():
        print(f"  lookahead={window}: {swaps} swaps")
    assert counts[20] <= counts[1]


def test_ablation_fidelity_model_vs_simulation(benchmark):
    """Eq. 10-11 against amplitude-damping density-matrix evolution."""

    def run():
        rows = []
        for n in (2, 3, 4):
            circuit = QuantumCircuit(n)
            for q in range(n):
                circuit.append(Gate("x", (q,), duration=0.25))
            circuit.append(Gate("id", (0,), duration=3.0))
            simulated, model = simulate_circuit_fidelity(circuit, t1=25.0)
            rows.append((n, simulated, model))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nall-excited register: simulated vs exp(-N D / T1):")
    for n, simulated, model in rows:
        print(f"  n={n}: simulated={simulated:.4f} model={model:.4f}")
        # The model's worst case is tight for the all-excited state.
        assert abs(simulated - model) / model < 0.03
