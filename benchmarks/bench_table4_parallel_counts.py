"""Regenerate paper Table IV: parallel-drive extended gate counts."""

from conftest import run_once

from repro.experiments import run_table4
from repro.experiments.tables import PAPER_TABLE4


def test_table4_parallel_counts(benchmark, record_result):
    from repro.core.scoring import weighted_score

    result = run_once(benchmark, run_table4)
    record_result(result)
    for basis, (k_cnot, k_swap, e_haar, k_w) in PAPER_TABLE4.items():
        row = result.data[basis]
        assert row["K[CNOT]"] == k_cnot
        assert row["K[SWAP]"] == k_swap
        # Our K[W] is the lambda combination of the row's own counts;
        # the paper's sqrt_CNOT entry (3.65) instead reflects its joint
        # fractional template, so the paper comparison stays loose.
        assert abs(
            row["K[W]"] - weighted_score(k_cnot, k_swap)
        ) < 0.01, basis
        assert abs(row["K[W]"] - k_w) < 0.5, basis
        # Hull-estimated Haar column: generous band vs the paper's own
        # Monte-Carlo values.
        assert abs(row["E[K[Haar]]"] - e_haar) < 0.35, basis
