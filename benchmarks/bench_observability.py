"""Observability overhead: traced vs. untraced compile-path timings.

Runs the same two-job suite as ``bench_pass_profile`` twice — tracing
off (the shipped default) and tracing on — and records both wall times,
the span count, and the Chrome-trace export size in
``results/observability_bench.json`` (CI names the pytest-benchmark
JSON ``BENCH_observability.json``).

The perf smoke guards the no-op contract: with tracing disabled every
``trace.span(...)`` call must return the cached null context manager,
so the instrumentation's disabled-path cost — measured directly as
(events x per-event null cost) — stays under 3% of the untraced wall
time.  It fails when someone makes the disabled path allocate (a fresh
span object, string formatting, a dict merge), never on runner noise.
"""

from __future__ import annotations

import json
from time import perf_counter

from repro.obs import (
    REGISTRY,
    TRACER,
    MetricsRegistry,
    metrics,
    to_chrome_trace,
    trace,
)
from repro.service import BatchEngine, CompileJob, ResultStore

from _artifact import write_bench_artifact
from conftest import run_once

#: Same shape as the ``bench_pass_profile`` suite: one shallow and one
#: dense workload through the paper pipeline.
JOBS = [
    CompileJob(
        workload=workload,
        num_qubits=8,
        rules="parallel",
        trials=2,
        seed=7,
        target="square_2x4",
        pipeline="paper",
    )
    for workload in ("ghz", "qft")
]


def _run_suite() -> ResultStore:
    engine = BatchEngine(workers=1, use_cache=False)
    store = ResultStore(engine.run(JOBS))
    assert not store.failures(), [r.error for r in store.failures()]
    return store


def _null_span_cost(iterations: int = 200_000) -> float:
    """Per-call cost of a disabled ``trace.span`` context manager."""
    assert not TRACER.enabled
    start = perf_counter()
    for _ in range(iterations):
        with trace.span("bench.noop", n=1):
            pass
    return (perf_counter() - start) / iterations


def _counter_cost(iterations: int = 200_000) -> float:
    """Per-call cost of a registry counter increment."""
    counter = metrics.counter("repro.bench.noop")
    start = perf_counter()
    for _ in range(iterations):
        counter.inc()
    return (perf_counter() - start) / iterations


def test_observability_bench(benchmark, capsys):
    TRACER.disable()
    TRACER.clear()

    # Warm the in-process coverage/translation state once so the
    # traced/untraced comparison measures instrumentation, not the
    # one-time template synthesis.
    _run_suite()

    untraced_start = perf_counter()
    run_once(benchmark, _run_suite)
    untraced_s = perf_counter() - untraced_start

    trace.enable_tracing()
    try:
        traced_start = perf_counter()
        _run_suite()
        traced_s = perf_counter() - traced_start
        spans = list(TRACER.spans)
    finally:
        TRACER.disable()
        TRACER.clear()

    export = json.dumps(to_chrome_trace(spans))
    payload = {
        "suite": [job.label for job in JOBS],
        "untraced_s": untraced_s,
        "traced_s": traced_s,
        "traced_over_untraced": traced_s / untraced_s,
        "span_count": len(spans),
        "chrome_trace_bytes": len(export),
        "null_span_cost_s": _null_span_cost(),
        "counter_inc_cost_s": _counter_cost(),
    }
    assert payload["span_count"] > 0
    out = write_bench_artifact(
        "observability",
        payload,
        metrics={
            key: payload[key]
            for key in (
                "untraced_s", "traced_s", "traced_over_untraced",
                "span_count", "chrome_trace_bytes", "null_span_cost_s",
                "counter_inc_cost_s",
            )
        },
    )

    with capsys.disabled():
        print("\nobservability bench (2 jobs x 2 trials):")
        for key in (
            "untraced_s", "traced_s", "traced_over_untraced",
            "span_count", "chrome_trace_bytes",
        ):
            print(f"  {key:>22}: {payload[key]}")
        print(f"written to {out}")


def test_perf_smoke_tracing_off_overhead(capsys):
    """Disabled-path instrumentation cost <= 3% of the workload.

    Runs the suite once with tracing off, counts every instrumentation
    event that fired (metric increments + histogram observations, plus
    the span call sites, which resolve to the cached null span), and
    bounds their aggregate cost by the measured per-event null costs.
    Direct accounting instead of a wall-time A/B keeps the check free
    of runner noise: observed margin is ~1000x.
    """
    TRACER.disable()
    TRACER.clear()

    before = REGISTRY.snapshot()
    start = perf_counter()
    _run_suite()
    wall_s = perf_counter() - start
    delta = MetricsRegistry.delta(before, REGISTRY.snapshot())

    counter_events = sum(delta["counters"].values())
    histogram_events = sum(
        h["count"] for h in delta["histograms"].values()
    )
    # Span call sites fire once per pass run plus a handful of
    # engine/compile/synthesis wrappers per job; pass runs dominate, so
    # 4x over-counts comfortably.
    span_calls = 4 * (
        delta["counters"].get("repro.pass.runs", 0)
        + delta["counters"].get("repro.service.jobs", 0)
    )

    null_cost = _null_span_cost()
    counter_cost = _counter_cost()
    overhead_s = (
        span_calls * null_cost
        + (counter_events + histogram_events) * counter_cost
    )
    budget_s = 0.03 * wall_s

    with capsys.disabled():
        print(
            f"\ntracing-off overhead: {overhead_s * 1e3:.3f} ms over "
            f"{span_calls} span calls + "
            f"{counter_events + histogram_events} metric events "
            f"(budget {budget_s * 1e3:.1f} ms, wall {wall_s:.2f} s)"
        )
    assert overhead_s <= budget_s, (
        f"disabled-path instrumentation cost {overhead_s:.4f}s exceeds "
        f"3% of the {wall_s:.2f}s workload — the null-span or counter "
        f"fast path regressed"
    )
