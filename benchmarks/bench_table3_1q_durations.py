"""Regenerate paper Table III: durations with 1Q overhead."""

from conftest import run_once

from repro.experiments import run_table3
from repro.experiments.tables import PAPER_TABLE3


def test_table3_1q_durations(benchmark, record_result):
    result = run_once(benchmark, run_table3)
    record_result(result)
    for basis, (d_cnot, d_swap, e_haar, d_w) in PAPER_TABLE3.items():
        row = result.data[basis]
        assert abs(row["D[CNOT]"] - d_cnot) < 0.01
        assert abs(row["D[SWAP]"] - d_swap) < 0.01
        assert abs(row["D[W]"] - d_w) < 0.01
        assert abs(row["E[D[Haar]]"] - e_haar) < 0.1, basis
