"""Regenerate paper Fig. 12: fractional iSWAP/CNOT containment."""

from conftest import run_once

from repro.experiments import run_fig12


def test_fig12_fractional_relation(benchmark, record_result):
    result = run_once(benchmark, run_fig12, seed=3)
    record_result(result)
    for n in (2, 4, 8):
        row = result.data[f"n={n}"]
        # Two 1/n-iSWAP pulses reach the matching 2/n-CNOT...
        assert row["reachable"], f"n={n}"
        # ...but cannot beat the interaction-resource floor.
        assert row["unreachable_blocked"], f"n={n}"
