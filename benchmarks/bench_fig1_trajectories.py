"""Regenerate paper Fig. 1: Cartan trajectories for CNOT and SWAP."""

from conftest import run_once

from repro.experiments import run_fig1


def test_fig1_trajectories(benchmark, record_result):
    result = run_once(benchmark, run_fig1, seed=7)
    record_result(result)
    # Traditional templates stop to steer; parallel-driven ones curve.
    assert result.data["CNOT_traditional"]["endpoint_error"] < 1e-3
    assert result.data["CNOT_parallel"]["endpoint_error"] < 1e-3
    assert result.data["SWAP_parallel"]["endpoint_error"] < 1e-3
    assert len(result.data["CNOT_parallel"]["markers"]) == 0
    assert len(result.data["CNOT_traditional"]["markers"]) == 1
    assert len(result.data["SWAP_parallel"]["markers"]) == 1
    assert len(result.data["SWAP_traditional"]["markers"]) == 2
