"""Magic-basis transformations.

The magic (Bell) basis ``M`` conjugates the local subgroup
SU(2) ⊗ SU(2) onto SO(4) and diagonalizes every canonical gate
``CAN(c1, c2, c3)``.  These two facts power the Weyl-coordinate and KAK
algorithms in :mod:`repro.quantum.weyl` and :mod:`repro.quantum.kak`.
"""

from __future__ import annotations

import numpy as np

from .gates import MAGIC_BASIS
from .linalg import assert_unitary, dagger, kron_factor_4x4

__all__ = [
    "to_magic_basis",
    "from_magic_basis",
    "is_orthogonal",
    "so4_to_local_pair",
    "local_pair_to_so4",
]


def to_magic_basis(unitary: np.ndarray) -> np.ndarray:
    """Conjugate a 4x4 unitary into the magic basis: ``M† U M``."""
    unitary = assert_unitary(unitary, "unitary")
    return dagger(MAGIC_BASIS) @ unitary @ MAGIC_BASIS


def from_magic_basis(matrix: np.ndarray) -> np.ndarray:
    """Inverse of :func:`to_magic_basis`: ``M V M†``."""
    matrix = np.asarray(matrix, dtype=complex)
    return MAGIC_BASIS @ matrix @ dagger(MAGIC_BASIS)


def is_orthogonal(matrix: np.ndarray, atol: float = 1e-8) -> bool:
    """Return True when ``matrix`` is real orthogonal within ``atol``."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    if not np.allclose(matrix.imag, 0.0, atol=atol):
        return False
    real = matrix.real
    return bool(np.allclose(real @ real.T, np.eye(matrix.shape[0]), atol=atol))


def so4_to_local_pair(
    orthogonal: np.ndarray,
) -> tuple[complex, np.ndarray, np.ndarray]:
    """Map an SO(4) matrix (in the magic basis) to local SU(2) factors.

    Returns ``(phase, k1, k2)`` with ``M O M† = phase * kron(k1, k2)``.
    """
    if not is_orthogonal(orthogonal):
        raise ValueError("input is not a real orthogonal matrix")
    local = from_magic_basis(np.asarray(orthogonal, dtype=complex))
    return kron_factor_4x4(local)


def local_pair_to_so4(k1: np.ndarray, k2: np.ndarray) -> np.ndarray:
    """Map local SU(2) factors to the corresponding SO(4) matrix.

    Requires genuinely special unitary inputs; an overall -1 sign ambiguity
    between the factors maps to the same SO(4) element.
    """
    product = np.kron(np.asarray(k1, dtype=complex), np.asarray(k2, dtype=complex))
    rotated = to_magic_basis(product)
    if not is_orthogonal(rotated):
        raise ValueError("factors are not special unitary (det != 1)")
    return rotated.real
