"""Standard gate library.

Constants are module-level 2x2 / 4x4 ``numpy`` arrays; parameterized gates
are constructor functions.  All two-qubit matrices follow the little-endian
ordering ``|q1 q0>`` is *not* used — we use the conventional textbook
big-endian basis ``|q0 q1> = {|00>, |01>, |10>, |11>}`` where qubit 0 is the
left (control) factor of the Kronecker product.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import expm

__all__ = [
    "I2",
    "X",
    "Y",
    "Z",
    "H",
    "S",
    "SDG",
    "T",
    "TDG",
    "SX",
    "rx",
    "ry",
    "rz",
    "phase_gate",
    "u3",
    "random_axes_rotation",
    "II",
    "XX",
    "YY",
    "ZZ",
    "CNOT",
    "CX",
    "CZ",
    "SWAP",
    "ISWAP",
    "SQRT_ISWAP",
    "SQRT_CNOT",
    "B_GATE",
    "SQRT_B",
    "DCNOT",
    "MAGIC_BASIS",
    "canonical_gate",
    "cphase",
    "rxx",
    "ryy",
    "rzz",
    "iswap_power",
    "cnot_power",
    "b_gate_power",
    "controlled",
]

I2 = np.eye(2, dtype=complex)
X = np.array([[0, 1], [1, 0]], dtype=complex)
Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
Z = np.array([[1, 0], [0, -1]], dtype=complex)
H = np.array([[1, 1], [1, -1]], dtype=complex) / np.sqrt(2)
S = np.array([[1, 0], [0, 1j]], dtype=complex)
SDG = S.conj().T
T = np.array([[1, 0], [0, np.exp(1j * np.pi / 4)]], dtype=complex)
TDG = T.conj().T
SX = np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex) / 2

II = np.eye(4, dtype=complex)
XX = np.kron(X, X)
YY = np.kron(Y, Y)
ZZ = np.kron(Z, Z)

CNOT = np.array(
    [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
)
CX = CNOT
CZ = np.diag([1, 1, 1, -1]).astype(complex)
SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
)
ISWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]], dtype=complex
)
# DCNOT (double CNOT): CNOT(0,1) followed by CNOT(1,0); locally
# equivalent to iSWAP.
DCNOT = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 0, 0, 1], [0, 1, 0, 0]], dtype=complex
)

#: Magic (Bell-like) basis: columns map computational states to maximally
#: entangled states; conjugation by it carries SU(2)xSU(2) onto SO(4).
MAGIC_BASIS = (
    np.array(
        [[1, 0, 0, 1j], [0, 1j, 1, 0], [0, 1j, -1, 0], [1, 0, 0, -1j]],
        dtype=complex,
    )
    / np.sqrt(2)
)


def rx(theta: float) -> np.ndarray:
    """Rotation about the X axis by ``theta`` radians."""
    c, s = np.cos(theta / 2), np.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def ry(theta: float) -> np.ndarray:
    """Rotation about the Y axis by ``theta`` radians."""
    c, s = np.cos(theta / 2), np.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=complex)


def rz(theta: float) -> np.ndarray:
    """Rotation about the Z axis by ``theta`` radians."""
    phase = np.exp(-1j * theta / 2)
    return np.array([[phase, 0], [0, phase.conjugate()]], dtype=complex)


def phase_gate(lam: float) -> np.ndarray:
    """Diagonal phase gate ``diag(1, e^{i lam})``."""
    return np.array([[1, 0], [0, np.exp(1j * lam)]], dtype=complex)


def u3(theta: float, phi: float, lam: float) -> np.ndarray:
    """General single-qubit unitary in the standard U3 parameterization."""
    c, s = np.cos(theta / 2), np.sin(theta / 2)
    return np.array(
        [
            [c, -np.exp(1j * lam) * s],
            [np.exp(1j * phi) * s, np.exp(1j * (phi + lam)) * c],
        ],
        dtype=complex,
    )


def random_axes_rotation(axis: np.ndarray, theta: float) -> np.ndarray:
    """Rotation by ``theta`` about an arbitrary Bloch axis (unit 3-vector)."""
    axis = np.asarray(axis, dtype=float)
    norm = np.linalg.norm(axis)
    if norm < 1e-12:
        raise ValueError("rotation axis must be non-zero")
    nx, ny, nz = axis / norm
    generator = nx * X + ny * Y + nz * Z
    return expm(-0.5j * theta * generator)


def canonical_gate(c1: float, c2: float, c3: float) -> np.ndarray:
    """Canonical two-qubit gate ``exp(-i/2 (c1 XX + c2 YY + c3 ZZ))``.

    The coordinates ``(c1, c2, c3)`` are the Weyl-chamber coordinates used
    throughout the paper: CNOT=(pi/2,0,0), iSWAP=(pi/2,pi/2,0),
    SWAP=(pi/2,pi/2,pi/2), B=(pi/2,pi/4,0).
    """
    # XX, YY, ZZ commute, so the exponential factors exactly.
    return _pauli_exp(XX, c1) @ _pauli_exp(YY, c2) @ _pauli_exp(ZZ, c3)


def _pauli_exp(pauli: np.ndarray, angle: float) -> np.ndarray:
    """exp(-i angle/2 * pauli) for an involutory Pauli product."""
    return np.cos(angle / 2) * II - 1j * np.sin(angle / 2) * pauli


def rxx(theta: float) -> np.ndarray:
    """Two-qubit XX rotation ``exp(-i theta/2 XX)``."""
    return _pauli_exp(XX, theta)


def ryy(theta: float) -> np.ndarray:
    """Two-qubit YY rotation ``exp(-i theta/2 YY)``."""
    return _pauli_exp(YY, theta)


def rzz(theta: float) -> np.ndarray:
    """Two-qubit ZZ rotation ``exp(-i theta/2 ZZ)``."""
    return _pauli_exp(ZZ, theta)


def cphase(theta: float) -> np.ndarray:
    """Controlled-phase gate ``diag(1, 1, 1, e^{i theta})``."""
    return np.diag([1, 1, 1, np.exp(1j * theta)]).astype(complex)


def iswap_power(exponent: float) -> np.ndarray:
    """``iSWAP**exponent`` via the canonical gate family.

    ``iswap_power(1)`` is locally equivalent to iSWAP and
    ``iswap_power(0.5)`` to sqrt(iSWAP); the exact matrix is the principal
    power of the iSWAP matrix.
    """
    angle = exponent * np.pi / 2
    return np.array(
        [
            [1, 0, 0, 0],
            [0, np.cos(angle), 1j * np.sin(angle), 0],
            [0, 1j * np.sin(angle), np.cos(angle), 0],
            [0, 0, 0, 1],
        ],
        dtype=complex,
    )


def cnot_power(exponent: float) -> np.ndarray:
    """Principal matrix power ``CNOT**exponent``."""
    lam = np.exp(1j * np.pi * exponent)
    block = np.array(
        [[1 + lam, 1 - lam], [1 - lam, 1 + lam]], dtype=complex
    ) / 2
    out = np.eye(4, dtype=complex)
    out[2:, 2:] = block
    return out


def b_gate_power(exponent: float) -> np.ndarray:
    """Principal power of the Berkeley B gate, ``CAN(pi/2, pi/4, 0)``."""
    return canonical_gate(exponent * np.pi / 2, exponent * np.pi / 4, 0.0)


#: Common named gates from the paper's comparison set.
SQRT_ISWAP = iswap_power(0.5)
SQRT_CNOT = cnot_power(0.5)
B_GATE = canonical_gate(np.pi / 2, np.pi / 4, 0.0)
SQRT_B = b_gate_power(0.5)


def controlled(unitary: np.ndarray) -> np.ndarray:
    """Controlled version of a single-qubit unitary (control = qubit 0)."""
    unitary = np.asarray(unitary, dtype=complex)
    if unitary.shape != (2, 2):
        raise ValueError("controlled() expects a 2x2 unitary")
    out = np.eye(4, dtype=complex)
    out[2:, 2:] = unitary
    return out
