"""Linear-algebra utilities for small quantum unitaries.

All matrices are dense ``numpy.ndarray`` with ``complex128`` dtype.  The
helpers here are deliberately defensive: quantum decomposition code is
notoriously sensitive to silent shape or unitarity errors, so the public
entry points validate their inputs and raise :class:`ValueError` early.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "dagger",
    "is_unitary",
    "is_hermitian",
    "is_special_unitary",
    "assert_unitary",
    "to_special_unitary",
    "global_phase_difference",
    "allclose_up_to_global_phase",
    "unitary_infidelity",
    "average_gate_fidelity",
    "kron_factor_4x4",
    "closest_unitary",
    "commutes",
]

_ATOL = 1e-9


def dagger(matrix: np.ndarray) -> np.ndarray:
    """Return the conjugate transpose of ``matrix``."""
    return np.asarray(matrix).conj().T


def is_unitary(matrix: np.ndarray, atol: float = _ATOL) -> bool:
    """Return True when ``matrix`` is square and unitary within ``atol``."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    identity = np.eye(matrix.shape[0])
    return bool(np.allclose(matrix @ dagger(matrix), identity, atol=atol))


def is_hermitian(matrix: np.ndarray, atol: float = _ATOL) -> bool:
    """Return True when ``matrix`` equals its conjugate transpose."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    return bool(np.allclose(matrix, dagger(matrix), atol=atol))


def is_special_unitary(matrix: np.ndarray, atol: float = 1e-8) -> bool:
    """Return True when ``matrix`` is unitary with determinant one."""
    if not is_unitary(matrix, atol=atol):
        return False
    return bool(abs(np.linalg.det(matrix) - 1.0) <= atol)


def assert_unitary(matrix: np.ndarray, name: str = "matrix") -> np.ndarray:
    """Validate unitarity and return the array; raise ValueError otherwise."""
    matrix = np.asarray(matrix, dtype=complex)
    if not is_unitary(matrix):
        raise ValueError(f"{name} is not unitary (shape {matrix.shape})")
    return matrix


def to_special_unitary(matrix: np.ndarray) -> tuple[np.ndarray, complex]:
    """Rescale a unitary into SU(n).

    Returns ``(special, phase)`` such that ``matrix = phase * special`` and
    ``det(special) == 1``.  The phase branch is chosen deterministically via
    the principal n-th root of the determinant.
    """
    matrix = assert_unitary(matrix)
    dim = matrix.shape[0]
    det = np.linalg.det(matrix)
    phase = det ** (1.0 / dim)
    return matrix / phase, phase


def global_phase_difference(a: np.ndarray, b: np.ndarray) -> complex:
    """Return the phase ``p`` minimizing ``||a - p*b||`` (Frobenius)."""
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    overlap = np.trace(dagger(b) @ a)
    if abs(overlap) < 1e-14:
        return 1.0 + 0.0j
    return overlap / abs(overlap)


def allclose_up_to_global_phase(
    a: np.ndarray, b: np.ndarray, atol: float = 1e-7
) -> bool:
    """Return True when ``a`` and ``b`` agree up to a single global phase."""
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    if a.shape != b.shape:
        return False
    phase = global_phase_difference(a, b)
    return bool(np.allclose(a, phase * b, atol=atol))


def unitary_infidelity(a: np.ndarray, b: np.ndarray) -> float:
    """Phase-insensitive infidelity ``1 - |tr(a† b)| / dim`` between unitaries."""
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    dim = a.shape[0]
    return float(1.0 - abs(np.trace(dagger(a) @ b)) / dim)


def average_gate_fidelity(a: np.ndarray, b: np.ndarray) -> float:
    """Average gate fidelity between two unitaries of dimension d.

    Uses the standard closed form
    ``F_avg = (|tr(a† b)|^2 + d) / (d^2 + d)``.
    """
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    dim = a.shape[0]
    overlap = abs(np.trace(dagger(a) @ b)) ** 2
    return float((overlap + dim) / (dim * dim + dim))


def kron_factor_4x4(matrix: np.ndarray) -> tuple[complex, np.ndarray, np.ndarray]:
    """Factor a 4x4 matrix into ``phase * kron(f1, f2)`` with unitary factors.

    Only valid when ``matrix`` is (numerically) a Kronecker product of two
    2x2 unitaries; raises :class:`ValueError` otherwise.  The factors are
    returned in SU(2) and the residual scalar in ``phase``.
    """
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.shape != (4, 4):
        raise ValueError(f"expected a 4x4 matrix, got {matrix.shape}")
    # Rearrange into the (outer ⊗ inner) product structure and use the
    # dominant singular vector pair: exact when matrix == kron(f1, f2).
    blocks = matrix.reshape(2, 2, 2, 2).transpose(0, 2, 1, 3).reshape(4, 4)
    u, s, vh = np.linalg.svd(blocks)
    if s[1] > 1e-6:
        raise ValueError("matrix is not a Kronecker product of 2x2 factors")
    f1 = np.sqrt(s[0]) * u[:, 0].reshape(2, 2)
    f2 = np.sqrt(s[0]) * vh[0, :].reshape(2, 2)
    # Normalize each factor into SU(2) and pool phases.
    det1 = np.linalg.det(f1)
    det2 = np.linalg.det(f2)
    if abs(det1) < 1e-12 or abs(det2) < 1e-12:
        raise ValueError("degenerate factors; matrix is not a kron product")
    f1 = f1 / np.sqrt(det1)
    f2 = f2 / np.sqrt(det2)
    phase = global_phase_difference(matrix, np.kron(f1, f2))
    if not np.allclose(matrix, phase * np.kron(f1, f2), atol=1e-7):
        raise ValueError("matrix is not a Kronecker product of 2x2 factors")
    return phase, f1, f2


def closest_unitary(matrix: np.ndarray) -> np.ndarray:
    """Project ``matrix`` to the closest unitary in Frobenius norm (polar)."""
    u, _, vh = np.linalg.svd(np.asarray(matrix, dtype=complex))
    return u @ vh


def commutes(a: np.ndarray, b: np.ndarray, atol: float = _ATOL) -> bool:
    """Return True when ``[a, b] == 0`` within ``atol``."""
    a = np.asarray(a)
    b = np.asarray(b)
    return bool(np.allclose(a @ b, b @ a, atol=atol))
