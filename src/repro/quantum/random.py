"""Haar-random unitary sampling.

All samplers accept either an integer seed, a ``numpy.random.Generator``,
or ``None`` (fresh entropy).  Haar measure is obtained from the QR
decomposition of a Ginibre matrix with the standard phase correction
(Mezzadri, 2007), which makes the distribution exactly Haar rather than
merely approximately so.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "as_rng",
    "haar_unitary",
    "haar_unitaries_batch",
    "random_su2",
    "random_su2_batch",
    "random_su4",
    "random_local_pair",
    "random_local_pairs_batch",
    "haar_random_two_qubit",
]


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed`` into a ``numpy.random.Generator``."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def haar_unitary(
    dim: int, seed: int | np.random.Generator | None = None
) -> np.ndarray:
    """Sample a Haar-random unitary from U(dim)."""
    if dim < 1:
        raise ValueError("dimension must be positive")
    rng = as_rng(seed)
    ginibre = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, r = np.linalg.qr(ginibre)
    # Phase correction: make the diagonal of R positive real so that Q is
    # distributed with exact Haar measure.
    diag = np.diag(r)
    q = q * (diag / np.abs(diag))
    return q


def haar_unitaries_batch(
    dim: int, count: int, seed: int | np.random.Generator | None = None
) -> np.ndarray:
    """Sample ``count`` Haar-random U(dim) matrices, shape ``(count, d, d)``.

    Uses stacked QR, so it is much faster than a Python loop for the
    thousands of samples coverage-set estimation draws.
    """
    if dim < 1 or count < 1:
        raise ValueError("dimension and count must be positive")
    rng = as_rng(seed)
    ginibre = rng.normal(size=(count, dim, dim)) + 1j * rng.normal(
        size=(count, dim, dim)
    )
    q, r = np.linalg.qr(ginibre)
    diag = np.einsum("nii->ni", r)
    return q * (diag / np.abs(diag))[:, None, :]


def random_su2_batch(
    count: int, seed: int | np.random.Generator | None = None
) -> np.ndarray:
    """Sample ``count`` Haar-random SU(2) matrices."""
    units = haar_unitaries_batch(2, count, seed)
    dets = np.linalg.det(units)
    return units / np.sqrt(dets)[:, None, None]


def random_local_pairs_batch(
    count: int, seed: int | np.random.Generator | None = None
) -> np.ndarray:
    """Sample ``count`` independent ``kron(SU(2), SU(2))`` matrices."""
    rng = as_rng(seed)
    left = random_su2_batch(count, rng)
    right = random_su2_batch(count, rng)
    return np.einsum("nab,ncd->nacbd", left, right).reshape(count, 4, 4)


def random_su2(seed: int | np.random.Generator | None = None) -> np.ndarray:
    """Sample a Haar-random SU(2) element."""
    u = haar_unitary(2, seed)
    return u / np.sqrt(np.linalg.det(u))


def random_su4(seed: int | np.random.Generator | None = None) -> np.ndarray:
    """Sample a Haar-random SU(4) element."""
    u = haar_unitary(4, seed)
    return u / np.linalg.det(u) ** 0.25


def random_local_pair(
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Sample ``kron(u1, u2)`` with independent Haar-random SU(2) factors."""
    rng = as_rng(seed)
    return np.kron(random_su2(rng), random_su2(rng))


def haar_random_two_qubit(
    count: int, seed: int | np.random.Generator | None = None
) -> np.ndarray:
    """Sample ``count`` Haar-random U(4) matrices, shape ``(count, 4, 4)``."""
    rng = as_rng(seed)
    return np.stack([haar_unitary(4, rng) for _ in range(count)])
