"""Weyl-chamber coordinates of two-qubit gates.

Every two-qubit unitary is locally equivalent to a canonical gate
``CAN(c1, c2, c3) = exp(-i/2 (c1 XX + c2 YY + c3 ZZ))``.  The equivalence
classes form the Weyl chamber: a tetrahedron with vertices

* ``I     = (0, 0, 0)`` (and its mirror ``(pi, 0, 0)``),
* ``iSWAP = (pi/2, pi/2, 0)``,
* ``SWAP  = (pi/2, pi/2, pi/2)``,

with CNOT at the base-plane midpoint ``(pi/2, 0, 0)`` and the B gate at
``(pi/2, pi/4, 0)``.  Points on the base plane (``c3 == 0``) obey the mirror
identification ``(c1, c2, 0) ~ (pi - c1, c2, 0)``; we canonicalize those to
the left half ``c1 <= pi/2``.  Off the base plane the left and right halves
are genuinely distinct classes (a gate and its transpose-conjugate), which
is why coverage-set hulls are built per half (paper Sec. III-B).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "WEYL_POINTS",
    "weyl_coordinates",
    "batched_weyl_coordinates",
    "canonicalize_coordinates",
    "in_weyl_chamber",
    "is_base_plane",
    "is_left_half",
    "mirror_coordinates",
    "coordinates_distance",
    "named_gate_coordinates",
]

#: Canonical Weyl coordinates (radians) of the gates used in the paper.
WEYL_POINTS: dict[str, tuple[float, float, float]] = {
    "I": (0.0, 0.0, 0.0),
    "CNOT": (np.pi / 2, 0.0, 0.0),
    "CX": (np.pi / 2, 0.0, 0.0),
    "CZ": (np.pi / 2, 0.0, 0.0),
    "iSWAP": (np.pi / 2, np.pi / 2, 0.0),
    "DCNOT": (np.pi / 2, np.pi / 2, 0.0),
    "SWAP": (np.pi / 2, np.pi / 2, np.pi / 2),
    "B": (np.pi / 2, np.pi / 4, 0.0),
    "sqrt_iSWAP": (np.pi / 4, np.pi / 4, 0.0),
    "sqrt_CNOT": (np.pi / 4, 0.0, 0.0),
    "sqrt_B": (np.pi / 4, np.pi / 8, 0.0),
    "sqrt_SWAP": (np.pi / 4, np.pi / 4, np.pi / 4),
}

_ATOL = 1e-9


def named_gate_coordinates(name: str) -> np.ndarray:
    """Canonical coordinates of a named gate (see :data:`WEYL_POINTS`)."""
    try:
        return np.array(WEYL_POINTS[name], dtype=float)
    except KeyError:
        raise KeyError(
            f"unknown gate {name!r}; known: {sorted(WEYL_POINTS)}"
        ) from None


def weyl_coordinates(unitary: np.ndarray) -> np.ndarray:
    """Canonical Weyl coordinates ``(c1, c2, c3)`` of a 4x4 unitary.

    The algorithm follows the standard eigenphase recipe: conjugate into
    the magic basis where local factors are real, form ``m = V^T V`` whose
    spectrum ``{e^{2 i theta_j}}`` is a complete local invariant, and fold
    the sorted half-phases into the chamber.

    This is a batch-size-1 wrapper over the vectorized kernel
    :func:`repro.kernels.weyl_coordinates_many`; hot paths that classify
    many unitaries should stack them and call the kernel directly.
    """
    from ..kernels.weyl_batch import weyl_coordinates_many

    unitary = np.asarray(unitary, dtype=complex)
    if unitary.shape != (4, 4):
        raise ValueError(f"expected a 4x4 unitary, got shape {unitary.shape}")
    return weyl_coordinates_many(unitary[None])[0]


def batched_weyl_coordinates(unitaries: np.ndarray) -> np.ndarray:
    """Vectorized :func:`weyl_coordinates` for a stack ``(N, 4, 4)``.

    Boundary-of-chamber edge cases (rear-edge mirror) follow the common
    branch; statistically they are measure-zero and this path is used for
    Monte-Carlo coverage sampling only.  Keeping this sampler's folding
    exactly as-is also keeps the persisted coverage point clouds (and
    therefore every hull and pinned digest downstream) stable.  For
    classifying circuit gates — where CNOT/SWAP/iSWAP sit exactly on the
    boundaries this sampler is loose about — use the parity-exact kernel
    :func:`repro.kernels.weyl_coordinates_many` instead.
    """
    from .gates import MAGIC_BASIS  # local import avoids a cycle

    unitaries = np.asarray(unitaries, dtype=complex)
    if unitaries.ndim != 3 or unitaries.shape[1:] != (4, 4):
        raise ValueError("expected a stack of 4x4 unitaries")
    dets = np.linalg.det(unitaries)
    special = unitaries / (dets ** 0.25)[:, None, None]
    magic = np.einsum(
        "ab,nbc,cd->nad", MAGIC_BASIS.conj().T, special, MAGIC_BASIS
    )
    gram = np.einsum("nba,nbc->nac", magic, magic)
    eigenvalues = np.linalg.eigvals(gram)
    half = -np.angle(eigenvalues) / (2 * np.pi)
    half = np.where(half <= -0.25, half + 1.0, half)
    half = -np.sort(-half, axis=1)
    totals = np.rint(np.sum(half, axis=1)).astype(int)
    # Subtract 1 from the largest `totals[n]` entries of each row.
    ranks = np.arange(4)[None, :]
    half = half - (ranks < totals[:, None])
    half = -np.sort(-half, axis=1)
    c1 = (half[:, 0] + half[:, 1]) * np.pi
    c2 = (half[:, 0] + half[:, 2]) * np.pi
    c3 = (half[:, 1] + half[:, 2]) * np.pi
    negative = c3 < 0
    c1 = np.where(negative, np.pi - c1, c1)
    c3 = np.abs(c3)
    coords = np.stack([c1, c2, c3], axis=1)
    # Vectorized canonicalization (three folding rounds always suffice).
    for _ in range(3):
        coords = np.mod(coords, np.pi)
        coords = -np.sort(-coords, axis=1)
        overflow = coords[:, 0] + coords[:, 1] > np.pi + _ATOL
        coords[overflow, 0] = np.pi - coords[overflow, 0]
        coords[overflow, 1] = np.pi - coords[overflow, 1]
    coords = -np.sort(-coords, axis=1)
    base_mirror = (coords[:, 2] <= _ATOL) & (coords[:, 0] > np.pi / 2 + _ATOL)
    coords[base_mirror, 0] = np.pi - coords[base_mirror, 0]
    coords = -np.sort(-coords, axis=1)
    return coords


def canonicalize_coordinates(coords: np.ndarray) -> np.ndarray:
    """Fold arbitrary canonical parameters into the Weyl chamber.

    Applies Weyl-group moves only (coordinate shifts by pi, pairwise sign
    flips, permutations, and the base-plane mirror), so the returned point
    is locally equivalent to the input parameters.
    """
    c = np.array(coords, dtype=float)
    if c.shape != (3,):
        raise ValueError("expected three canonical coordinates")
    for _ in range(16):
        c = np.mod(c, np.pi)
        c = np.sort(c)[::-1]
        if c[0] + c[1] > np.pi + _ATOL:
            # Flip the signs of the two largest and shift both back by pi.
            c[0], c[1] = np.pi - c[0], np.pi - c[1]
            continue
        break
    else:  # pragma: no cover - defensive; the loop converges in <= 3 steps
        raise RuntimeError(f"canonicalization failed for {coords!r}")
    c = np.sort(c)[::-1]
    # Snap tiny numerical noise to the chamber boundary.
    c[np.abs(c) < _ATOL] = 0.0
    c[np.abs(c - np.pi) < _ATOL] = np.pi
    if abs(c[2]) <= _ATOL and c[0] > np.pi / 2 + _ATOL:
        # Base-plane mirror identification.
        c[0] = np.pi - c[0]
        c = np.sort(c)[::-1]
    if abs(c[0] + c[1] - np.pi) <= _ATOL and c[2] > _ATOL:
        # The rear edge c1 + c2 == pi is also mirror-identified; pick the
        # left representative for determinism.
        c[0], c[1] = max(np.pi - c[0], np.pi - c[1]), min(
            np.pi - c[0], np.pi - c[1]
        )
        c = np.sort(np.array([c[0], c[1], c[2]]))[::-1]
    return c


def in_weyl_chamber(coords: np.ndarray, atol: float = 1e-7) -> bool:
    """Return True when ``coords`` lies in the canonical chamber.

    ``atol`` loosens the geometric inequalities; the base-plane mirror
    test keeps its own fixed epsilon (``_ATOL``, exactly the
    canonicalizer's base-plane threshold — a larger value here would
    reject genuine right-half points the canonicalizer deliberately
    leaves unmirrored just above the base plane).
    """
    c1, c2, c3 = np.asarray(coords, dtype=float)
    if not (c1 + atol >= c2 >= c3 - atol and c3 >= -atol):
        return False
    if c1 > np.pi + atol or c1 + c2 > np.pi + atol:
        return False
    if c3 <= _ATOL and c1 > np.pi / 2 + max(atol, _ATOL):
        return False
    return True


def is_base_plane(coords: np.ndarray, atol: float = 1e-7) -> bool:
    """True when the class lies on the chamber base (c3 == 0)."""
    return bool(abs(float(np.asarray(coords)[2])) <= atol)


def is_left_half(coords: np.ndarray) -> bool:
    """True when ``c1 <= pi/2`` (the paper plots this half)."""
    return bool(float(np.asarray(coords)[0]) <= np.pi / 2 + 1e-9)


def mirror_coordinates(coords: np.ndarray) -> np.ndarray:
    """Mirror a point across the ``c1 = pi/2`` plane (conjugate class)."""
    c1, c2, c3 = np.asarray(coords, dtype=float)
    return np.array([np.pi - c1, c2, c3], dtype=float)


def coordinates_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance between two canonical coordinate triples."""
    return float(np.linalg.norm(np.asarray(a, float) - np.asarray(b, float)))
