"""Single-qubit Euler-angle decompositions.

Turns arbitrary 2x2 unitaries into rotation-gate sequences (ZYZ by
default), which lets the synthesis layer emit *concrete* 1Q gates for
decomposition templates rather than placeholder durations.
"""

from __future__ import annotations

import numpy as np

from .gates import rx, ry, rz, u3
from .linalg import allclose_up_to_global_phase, assert_unitary

__all__ = [
    "zyz_angles",
    "xyx_angles",
    "u3_angles",
    "zyz_matrix",
]


def zyz_angles(unitary: np.ndarray) -> tuple[float, float, float, float]:
    """Decompose U = e^{i alpha} Rz(phi) Ry(theta) Rz(lam).

    Returns ``(alpha, phi, theta, lam)``.
    """
    unitary = assert_unitary(np.asarray(unitary, dtype=complex), "unitary")
    if unitary.shape != (2, 2):
        raise ValueError("expected a single-qubit unitary")
    det = np.linalg.det(unitary)
    alpha = 0.5 * np.angle(det)
    special = unitary * np.exp(-1j * alpha)
    # special = [[cos(t/2) e^{-i(phi+lam)/2}, -sin(t/2) e^{-i(phi-lam)/2}],
    #            [sin(t/2) e^{+i(phi-lam)/2},  cos(t/2) e^{+i(phi+lam)/2}]]
    cos_half = np.clip(abs(special[0, 0]), 0.0, 1.0)
    theta = 2.0 * np.arccos(cos_half)
    if abs(special[0, 0]) > 1e-12 and abs(special[1, 0]) > 1e-12:
        plus = 2.0 * np.angle(special[1, 1])
        minus = 2.0 * np.angle(special[1, 0])
        phi = (plus + minus) / 2.0
        lam = (plus - minus) / 2.0
    elif abs(special[0, 0]) > 1e-12:  # theta ~ 0: only phi+lam defined
        phi = 2.0 * np.angle(special[1, 1])
        lam = 0.0
    else:  # theta ~ pi: only phi-lam defined
        phi = 2.0 * np.angle(special[1, 0])
        lam = 0.0
    return float(alpha), float(phi), float(theta), float(lam)


def zyz_matrix(alpha: float, phi: float, theta: float, lam: float) -> np.ndarray:
    """Reassemble a unitary from its ZYZ angles."""
    return np.exp(1j * alpha) * rz(phi) @ ry(theta) @ rz(lam)


def xyx_angles(unitary: np.ndarray) -> tuple[float, float, float, float]:
    """Decompose U = e^{i alpha} Rx(phi) Ry(theta) Rx(lam).

    Obtained from the ZYZ form by conjugating with the Hadamard-like
    basis change that swaps the X and Z axes.
    """
    from .gates import H

    alpha, phi, theta, lam = zyz_angles(H @ np.asarray(unitary, complex) @ H)
    # H Rz(a) H = Rx(a); H Ry(t) H = Ry(-t).
    return alpha, phi, -theta, lam


def u3_angles(unitary: np.ndarray) -> tuple[float, float, float]:
    """Angles ``(theta, phi, lam)`` with ``u3(...) ~ unitary`` (mod phase)."""
    _, phi, theta, lam = zyz_angles(unitary)
    candidate = u3(theta, phi, lam)
    if not allclose_up_to_global_phase(
        candidate, np.asarray(unitary, complex), atol=1e-7
    ):  # pragma: no cover - zyz_angles already guarantees this
        raise RuntimeError("u3 angle extraction failed")
    return theta, phi, lam
