"""Two-qubit linear-algebra substrate.

Gate constants, Haar sampling, Weyl-chamber coordinates, Makhlin
invariants, and the Cartan (KAK) decomposition — the mathematical toolkit
the paper's co-design analysis is built on.
"""

from .gates import (
    B_GATE,
    CNOT,
    CZ,
    ISWAP,
    MAGIC_BASIS,
    SQRT_B,
    SQRT_CNOT,
    SQRT_ISWAP,
    SWAP,
    b_gate_power,
    canonical_gate,
    cnot_power,
    cphase,
    iswap_power,
)
from .euler import u3_angles, xyx_angles, zyz_angles, zyz_matrix
from .kak import KAKDecomposition, kak_decompose
from .linalg import (
    allclose_up_to_global_phase,
    average_gate_fidelity,
    is_unitary,
    unitary_infidelity,
)
from .makhlin import (
    locally_equivalent,
    makhlin_distance,
    makhlin_from_coordinates,
    makhlin_invariants,
)
from .random import haar_unitary, random_local_pair, random_su2
from .weyl import (
    WEYL_POINTS,
    canonicalize_coordinates,
    in_weyl_chamber,
    named_gate_coordinates,
    weyl_coordinates,
)

__all__ = [
    "B_GATE",
    "CNOT",
    "CZ",
    "ISWAP",
    "MAGIC_BASIS",
    "SQRT_B",
    "SQRT_CNOT",
    "SQRT_ISWAP",
    "SWAP",
    "KAKDecomposition",
    "WEYL_POINTS",
    "allclose_up_to_global_phase",
    "average_gate_fidelity",
    "b_gate_power",
    "canonical_gate",
    "canonicalize_coordinates",
    "cnot_power",
    "cphase",
    "haar_unitary",
    "in_weyl_chamber",
    "is_unitary",
    "iswap_power",
    "kak_decompose",
    "locally_equivalent",
    "makhlin_distance",
    "makhlin_from_coordinates",
    "makhlin_invariants",
    "named_gate_coordinates",
    "random_local_pair",
    "random_su2",
    "u3_angles",
    "unitary_infidelity",
    "weyl_coordinates",
    "xyx_angles",
    "zyz_angles",
    "zyz_matrix",
]
