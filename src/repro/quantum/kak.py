"""Cartan (KAK) decomposition of two-qubit unitaries.

Any ``U`` in U(4) factors as

``U = phase * (k1l ⊗ k2l) · CAN(c1, c2, c3) · (k1r ⊗ k2r)``

with single-qubit SU(2) factors and canonical Weyl coordinates.  The
algorithm works in the magic basis, where the local subgroup becomes SO(4)
and the Cartan torus becomes the diagonal phase matrices:

1. normalize ``U`` into SU(4);
2. orthogonally diagonalize ``m = V^T V`` (``V`` the magic-basis image),
   using simultaneous diagonalization of its commuting real and imaginary
   parts so degenerate spectra (CNOT, SWAP, ...) are handled exactly;
3. split the eigenphases into a diagonal Cartan factor and two real
   orthogonal factors, fixing determinant and branch choices;
4. map back, factor the locals with an exact Kronecker factorization, and
   fold the coordinates into the Weyl chamber with tracked local
   corrections.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .gates import H, I2, S, SDG, X, Y, Z, canonical_gate, rx
from .linalg import (
    allclose_up_to_global_phase,
    assert_unitary,
    kron_factor_4x4,
    to_special_unitary,
)
from .magic import from_magic_basis, to_magic_basis
from .weyl import in_weyl_chamber

__all__ = ["KAKDecomposition", "kak_decompose"]

#: Linear map theta = -(1/2) * PATTERN @ c relating canonical coordinates to
#: the magic-basis eigenphases (column order fixed by MAGIC_BASIS).
_PATTERN = np.array(
    [
        [1.0, -1.0, 1.0],
        [1.0, 1.0, -1.0],
        [-1.0, -1.0, -1.0],
        [-1.0, 1.0, 1.0],
    ]
)


@dataclass(frozen=True)
class KAKDecomposition:
    """Result of :func:`kak_decompose`.

    Attributes:
        global_phase: scalar ``g`` with ``U = g * (left) CAN(c) (right)``.
        k1l, k2l: left single-qubit factors (qubit 0 and qubit 1).
        k1r, k2r: right single-qubit factors.
        coordinates: canonical Weyl coordinates ``(c1, c2, c3)``.
    """

    global_phase: complex
    k1l: np.ndarray
    k2l: np.ndarray
    k1r: np.ndarray
    k2r: np.ndarray
    coordinates: np.ndarray

    @property
    def left_local(self) -> np.ndarray:
        """``k1l ⊗ k2l`` as a 4x4 matrix."""
        return np.kron(self.k1l, self.k2l)

    @property
    def right_local(self) -> np.ndarray:
        """``k1r ⊗ k2r`` as a 4x4 matrix."""
        return np.kron(self.k1r, self.k2r)

    @property
    def canonical_matrix(self) -> np.ndarray:
        """The canonical interaction ``CAN(c1, c2, c3)``."""
        return canonical_gate(*self.coordinates)

    def unitary(self) -> np.ndarray:
        """Reassemble the full 4x4 unitary."""
        return (
            self.global_phase
            * self.left_local
            @ self.canonical_matrix
            @ self.right_local
        )


def _group_indices(values: np.ndarray, tol: float) -> list[list[int]]:
    """Group sorted-value indices whose values differ by less than tol."""
    order = np.argsort(values)
    groups: list[list[int]] = [[int(order[0])]]
    for idx in order[1:]:
        if values[idx] - values[groups[-1][-1]] < tol:
            groups[-1].append(int(idx))
        else:
            groups.append([int(idx)])
    return groups


def _simultaneous_orthogonal_diagonalization(
    sym_a: np.ndarray, sym_b: np.ndarray, tol: float = 1e-7
) -> np.ndarray:
    """Orthogonal ``O`` diagonalizing two commuting real symmetric matrices.

    Diagonalizes ``sym_a`` first, then re-diagonalizes ``sym_b`` inside each
    degenerate eigenspace of ``sym_a``.
    """
    eigenvalues, vectors = np.linalg.eigh(sym_a)
    out = np.array(vectors)
    for group in _group_indices(eigenvalues, tol):
        if len(group) == 1:
            continue
        block = vectors[:, group]
        projected = block.T @ sym_b @ block
        _, sub = np.linalg.eigh((projected + projected.T) / 2)
        out[:, group] = block @ sub
    return out


def _coordinates_from_phases(thetas: np.ndarray) -> np.ndarray:
    """Invert ``theta = -(1/2) PATTERN c`` by least squares (exact fit)."""
    solution, residual, _, _ = np.linalg.lstsq(
        -0.5 * _PATTERN, thetas, rcond=None
    )
    fitted = -0.5 * _PATTERN @ solution
    if not np.allclose(fitted, thetas, atol=1e-7):
        raise RuntimeError("eigenphases are inconsistent with a Cartan torus")
    return solution


# Local conjugation gadgets for Weyl-group moves on coordinates.  Each entry
# maps a move to (k1, k2) with (k1 ⊗ k2) CAN(c') (k1 ⊗ k2)† == CAN(move(c)).
_SQRT_X = rx(np.pi / 2)
_SWAP_XY = (S, S)  # conjugation swaps the XX and YY coefficients
_SWAP_YZ = (_SQRT_X, _SQRT_X)  # swaps YY and ZZ
_SWAP_XZ = (H, H)  # swaps XX and ZZ
_FLIP_YZ = (X, I2)  # negates YY and ZZ
_FLIP_XZ = (Y, I2)  # negates XX and ZZ
_FLIP_XY = (Z, I2)  # negates XX and YY
_AXIS_PAULI = (np.kron(X, X), np.kron(Y, Y), np.kron(Z, Z))


class _TrackedCanonical:
    """CAN(c) with tracked left/right local corrections.

    Maintains the invariant ``left @ CAN(c) @ right == constant`` while
    Weyl-group moves normalize ``c`` into the chamber.
    """

    def __init__(self, coords: np.ndarray):
        self.coords = np.array(coords, dtype=float)
        self.left = np.eye(4, dtype=complex)
        self.right = np.eye(4, dtype=complex)

    def shift(self, axis: int) -> None:
        """c[axis] -= pi, compensated by a local Pauli on the left."""
        self.coords[axis] -= np.pi
        # CAN(c) = (-i P) CAN(c - pi e_axis)  =>  absorb (-i P) into left.
        self.left = self.left @ (-1j * _AXIS_PAULI[axis])

    def conjugate(self, k1: np.ndarray, k2: np.ndarray, new_coords) -> None:
        """Replace CAN(c) by local ⊗-conjugation realizing ``new_coords``."""
        local = np.kron(k1, k2)
        self.left = self.left @ local
        self.right = local.conj().T @ self.right
        self.coords = np.asarray(new_coords, dtype=float)

    def flip_pair(self, keep_axis: int) -> None:
        """Negate the two coordinates other than ``keep_axis``."""
        gadget = (_FLIP_YZ, _FLIP_XZ, _FLIP_XY)[keep_axis]
        new = -self.coords
        new[keep_axis] = self.coords[keep_axis]
        self.conjugate(*gadget, new)

    def swap(self, axis_a: int, axis_b: int) -> None:
        """Exchange two coordinates."""
        pair = tuple(sorted((axis_a, axis_b)))
        gadget = {(0, 1): _SWAP_XY, (1, 2): _SWAP_YZ, (0, 2): _SWAP_XZ}[pair]
        new = np.array(self.coords)
        new[axis_a], new[axis_b] = new[axis_b], new[axis_a]
        self.conjugate(*gadget, new)

    def sort_descending(self) -> None:
        """Bubble-sort coordinates descending with swap moves."""
        for _ in range(3):
            for i in range(2):
                if self.coords[i] < self.coords[i + 1] - 1e-12:
                    self.swap(i, i + 1)

    def _snap(self, axis: int) -> None:
        """Flush sub-1e-9 boundary noise to exactly zero.

        Without this, a coordinate like -1e-10 mod pi lands at pi - 1e-10,
        inside the threshold gap, and the folding loop cycles forever.
        The snap introduces at most 1e-9 unitary error, far below the
        reconstruction tolerance.
        """
        if abs(self.coords[axis]) < 1e-9:
            self.coords[axis] = 0.0

    def canonicalize(self) -> None:
        """Drive the coordinates into the canonical Weyl chamber."""
        for _ in range(24):
            # Reduce modulo pi.
            for axis in range(3):
                self._snap(axis)
                while self.coords[axis] >= np.pi - 1e-9:
                    self.shift(axis)
                    self._snap(axis)
                while self.coords[axis] < -1e-9:
                    self.coords[axis] += np.pi
                    self.left = self.left @ (1j * _AXIS_PAULI[axis])
                self._snap(axis)
            self.sort_descending()
            c = self.coords
            if c[0] + c[1] > np.pi + 1e-12:
                # Flip the two largest, then fold back below pi.
                self.flip_pair(keep_axis=2)
                continue
            if abs(c[2]) <= 1e-9 and c[0] > np.pi / 2 + 1e-12:
                # Base-plane mirror: (c1, c2, 0) -> (pi - c1, c2, 0).
                self.flip_pair(keep_axis=1)
                continue
            if (
                abs(c[0] + c[1] - np.pi) <= 1e-9
                and c[2] > 1e-9
                and c[0] > np.pi / 2 + 1e-12
            ):
                # Rear-edge mirror, deterministic left representative.
                self.flip_pair(keep_axis=2)
                continue
            break
        else:  # pragma: no cover - defensive cap
            raise RuntimeError("Weyl canonicalization did not converge")
        self.coords[np.abs(self.coords) < 1e-10] = 0.0


def kak_decompose(unitary: np.ndarray) -> KAKDecomposition:
    """Full Cartan decomposition of a two-qubit unitary.

    Raises:
        ValueError: when ``unitary`` is not a 4x4 unitary matrix.
    """
    unitary = assert_unitary(np.asarray(unitary, dtype=complex), "unitary")
    if unitary.shape != (4, 4):
        raise ValueError(f"expected a 4x4 unitary, got {unitary.shape}")
    special, phase = to_special_unitary(unitary)
    magic = to_magic_basis(special)
    gram = magic.T @ magic

    ortho = _simultaneous_orthogonal_diagonalization(
        gram.real + gram.real.T, gram.imag + gram.imag.T
    )
    if np.linalg.det(ortho) < 0:
        ortho[:, 0] = -ortho[:, 0]
    diagonal = ortho.T @ gram @ ortho
    off_diag = diagonal - np.diag(np.diag(diagonal))
    if not np.allclose(off_diag, 0.0, atol=1e-6):
        raise RuntimeError("simultaneous diagonalization failed")

    thetas = np.angle(np.diag(diagonal)) / 2.0  # each in (-pi/2, pi/2]
    # Fix the determinant of the Cartan factor to +1.
    if np.cos(np.sum(thetas)) < 0:
        thetas[0] -= np.pi
    # Fold the residual 2*pi multiples out of the sum.
    total = np.sum(thetas)
    while total > np.pi:
        largest = int(np.argmax(thetas))
        thetas[largest] -= np.pi
        second = int(np.argmax(np.where(np.arange(4) == largest, -np.inf, thetas)))
        thetas[second] -= np.pi
        total = np.sum(thetas)
    while total < -np.pi:
        smallest = int(np.argmin(thetas))
        thetas[smallest] += np.pi
        second = int(
            np.argmin(np.where(np.arange(4) == smallest, np.inf, thetas))
        )
        thetas[second] += np.pi
        total = np.sum(thetas)

    cartan = np.diag(np.exp(1j * thetas))
    left = magic @ ortho @ cartan.conj().T
    if not np.allclose(left.imag, 0.0, atol=1e-6):  # pragma: no cover
        raise RuntimeError("left Cartan factor is not real orthogonal")
    left = left.real
    if np.linalg.det(left) < 0:
        # Move a sign into the Cartan torus by flipping one eigenphase by pi
        # on the axis that keeps the torus determinant fixed is impossible
        # with a single flip; flip one column of each orthogonal factor
        # instead (same diagonal since conjugation by diag(+-1)).
        left[:, 0] = -left[:, 0]
        ortho[:, 0] = -ortho[:, 0]

    coords = _coordinates_from_phases(thetas)
    tracked = _TrackedCanonical(coords)
    tracked.canonicalize()

    left_full = from_magic_basis(left.astype(complex)) @ tracked.left
    right_full = tracked.right @ from_magic_basis(
        ortho.T.astype(complex)
    )
    phase_l, k1l, k2l = kron_factor_4x4(left_full)
    phase_r, k1r, k2r = kron_factor_4x4(right_full)

    result = KAKDecomposition(
        global_phase=phase * phase_l * phase_r,
        k1l=k1l,
        k2l=k2l,
        k1r=k1r,
        k2r=k2r,
        coordinates=tracked.coords,
    )
    if not in_weyl_chamber(result.coordinates):  # pragma: no cover
        raise RuntimeError(
            f"coordinates {result.coordinates} left the Weyl chamber"
        )
    if not allclose_up_to_global_phase(result.unitary(), unitary, atol=1e-6):
        raise RuntimeError("KAK reconstruction failed")
    return result
