"""Makhlin local invariants of two-qubit gates.

The triple ``(g1, g2, g3)`` is a complete invariant of the local
equivalence class of a two-qubit unitary (Makhlin 2002).  It is cheap to
evaluate — no eigendecomposition — which makes it the loss function of
choice for the parallel-drive template optimizer (paper Sec. III-B).
"""

from __future__ import annotations

import numpy as np

from .linalg import to_special_unitary
from .magic import to_magic_basis

__all__ = [
    "makhlin_invariants",
    "makhlin_from_coordinates",
    "makhlin_distance",
    "makhlin_loss_to_target",
    "locally_equivalent",
]


def makhlin_invariants(unitary: np.ndarray) -> np.ndarray:
    """Return ``(g1, g2, g3)`` for a 4x4 unitary."""
    special, _ = to_special_unitary(np.asarray(unitary, dtype=complex))
    magic = to_magic_basis(special)
    gram = magic.T @ magic
    trace = np.trace(gram)
    g12 = trace * trace / 16.0
    g3 = (trace * trace - np.trace(gram @ gram)) / 4.0
    # The g2 sign is fixed to match our CAN sign convention (and hence
    # the closed form in :func:`makhlin_from_coordinates`); the bare
    # gram-matrix recipe yields the mirror class's sign.
    return np.array([g12.real, -g12.imag, g3.real], dtype=float)


def makhlin_from_coordinates(coords: np.ndarray) -> np.ndarray:
    """Closed-form invariants from Weyl coordinates ``(c1, c2, c3)``.

    ``g1 = cos^2 c1 cos^2 c2 cos^2 c3 - sin^2 c1 sin^2 c2 sin^2 c3``,
    ``g2 = (1/4) sin 2c1 sin 2c2 sin 2c3``,
    ``g3 = 4 g1 - cos 2c1 cos 2c2 cos 2c3``.
    """
    c = np.asarray(coords, dtype=float)
    cos2 = np.cos(c) ** 2
    sin2 = np.sin(c) ** 2
    g1 = float(np.prod(cos2) - np.prod(sin2))
    g2 = float(np.prod(np.sin(2 * c)) / 4.0)
    g3 = float(4.0 * g1 - np.prod(np.cos(2 * c)))
    return np.array([g1, g2, g3], dtype=float)


def makhlin_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance between the invariant triples of two unitaries."""
    return float(
        np.linalg.norm(makhlin_invariants(a) - makhlin_invariants(b))
    )


def makhlin_loss_to_target(target_invariants: np.ndarray):
    """Return ``loss(U)`` measuring distance to fixed target invariants.

    Factory used by optimizers so the target triple is computed once.
    """
    target = np.asarray(target_invariants, dtype=float)

    def loss(unitary: np.ndarray) -> float:
        return float(np.linalg.norm(makhlin_invariants(unitary) - target))

    return loss


def locally_equivalent(
    a: np.ndarray, b: np.ndarray, atol: float = 1e-6
) -> bool:
    """True when two unitaries differ only by single-qubit gates."""
    return makhlin_distance(a, b) <= atol
