"""Cartan trajectories through the Weyl chamber (paper Fig. 1, Fig. 8d).

A trajectory is the path of Weyl coordinates traced by the accumulated
unitary of a pulse sequence.  Traditional decompositions draw straight
rays (the basis gate) punctuated by interleaved 1Q gates (re-orientation
points); parallel-driven pulses bend the path, reaching targets like CNOT
without stopping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..pulse.schedule import ParallelDriveSchedule
from ..quantum.gates import u3
from ..quantum.weyl import weyl_coordinates
from .parallel_drive import ParallelDriveTemplate, SynthesisResult, synthesize

__all__ = [
    "Trajectory",
    "pulse_trajectory",
    "template_trajectory",
    "cnot_trajectories",
    "swap_trajectories",
]


@dataclass(frozen=True)
class Trajectory:
    """A Weyl-chamber path: per-segment coordinate arrays plus markers."""

    label: str
    segments: tuple[np.ndarray, ...]
    markers: tuple[np.ndarray, ...] = field(default=())

    @property
    def endpoint(self) -> np.ndarray:
        """Final coordinate of the path."""
        return self.segments[-1][-1]

    @property
    def total_points(self) -> int:
        """Number of sampled coordinates across segments."""
        return sum(len(s) for s in self.segments)


def pulse_trajectory(
    schedule: ParallelDriveSchedule,
    prefix: np.ndarray | None = None,
    substeps: int = 12,
) -> tuple[np.ndarray, np.ndarray]:
    """Coordinates along one pulse applied after an accumulated ``prefix``.

    Returns ``(coords, final_unitary)``.
    """
    prefix = np.eye(4, dtype=complex) if prefix is None else prefix
    partials = schedule.partial_unitaries(substeps_per_step=substeps)
    coords = np.array(
        [weyl_coordinates(p @ prefix) for p in partials]
    )
    return coords, partials[-1] @ prefix


def template_trajectory(
    result: SynthesisResult, label: str, substeps: int = 12
) -> Trajectory:
    """Trajectory of a synthesized (possibly parallel-driven) template."""
    template = result.template
    drives, locals_params = template.split_parameters(result.parameters)
    accumulated = np.eye(4, dtype=complex)
    segments: list[np.ndarray] = []
    markers: list[np.ndarray] = []
    for index, drive in enumerate(drives):
        schedule = ParallelDriveSchedule.from_drives(
            gc=template.gc,
            gg=template.gg,
            duration=template.pulse_duration,
            phi_c=float(drive["phi_c"]),
            phi_g=float(drive["phi_g"]),
            eps1=tuple(np.atleast_1d(drive["eps1"])),
            eps2=tuple(np.atleast_1d(drive["eps2"])),
        )
        coords, accumulated = pulse_trajectory(
            schedule, accumulated, substeps
        )
        segments.append(coords)
        if index < len(locals_params):
            angles = locals_params[index]
            local = np.kron(u3(*angles[:3]), u3(*angles[3:]))
            accumulated = local @ accumulated
            markers.append(weyl_coordinates(accumulated))
    return Trajectory(
        label=label, segments=tuple(segments), markers=tuple(markers)
    )


def _synthesized_trajectory(
    target: np.ndarray,
    repetitions: int,
    parallel: bool,
    label: str,
    pulse_duration: float = 0.5,
    seed: int = 7,
    restarts: int = 6,
    max_iterations: int = 4000,
) -> Trajectory:
    # Conversion-only pump scaled so one pulse accumulates
    # theta_c = (pi/2) * pulse_duration (normalized linear speed limit).
    template = ParallelDriveTemplate(
        gc=np.pi / 2,
        gg=0.0,
        pulse_duration=pulse_duration,
        steps_per_pulse=max(1, round(4 * pulse_duration)),
        repetitions=repetitions,
        parallel=parallel,
    )
    result = synthesize(
        template,
        target,
        seed=seed,
        restarts=restarts,
        max_iterations=max_iterations,
        record_history=False,
    )
    if not result.converged:
        raise RuntimeError(
            f"could not synthesize {label} "
            f"(K={repetitions}, parallel={parallel}, loss={result.loss:.2e})"
        )
    return template_trajectory(result, label)


def cnot_trajectories(seed: int = 7) -> dict[str, Trajectory]:
    """Fig. 1 CNOT paths.

    Traditional: two sqrt(iSWAP) legs with an interleaved 1Q stop.
    Parallel: one parallel-driven full iSWAP pulse bending straight to
    CNOT — no intermediate 1Q gate (paper Fig. 1b / Fig. 8d).
    """
    target = np.array([np.pi / 2, 0.0, 0.0])
    return {
        "traditional": _synthesized_trajectory(
            target, repetitions=2, parallel=False, label="CNOT traditional",
            pulse_duration=0.5, seed=seed,
        ),
        "parallel": _synthesized_trajectory(
            target, repetitions=1, parallel=True, label="CNOT parallel",
            pulse_duration=1.0, seed=seed,
        ),
    }


def swap_trajectories(seed: int = 7) -> dict[str, Trajectory]:
    """Fig. 1 SWAP paths.

    Traditional: three sqrt(iSWAP) legs (two 1Q stops).  Parallel: two
    parallel-driven iSWAP pulses (one stop) — the paper's "eliminating
    one set of interspersed 1Q gates in SWAP".
    """
    target = np.array([np.pi / 2, np.pi / 2, np.pi / 2])
    return {
        "traditional": _synthesized_trajectory(
            target, repetitions=3, parallel=False, label="SWAP traditional",
            pulse_duration=0.5, seed=seed,
        ),
        "parallel": _synthesized_trajectory(
            target, repetitions=2, parallel=True, label="SWAP parallel",
            pulse_duration=1.0, seed=seed,
        ),
    }
