"""Continuously variable parallel-drive envelopes (paper future work).

The paper's Sec. V closes by proposing to "expand the flexibility to
handle continuously variable drive parameters, similarly to
optimal-control theory methods".  This module implements that
extension: instead of a handful of piecewise-constant amplitudes, the
1Q drives are smooth truncated Fourier series

``eps(t) = sum_k a_k sin(k pi t / T)``

evaluated on a fine integration grid.  The sine basis pins the envelope
to zero at the pulse edges (hardware-friendly ramps) and a few
harmonics already match the 4-step discrete coverage, numerically
confirming the paper's claim that 4 steps suffice.

Fourier templates satisfy the
:class:`~repro.synthesis.SynthesisBackend` protocol and are registered
as the ``"fourier"`` backend of the synthesis engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kernels.backend import active_backend
from ..pulse.evolution import (
    _batched_piecewise_propagators,
    batched_piecewise_propagators,
)
from ..pulse.hamiltonian import batched_hamiltonians
from ..quantum.gates import u3
from ..quantum.weyl import batched_weyl_coordinates, weyl_coordinates
from .parallel_drive import _batched_local_pairs

__all__ = ["FourierDriveTemplate", "envelope_samples"]


def envelope_samples(
    coefficients: np.ndarray, num_steps: int
) -> np.ndarray:
    """Evaluate a sine-series envelope at step midpoints.

    ``coefficients[k]`` multiplies ``sin((k+1) pi t / T)``; time is
    normalized so the pulse spans ``t in [0, 1]``.
    """
    coefficients = np.asarray(coefficients, dtype=float)
    midpoints = (np.arange(num_steps) + 0.5) / num_steps
    harmonics = np.arange(1, len(coefficients) + 1)
    return np.sin(
        np.pi * np.outer(midpoints, harmonics)
    ) @ coefficients


@dataclass(frozen=True)
class FourierDriveTemplate:
    """K applications of a pulse with smooth Fourier 1Q envelopes.

    Free parameters per application: pump phases ``phi_c, phi_g`` and
    ``num_harmonics`` sine coefficients for each of the two drives;
    plus interior u3 layers between applications, exactly like the
    discrete template.
    """

    gc: float
    gg: float
    pulse_duration: float
    num_harmonics: int = 3
    integration_steps: int = 32
    repetitions: int = 1
    amplitude_scale: float = 2 * np.pi

    def __post_init__(self) -> None:
        if self.pulse_duration <= 0:
            raise ValueError("pulse_duration must be positive")
        if self.num_harmonics < 1:
            raise ValueError("need at least one harmonic")
        if self.integration_steps < 2:
            raise ValueError("integration grid too coarse")
        if self.repetitions < 1:
            raise ValueError("repetitions must be >= 1")

    @property
    def drive_parameters_per_pulse(self) -> int:
        """phi_c, phi_g + two coefficient vectors."""
        return 2 + 2 * self.num_harmonics

    @property
    def num_parameters(self) -> int:
        """Flat parameter-vector length (drives + interior locals)."""
        interior = 6 * (self.repetitions - 1)
        return self.repetitions * self.drive_parameters_per_pulse + interior

    def random_parameters(self, rng: np.random.Generator) -> np.ndarray:
        """Random start: phases uniform, coefficients zero-centered."""
        params = rng.uniform(0, 2 * np.pi, self.num_parameters)
        per = self.drive_parameters_per_pulse
        for rep in range(self.repetitions):
            start = rep * per + 2
            count = 2 * self.num_harmonics
            params[start : start + count] = rng.normal(
                0.0, self.amplitude_scale / 2, count
            )
        return params

    def _pulse_unitary(self, drive_params: np.ndarray) -> np.ndarray:
        phi_c, phi_g = drive_params[:2]
        n = self.num_harmonics
        eps1 = envelope_samples(
            drive_params[2 : 2 + n], self.integration_steps
        )
        eps2 = envelope_samples(
            drive_params[2 + n : 2 + 2 * n], self.integration_steps
        )
        hams = batched_hamiltonians(
            self.gc,
            self.gg,
            np.array(phi_c),
            np.array(phi_g),
            eps1[None, :],
            eps2[None, :],
        )
        dts = np.full(
            self.integration_steps,
            self.pulse_duration / self.integration_steps,
        )
        return batched_piecewise_propagators(hams, dts)[0]

    def unitary(self, params: np.ndarray) -> np.ndarray:
        """Total template propagator."""
        params = np.asarray(params, dtype=float)
        if params.shape != (self.num_parameters,):
            raise ValueError(
                f"expected {self.num_parameters} parameters, got "
                f"{params.shape}"
            )
        per = self.drive_parameters_per_pulse
        cursor = 0
        total = np.eye(4, dtype=complex)
        locals_start = self.repetitions * per
        for rep in range(self.repetitions):
            total = self._pulse_unitary(
                params[cursor : cursor + per]
            ) @ total
            cursor += per
            if rep < self.repetitions - 1:
                angles = params[
                    locals_start + 6 * rep : locals_start + 6 * (rep + 1)
                ]
                total = np.kron(u3(*angles[:3]), u3(*angles[3:])) @ total
        return total

    def batched_unitaries(self, params: np.ndarray) -> np.ndarray:
        """Template unitaries for a ``(N, P)`` parameter stack.

        Vectorizes envelope evaluation, Hamiltonian assembly, and the
        piecewise integration over all rows — one stacked
        eigendecomposition per integration step instead of one per
        start.  Row ``i`` equals ``unitary(params[i])`` up to float
        noise.
        """
        params = np.atleast_2d(np.asarray(params, dtype=float))
        if params.shape[1:] != (self.num_parameters,):
            raise ValueError(
                f"expected (N, {self.num_parameters}) parameters, got "
                f"{params.shape}"
            )
        backend = active_backend()
        count = len(params)
        per = self.drive_parameters_per_pulse
        n = self.num_harmonics
        steps = self.integration_steps
        midpoints = (np.arange(steps) + 0.5) / steps
        harmonics = np.arange(1, n + 1)
        sine_basis = np.sin(np.pi * np.outer(midpoints, harmonics))
        dts = backend.asarray(
            np.full(steps, self.pulse_duration / steps), "float"
        )
        total = backend.copy(
            backend.xp.broadcast_to(
                backend.eye(4, "complex"), (count, 4, 4)
            )
        )
        locals_start = self.repetitions * per
        cursor = 0
        for rep in range(self.repetitions):
            block = params[:, cursor : cursor + per]
            cursor += per
            phi_c, phi_g = block[:, 0], block[:, 1]
            eps1 = block[:, 2 : 2 + n] @ sine_basis.T
            eps2 = block[:, 2 + n : 2 + 2 * n] @ sine_basis.T
            hams = backend.asarray(
                batched_hamiltonians(
                    self.gc, self.gg, phi_c, phi_g, eps1, eps2
                ),
                "complex",
            )
            pulses = _batched_piecewise_propagators(backend, hams, dts)
            total = backend.einsum("nij,njk->nik", pulses, total)
            if rep < self.repetitions - 1:
                angles = params[
                    :, locals_start + 6 * rep : locals_start + 6 * (rep + 1)
                ]
                total = backend.einsum(
                    "nij,njk->nik",
                    backend.asarray(_batched_local_pairs(angles), "complex"),
                    total,
                )
        return backend.to_numpy(total, "complex")

    def coordinates(self, params: np.ndarray) -> np.ndarray:
        """Weyl coordinates of the template unitary."""
        return weyl_coordinates(self.unitary(params))

    def batched_coordinates(self, params: np.ndarray) -> np.ndarray:
        """Weyl coordinates for a parameter stack (one batched sweep)."""
        return batched_weyl_coordinates(self.batched_unitaries(params))
