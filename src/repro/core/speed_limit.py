"""Speed-limit functions and duration scaling (paper Sec. II-C, Alg. 1).

A Speed Limit Function (SLF) bounds the simultaneously applicable
conversion/gain drive strengths ``(gc, gg)``.  A 2Q gate is specified by
accumulated angles ``theta_c = gc * t`` and ``theta_g = gg * t``; scaling
the strengths up to the SLF boundary along the ray ``gg = beta * gc``
(``beta = theta_g / theta_c``) gives the minimum pulse duration

``tmin = theta_c / gc_max``             (Algorithm 1)

All SLFs here are normalized so the fastest iSWAP takes exactly one unit
("a single pulse"): the largest axis intercept equals ``pi/2``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np
from scipy.interpolate import PchipInterpolator
from scipy.optimize import brentq

__all__ = [
    "SpeedLimitFunction",
    "LinearSpeedLimit",
    "SquaredSpeedLimit",
    "CharacterizedSpeedLimit",
    "snail_speed_limit",
    "decomposition_duration",
]

_HALF_PI = np.pi / 2


class SpeedLimitFunction(ABC):
    """Boundary of the feasible ``(gc, gg)`` drive-strength region."""

    #: Human-readable name used in tables.
    name: str = "abstract"

    @property
    @abstractmethod
    def max_conversion(self) -> float:
        """Conversion-only intercept (``gg = 0``)."""

    @property
    @abstractmethod
    def max_gain(self) -> float:
        """Gain-only intercept (``gc = 0``)."""

    @abstractmethod
    def boundary(self, gc: float) -> float:
        """Largest feasible ``gg`` at conversion strength ``gc``."""

    def feasible(self, gc: float, gg: float, atol: float = 1e-9) -> bool:
        """True when the strength pair obeys the speed limit."""
        if gc < -atol or gg < -atol:
            return False
        if gc > self.max_conversion + atol:
            return False
        return gg <= self.boundary(min(gc, self.max_conversion)) + atol

    def max_strengths(self, beta: float) -> tuple[float, float]:
        """Boundary intersection with the ray ``gg = beta * gc``.

        ``beta = inf`` (or a very large value) selects the gain axis.
        """
        if beta < 0:
            raise ValueError("drive-ratio beta must be non-negative")
        if beta == 0:
            return self.max_conversion, 0.0
        if np.isinf(beta):
            return 0.0, self.max_gain

        def excess(gc: float) -> float:
            return self.boundary(gc) - beta * gc

        hi = self.max_conversion
        if excess(hi) >= 0:  # ray exits through the x-intercept wall
            return hi, self.boundary(hi)
        gc_max = brentq(excess, 0.0, hi, xtol=1e-14)
        return float(gc_max), float(beta * gc_max)

    def min_duration(self, theta_c: float, theta_g: float) -> float:
        """Minimum pulse time realizing the accumulated angles (Alg. 1)."""
        theta_c = abs(float(theta_c))
        theta_g = abs(float(theta_g))
        if theta_c == 0 and theta_g == 0:
            return 0.0
        if theta_c == 0:
            return theta_g / self.max_gain
        beta = theta_g / theta_c
        gc_max, _ = self.max_strengths(beta)
        return theta_c / gc_max

    def gate_duration(self, coords: np.ndarray) -> float:
        """Minimum duration of a base-plane gate given Weyl coordinates.

        Uses the conversion-heavy drive assignment
        ``theta_c = (c1 + c2)/2``, ``theta_g = (c1 - c2)/2``; the
        gain-heavy mirror assignment is checked too and the faster of the
        two is returned (the two assignments swap the roles of the pumps).
        """
        c1, c2, c3 = np.asarray(coords, dtype=float)
        if abs(c3) > 1e-7:
            raise ValueError(
                "conversion-gain drives only realize base-plane gates"
            )
        theta_c = (c1 + c2) / 2
        theta_g = (c1 - c2) / 2
        return min(
            self.min_duration(theta_c, theta_g),
            self.min_duration(theta_g, theta_c),
        )


class LinearSpeedLimit(SpeedLimitFunction):
    """Amplitude-additive limit ``gc + gg <= L`` (voltage-like)."""

    name = "linear"

    def __init__(self, limit: float = _HALF_PI):
        if limit <= 0:
            raise ValueError("limit must be positive")
        self.limit = float(limit)

    @property
    def max_conversion(self) -> float:
        return self.limit

    @property
    def max_gain(self) -> float:
        return self.limit

    def boundary(self, gc: float) -> float:
        return max(self.limit - gc, 0.0)


class SquaredSpeedLimit(SpeedLimitFunction):
    """Power-additive limit ``gc^2 + gg^2 <= L^2``."""

    name = "squared"

    def __init__(self, limit: float = _HALF_PI):
        if limit <= 0:
            raise ValueError("limit must be positive")
        self.limit = float(limit)

    @property
    def max_conversion(self) -> float:
        return self.limit

    @property
    def max_gain(self) -> float:
        return self.limit

    def boundary(self, gc: float) -> float:
        if gc >= self.limit:
            return 0.0
        return float(np.sqrt(self.limit**2 - gc**2))


class CharacterizedSpeedLimit(SpeedLimitFunction):
    """SLF interpolated from measured (or simulated) boundary points.

    Normalizes the data so the larger axis intercept equals ``pi/2``
    (fastest iSWAP = 1 pulse), then interpolates with a shape-preserving
    monotone cubic.
    """

    name = "snail"

    def __init__(self, gc_points: np.ndarray, gg_points: np.ndarray):
        gc_points = np.asarray(gc_points, dtype=float)
        gg_points = np.asarray(gg_points, dtype=float)
        if gc_points.ndim != 1 or gc_points.shape != gg_points.shape:
            raise ValueError("boundary points must be matching 1-D arrays")
        if gc_points.size < 3:
            raise ValueError("need at least three boundary points")
        if np.any(np.diff(gc_points) <= 0):
            raise ValueError("gc points must be strictly increasing")
        # Extend the data to the axes when the sweep stops short of them.
        if gc_points[0] > 0:
            slope = (gg_points[1] - gg_points[0]) / (
                gc_points[1] - gc_points[0]
            )
            gc_points = np.concatenate(([0.0], gc_points))
            gg_points = np.concatenate(
                ([gg_points[0] - slope * gc_points[1]], gg_points)
            )
        if gg_points[-1] > 1e-12:
            slope = (gg_points[-1] - gg_points[-2]) / (
                gc_points[-1] - gc_points[-2]
            )
            if slope < 0:
                gc_points = np.concatenate(
                    (gc_points, [gc_points[-1] - gg_points[-1] / slope])
                )
                gg_points = np.concatenate((gg_points, [0.0]))
        intercept = max(gc_points[-1], gg_points[0])
        scale = _HALF_PI / intercept
        self._gc = gc_points * scale
        self._gg = np.maximum(gg_points * scale, 0.0)
        self._interp = PchipInterpolator(
            self._gc, self._gg, extrapolate=False
        )

    @property
    def max_conversion(self) -> float:
        return float(self._gc[-1])

    @property
    def max_gain(self) -> float:
        return float(self._gg[0])

    def boundary(self, gc: float) -> float:
        if gc >= self.max_conversion:
            return 0.0
        if gc <= 0.0:
            return self.max_gain
        return float(max(self._interp(gc), 0.0))


def snail_speed_limit(
    shots: int = 800, seed: int | None = 7
) -> CharacterizedSpeedLimit:
    """Characterized SLF from a simulated SNAIL sweep (Fig. 3c pipeline).

    Runs the synthetic characterization experiment end to end: sweep the
    pumps, threshold the monitoring qubit's ground population, fit and
    normalize the boundary.
    """
    from ..pulse.snail import SNAILModel, fit_boundary

    model = SNAILModel()
    sweep = model.characterization_sweep(shots=shots, seed=seed)
    gc_points, gg_points = fit_boundary(sweep)
    return CharacterizedSpeedLimit(gc_points, gg_points)


def decomposition_duration(
    gate_count: float, basis_duration: float, one_q_duration: float = 0.0
) -> float:
    """Total duration of a K-template (paper Eq. 7).

    ``D = K * tmin + (K + 1) * D[1Q]`` — K basis pulses with 1Q layers
    around and between them.
    """
    if gate_count < 0:
        raise ValueError("gate count must be non-negative")
    if basis_duration < 0 or one_q_duration < 0:
        raise ValueError("durations must be non-negative")
    return gate_count * basis_duration + (gate_count + 1) * one_q_duration
