"""Best-basis search over the conversion–gain continuum (Fig. 5, Fig. 6).

Candidate bases live on drive-ratio rays (iSWAP conversion-only, B, CNOT)
at several pulse fractions.  Each candidate is priced per metric — CNOT,
SWAP, Haar, W(lambda) — using its coverage sets and a speed-limit
function, and the cheapest candidate per metric wins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .conversion_gain import GateFamily, coordinates_for_drive
from .coverage import haar_coordinate_samples
from .scoring import DEFAULT_LAMBDA, weighted_score
from .speed_limit import SpeedLimitFunction


def _engine(engine):
    """Resolve the synthesis engine a search rides (default: piecewise)."""
    if engine is not None:
        return engine
    from ..synthesis.engine import default_engine

    return default_engine()

__all__ = [
    "CandidateBasis",
    "CandidateScores",
    "default_candidates",
    "score_candidate",
    "best_basis_search",
    "fractional_iswap_curve",
]

_HALF_PI = np.pi / 2


@dataclass(frozen=True)
class CandidateBasis:
    """One point of the search grid: a drive-ratio ray and pulse fraction."""

    label: str
    beta: float  # theta_g / theta_c drive ratio
    fraction: float  # of the full pi/2 total rotation

    @property
    def drive_angles(self) -> tuple[float, float]:
        """Accumulated angles (theta_c, theta_g) of one pulse."""
        total = self.fraction * _HALF_PI
        theta_c = total / (1.0 + self.beta)
        return theta_c, total - theta_c

    @property
    def coordinates(self) -> np.ndarray:
        """Weyl coordinates of the candidate gate."""
        return coordinates_for_drive(*self.drive_angles)


@dataclass(frozen=True)
class CandidateScores:
    """Metric costs of one candidate under one SLF / 1Q-duration config."""

    candidate: CandidateBasis
    pulse_time: float
    d_cnot: float
    d_swap: float
    d_haar: float
    d_weighted: float

    def metric(self, name: str) -> float:
        """Look up a metric by name: cnot, swap, haar, or w."""
        return {
            "cnot": self.d_cnot,
            "swap": self.d_swap,
            "haar": self.d_haar,
            "w": self.d_weighted,
        }[name]


def default_candidates() -> list[CandidateBasis]:
    """The search grid: three rays x three pulse fractions."""
    grid = []
    for family, beta in (("iSWAP", 0.0), ("B", 1.0 / 3.0), ("CNOT", 1.0)):
        for fraction in (0.25, 0.5, 1.0):
            grid.append(
                CandidateBasis(
                    label=f"{family}^{fraction:g}", beta=beta,
                    fraction=fraction,
                )
            )
    return grid


def _candidate_kmax(candidate: CandidateBasis) -> int:
    """Template-size cap: enough to cover SWAP's interaction resource.

    SWAP needs a total of 1.5 full-pulse equivalents on the iSWAP ray and
    3 on the CNOT ray; padding by two covers the B ray and Haar tails.
    """
    per_pulse = candidate.fraction
    return int(np.ceil(3.0 / per_pulse)) + 1


#: K[CNOT], K[SWAP] for the full gate of each ray (paper Table I).
_FULL_RAY_COUNTS = {
    0.0: {"CNOT": 2, "SWAP": 3},  # iSWAP ray
    1.0 / 3.0: {"CNOT": 2, "SWAP": 2},  # B ray
    1.0: {"CNOT": 1, "SWAP": 3},  # CNOT ray
}

#: Known fractional counts that beat the fractional-copy upper bound
#: (paper Table I square-root rows).
_FRACTION_COUNTS = {
    (0.0, 0.5): {"CNOT": 2, "SWAP": 3},  # sqrt(iSWAP)
    (1.0 / 3.0, 0.5): {"CNOT": 2, "SWAP": 4},  # sqrt(B)
    (1.0, 0.5): {"CNOT": 2, "SWAP": 6},  # sqrt(CNOT)
}


def _named_counts(candidate: CandidateBasis) -> dict[str, int]:
    """K[CNOT], K[SWAP] for a grid candidate.

    Exact Table-I values at fractions 1 and 1/2; smaller fractions use
    the fractional-copy construction (m copies of the pulse compose
    exactly into the coarser gate on the same ray), which the paper's
    Sec. IV confirms is tight on the iSWAP and CNOT rays.
    """
    if candidate.beta not in _FULL_RAY_COUNTS:
        raise ValueError(f"no named-count rule for ray beta={candidate.beta}")
    if abs(candidate.fraction - 1.0) < 1e-9:
        return dict(_FULL_RAY_COUNTS[candidate.beta])
    if abs(candidate.fraction - 0.5) < 1e-9:
        return dict(_FRACTION_COUNTS[(candidate.beta, 0.5)])
    multiplier = 0.5 / candidate.fraction
    if abs(multiplier - round(multiplier)) > 1e-9:
        raise ValueError(
            f"fraction {candidate.fraction} is not a dyadic sub-fraction"
        )
    half_counts = _FRACTION_COUNTS[(candidate.beta, 0.5)]
    return {
        name: int(round(multiplier)) * count
        for name, count in half_counts.items()
    }


def score_candidate(
    candidate: CandidateBasis,
    slf: SpeedLimitFunction,
    one_q_duration: float,
    haar_samples: np.ndarray | None = None,
    lam: float = DEFAULT_LAMBDA,
    samples_per_k: int = 1500,
    seed: int = 20230302,
    engine=None,
) -> CandidateScores:
    """Duration-based metric costs of one candidate basis.

    Coverage sets ride the synthesis engine (``engine=None`` = the
    process-default piecewise engine, the digest-stable paper path).
    """
    if haar_samples is None:
        haar_samples = haar_coordinate_samples(2000, seed=99)
    theta_c, theta_g = candidate.drive_angles
    # The gain-heavy mirror pulse realizes the same class; price the
    # faster of the two drive assignments (paper plots both rays).
    pulse_time = min(
        slf.min_duration(theta_c, theta_g), slf.min_duration(theta_g, theta_c)
    )
    kmax = _candidate_kmax(candidate)
    coverage = _engine(engine).coverage_set(
        gc=theta_c / candidate.fraction,
        gg=theta_g / candidate.fraction,
        pulse_duration=candidate.fraction,
        kmax=kmax,
        basis_name=candidate.label,
        parallel=False,
        samples_per_k=samples_per_k,
        seed=seed,
        steps_per_pulse=1,
        # Light hull boosting: random sampling alone under-fills small
        # fractional bases' per-K regions, which inflates their Haar
        # costs and would mis-rank Fig. 5/6's near-identity candidates.
        boost_targets=True,
        synthesis_restarts=1,
        synthesis_iterations=400,
    )

    def priced(ks: np.ndarray) -> np.ndarray:
        return ks * pulse_time + (ks + 1) * one_q_duration

    counts = _named_counts(candidate)
    k_haar = np.minimum(coverage.min_k(haar_samples), kmax)
    d_cnot = float(priced(np.array([counts["CNOT"]]))[0])
    d_swap = float(priced(np.array([counts["SWAP"]]))[0])
    d_haar = float(priced(k_haar).mean())
    return CandidateScores(
        candidate=candidate,
        pulse_time=pulse_time,
        d_cnot=d_cnot,
        d_swap=d_swap,
        d_haar=d_haar,
        d_weighted=weighted_score(d_cnot, d_swap, lam),
    )


def best_basis_search(
    slf: SpeedLimitFunction,
    one_q_duration: float,
    candidates: list[CandidateBasis] | None = None,
    haar_samples: np.ndarray | None = None,
    lam: float = DEFAULT_LAMBDA,
    samples_per_k: int = 1500,
    engine=None,
) -> dict[str, CandidateScores]:
    """Best candidate per metric (Fig. 5's dots for one SLF / D[1Q]).

    Returns a mapping ``metric -> winning CandidateScores`` for metrics
    cnot, swap, haar, w.
    """
    candidates = candidates or default_candidates()
    if haar_samples is None:
        haar_samples = haar_coordinate_samples(2000, seed=99)
    engine = _engine(engine)
    scored = [
        score_candidate(
            c, slf, one_q_duration, haar_samples, lam, samples_per_k,
            engine=engine,
        )
        for c in candidates
    ]
    return {
        metric: min(scored, key=lambda s: s.metric(metric))
        for metric in ("cnot", "swap", "haar", "w")
    }


def fractional_iswap_curve(
    one_q_durations: tuple[float, ...] = (0.0, 0.1, 0.25),
    fractions: tuple[float, ...] = (0.25, 0.375, 0.5, 0.75, 1.0),
    haar_samples: np.ndarray | None = None,
    samples_per_k: int = 1500,
    engine=None,
) -> dict[float, list[tuple[float, float]]]:
    """Fig. 6: expected Haar duration vs fractional iSWAP basis.

    Returns, per ``D[1Q]`` value, a list of ``(fraction, E[D[Haar]])``
    points.  Pulse time equals the fraction (conversion-only drive under
    any normalized SLF).
    """
    if haar_samples is None:
        haar_samples = haar_coordinate_samples(2000, seed=99)
    engine = _engine(engine)
    curves: dict[float, list[tuple[float, float]]] = {
        d1q: [] for d1q in one_q_durations
    }
    for fraction in fractions:
        theta_c = fraction * _HALF_PI
        kmax = int(np.ceil(3.0 / fraction)) + 1
        coverage = engine.coverage_set(
            gc=theta_c / fraction,
            gg=0.0,
            pulse_duration=fraction,
            kmax=kmax,
            basis_name=f"iSWAP^{fraction:g}",
            parallel=False,
            samples_per_k=samples_per_k,
            seed=20230302,
            steps_per_pulse=1,
            boost_targets=True,
            synthesis_restarts=1,
            synthesis_iterations=400,
        )
        ks = np.minimum(coverage.min_k(haar_samples), kmax)
        for d1q in one_q_durations:
            expected = float(np.mean(ks * fraction + (ks + 1) * d1q))
            curves[d1q].append((fraction, expected))
    return curves
