"""Gate scoring: decomposition counts and speed-limit-scaled durations.

Implements the paper's scoring functions:

* ``K[UB][UT]`` — basis applications to reach a target (Table I / IV);
* ``E[K[Haar]]`` — Haar-expected template size via coverage sets;
* ``D[UB][UT] = K tmin + (K+1) D[1Q]`` — duration costs (Eq. 7,
  Tables II / III / V);
* ``W(lambda) = lambda D[CNOT] + (1 - lambda) D[SWAP]`` — the
  workload-weighted score (Eq. 6).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..quantum.weyl import named_gate_coordinates
from .coverage import CoverageSet, expected_cost, haar_coordinate_samples
from .decomposition_rules import (
    BASIS_DRIVE_ANGLES,
    NAMED_GATE_COUNTS,
    coverage_for_basis,
)
from .speed_limit import SpeedLimitFunction, decomposition_duration

__all__ = [
    "DEFAULT_LAMBDA",
    "PARALLEL_NAMED_COUNTS",
    "PAPER_BASES",
    "GateCountScore",
    "DurationScore",
    "gate_count_score",
    "duration_score",
    "parallel_gate_count_score",
    "parallel_duration_score",
    "weighted_score",
    "frequency_weighted_score",
    "basis_kmax",
]

#: CNOT fraction fitted from the paper's transpiled benchmarks (Fig. 3b):
#: lambda = 731 / (731 + 828).
DEFAULT_LAMBDA = 731 / (731 + 828)

#: The six comparison bases of the paper's tables.
PAPER_BASES = ("iSWAP", "sqrt_iSWAP", "CNOT", "sqrt_CNOT", "B", "sqrt_B")

#: Paper Table IV named counts under parallel drive.
PARALLEL_NAMED_COUNTS: dict[str, dict[str, int]] = {
    "iSWAP": {"CNOT": 1, "SWAP": 2},
    "sqrt_iSWAP": {"CNOT": 2, "SWAP": 3},
    "CNOT": {"CNOT": 1, "SWAP": 3},
    "sqrt_CNOT": {"CNOT": 2, "SWAP": 6},
    "B": {"CNOT": 1, "SWAP": 2},
    "sqrt_B": {"CNOT": 2, "SWAP": 4},
}

#: Template sizes needed for full chamber coverage per basis.
_KMAX: dict[str, int] = {
    "iSWAP": 3,
    "sqrt_iSWAP": 3,
    "CNOT": 3,
    "sqrt_CNOT": 6,
    "B": 2,
    "sqrt_B": 4,
}


def basis_kmax(basis_name: str) -> int:
    """Largest template size needed for 100% coverage of a paper basis."""
    return _KMAX[basis_name]


def weighted_score(
    cnot_cost: float, swap_cost: float, lam: float = DEFAULT_LAMBDA
) -> float:
    """W(lambda): CNOT/SWAP-weighted cost (paper Eq. 6)."""
    if not 0.0 <= lam <= 1.0:
        raise ValueError("lambda must be in [0, 1]")
    return lam * cnot_cost + (1.0 - lam) * swap_cost


@dataclass(frozen=True)
class GateCountScore:
    """One row of Table I / Table IV."""

    basis: str
    k_cnot: int
    k_swap: int
    expected_haar: float
    k_weighted: float


@dataclass(frozen=True)
class DurationScore:
    """One row of Table II / III / V."""

    basis: str
    d_basis: float
    d_cnot: float
    d_swap: float
    expected_haar: float
    d_weighted: float


def _haar_expected(
    coverage: CoverageSet, haar_samples: np.ndarray
) -> float:
    """Haar-expected K; tolerates a small uncovered tail.

    Hull estimation slightly under-fills the chamber corners, so up to 2%
    of samples may fall outside the kmax region; those are priced at
    ``kmax + 1`` (conservative).  A larger uncovered fraction indicates a
    genuinely insufficient ``kmax`` and raises.
    """
    expected, fractions = coverage.expected_haar_k(haar_samples)
    if fractions[-1] > 0.02:
        raise RuntimeError(
            f"{coverage.basis_name}: {fractions[-1]:.1%} of Haar samples "
            f"uncovered at kmax={coverage.kmax}; increase kmax"
        )
    return expected


def gate_count_score(
    basis_name: str,
    haar_samples: np.ndarray | None = None,
    lam: float = DEFAULT_LAMBDA,
    samples_per_k: int = 3000,
    backend: str = "piecewise",
) -> GateCountScore:
    """Table I row: decomposition gate counts for one basis."""
    counts = NAMED_GATE_COUNTS[basis_name]
    if haar_samples is None:
        haar_samples = haar_coordinate_samples(4000, seed=99)
    coverage = coverage_for_basis(
        basis_name,
        kmax=basis_kmax(basis_name),
        parallel=False,
        samples_per_k=samples_per_k,
        backend=backend,
    )
    return GateCountScore(
        basis=basis_name,
        k_cnot=counts["CNOT"],
        k_swap=counts["SWAP"],
        expected_haar=_haar_expected(coverage, haar_samples),
        k_weighted=weighted_score(counts["CNOT"], counts["SWAP"], lam),
    )


def duration_score(
    basis_name: str,
    slf: SpeedLimitFunction,
    one_q_duration: float = 0.0,
    haar_samples: np.ndarray | None = None,
    lam: float = DEFAULT_LAMBDA,
    samples_per_k: int = 3000,
    backend: str = "piecewise",
) -> DurationScore:
    """Table II / III row: speed-limit-scaled durations (Alg. 1 + Eq. 7)."""
    counts = NAMED_GATE_COUNTS[basis_name]
    if haar_samples is None:
        haar_samples = haar_coordinate_samples(4000, seed=99)
    tmin = slf.gate_duration(named_gate_coordinates(basis_name))
    coverage = coverage_for_basis(
        basis_name,
        kmax=basis_kmax(basis_name),
        parallel=False,
        samples_per_k=samples_per_k,
        backend=backend,
    )
    ks = coverage.min_k(haar_samples)
    if np.mean(ks > coverage.kmax) > 0.02:
        raise RuntimeError(f"{basis_name}: insufficient kmax for Haar score")
    ks = np.minimum(ks, coverage.kmax)
    expected = float(
        np.mean(
            ks * tmin + (ks + 1) * one_q_duration
        )
    )
    d_cnot = decomposition_duration(counts["CNOT"], tmin, one_q_duration)
    d_swap = decomposition_duration(counts["SWAP"], tmin, one_q_duration)
    return DurationScore(
        basis=basis_name,
        d_basis=tmin,
        d_cnot=d_cnot,
        d_swap=d_swap,
        expected_haar=expected,
        d_weighted=weighted_score(d_cnot, d_swap, lam),
    )


def parallel_gate_count_score(
    basis_name: str,
    haar_samples: np.ndarray | None = None,
    lam: float = DEFAULT_LAMBDA,
    samples_per_k: int = 3000,
    backend: str = "piecewise",
) -> GateCountScore:
    """Table IV row: gate counts with parallel-drive extended coverage."""
    counts = PARALLEL_NAMED_COUNTS[basis_name]
    if haar_samples is None:
        haar_samples = haar_coordinate_samples(4000, seed=99)
    ks = _parallel_min_k(basis_name, haar_samples, samples_per_k, backend)
    kmax = basis_kmax(basis_name)
    uncovered = float(np.mean(ks > kmax))
    if uncovered > 0.02:
        raise RuntimeError(
            f"{basis_name}: {uncovered:.1%} of Haar samples uncovered"
        )
    return GateCountScore(
        basis=basis_name,
        k_cnot=counts["CNOT"],
        k_swap=counts["SWAP"],
        expected_haar=float(ks.mean()),
        k_weighted=weighted_score(counts["CNOT"], counts["SWAP"], lam),
    )


def _parallel_min_k(
    basis_name: str,
    haar_samples: np.ndarray,
    samples_per_k: int,
    backend: str = "piecewise",
) -> np.ndarray:
    """Per-sample minimal K under parallel drive.

    Setting every drive amplitude to zero recovers the traditional
    template, so the extended region provably contains the standard one;
    taking the element-wise minimum over both hull estimates enforces
    that containment against sampling noise.
    """
    kmax = basis_kmax(basis_name)
    extended = coverage_for_basis(
        basis_name, kmax=kmax, parallel=True, samples_per_k=samples_per_k,
        backend=backend,
    )
    standard = coverage_for_basis(
        basis_name, kmax=kmax, parallel=False, samples_per_k=samples_per_k,
        backend=backend,
    )
    return np.minimum(
        extended.min_k(haar_samples), standard.min_k(haar_samples)
    )


def _is_iswap_family_basis(basis_name: str) -> bool:
    theta_c, theta_g = BASIS_DRIVE_ANGLES[basis_name]
    return theta_g < 1e-9 or theta_c < 1e-9


def parallel_duration_score(
    basis_name: str,
    one_q_duration: float = 0.25,
    haar_samples: np.ndarray | None = None,
    lam: float = DEFAULT_LAMBDA,
    samples_per_k: int = 3000,
    backend: str = "piecewise",
) -> DurationScore:
    """Table V row: durations with parallel drive and joint templates.

    Uses the linear speed limit (the paper's Table V configuration):
    every full-rotation basis pulse costs 1.0, square roots 0.5.

    Named targets follow the paper's joint rules:

    * CNOT costs one full-gate pulse time plus two 1Q layers for every
      basis (fractional copies absorb interior layers; Fig. 10/12);
    * SWAP costs 1.5 pulses for iSWAP-family bases (Fig. 11, quantized
      to the basis pulse), and the Table IV count of full-gate pulses
      otherwise.

    The Haar expectation prices each sample at the cheapest covering
    template among the fractional basis's own extended regions and the
    full gate's (the paper's "joint spanning regions").
    """
    if haar_samples is None:
        haar_samples = haar_coordinate_samples(4000, seed=99)
    theta_c, theta_g = BASIS_DRIVE_ANGLES[basis_name]
    fraction = (theta_c + theta_g) / (np.pi / 2)  # 1.0 or 0.5
    quantum = fraction  # linear SLF: pulse time equals rotation fraction

    def quantize(total: float) -> float:
        steps = max(1, int(np.ceil(total / quantum - 1e-9)))
        return steps * quantum

    full_counts = PARALLEL_NAMED_COUNTS[_full_basis_name(basis_name)]
    # CNOT: one full-gate pulse worth of 2Q time, interior absorbed.
    d_cnot = quantize(1.0) + 2 * one_q_duration
    if _is_iswap_family_basis(basis_name):
        swap_pulse = quantize(1.5)
        swap_layers = 3
    else:
        swap_pulse = quantize(float(full_counts["SWAP"]))
        swap_layers = full_counts["SWAP"] + 1
    d_swap = swap_pulse + swap_layers * one_q_duration

    # Joint Haar expectation: fractional templates plus full-gate
    # templates (two fractional copies each, interior absorbed).
    candidates = []
    frac_kmax = basis_kmax(basis_name)
    for parallel in (True, False):
        # The standard regions are provable subsets of the extended ones
        # (zero drive amplitudes); including both makes the joint score
        # robust to hull sampling noise.
        frac_cov = coverage_for_basis(
            basis_name,
            kmax=frac_kmax,
            parallel=parallel,
            samples_per_k=samples_per_k,
            backend=backend,
        )
        for k in range(1, frac_cov.kmax + 1):
            cost = k * quantum + (k + 1) * one_q_duration
            candidates.append((frac_cov.coverage_for(k), cost))
    full_name = _full_basis_name(basis_name)
    if full_name != basis_name:
        for parallel in (True, False):
            full_cov = coverage_for_basis(
                full_name,
                kmax=basis_kmax(full_name),
                parallel=parallel,
                samples_per_k=samples_per_k,
                backend=backend,
            )
            for k in range(1, full_cov.kmax + 1):
                cost = k * 1.0 + (k + 1) * one_q_duration
                candidates.append((full_cov.coverage_for(k), cost))
    frac_cov = coverage_for_basis(
        basis_name, kmax=frac_kmax, parallel=True,
        samples_per_k=samples_per_k, backend=backend,
    )
    expected = expected_cost(
        candidates,
        haar_samples,
        fallback_cost=(frac_cov.kmax + 1) * quantum
        + (frac_cov.kmax + 2) * one_q_duration,
    )
    return DurationScore(
        basis=basis_name,
        d_basis=quantum,
        d_cnot=d_cnot,
        d_swap=d_swap,
        expected_haar=expected,
        d_weighted=weighted_score(d_cnot, d_swap, lam),
    )


def _full_basis_name(basis_name: str) -> str:
    """The full-rotation gate of a (possibly fractional) basis family."""
    return basis_name.removeprefix("sqrt_")


def frequency_weighted_score(
    target_coordinates: np.ndarray,
    frequencies: np.ndarray,
    duration_of,
) -> float:
    """Full workload-weighted cost ``V(UB)`` (paper Eq. 5).

    Unlike :func:`weighted_score` (the two-point W(lambda) simplification
    of Eq. 6), this prices *every* observed target class by its
    decomposition duration, weighted by its empirical frequency — e.g.
    the Fig. 3b shot-chart histogram of a transpiled benchmark suite.

    Args:
        target_coordinates: ``(N, 3)`` Weyl coordinates of the observed
            2Q target gates.
        frequencies: length-N non-negative weights (need not sum to 1).
        duration_of: callable mapping a coordinate triple to the basis's
            decomposition duration (e.g. ``rules.duration``), or a rule
            engine itself — engines are priced through their batched
            ``durations_many`` kernel in one call instead of per class.
    """
    target_coordinates = np.atleast_2d(
        np.asarray(target_coordinates, dtype=float)
    )
    frequencies = np.asarray(frequencies, dtype=float)
    if len(frequencies) != len(target_coordinates):
        raise ValueError("one frequency per target class required")
    if np.any(frequencies < 0):
        raise ValueError("frequencies must be non-negative")
    total = frequencies.sum()
    if total <= 0:
        raise ValueError("at least one positive frequency required")
    batched = getattr(duration_of, "durations_many", None)
    if callable(batched):
        costs = np.asarray(batched(target_coordinates), dtype=float)
    else:
        costs = np.array(
            [duration_of(coords) for coords in target_coordinates]
        )
    return float(np.dot(frequencies, costs) / total)
