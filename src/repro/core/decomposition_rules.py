"""Decomposition rules: basis templates for target 2Q gates.

Two rule engines mirror the paper's transpilation flows:

* :class:`BaselineSqrtISwapRules` — the prior-work analytical sqrt(iSWAP)
  decomposition (paper ref. [24]): K pulses of 0.5 with all K+1
  interleaved 1Q layers present.
* :class:`ParallelSqrtISwapRules` — the paper's optimized flow (Sec. IV):
  a 0.25-duration calibrated pulse quantum (the 4th-root iSWAP),
  fractional CX-family pulses with parallel drive (Fig. 10), the
  iSWAP+sqrt(iSWAP) joint SWAP rule (Fig. 11), and extended-coverage
  lookups for generic targets.

The named gate counts of the paper's Table I are kept in
:data:`NAMED_GATE_COUNTS`; each entry is backed by an explicit
construction proof in ``tests/test_decomposition_rules.py`` (numerical
synthesis for small K, exact fractional-copy matrix identities for the
rest).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from uuid import uuid4

import numpy as np

from ..kernels.membership import membership_matrix
from ..quantum.weyl import named_gate_coordinates
from .conversion_gain import drive_angles_for_coordinates
from .coverage import CoverageSet, KCoverage

__all__ = [
    "TemplateSpec",
    "DecompositionRules",
    "BaselineSqrtISwapRules",
    "ParallelSqrtISwapRules",
    "NAMED_GATE_COUNTS",
    "RULE_ENGINES",
    "build_rules",
    "canonical_basis_name",
    "coverage_for_basis",
    "BASIS_DRIVE_ANGLES",
]

_TOL = 1e-6
_HALF_PI = np.pi / 2

#: Paper Table I: gates (K) to reach named targets, per basis.  "haar"
#: entries are reproduced numerically, not tabulated here.
NAMED_GATE_COUNTS: dict[str, dict[str, int]] = {
    "iSWAP": {"CNOT": 2, "SWAP": 3},
    "sqrt_iSWAP": {"CNOT": 2, "SWAP": 3},
    "CNOT": {"CNOT": 1, "SWAP": 3},
    "sqrt_CNOT": {"CNOT": 2, "SWAP": 6},
    "B": {"CNOT": 2, "SWAP": 2},
    "sqrt_B": {"CNOT": 2, "SWAP": 4},
}

#: Per-pulse drive angles (theta_c, theta_g) of each named basis.
BASIS_DRIVE_ANGLES: dict[str, tuple[float, float]] = {
    name: drive_angles_for_coordinates(named_gate_coordinates(name))
    for name in NAMED_GATE_COUNTS
}


@dataclass(frozen=True)
class TemplateSpec:
    """A concrete decomposition template: pulses plus 1Q layers.

    ``pulses`` holds per-application 2Q pulse durations in normalized
    units; ``layer_count`` is the number of (parallel-on-both-qubits) 1Q
    layers the template needs.  The default interleaved form has
    ``layer_count == len(pulses) + 1`` (Eq. 7); parallel-drive rules
    absorb interior layers and carry fewer.
    """

    pulses: tuple[float, ...]
    layer_count: int
    description: str = ""

    def __post_init__(self) -> None:
        if any(p <= 0 for p in self.pulses):
            raise ValueError("pulse durations must be positive")
        if self.layer_count < 0:
            raise ValueError("layer count must be non-negative")

    @property
    def k(self) -> int:
        """Number of basis-pulse applications."""
        return len(self.pulses)

    @property
    def total_pulse_duration(self) -> float:
        """Summed 2Q pulse time."""
        return float(sum(self.pulses))

    def duration(self, one_q_duration: float) -> float:
        """Total template duration (generalized Eq. 7)."""
        return self.total_pulse_duration + self.layer_count * one_q_duration


def _is_identity_class(coords: np.ndarray) -> bool:
    return bool(np.all(np.abs(coords) < _TOL))


def _is_cx_family(coords: np.ndarray) -> bool:
    """CAN(a, 0, 0) for 0 < a <= pi/2 (controlled-phase family)."""
    return bool(
        coords[0] > _TOL
        and abs(coords[1]) < _TOL
        and abs(coords[2]) < _TOL
    )


def _is_iswap_family(coords: np.ndarray) -> bool:
    """CAN(a, a, 0): partial iSWAP ray."""
    return bool(
        coords[0] > _TOL
        and abs(coords[0] - coords[1]) < _TOL
        and abs(coords[2]) < _TOL
    )


def _is_swap(coords: np.ndarray) -> bool:
    return bool(np.all(np.abs(coords - _HALF_PI) < _TOL))


class DecompositionRules:
    """Interface of a basis-translation rule engine."""

    name = "abstract"

    def __init__(self, one_q_duration: float = 0.25):
        if one_q_duration < 0:
            raise ValueError("one_q_duration must be non-negative")
        self.one_q_duration = float(one_q_duration)

    def template_for(self, coords: np.ndarray) -> TemplateSpec:
        """Cheapest known template reaching the coordinate class."""
        raise NotImplementedError

    def templates_for_many(self, coords: np.ndarray) -> list[TemplateSpec]:
        """Templates for a stacked ``(N, 3)`` coordinate array.

        Row ``i`` of the result equals ``template_for(coords[i])``
        exactly; engines override this with a vectorized classification
        so a circuit's 2Q blocks are templated in one batched kernel
        call.  The base implementation is the scalar loop.
        """
        coords = np.atleast_2d(np.asarray(coords, dtype=float))
        return [self.template_for(row) for row in coords]

    def duration(self, coords: np.ndarray) -> float:
        """Total decomposition duration for a target class."""
        return self.template_for(coords).duration(self.one_q_duration)

    def durations_many(self, coords: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`duration` over stacked coordinate rows."""
        return np.array(
            [
                spec.duration(self.one_q_duration)
                for spec in self.templates_for_many(coords)
            ]
        )

    @property
    def cache_token(self) -> str:
        """Key prefix identifying this engine *and its parameters*.

        Decomposition caches must key on this, not ``name``: two
        instances of the same class with different durations or quanta
        produce different templates for the same coordinates.
        Subclasses append every constructor parameter that affects
        template selection.
        """
        return f"{self.name}|1q{self.one_q_duration!r}"


#: Lowercase/underscore spellings hardware targets use for basis gates,
#: mapped onto the canonical table names above.
_BASIS_ALIASES: dict[str, str] = {
    name.lower(): name for name in NAMED_GATE_COUNTS
} | {"sqrt_iswap": "sqrt_iSWAP", "iswap": "iSWAP", "b": "B", "sqrt_b": "sqrt_B"}


def canonical_basis_name(name: str) -> str:
    """Resolve a basis-gate spelling (e.g. a target's ``sqrt_iswap``).

    Hardware targets store lowercase gate names; the coverage and
    drive-angle tables use the paper's spelling.  Raises ``KeyError``
    with the known vocabulary on an unknown gate.
    """
    if name in BASIS_DRIVE_ANGLES:
        return name
    try:
        return _BASIS_ALIASES[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown 2Q basis gate {name!r}; known: "
            f"{sorted(BASIS_DRIVE_ANGLES)}"
        ) from None


@lru_cache(maxsize=32)
def coverage_for_basis(
    basis_name: str,
    kmax: int,
    parallel: bool,
    samples_per_k: int = 3000,
    seed: int = 20230302,
    steps_per_pulse: int = 4,
    pulse_duration: float | None = None,
    backend: str = "piecewise",
) -> CoverageSet:
    """Build (and memoize) the coverage set of a named basis gate.

    The per-pulse duration defaults to the linear-SLF normalized value:
    full-rotation gates take 1.0, square roots 0.5.  ``backend`` selects
    the synthesis-engine template family (a string so the memo stays
    hashable); the default rides the digest-stable piecewise engine.
    """
    from ..synthesis.engine import default_engine

    basis_name = canonical_basis_name(basis_name)
    theta_c, theta_g = BASIS_DRIVE_ANGLES[basis_name]
    if pulse_duration is None:
        pulse_duration = (theta_c + theta_g) / _HALF_PI
    return default_engine(backend).coverage_set(
        gc=theta_c / pulse_duration,
        gg=theta_g / pulse_duration,
        pulse_duration=pulse_duration,
        kmax=kmax,
        basis_name=basis_name,
        parallel=parallel,
        samples_per_k=samples_per_k,
        seed=seed,
        steps_per_pulse=max(1, round(steps_per_pulse * pulse_duration)),
    )


class BaselineSqrtISwapRules(DecompositionRules):
    """Prior-work analytical sqrt(iSWAP) templates (all 1Q layers kept)."""

    name = "baseline_sqrt_iswap"

    def __init__(
        self,
        one_q_duration: float = 0.25,
        pulse_duration: float = 0.5,
        coverage: CoverageSet | None = None,
    ):
        super().__init__(one_q_duration)
        self.pulse_duration = float(pulse_duration)
        self._coverage = coverage
        # Injected coverage sets have no stable identity, so instances
        # carrying one get a unique token: they memoize per instance but
        # never share (or poison) the persistent cross-run keyspace.
        self._coverage_token = "std" if coverage is None else uuid4().hex

    @property
    def cache_token(self) -> str:
        """Engine identity including the per-pulse duration."""
        return (
            f"{super().cache_token}|p{self.pulse_duration!r}"
            f"|c{self._coverage_token}"
        )

    @property
    def coverage(self) -> CoverageSet:
        """Standard-mode sqrt(iSWAP) coverage (built lazily)."""
        if self._coverage is None:
            self._coverage = coverage_for_basis(
                "sqrt_iSWAP", kmax=3, parallel=False
            )
        return self._coverage

    def template_for(self, coords: np.ndarray) -> TemplateSpec:
        coords = np.asarray(coords, dtype=float)
        if _is_identity_class(coords):
            return TemplateSpec((), 1, "local gate")
        sqrt_point = named_gate_coordinates("sqrt_iSWAP")
        if np.allclose(coords, sqrt_point, atol=_TOL):
            k = 1
        elif bool(self.coverage.coverage_for(2).contains(coords)[0]):
            k = 2
        else:
            k = 3
        return TemplateSpec(
            (self.pulse_duration,) * k, k + 1, f"{k}x sqrt(iSWAP)"
        )

    def templates_for_many(self, coords: np.ndarray) -> list[TemplateSpec]:
        """Batched :meth:`template_for`: one K=2 membership query for all
        generic rows instead of one per gate."""
        coords = np.atleast_2d(np.asarray(coords, dtype=float))
        count = len(coords)
        if count == 0:
            return []
        identity = np.all(np.abs(coords) < _TOL, axis=1)
        sqrt_point = named_gate_coordinates("sqrt_iSWAP")
        single = (
            np.isclose(coords, sqrt_point, atol=_TOL).all(axis=1)
            & ~identity
        )
        generic = ~identity & ~single
        in_k2 = np.zeros(count, dtype=bool)
        if generic.any():
            in_k2[generic] = self.coverage.coverage_for(2).contains(
                coords[generic]
            )
        specs: list[TemplateSpec] = []
        for index in range(count):
            if identity[index]:
                specs.append(TemplateSpec((), 1, "local gate"))
                continue
            k = 1 if single[index] else (2 if in_k2[index] else 3)
            specs.append(
                TemplateSpec(
                    (self.pulse_duration,) * k, k + 1, f"{k}x sqrt(iSWAP)"
                )
            )
        return specs


class ParallelSqrtISwapRules(DecompositionRules):
    """The paper's optimized flow: fractional pulses plus parallel drive.

    Pulse durations are quantized to the calibrated quantum (0.25, the
    4th-root iSWAP of Sec. IV).  Family shortcuts come first; generic
    targets fall back to extended-coverage membership, choosing the
    cheapest covering template.
    """

    name = "parallel_sqrt_iswap"

    def __init__(
        self,
        one_q_duration: float = 0.25,
        pulse_quantum: float = 0.25,
        iswap_parallel_k1: KCoverage | None = None,
        sqrt_parallel_k1: KCoverage | None = None,
        sqrt_parallel_k2: KCoverage | None = None,
    ):
        super().__init__(one_q_duration)
        if pulse_quantum <= 0:
            raise ValueError("pulse_quantum must be positive")
        self.pulse_quantum = float(pulse_quantum)
        self._iswap_k1 = iswap_parallel_k1
        self._sqrt_k1 = sqrt_parallel_k1
        self._sqrt_k2 = sqrt_parallel_k2
        injected = (iswap_parallel_k1, sqrt_parallel_k1, sqrt_parallel_k2)
        # As for the baseline rules: injected regions mean a private,
        # non-persistent keyspace rather than a silently shared one.
        self._coverage_token = (
            "std" if all(k is None for k in injected) else uuid4().hex
        )

    @property
    def cache_token(self) -> str:
        """Engine identity including the calibrated pulse quantum."""
        return (
            f"{super().cache_token}|q{self.pulse_quantum!r}"
            f"|c{self._coverage_token}"
        )

    # -- lazily built extended coverage regions ---------------------------

    @property
    def iswap_parallel_k1(self) -> KCoverage:
        """K=1 extended region of the parallel-driven full iSWAP pulse."""
        if self._iswap_k1 is None:
            self._iswap_k1 = coverage_for_basis(
                "iSWAP", kmax=1, parallel=True
            ).coverage_for(1)
        return self._iswap_k1

    @property
    def sqrt_parallel_k1(self) -> KCoverage:
        """K=1 extended region of the parallel-driven sqrt(iSWAP) pulse."""
        if self._sqrt_k1 is None:
            self._sqrt_k1 = coverage_for_basis(
                "sqrt_iSWAP", kmax=1, parallel=True
            ).coverage_for(1)
        return self._sqrt_k1

    @property
    def sqrt_parallel_k2(self) -> KCoverage:
        """K=2 extended region of parallel-driven sqrt(iSWAP) templates."""
        if self._sqrt_k2 is None:
            self._sqrt_k2 = coverage_for_basis(
                "sqrt_iSWAP", kmax=2, parallel=True
            ).coverage_for(2)
        return self._sqrt_k2

    # -- template selection -------------------------------------------------

    def _quantize(self, duration: float) -> float:
        """Round a pulse duration up to the calibrated quantum."""
        steps = max(1, int(np.ceil(duration / self.pulse_quantum - 1e-9)))
        return steps * self.pulse_quantum

    def template_for(self, coords: np.ndarray) -> TemplateSpec:
        coords = np.asarray(coords, dtype=float)
        if _is_identity_class(coords):
            return TemplateSpec((), 1, "local gate")
        if _is_swap(coords):
            # Fig. 11: parallel-driven iSWAP then sqrt(iSWAP), interior
            # layers retained (paper keeps them pending a tighter fit).
            return TemplateSpec((1.0, 0.5), 3, "iSWAP + sqrt(iSWAP) joint")
        if _is_iswap_family(coords):
            # Fractional copies of the pulse itself: no interior layers.
            total = self._quantize(coords[0] / _HALF_PI)
            return TemplateSpec(
                (total,), 2, f"{total:.2f} direct partial iSWAP"
            )
        if _is_cx_family(coords):
            # Fig. 10 / Fig. 12: a partial iSWAP pulse of the same total
            # rotation with parallel drive realizes the partial CNOT; the
            # quantum-resource bound makes this duration optimal.
            total = self._quantize(coords[0] / _HALF_PI)
            return TemplateSpec(
                (total,), 2, f"{total:.2f} parallel-driven CX-family"
            )
        candidates: list[tuple[float, TemplateSpec]] = []
        if bool(self.sqrt_parallel_k1.contains(coords)[0]):
            spec = TemplateSpec((0.5,), 2, "1x parallel sqrt(iSWAP)")
            candidates.append((spec.duration(self.one_q_duration), spec))
        if bool(self.iswap_parallel_k1.contains(coords)[0]):
            spec = TemplateSpec((1.0,), 2, "1x parallel iSWAP")
            candidates.append((spec.duration(self.one_q_duration), spec))
        if bool(self.sqrt_parallel_k2.contains(coords)[0]):
            spec = TemplateSpec((0.5, 0.5), 3, "2x parallel sqrt(iSWAP)")
            candidates.append((spec.duration(self.one_q_duration), spec))
        if candidates:
            return min(candidates, key=lambda pair: pair[0])[1]
        # Full coverage backstop: three sqrt(iSWAP) pulses span everything.
        return TemplateSpec((0.5, 0.5, 0.5), 4, "3x sqrt(iSWAP)")

    def templates_for_many(self, coords: np.ndarray) -> list[TemplateSpec]:
        """Batched :meth:`template_for` over stacked coordinate rows.

        Family shortcuts are classified with vectorized masks (applied
        in the scalar method's priority order), and the three extended
        coverage regions each see one membership query for all generic
        rows.  Candidate selection replicates the scalar stable-min:
        regions are priced in the same order, and the first cheapest
        covering template wins.
        """
        coords = np.atleast_2d(np.asarray(coords, dtype=float))
        count = len(coords)
        if count == 0:
            return []
        c1, c2, c3 = coords[:, 0], coords[:, 1], coords[:, 2]
        identity = np.all(np.abs(coords) < _TOL, axis=1)
        swap = np.all(np.abs(coords - _HALF_PI) < _TOL, axis=1) & ~identity
        iswap_family = (
            (c1 > _TOL)
            & (np.abs(c1 - c2) < _TOL)
            & (np.abs(c3) < _TOL)
            & ~identity
            & ~swap
        )
        cx_family = (
            (c1 > _TOL)
            & (np.abs(c2) < _TOL)
            & (np.abs(c3) < _TOL)
            & ~identity
            & ~swap
            & ~iswap_family
        )
        generic = ~(identity | swap | iswap_family | cx_family)

        # Fractional-family pulse totals, quantized like _quantize.
        steps = np.maximum(
            1, np.ceil(c1 / _HALF_PI / self.pulse_quantum - 1e-9).astype(int)
        )
        totals = steps * self.pulse_quantum

        # Generic rows: one batched membership query per extended region,
        # in the scalar candidate order (sqrt K=1, iSWAP K=1, sqrt K=2).
        region_specs = (
            TemplateSpec((0.5,), 2, "1x parallel sqrt(iSWAP)"),
            TemplateSpec((1.0,), 2, "1x parallel iSWAP"),
            TemplateSpec((0.5, 0.5), 3, "2x parallel sqrt(iSWAP)"),
        )
        choice = np.full(count, -1, dtype=int)
        if generic.any():
            regions = (
                self.sqrt_parallel_k1,
                self.iswap_parallel_k1,
                self.sqrt_parallel_k2,
            )
            member = membership_matrix(regions, coords[generic])
            prices = np.array(
                [spec.duration(self.one_q_duration) for spec in region_specs]
            )
            priced = np.where(member.T, prices[None, :], np.inf)
            picks = np.argmin(priced, axis=1)  # first-cheapest, like min()
            picks[~member.any(axis=0)] = -1
            choice[generic] = picks

        backstop = TemplateSpec((0.5, 0.5, 0.5), 4, "3x sqrt(iSWAP)")
        specs: list[TemplateSpec] = []
        for index in range(count):
            if identity[index]:
                specs.append(TemplateSpec((), 1, "local gate"))
            elif swap[index]:
                specs.append(
                    TemplateSpec(
                        (1.0, 0.5), 3, "iSWAP + sqrt(iSWAP) joint"
                    )
                )
            elif iswap_family[index]:
                total = float(totals[index])
                specs.append(
                    TemplateSpec(
                        (total,), 2, f"{total:.2f} direct partial iSWAP"
                    )
                )
            elif cx_family[index]:
                total = float(totals[index])
                specs.append(
                    TemplateSpec(
                        (total,), 2, f"{total:.2f} parallel-driven CX-family"
                    )
                )
            elif choice[index] >= 0:
                specs.append(region_specs[choice[index]])
            else:
                specs.append(backstop)
        return specs


#: Rule-engine names resolvable by :func:`build_rules` (the vocabulary
#: jobs and hardware targets share).
RULE_ENGINES = ("baseline", "parallel")


def build_rules(name: str, one_q_duration: float = 0.25) -> DecompositionRules:
    """Construct a rule engine by suite name.

    The single factory behind ``CompileJob.rules`` validation, the batch
    engine's coverage warming, and hardware targets' device-specific
    engines — one place to extend when a new engine lands.
    """
    if name == "baseline":
        return BaselineSqrtISwapRules(one_q_duration=one_q_duration)
    if name == "parallel":
        return ParallelSqrtISwapRules(one_q_duration=one_q_duration)
    raise ValueError(f"unknown rules {name!r}; known: {RULE_ENGINES}")
