"""Explicit two-qubit gate synthesis into basis-gate circuits.

The transpiler's duration study only needs template *shapes* (the paper
does the same), but a deployable compiler must emit concrete gates.
This module closes that gap: given a target 2Q unitary it produces an
executable :class:`~repro.circuits.circuit.QuantumCircuit` over
``{u3, sqrt_iswap-pulse}`` whose simulated unitary matches the target to
machine/optimizer precision.

Strategy:

* targets on the canonical rays are built analytically from the KAK
  decomposition (exact);
* generic targets run the Nelder–Mead template search in Makhlin space,
  then solve the exterior local gates in closed form via a final KAK of
  the residual (exact once the class matches).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.gate import Gate
from ..quantum.euler import u3_angles
from ..quantum.gates import canonical_gate
from ..quantum.kak import kak_decompose
from ..quantum.linalg import (
    allclose_up_to_global_phase,
    dagger,
    kron_factor_4x4,
    unitary_infidelity,
)
from ..quantum.weyl import weyl_coordinates
from .parallel_drive import ParallelDriveTemplate, synthesize

__all__ = ["SynthesizedCircuit", "synthesize_circuit", "exterior_locals"]

_HALF_PI = np.pi / 2


@dataclass(frozen=True)
class SynthesizedCircuit:
    """A concrete basis-gate circuit realizing a 2Q target."""

    circuit: QuantumCircuit
    target: np.ndarray
    infidelity: float
    pulse_count: int

    def verify(self, atol: float = 1e-6) -> bool:
        """Re-simulate and compare against the target."""
        from ..circuits.simulation import circuit_unitary

        return allclose_up_to_global_phase(
            circuit_unitary(self.circuit), self.target, atol=atol
        )


def exterior_locals(
    achieved: np.ndarray, target: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Solve the exterior 1Q gates mapping ``achieved`` onto ``target``.

    Both must be in the same local-equivalence class.  Returns
    ``(k1l, k2l, k1r, k2r)`` with
    ``target ~ (k1l ⊗ k2l) achieved (k1r ⊗ k2r)`` up to global phase.
    """
    kak_target = kak_decompose(target)
    kak_achieved = kak_decompose(achieved)
    if not np.allclose(
        kak_target.coordinates, kak_achieved.coordinates, atol=1e-5
    ):
        raise ValueError(
            "achieved unitary is not locally equivalent to the target: "
            f"{kak_achieved.coordinates} vs {kak_target.coordinates}"
        )
    # target = Lt CAN Rt, achieved = La CAN Ra  =>
    # target = (Lt La†) achieved (Ra† Rt).
    left = kak_target.left_local @ dagger(kak_achieved.left_local)
    right = dagger(kak_achieved.right_local) @ kak_target.right_local
    _, k1l, k2l = kron_factor_4x4(left)
    _, k1r, k2r = kron_factor_4x4(right)
    return k1l, k2l, k1r, k2r


def _append_local_pair(
    circuit: QuantumCircuit, k1: np.ndarray, k2: np.ndarray
) -> None:
    for qubit, factor in enumerate((k1, k2)):
        theta, phi, lam = u3_angles(factor)
        circuit.u3(theta, phi, lam, qubit)


def _append_pulse(circuit: QuantumCircuit, fraction: float) -> None:
    """One conversion-only pulse of the given iSWAP fraction."""
    angle = fraction * _HALF_PI
    circuit.append(
        Gate(
            "can",
            (0, 1),
            params=(angle, angle, 0.0),
            duration=fraction,
        )
    )


def _analytic_iswap_family(target: np.ndarray) -> QuantumCircuit | None:
    """Exact synthesis for iSWAP-ray targets (fractional copies)."""
    coords = weyl_coordinates(target)
    if abs(coords[0] - coords[1]) > 1e-9 or coords[2] > 1e-9:
        return None
    fraction = coords[0] / _HALF_PI
    circuit = QuantumCircuit(2, "iswap_family")
    kak = kak_decompose(target)
    _append_local_pair(circuit, kak.k1r, kak.k2r)
    if fraction > 1e-9:
        _append_pulse(circuit, fraction)
    _append_local_pair(circuit, kak.k1l, kak.k2l)
    return circuit


def synthesize_circuit(
    target: np.ndarray,
    max_pulses: int = 3,
    seed: int = 11,
    tolerance: float = 1e-7,
) -> SynthesizedCircuit:
    """Synthesize a concrete sqrt(iSWAP)-pulse circuit for a 2Q target.

    Raises:
        RuntimeError: when no template of up to ``max_pulses`` half
            pulses converges to the target class.
    """
    target = np.asarray(target, dtype=complex)
    circuit = _analytic_iswap_family(target)
    if circuit is not None:
        pulses = sum(1 for g in circuit if g.name == "can")
        achieved = _simulate(circuit)
        return SynthesizedCircuit(
            circuit=circuit,
            target=target,
            infidelity=unitary_infidelity(achieved, target),
            pulse_count=pulses,
        )

    last_error: Exception | None = None
    for k in range(1, max_pulses + 1):
        template = ParallelDriveTemplate(
            gc=_HALF_PI,
            gg=0.0,
            pulse_duration=0.5,
            steps_per_pulse=2,
            repetitions=k,
            parallel=False,
        )
        result = synthesize(
            template,
            target,
            seed=seed,
            restarts=6,
            max_iterations=4000,
            tolerance=tolerance,
            record_history=False,
        )
        if not result.converged:
            continue
        try:
            return _assemble(template, result.parameters, target)
        except ValueError as error:  # residual class drift
            last_error = error
            continue
    raise RuntimeError(
        f"no sqrt(iSWAP) template with K <= {max_pulses} reached the "
        f"target class {np.round(weyl_coordinates(target), 4)}"
        + (f" ({last_error})" if last_error else "")
    )


def _assemble(
    template: ParallelDriveTemplate,
    parameters: np.ndarray,
    target: np.ndarray,
) -> SynthesizedCircuit:
    """Turn converged template parameters into an explicit circuit."""
    from ..quantum.gates import u3 as u3_matrix

    achieved = template.unitary(parameters)
    k1l, k2l, k1r, k2r = exterior_locals(achieved, target)
    _, locals_params = template.split_parameters(parameters)

    circuit = QuantumCircuit(2, "synthesized")
    _append_local_pair(circuit, k1r, k2r)
    for index in range(template.repetitions):
        _append_pulse(circuit, template.pulse_duration)
        if index < len(locals_params):
            angles = locals_params[index]
            circuit.u3(*angles[:3], 0)
            circuit.u3(*angles[3:], 1)
    _append_local_pair(circuit, k1l, k2l)

    simulated = _simulate(circuit)
    infidelity = unitary_infidelity(simulated, target)
    return SynthesizedCircuit(
        circuit=circuit,
        target=target,
        infidelity=infidelity,
        pulse_count=template.repetitions,
    )


def _simulate(circuit: QuantumCircuit) -> np.ndarray:
    from ..circuits.simulation import circuit_unitary

    return circuit_unitary(circuit)
