"""Parallel-driven basis-gate templates and numerical synthesis.

Implements the paper's Sec. III machinery:

* :class:`ParallelDriveTemplate` — K applications of a conversion–gain
  pulse with per-step 1Q drive amplitudes (Eq. 9) and interleaved 1Q
  gates (the decomposition template of Fig. 8a);
* fast batched random sampling of template unitaries / Weyl coordinates
  (the "Randomly Generate Coverage Points" phase of Alg. 2);
* :func:`synthesize` — re-exported from
  :mod:`repro.synthesis.engine`, where the Nelder–Mead training core
  now lives behind the pluggable :class:`~repro.synthesis.SynthesisEngine`
  (the "Train for Exterior Coordinates" phase, and Fig. 8b–c's
  convergence experiment).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kernels.backend import active_backend
from ..pulse.evolution import (
    _batched_piecewise_propagators,
    batched_piecewise_propagators,
)
from ..pulse.hamiltonian import batched_hamiltonians
from ..quantum.gates import u3
from ..quantum.random import as_rng, random_local_pairs_batch
from ..quantum.weyl import batched_weyl_coordinates, weyl_coordinates
from ..synthesis.engine import SynthesisResult, synthesize

__all__ = [
    "ParallelDriveTemplate",
    "SynthesisResult",
    "synthesize",
    "sample_template_coordinates",
]


def _batched_u3(
    theta: np.ndarray, phi: np.ndarray, lam: np.ndarray
) -> np.ndarray:
    """Stacked U3 matrices for angle vectors of shape ``(N,)``."""
    c, s = np.cos(theta / 2), np.sin(theta / 2)
    out = np.empty(theta.shape + (2, 2), dtype=complex)
    out[..., 0, 0] = c
    out[..., 0, 1] = -np.exp(1j * lam) * s
    out[..., 1, 0] = np.exp(1j * phi) * s
    out[..., 1, 1] = np.exp(1j * (phi + lam)) * c
    return out


def _batched_local_pairs(angles: np.ndarray) -> np.ndarray:
    """``kron(u3, u3)`` stacks from ``(N, 6)`` interior-layer angles."""
    left = _batched_u3(angles[:, 0], angles[:, 1], angles[:, 2])
    right = _batched_u3(angles[:, 3], angles[:, 4], angles[:, 5])
    return np.einsum("nab,ncd->nacbd", left, right).reshape(-1, 4, 4)


@dataclass(frozen=True)
class ParallelDriveTemplate:
    """K applications of a parallel-driven conversion–gain pulse.

    Free parameters (per application): pump phases ``phi_c, phi_g`` and
    per-step drive amplitudes ``eps1, eps2``; plus a 1Q layer (u3 on each
    qubit, 6 angles) between consecutive applications.  Exterior 1Q gates
    are omitted — the synthesis loss (Makhlin invariants) is insensitive
    to them, exactly as in the paper.

    Args:
        gc, gg: pump strengths (already scaled to the speed limit).
        pulse_duration: duration of one application, normalized units.
        steps_per_pulse: piecewise-constant 1Q-drive steps per pulse
            (``D[2Q]/D[1Q]``; the paper uses 4 for a full pulse).
        repetitions: K, the number of basis applications.
        parallel: when False, the 1Q drives are frozen at zero and the
            template reduces to the traditional interleaved form.
    """

    gc: float
    gg: float
    pulse_duration: float
    steps_per_pulse: int = 4
    repetitions: int = 1
    parallel: bool = True

    def __post_init__(self) -> None:
        if self.pulse_duration <= 0:
            raise ValueError("pulse_duration must be positive")
        if self.steps_per_pulse < 1:
            raise ValueError("steps_per_pulse must be >= 1")
        if self.repetitions < 1:
            raise ValueError("repetitions must be >= 1")

    @property
    def drive_parameters_per_pulse(self) -> int:
        """phi_c, phi_g + two amplitude tracks."""
        if not self.parallel:
            return 0
        return 2 + 2 * self.steps_per_pulse

    @property
    def num_parameters(self) -> int:
        """Length of the flat parameter vector."""
        interior = 6 * (self.repetitions - 1)
        return self.repetitions * self.drive_parameters_per_pulse + interior

    @property
    def step_duration(self) -> float:
        """Duration of one piecewise-constant step."""
        return self.pulse_duration / self.steps_per_pulse

    def split_parameters(
        self, params: np.ndarray
    ) -> tuple[list[dict], list[np.ndarray]]:
        """Split a flat vector into per-pulse drives and interior locals."""
        params = np.asarray(params, dtype=float)
        if params.shape != (self.num_parameters,):
            raise ValueError(
                f"expected {self.num_parameters} parameters, got {params.shape}"
            )
        drives = []
        cursor = 0
        for _ in range(self.repetitions):
            if self.parallel:
                steps = self.steps_per_pulse
                drives.append(
                    {
                        "phi_c": params[cursor],
                        "phi_g": params[cursor + 1],
                        "eps1": params[cursor + 2 : cursor + 2 + steps],
                        "eps2": params[
                            cursor + 2 + steps : cursor + 2 + 2 * steps
                        ],
                    }
                )
                cursor += self.drive_parameters_per_pulse
            else:
                drives.append(
                    {
                        "phi_c": 0.0,
                        "phi_g": 0.0,
                        "eps1": np.zeros(self.steps_per_pulse),
                        "eps2": np.zeros(self.steps_per_pulse),
                    }
                )
        locals_params = [
            params[cursor + 6 * i : cursor + 6 * (i + 1)]
            for i in range(self.repetitions - 1)
        ]
        return drives, locals_params

    def pulse_unitary(self, drive: dict) -> np.ndarray:
        """Propagator of a single parallel-driven application."""
        hams = batched_hamiltonians(
            self.gc,
            self.gg,
            np.array(drive["phi_c"]),
            np.array(drive["phi_g"]),
            np.asarray(drive["eps1"], float)[None, :],
            np.asarray(drive["eps2"], float)[None, :],
        )
        dts = np.full(self.steps_per_pulse, self.step_duration)
        return batched_piecewise_propagators(hams, dts)[0]

    def unitary(self, params: np.ndarray) -> np.ndarray:
        """Total template unitary for a flat parameter vector."""
        drives, locals_params = self.split_parameters(params)
        total = np.eye(4, dtype=complex)
        for index, drive in enumerate(drives):
            total = self.pulse_unitary(drive) @ total
            if index < len(locals_params):
                angles = locals_params[index]
                local = np.kron(u3(*angles[:3]), u3(*angles[3:]))
                total = local @ total
        return total

    def batched_unitaries(self, params: np.ndarray) -> np.ndarray:
        """Template unitaries for a ``(N, P)`` parameter stack.

        Vectorizes the whole evaluation — Hamiltonian assembly, batched
        piecewise propagation, interior local layers — so a multi-start
        training sweep prices every start in one pass (the engine's
        :meth:`~repro.synthesis.SynthesisEngine.synthesize_multistart`).
        Row ``i`` equals ``unitary(params[i])`` up to float noise.

        Hamiltonian assembly stays on the host (cheap index writes);
        the propagation and accumulation contractions run on the active
        array backend, transferring once per repetition at this edge.
        """
        params = np.atleast_2d(np.asarray(params, dtype=float))
        if params.shape[1:] != (self.num_parameters,):
            raise ValueError(
                f"expected (N, {self.num_parameters}) parameters, got "
                f"{params.shape}"
            )
        backend = active_backend()
        count = len(params)
        steps = self.steps_per_pulse
        dts = backend.asarray(
            np.full(steps, self.step_duration), "float"
        )
        total = backend.copy(
            backend.xp.broadcast_to(
                backend.eye(4, "complex"), (count, 4, 4)
            )
        )
        cursor = 0
        locals_start = self.repetitions * self.drive_parameters_per_pulse
        for rep in range(self.repetitions):
            if self.parallel:
                phi_c = params[:, cursor]
                phi_g = params[:, cursor + 1]
                eps1 = params[:, cursor + 2 : cursor + 2 + steps]
                eps2 = params[:, cursor + 2 + steps : cursor + 2 + 2 * steps]
                cursor += self.drive_parameters_per_pulse
            else:
                phi_c = phi_g = np.zeros(count)
                eps1 = eps2 = np.zeros((count, steps))
            hams = backend.asarray(
                batched_hamiltonians(
                    self.gc, self.gg, phi_c, phi_g, eps1, eps2
                ),
                "complex",
            )
            pulses = _batched_piecewise_propagators(backend, hams, dts)
            total = backend.einsum("nij,njk->nik", pulses, total)
            if rep < self.repetitions - 1:
                angles = params[
                    :, locals_start + 6 * rep : locals_start + 6 * (rep + 1)
                ]
                locals_batch = backend.asarray(
                    _batched_local_pairs(angles), "complex"
                )
                total = backend.einsum("nij,njk->nik", locals_batch, total)
        return backend.to_numpy(total, "complex")

    def coordinates(self, params: np.ndarray) -> np.ndarray:
        """Weyl coordinates of the template unitary."""
        return weyl_coordinates(self.unitary(params))

    def random_parameters(
        self,
        rng: np.random.Generator,
        eps_bound: float = 2 * np.pi,
    ) -> np.ndarray:
        """Uniform random parameters (paper bounds: all in ``(0, 2 pi)``)."""
        params = rng.uniform(0.0, 2 * np.pi, size=self.num_parameters)
        if self.parallel and eps_bound != 2 * np.pi:
            drives_len = self.drive_parameters_per_pulse
            for rep in range(self.repetitions):
                start = rep * drives_len + 2
                params[start : start + 2 * self.steps_per_pulse] = rng.uniform(
                    0.0, eps_bound, size=2 * self.steps_per_pulse
                )
        return params


def sample_template_coordinates(
    template: ParallelDriveTemplate,
    count: int,
    seed: int | np.random.Generator | None = None,
    eps_bound: float = 2 * np.pi,
) -> np.ndarray:
    """Batched random sampling of template Weyl coordinates.

    Vectorizes the whole pipeline — Hamiltonian assembly, piecewise
    propagation, interleaved Haar-random locals, coordinate extraction —
    so Alg. 2's N=3000 sampling phase runs in well under a second.

    Random draws stay on the host RNG (draw order is part of the seeded
    contract); Hamiltonian assembly stays on the host too (cheap index
    writes).  The propagation and accumulation contractions run on the
    active array backend, transferring once per repetition at this
    edge — the same split :meth:`ParallelDriveTemplate.batched_unitaries`
    uses, so the coverage point-cloud build rides a GPU backend end to
    end.  Under the numpy backend every step is a literal pass-through,
    keeping sampled clouds bit-identical to the historical path.
    """
    if count < 1:
        raise ValueError("count must be positive")
    rng = as_rng(seed)
    backend = active_backend()
    steps = template.steps_per_pulse
    total = backend.copy(
        backend.xp.broadcast_to(
            backend.eye(4, "complex"), (count, 4, 4)
        )
    )
    dts = backend.asarray(
        np.full(steps, template.step_duration), "float"
    )
    for rep in range(template.repetitions):
        if template.parallel:
            phi_c = rng.uniform(0, 2 * np.pi, count)
            phi_g = rng.uniform(0, 2 * np.pi, count)
            eps1 = rng.uniform(0, eps_bound, (count, steps))
            eps2 = rng.uniform(0, eps_bound, (count, steps))
        else:
            phi_c = phi_g = np.zeros(count)
            eps1 = eps2 = np.zeros((count, steps))
        hams = backend.asarray(
            batched_hamiltonians(
                template.gc, template.gg, phi_c, phi_g, eps1, eps2
            ),
            "complex",
        )
        pulses = _batched_piecewise_propagators(backend, hams, dts)
        total = backend.einsum("nij,njk->nik", pulses, total)
        if rep < template.repetitions - 1:
            locals_batch = backend.asarray(
                random_local_pairs_batch(count, rng), "complex"
            )
            total = backend.einsum("nij,njk->nik", locals_batch, total)
    return batched_weyl_coordinates(backend.to_numpy(total, "complex"))
