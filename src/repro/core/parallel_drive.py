"""Parallel-driven basis-gate templates and numerical synthesis.

Implements the paper's Sec. III machinery:

* :class:`ParallelDriveTemplate` — K applications of a conversion–gain
  pulse with per-step 1Q drive amplitudes (Eq. 9) and interleaved 1Q
  gates (the decomposition template of Fig. 8a);
* fast batched random sampling of template unitaries / Weyl coordinates
  (the "Randomly Generate Coverage Points" phase of Alg. 2);
* :func:`synthesize` — Nelder–Mead optimization of the template's free
  parameters against a Makhlin-invariant loss (the "Train for Exterior
  Coordinates" phase, and Fig. 8b–c's convergence experiment).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import minimize

from ..pulse.evolution import batched_piecewise_propagators
from ..quantum.gates import u3
from ..quantum.makhlin import makhlin_from_coordinates, makhlin_invariants
from ..quantum.random import as_rng, random_local_pairs_batch
from ..quantum.weyl import batched_weyl_coordinates, weyl_coordinates

__all__ = [
    "ParallelDriveTemplate",
    "SynthesisResult",
    "synthesize",
    "sample_template_coordinates",
]

# Matrix-element index patterns for vectorized Hamiltonian assembly.
_XI_INDICES = ((0, 2), (2, 0), (1, 3), (3, 1))  # X on qubit 0
_IX_INDICES = ((0, 1), (1, 0), (2, 3), (3, 2))  # X on qubit 1


def _batched_hamiltonians(
    gc: float,
    gg: float,
    phi_c: np.ndarray,
    phi_g: np.ndarray,
    eps1: np.ndarray,
    eps2: np.ndarray,
) -> np.ndarray:
    """Assemble Eq. 9 Hamiltonians for stacked parameters.

    ``phi_c``/``phi_g`` broadcast against the leading axes of
    ``eps1``/``eps2`` (shape ``(..., steps)``); returns
    ``(..., steps, 4, 4)``.
    """
    eps1 = np.asarray(eps1, dtype=float)
    eps2 = np.asarray(eps2, dtype=float)
    phi_c = np.broadcast_to(np.asarray(phi_c, float)[..., None], eps1.shape)
    phi_g = np.broadcast_to(np.asarray(phi_g, float)[..., None], eps1.shape)
    shape = eps1.shape + (4, 4)
    ham = np.zeros(shape, dtype=complex)
    # Conversion block {|01>, |10>}.
    ham[..., 2, 1] = gc * np.exp(1j * phi_c)
    ham[..., 1, 2] = gc * np.exp(-1j * phi_c)
    # Gain block {|00>, |11>}.
    ham[..., 0, 3] = gg * np.exp(1j * phi_g)
    ham[..., 3, 0] = gg * np.exp(-1j * phi_g)
    for row, col in _XI_INDICES:
        ham[..., row, col] += eps1
    for row, col in _IX_INDICES:
        ham[..., row, col] += eps2
    return ham


@dataclass(frozen=True)
class ParallelDriveTemplate:
    """K applications of a parallel-driven conversion–gain pulse.

    Free parameters (per application): pump phases ``phi_c, phi_g`` and
    per-step drive amplitudes ``eps1, eps2``; plus a 1Q layer (u3 on each
    qubit, 6 angles) between consecutive applications.  Exterior 1Q gates
    are omitted — the synthesis loss (Makhlin invariants) is insensitive
    to them, exactly as in the paper.

    Args:
        gc, gg: pump strengths (already scaled to the speed limit).
        pulse_duration: duration of one application, normalized units.
        steps_per_pulse: piecewise-constant 1Q-drive steps per pulse
            (``D[2Q]/D[1Q]``; the paper uses 4 for a full pulse).
        repetitions: K, the number of basis applications.
        parallel: when False, the 1Q drives are frozen at zero and the
            template reduces to the traditional interleaved form.
    """

    gc: float
    gg: float
    pulse_duration: float
    steps_per_pulse: int = 4
    repetitions: int = 1
    parallel: bool = True

    def __post_init__(self) -> None:
        if self.pulse_duration <= 0:
            raise ValueError("pulse_duration must be positive")
        if self.steps_per_pulse < 1:
            raise ValueError("steps_per_pulse must be >= 1")
        if self.repetitions < 1:
            raise ValueError("repetitions must be >= 1")

    @property
    def drive_parameters_per_pulse(self) -> int:
        """phi_c, phi_g + two amplitude tracks."""
        if not self.parallel:
            return 0
        return 2 + 2 * self.steps_per_pulse

    @property
    def num_parameters(self) -> int:
        """Length of the flat parameter vector."""
        interior = 6 * (self.repetitions - 1)
        return self.repetitions * self.drive_parameters_per_pulse + interior

    @property
    def step_duration(self) -> float:
        """Duration of one piecewise-constant step."""
        return self.pulse_duration / self.steps_per_pulse

    def split_parameters(
        self, params: np.ndarray
    ) -> tuple[list[dict], list[np.ndarray]]:
        """Split a flat vector into per-pulse drives and interior locals."""
        params = np.asarray(params, dtype=float)
        if params.shape != (self.num_parameters,):
            raise ValueError(
                f"expected {self.num_parameters} parameters, got {params.shape}"
            )
        drives = []
        cursor = 0
        for _ in range(self.repetitions):
            if self.parallel:
                steps = self.steps_per_pulse
                drives.append(
                    {
                        "phi_c": params[cursor],
                        "phi_g": params[cursor + 1],
                        "eps1": params[cursor + 2 : cursor + 2 + steps],
                        "eps2": params[
                            cursor + 2 + steps : cursor + 2 + 2 * steps
                        ],
                    }
                )
                cursor += self.drive_parameters_per_pulse
            else:
                drives.append(
                    {
                        "phi_c": 0.0,
                        "phi_g": 0.0,
                        "eps1": np.zeros(self.steps_per_pulse),
                        "eps2": np.zeros(self.steps_per_pulse),
                    }
                )
        locals_params = [
            params[cursor + 6 * i : cursor + 6 * (i + 1)]
            for i in range(self.repetitions - 1)
        ]
        return drives, locals_params

    def pulse_unitary(self, drive: dict) -> np.ndarray:
        """Propagator of a single parallel-driven application."""
        hams = _batched_hamiltonians(
            self.gc,
            self.gg,
            np.array(drive["phi_c"]),
            np.array(drive["phi_g"]),
            np.asarray(drive["eps1"], float)[None, :],
            np.asarray(drive["eps2"], float)[None, :],
        )
        dts = np.full(self.steps_per_pulse, self.step_duration)
        return batched_piecewise_propagators(hams, dts)[0]

    def unitary(self, params: np.ndarray) -> np.ndarray:
        """Total template unitary for a flat parameter vector."""
        drives, locals_params = self.split_parameters(params)
        total = np.eye(4, dtype=complex)
        for index, drive in enumerate(drives):
            total = self.pulse_unitary(drive) @ total
            if index < len(locals_params):
                angles = locals_params[index]
                local = np.kron(u3(*angles[:3]), u3(*angles[3:]))
                total = local @ total
        return total

    def coordinates(self, params: np.ndarray) -> np.ndarray:
        """Weyl coordinates of the template unitary."""
        return weyl_coordinates(self.unitary(params))

    def random_parameters(
        self,
        rng: np.random.Generator,
        eps_bound: float = 2 * np.pi,
    ) -> np.ndarray:
        """Uniform random parameters (paper bounds: all in ``(0, 2 pi)``)."""
        params = rng.uniform(0.0, 2 * np.pi, size=self.num_parameters)
        if self.parallel and eps_bound != 2 * np.pi:
            drives_len = self.drive_parameters_per_pulse
            for rep in range(self.repetitions):
                start = rep * drives_len + 2
                params[start : start + 2 * self.steps_per_pulse] = rng.uniform(
                    0.0, eps_bound, size=2 * self.steps_per_pulse
                )
        return params


def sample_template_coordinates(
    template: ParallelDriveTemplate,
    count: int,
    seed: int | np.random.Generator | None = None,
    eps_bound: float = 2 * np.pi,
) -> np.ndarray:
    """Batched random sampling of template Weyl coordinates.

    Vectorizes the whole pipeline — Hamiltonian assembly, piecewise
    propagation, interleaved Haar-random locals, coordinate extraction —
    so Alg. 2's N=3000 sampling phase runs in well under a second.
    """
    if count < 1:
        raise ValueError("count must be positive")
    rng = as_rng(seed)
    steps = template.steps_per_pulse
    total = np.broadcast_to(
        np.eye(4, dtype=complex), (count, 4, 4)
    ).copy()
    dts = np.full(steps, template.step_duration)
    for rep in range(template.repetitions):
        if template.parallel:
            phi_c = rng.uniform(0, 2 * np.pi, count)
            phi_g = rng.uniform(0, 2 * np.pi, count)
            eps1 = rng.uniform(0, eps_bound, (count, steps))
            eps2 = rng.uniform(0, eps_bound, (count, steps))
        else:
            phi_c = phi_g = np.zeros(count)
            eps1 = eps2 = np.zeros((count, steps))
        hams = _batched_hamiltonians(
            template.gc, template.gg, phi_c, phi_g, eps1, eps2
        )
        pulses = batched_piecewise_propagators(hams, dts)
        total = np.einsum("nij,njk->nik", pulses, total)
        if rep < template.repetitions - 1:
            locals_batch = random_local_pairs_batch(count, rng)
            total = np.einsum("nij,njk->nik", locals_batch, total)
    return batched_weyl_coordinates(total)


@dataclass
class SynthesisResult:
    """Outcome of a Nelder–Mead template synthesis run."""

    template: ParallelDriveTemplate
    target_invariants: np.ndarray
    parameters: np.ndarray
    loss: float
    converged: bool
    loss_history: list[float] = field(default_factory=list)
    coordinate_history: list[np.ndarray] = field(default_factory=list)

    @property
    def unitary(self) -> np.ndarray:
        """The synthesized template unitary."""
        return self.template.unitary(self.parameters)

    @property
    def coordinates(self) -> np.ndarray:
        """Weyl coordinates of the synthesized unitary."""
        return weyl_coordinates(self.unitary)


def synthesize(
    template: ParallelDriveTemplate,
    target: np.ndarray,
    seed: int | np.random.Generator | None = None,
    restarts: int = 4,
    max_iterations: int = 2000,
    tolerance: float = 1e-8,
    record_history: bool = True,
) -> SynthesisResult:
    """Optimize template parameters toward a target's equivalence class.

    Args:
        target: either a 4x4 unitary or a coordinate triple ``(c1,c2,c3)``.
        restarts: independent Nelder–Mead starts (best result returned).
        record_history: keep the loss / coordinate training path
            (paper Fig. 8b–c; also feeds Alg. 2's hull boosting).
    """
    target = np.asarray(target)
    if target.shape == (4, 4):
        target_invariants = makhlin_invariants(target)
    elif target.shape == (3,):
        target_invariants = makhlin_from_coordinates(target)
    else:
        raise ValueError("target must be a 4x4 unitary or 3 coordinates")
    rng = as_rng(seed)

    history_loss: list[float] = []
    history_coords: list[np.ndarray] = []

    def loss_fn(params: np.ndarray) -> float:
        unitary = template.unitary(params)
        value = float(
            np.linalg.norm(makhlin_invariants(unitary) - target_invariants)
        )
        if record_history:
            history_loss.append(value)
            history_coords.append(weyl_coordinates(unitary))
        return value

    if template.num_parameters == 0:
        # Fully constrained template (K=1, no parallel drive): nothing to
        # optimize, just evaluate the fixed pulse.
        params = np.zeros(0)
        value = loss_fn(params)
        return SynthesisResult(
            template=template,
            target_invariants=target_invariants,
            parameters=params,
            loss=value,
            converged=value < tolerance,
            loss_history=history_loss,
            coordinate_history=history_coords,
        )

    best_params: np.ndarray | None = None
    best_loss = np.inf
    for _ in range(max(restarts, 1)):
        start = template.random_parameters(rng)
        result = minimize(
            loss_fn,
            start,
            method="Nelder-Mead",
            options={
                "maxiter": max_iterations,
                "fatol": tolerance * 1e-2,
                "xatol": 1e-10,
            },
        )
        if result.fun < best_loss:
            best_loss = float(result.fun)
            best_params = np.asarray(result.x)
        if best_loss < tolerance:
            break
    assert best_params is not None
    return SynthesisResult(
        template=template,
        target_invariants=target_invariants,
        parameters=best_params,
        loss=best_loss,
        converged=best_loss < tolerance,
        loss_history=history_loss,
        coordinate_history=history_coords,
    )
