"""Coverage sets: which gates a K-template spans (paper Figs. 4, 9; Alg. 2).

A coverage set records, for each template size K, the region of the Weyl
chamber reachable by K applications of a basis gate with interleaved
(and optionally parallel-driven) 1Q gates.  Regions are estimated
numerically, exactly as the paper's Algorithm 2:

1. sample many random template instantiations and collect coordinates;
2. run the Nelder–Mead synthesizer toward exterior targets
   (I, CNOT, iSWAP, SWAP) and keep every coordinate along the training
   path;
3. split points into the left/right chamber halves (``c1 <= pi/2``) to
   preserve convexity and take convex hulls;
4. score membership with Delaunay triangulations (with dimension fallback
   for degenerate regions such as iSWAP's K=2 base plane).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np
from scipy.spatial import ConvexHull, Delaunay, QhullError

from ..kernels.membership import first_covering_k
from ..quantum.random import as_rng, haar_unitaries_batch
from ..quantum.weyl import batched_weyl_coordinates

__all__ = [
    "RegionHull",
    "KCoverage",
    "CoverageSet",
    "build_coverage_set",
    "coverage_cache_key",
    "haar_coordinate_samples",
    "expected_cost",
    "cache_enabled",
    "default_cache_dir",
]


def default_cache_dir() -> Path:
    """Directory for persisted coverage point clouds.

    Overridable via ``REPRO_CACHE_DIR``; defaults to
    ``~/.cache/repro-coverage``.  The sqlite-backed
    :class:`~repro.service.coverage_store.CoverageStore` lives here (as
    did the legacy per-key ``.npz`` archives it migrates from).  Hull
    construction from cached points takes milliseconds, so persisting
    the raw clouds makes repeated test and benchmark runs cheap.
    """
    override = os.environ.get("REPRO_CACHE_DIR")
    base = Path(override) if override else Path.home() / ".cache" / "repro-coverage"
    base.mkdir(parents=True, exist_ok=True)
    return base


def cache_enabled() -> bool:
    """Whether the on-disk point-cloud cache is active.

    Setting ``REPRO_COVERAGE_CACHE`` to any of ``0`` / ``false`` /
    ``off`` / ``no`` (case-insensitive, surrounding whitespace ignored)
    disables reads and writes (CI uses this to force cold builds); any
    other value, or unset, leaves it on.
    """
    value = os.environ.get("REPRO_COVERAGE_CACHE")
    if value is None:
        return True
    return value.strip().lower() not in {"0", "false", "off", "no"}

_HALF_PI = np.pi / 2
#: Synthesis anchors for hull boosting: the paper's four exterior points
#: plus boundary gates random sampling reaches only asymptotically (B, the
#: CNOT-SWAP edge midpoint and its right-half mirror, and sqrt(SWAP)).
_EXTERIOR_TARGETS: tuple[tuple[str, tuple[float, float, float]], ...] = (
    ("I", (0.0, 0.0, 0.0)),
    ("CNOT", (_HALF_PI, 0.0, 0.0)),
    ("iSWAP", (_HALF_PI, _HALF_PI, 0.0)),
    ("SWAP", (_HALF_PI, _HALF_PI, _HALF_PI)),
    ("B", (_HALF_PI, np.pi / 4, 0.0)),
    ("CNOT-SWAP-mid", (_HALF_PI, np.pi / 4, np.pi / 4)),
    ("mirror-mid", (3 * np.pi / 4, np.pi / 4, np.pi / 4)),
    ("sqrt_SWAP", (np.pi / 4, np.pi / 4, np.pi / 4)),
)


class RegionHull:
    """Point-cloud convex hull with degenerate-dimension fallback.

    Supports full 3-D regions, planar regions (e.g. the chamber base
    plane), line segments (e.g. the CNOT family), and single points.
    """

    def __init__(self, points: np.ndarray, tol: float = 1e-4):
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError("expected an (N, 3) coordinate array")
        if len(points) == 0:
            raise ValueError("region needs at least one point")
        self.tol = tol
        self.centroid = points.mean(axis=0)
        centered = points - self.centroid
        # Rank-reveal the point cloud to pick the right hull dimension.
        _, singular, vt = np.linalg.svd(centered, full_matrices=False)
        self.rank = int(np.sum(singular > tol * max(1.0, singular[0])))
        self.basis = vt[: self.rank] if self.rank else np.zeros((0, 3))
        self._delaunay: Delaunay | None = None
        self._interval: tuple[float, float] | None = None
        self._facets: np.ndarray | None = None
        triangulated: np.ndarray | None = None
        if self.rank >= 1:
            projected = centered @ self.basis.T
            if self.rank == 1:
                line = projected[:, 0]
                self._interval = (float(line.min()), float(line.max()))
            else:
                self._delaunay = self._triangulate(projected)
                triangulated = projected
                if self._delaunay is None:
                    # Nearly degenerate cloud: retreat one dimension.
                    self.rank -= 1
                    self.basis = self.basis[: self.rank]
                    if self.rank == 1:
                        line = centered @ self.basis[0]
                        self._interval = (float(line.min()), float(line.max()))
                    else:
                        triangulated = centered @ self.basis.T
                        self._delaunay = self._triangulate(triangulated)
        if self._delaunay is not None and triangulated is not None:
            # Outward facet equations of the same point cloud: a cheap
            # vectorized signed-distance bound used to spot queries in
            # the ambiguity band of find_simplex (see contains()).
            try:
                self._facets = ConvexHull(triangulated).equations
            except QhullError:  # pragma: no cover - joggled-input clouds
                self._facets = None

    @staticmethod
    def _triangulate(projected: np.ndarray) -> Delaunay | None:
        """Delaunay with a joggled-input retry for tough point clouds."""
        try:
            return Delaunay(projected)
        except QhullError:
            try:
                return Delaunay(projected, qhull_options="QJ")
            except QhullError:
                return None

    #: Half-width of the decision band inside which a batched query is
    #: replayed as a solo call (see contains()).  Orders of magnitude
    #: above float noise, orders below the hull tolerance.
    _AMBIGUITY_BAND = 1e-6

    def _ambiguous_rows(
        self, projected: np.ndarray, residual_norm: np.ndarray | None
    ) -> np.ndarray:
        """Rows close enough to a membership threshold to need a solo query.

        Batched evaluation is not automatically bitwise-equivalent to
        per-point evaluation: the (N, 3) projection matmul rounds
        differently than the (1, 3) one (GEMM vs GEMV summation order),
        and ``Delaunay.find_simplex`` resolves queries within its
        numerical tolerance of a simplex boundary differently depending
        on where its directed walk starts — i.e. on the *other* points
        in the batch.  Chamber landmarks (the CX ray, CNOT, sqrt(CNOT))
        sit exactly on coverage-hull facets, so batched membership would
        otherwise disagree with the scalar path on precisely the gates
        real circuits are made of.  Facet signed distances (and, for
        degenerate regions, the distance to the off-subspace tolerance
        threshold) bound the band; everything outside it is
        batch-invariant.
        """
        if self._delaunay is not None:
            if self._facets is None:  # pragma: no cover - joggled clouds
                ambiguous = np.ones(len(projected), dtype=bool)
            else:
                margins = (
                    projected @ self._facets[:, :-1].T + self._facets[:, -1]
                )
                ambiguous = np.abs(margins.max(axis=1)) <= self._AMBIGUITY_BAND
        else:
            ambiguous = np.zeros(len(projected), dtype=bool)
        if residual_norm is not None:
            ambiguous |= (
                np.abs(residual_norm - self.tol) <= self._AMBIGUITY_BAND
            )
        return ambiguous

    def contains(self, coords: np.ndarray) -> np.ndarray:
        """Vectorized membership test; accepts shape (3,) or (N, 3).

        Batched queries are bitwise-equivalent to per-point calls:
        points inside the numerical decision band are replayed as fresh
        single-point queries (see :meth:`_ambiguous_rows`), so
        membership of a point never depends on what else is in its
        batch.
        """
        coords = np.atleast_2d(np.asarray(coords, dtype=float))
        centered = coords - self.centroid
        if self.rank == 0:
            inside = np.ones(len(coords), dtype=bool)
        else:
            projected = centered @ self.basis.T
            if self.rank == 1:
                low, high = self._interval  # type: ignore[misc]
                inside = (projected[:, 0] >= low - self.tol) & (
                    projected[:, 0] <= high + self.tol
                )
            elif self._delaunay is not None:
                inside = self._delaunay.find_simplex(projected) >= 0
            else:  # pragma: no cover - exhausted fallbacks
                inside = np.zeros(len(coords), dtype=bool)
        # Off-subspace displacement must vanish for membership.
        residual_norm: np.ndarray | None = None
        if self.rank < 3:
            residual = centered - (
                (centered @ self.basis.T) @ self.basis
                if self.rank
                else np.zeros_like(centered)
            )
            residual_norm = np.linalg.norm(residual, axis=1)
            inside &= residual_norm <= self.tol
        if len(coords) > 1 and self.rank >= 1:
            for row in np.flatnonzero(
                self._ambiguous_rows(projected, residual_norm)
            ):
                inside[row] = self.contains(coords[row])[0]
        return inside

    @property
    def is_full_dimensional(self) -> bool:
        """True when the region has nonzero 3-D volume."""
        return self.rank == 3


@dataclass(frozen=True)
class KCoverage:
    """Reachable region for one template size K (both chamber halves)."""

    k: int
    left: RegionHull
    right: RegionHull | None
    num_points: int

    def contains(self, coords: np.ndarray) -> np.ndarray:
        """Vectorized membership across both chamber halves."""
        coords = np.atleast_2d(np.asarray(coords, dtype=float))
        result = np.zeros(len(coords), dtype=bool)
        on_left = coords[:, 0] <= _HALF_PI + 1e-9
        if on_left.any():
            result[on_left] = self.left.contains(coords[on_left])
        on_right = ~on_left
        if on_right.any() and self.right is not None:
            result[on_right] = self.right.contains(coords[on_right])
        return result


@dataclass(frozen=True)
class CoverageSet:
    """Coverage regions of a basis template for K = 1..kmax."""

    basis_name: str
    parallel: bool
    coverages: tuple[KCoverage, ...]

    @property
    def kmax(self) -> int:
        """Largest template size with a computed region."""
        return len(self.coverages)

    def coverage_for(self, k: int) -> KCoverage:
        """Region for template size ``k`` (1-based)."""
        if not 1 <= k <= self.kmax:
            raise ValueError(f"k={k} outside computed range 1..{self.kmax}")
        return self.coverages[k - 1]

    def min_k(self, coords: np.ndarray) -> np.ndarray:
        """Smallest covering K per coordinate row (``kmax + 1`` if none).

        One narrowing membership sweep over the K-polytopes: every point
        is tested against each region at most once, in a single
        vectorized ``contains`` call per region (see
        :func:`repro.kernels.first_covering_k`).
        """
        return first_covering_k(self.coverages, coords)

    def expected_haar_k(
        self, samples: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """Haar-expected template size and per-K fractions.

        ``samples`` are Haar coordinate rows (see
        :func:`haar_coordinate_samples`).  Uncovered samples are priced at
        ``kmax + 1``, which surfaces insufficient ``kmax`` rather than
        silently clipping.
        """
        ks = self.min_k(samples)
        counts = np.bincount(ks, minlength=self.kmax + 2)
        fractions = counts[1 : self.kmax + 2] / len(ks)
        return float(ks.mean()), fractions


def haar_coordinate_samples(
    count: int, seed: int | np.random.Generator | None = None
) -> np.ndarray:
    """Weyl coordinates of Haar-random two-qubit unitaries."""
    rng = as_rng(seed)
    return batched_weyl_coordinates(haar_unitaries_batch(4, count, rng))


def _split_halves(points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Partition coordinates at the c1 = pi/2 plane (boundary in both)."""
    on_left = points[:, 0] <= _HALF_PI + 1e-9
    on_right = points[:, 0] >= _HALF_PI - 1e-9
    return points[on_left], points[on_right]


def coverage_cache_key(
    gc: float,
    gg: float,
    pulse_duration: float,
    kmax: int,
    basis_name: str,
    parallel: bool,
    samples_per_k: int,
    steps_per_pulse: int,
    seed: int | np.random.Generator | None,
    boost_targets: bool,
    synthesis_restarts: int,
    synthesis_iterations: int,
    backend: str = "piecewise",
    backend_options: dict | None = None,
) -> str:
    """Stable text key of one coverage build (the store's keyspace).

    Encodes the backend family, its factory options, every
    geometry-affecting parameter, and the sampling seed — the same
    discipline as the decomposition cache's ``cache_token``.  The
    default-configuration piecewise key matches the legacy ``.npz``
    file stem exactly, so
    :class:`~repro.service.coverage_store.CoverageStore` migration maps
    one-to-one.  ``steps_per_pulse`` only keys for families that take
    it (``0`` otherwise), so backends that ignore the knob do not split
    identical clouds across rows.
    """
    seed_token = seed if isinstance(seed, int) else "rng"
    key = (
        f"{basis_name}_gc{gc:.6f}_gg{gg:.6f}_d{pulse_duration:.4f}"
        f"_k{kmax}_n{samples_per_k}_s{steps_per_pulse}"
        f"_{'par' if parallel else 'std'}_b{int(boost_targets)}"
        f"_r{synthesis_restarts}_i{synthesis_iterations}_seed{seed_token}"
        "_v2"
    )
    if backend != "piecewise":
        key += f"_be-{backend}"
    if backend_options:
        options = "_".join(
            f"{name}-{backend_options[name]!r}"
            for name in sorted(backend_options)
        )
        key += f"_bo-{options}"
    return key


def build_coverage_set(
    gc: float,
    gg: float,
    pulse_duration: float,
    kmax: int,
    basis_name: str = "basis",
    parallel: bool = False,
    samples_per_k: int = 3000,
    steps_per_pulse: int = 4,
    seed: int | np.random.Generator | None = 0,
    boost_targets: bool = True,
    synthesis_restarts: int = 3,
    synthesis_iterations: int = 1200,
    cache: bool = True,
    engine=None,
    store=None,
) -> CoverageSet:
    """Estimate coverage regions for a conversion–gain basis (Alg. 2).

    Args:
        gc, gg: pump strengths of one application, pre-scaled so that the
            pulse realizes the basis gate in ``pulse_duration``.
        parallel: include the Eq. 9 1Q drives as free template variables.
        boost_targets: run the synthesizer toward the chamber's exterior
            points and fold its training path into the point cloud —
            random sampling alone under-fills hull corners.
        cache: persist/reuse the sampled point clouds through the
            coverage store.
        engine: the :class:`~repro.synthesis.SynthesisEngine` supplying
            the template family and training path (``None`` = the
            process-default piecewise engine — the digest-stable paper
            configuration).
        store: explicit :class:`~repro.service.coverage_store.
            CoverageStore`; ``None`` uses the engine's store, falling
            back to the process default for the current cache dir.
            The ``REPRO_COVERAGE_CACHE`` kill-switch governs only that
            default resolution — a store passed explicitly (here or on
            the engine) is a deliberate opt-in and is used regardless.
    """
    from ..synthesis.engine import default_engine

    from ..synthesis.backends import backend_accepts

    if engine is None:
        engine = default_engine()
    if store is None:
        store = getattr(engine, "store", None)
    # The per-pulse step count only shapes families whose factory takes
    # it; others must neither receive the knob nor key on it.
    takes_steps = backend_accepts(engine.backend, "steps_per_pulse")
    use_cache = cache and (store is not None or cache_enabled())
    key: str | None = None
    if use_cache:
        if store is None:
            from ..service.coverage_store import default_coverage_store

            store = default_coverage_store()
        key = coverage_cache_key(
            gc, gg, pulse_duration, kmax, basis_name, parallel,
            samples_per_k, steps_per_pulse if takes_steps else 0, seed,
            boost_targets, synthesis_restarts, synthesis_iterations,
            backend=engine.backend,
            backend_options=getattr(engine, "backend_options", None),
        )
        assembled = store.get_set(key)
        if assembled is not None:
            return assembled
        cached_clouds = store.get_clouds(key, kmax)
        if cached_clouds is not None:
            assembled = _assemble_coverage(
                basis_name, parallel, cached_clouds
            )
            store.remember_set(key, assembled)
            return assembled

    from ..obs import metrics as obs_metrics
    from ..obs import trace as obs_trace

    obs_metrics.counter("repro.coverage.builds").inc()
    rng = as_rng(seed)
    clouds: list[np.ndarray] = []
    template_overrides = (
        {"steps_per_pulse": steps_per_pulse} if takes_steps else {}
    )
    with obs_trace.span(
        "coverage.build", basis=basis_name, kmax=kmax, parallel=parallel
    ):
        built = _build_clouds(
            engine, gc, gg, pulse_duration, kmax, parallel,
            template_overrides, samples_per_k, rng, boost_targets,
            synthesis_restarts, synthesis_iterations,
        )
    clouds.extend(built)
    assembled = _assemble_coverage(basis_name, parallel, clouds)
    if key is not None and store is not None:
        store.put_clouds(key, clouds)
        store.remember_set(key, assembled)
    return assembled


def _build_clouds(
    engine,
    gc: float,
    gg: float,
    pulse_duration: float,
    kmax: int,
    parallel: bool,
    template_overrides: dict,
    samples_per_k: int,
    rng,
    boost_targets: bool,
    synthesis_restarts: int,
    synthesis_iterations: int,
) -> list[np.ndarray]:
    """Sample/boost the per-K point clouds (Alg. 2's expensive loop)."""
    clouds: list[np.ndarray] = []
    for k in range(1, kmax + 1):
        template = engine.template(
            gc=gc,
            gg=gg,
            pulse_duration=pulse_duration,
            repetitions=k,
            parallel=parallel,
            **template_overrides,
        )
        points = engine.sample_coordinates(template, samples_per_k, rng)
        # Anchor exactly-known reachable points: the undriven template
        # with identity interiors realizes the k-fold basis power, whose
        # coordinates random local sampling only approaches (e.g. the
        # iSWAP corner of the K=1 parallel-iSWAP region).
        anchor = template.coordinates(
            np.zeros(template.num_parameters)
        )
        points = np.vstack([points, anchor[None, :]])
        if boost_targets:
            for _, target_coords in _EXTERIOR_TARGETS:
                target = np.asarray(target_coords, dtype=float)
                result = engine.synthesize(
                    template,
                    target,
                    seed=rng,
                    restarts=synthesis_restarts,
                    max_iterations=synthesis_iterations,
                    record_history=True,
                )
                if result.coordinate_history:
                    points = np.vstack([points, result.coordinate_history])
                if result.converged:
                    points = np.vstack([points, target[None, :]])
        clouds.append(points)
    return clouds


def _assemble_coverage(
    basis_name: str, parallel: bool, clouds: list[np.ndarray]
) -> CoverageSet:
    """Build hull structures from per-K point clouds."""
    coverages = []
    for k, points in enumerate(clouds, start=1):
        left_pts, right_pts = _split_halves(points)
        left = RegionHull(left_pts if len(left_pts) else points)
        right = RegionHull(right_pts) if len(right_pts) >= 4 else None
        coverages.append(
            KCoverage(k=k, left=left, right=right, num_points=len(points))
        )
    return CoverageSet(
        basis_name=basis_name,
        parallel=parallel,
        coverages=tuple(coverages),
    )


def expected_cost(
    candidates: list[tuple[KCoverage, float]],
    samples: np.ndarray,
    fallback_cost: float | None = None,
) -> float:
    """Haar-expected cost choosing the cheapest covering candidate.

    Implements the paper's "joint spanning region" scoring (Table V): each
    candidate pairs a reachable region with the duration of its template;
    every Haar sample is priced at the cheapest region containing it.

    Args:
        fallback_cost: price for samples no candidate covers; ``None``
            raises if any sample is uncovered.
    """
    samples = np.atleast_2d(np.asarray(samples, dtype=float))
    costs = np.full(len(samples), np.inf)
    for region, cost in candidates:
        hit = region.contains(samples)
        costs[hit] = np.minimum(costs[hit], cost)
    uncovered = ~np.isfinite(costs)
    if uncovered.any():
        if fallback_cost is None:
            raise ValueError(
                f"{int(uncovered.sum())} samples not covered by any candidate"
            )
        costs[uncovered] = fallback_cost
    return float(costs.mean())
