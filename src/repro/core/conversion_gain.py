"""Conversion–gain gate families (paper Sec. II, Eq. 1–4).

Simultaneous conversion and gain driving natively realizes every gate on
the Weyl-chamber base plane:

``CG(theta_c, theta_g) = CAN(theta_c + theta_g, theta_c - theta_g, 0)``

A *gate family* is the ray of fixed drive ratio ``beta = theta_g /
theta_c``: iSWAP is conversion-only (``beta = 0``) or gain-only
(``beta = inf``), the CNOT family sits on ``beta = 1``, and the B family
on ``beta = 1/3``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..quantum.weyl import canonicalize_coordinates

__all__ = [
    "cg_unitary",
    "coordinates_for_drive",
    "drive_angles_for_coordinates",
    "drive_ratio",
    "GateFamily",
    "ISWAP_CONVERSION_FAMILY",
    "ISWAP_GAIN_FAMILY",
    "CNOT_FAMILY",
    "B_FAMILY",
    "family_for_coordinates",
]


def cg_unitary(
    theta_c: float,
    theta_g: float,
    phi_c: float = 0.0,
    phi_g: float = 0.0,
) -> np.ndarray:
    """Closed-form conversion–gain propagator (generalizes paper Eq. 2).

    ``theta_c = gc * t`` acts on the ``{|01>, |10>}`` block; ``theta_g =
    gg * t`` on ``{|00>, |11>}``; the pump phases rotate each block.
    """
    cos_g, sin_g = np.cos(theta_g), np.sin(theta_g)
    cos_c, sin_c = np.cos(theta_c), np.sin(theta_c)
    out = np.zeros((4, 4), dtype=complex)
    out[0, 0] = out[3, 3] = cos_g
    out[0, 3] = -1j * sin_g * np.exp(1j * phi_g)
    out[3, 0] = -1j * sin_g * np.exp(-1j * phi_g)
    out[1, 1] = out[2, 2] = cos_c
    out[1, 2] = -1j * sin_c * np.exp(-1j * phi_c)
    out[2, 1] = -1j * sin_c * np.exp(1j * phi_c)
    return out


def coordinates_for_drive(theta_c: float, theta_g: float) -> np.ndarray:
    """Canonical Weyl coordinates of ``CG(theta_c, theta_g)``."""
    return canonicalize_coordinates(
        np.array([theta_c + theta_g, theta_c - theta_g, 0.0])
    )


def drive_angles_for_coordinates(coords: np.ndarray) -> tuple[float, float]:
    """Drive angles ``(theta_c, theta_g)`` realizing a base-plane gate.

    Returns the conversion-dominant assignment (``theta_c >= theta_g``);
    swapping the two angles gives the locally equivalent gain-dominant
    pulse.
    """
    c1, c2, c3 = np.asarray(coords, dtype=float)
    if abs(c3) > 1e-7:
        raise ValueError(
            f"coordinates {coords} are off the base plane; conversion-gain "
            "drives realize only c3 == 0 gates"
        )
    return (c1 + c2) / 2.0, (c1 - c2) / 2.0


def drive_ratio(coords: np.ndarray) -> float:
    """Drive ratio ``beta = theta_g / theta_c`` of a base-plane gate."""
    theta_c, theta_g = drive_angles_for_coordinates(coords)
    if theta_c == 0:
        return float("inf")
    return theta_g / theta_c


@dataclass(frozen=True)
class GateFamily:
    """A ray of gates sharing a drive ratio (paper Fig. 5 dotted lines)."""

    name: str
    beta: float

    def drive_angles(self, total_angle: float) -> tuple[float, float]:
        """Split ``theta_c + theta_g = total_angle`` at this family's ratio."""
        if np.isinf(self.beta):
            return 0.0, total_angle
        theta_c = total_angle / (1.0 + self.beta)
        return theta_c, total_angle - theta_c

    def coordinates(self, fraction: float) -> np.ndarray:
        """Weyl coordinates of the family member at pulse ``fraction``.

        ``fraction = 1`` is the full named gate (e.g. CNOT for the CNOT
        family), ``fraction = 0.5`` its square root, and so on.
        """
        theta_c, theta_g = self.drive_angles(fraction * np.pi / 2)
        return coordinates_for_drive(theta_c, theta_g)


ISWAP_CONVERSION_FAMILY = GateFamily("iSWAP (conversion)", beta=0.0)
ISWAP_GAIN_FAMILY = GateFamily("iSWAP (gain)", beta=float("inf"))
CNOT_FAMILY = GateFamily("CNOT", beta=1.0)
B_FAMILY = GateFamily("B", beta=1.0 / 3.0)


def family_for_coordinates(coords: np.ndarray) -> GateFamily:
    """The gate family (drive-ratio ray) through a base-plane gate."""
    beta = drive_ratio(coords)
    for family in (
        ISWAP_CONVERSION_FAMILY,
        CNOT_FAMILY,
        B_FAMILY,
        ISWAP_GAIN_FAMILY,
    ):
        if np.isclose(beta, family.beta, atol=1e-9):
            return family
    return GateFamily(f"beta={beta:.4f}", beta=beta)
