"""Time evolution under piecewise-constant Hamiltonians.

Propagators are computed by exact Hermitian eigendecomposition, which for
the 4x4 problems here is both faster and better conditioned than generic
``expm``.  Batched variants vectorize over thousands of parameter sets —
the hot path of coverage-set sampling (paper Alg. 2).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "step_propagator",
    "propagate_piecewise",
    "batched_step_propagators",
    "batched_piecewise_propagators",
]


def step_propagator(hamiltonian: np.ndarray, dt: float) -> np.ndarray:
    """Exact ``exp(-i H dt)`` for a Hermitian ``H``."""
    hamiltonian = np.asarray(hamiltonian, dtype=complex)
    values, vectors = np.linalg.eigh(hamiltonian)
    phases = np.exp(-1j * values * dt)
    return (vectors * phases) @ vectors.conj().T


def propagate_piecewise(
    hamiltonians: list[np.ndarray], dts: list[float] | np.ndarray
) -> np.ndarray:
    """Total propagator of a piecewise-constant schedule (first step first).

    Returns ``U = U_n ... U_2 U_1`` where ``U_k = exp(-i H_k dt_k)``.
    All step propagators come from one stacked eigendecomposition
    (:func:`batched_step_propagators`) instead of a scalar
    :func:`step_propagator` call per step; only the ordered product
    remains sequential.
    """
    if len(hamiltonians) != len(dts):
        raise ValueError("need one dt per Hamiltonian step")
    if not hamiltonians:
        raise ValueError("schedule must contain at least one step")
    stacked = np.stack(
        [np.asarray(h, dtype=complex) for h in hamiltonians]
    )
    propagators = batched_step_propagators(
        stacked, np.asarray(dts, dtype=float)
    )
    unitary = np.eye(stacked.shape[-1], dtype=complex)
    for propagator in propagators:
        unitary = propagator @ unitary
    return unitary


def batched_step_propagators(
    hamiltonians: np.ndarray, dt: float | np.ndarray
) -> np.ndarray:
    """``exp(-i H_k dt_k)`` for a stack of Hermitian matrices ``(N, d, d)``."""
    hamiltonians = np.asarray(hamiltonians, dtype=complex)
    values, vectors = np.linalg.eigh(hamiltonians)
    dt = np.asarray(dt, dtype=float)
    if dt.ndim == 0:
        dt = np.full(hamiltonians.shape[0], float(dt))
    phases = np.exp(-1j * values * dt[:, None])
    return np.einsum(
        "nij,nj,nkj->nik", vectors, phases, vectors.conj()
    )


def batched_piecewise_propagators(
    step_hamiltonians: np.ndarray, dts: np.ndarray
) -> np.ndarray:
    """Total propagators for ``N`` schedules of ``S`` steps each.

    Args:
        step_hamiltonians: array of shape ``(N, S, d, d)``.
        dts: array of shape ``(S,)`` or ``(N, S)``.

    Returns:
        Array of shape ``(N, d, d)`` with ``U_n = prod_s exp(-i H_ns dt_s)``
        applied in schedule order (step 0 acts first).
    """
    step_hamiltonians = np.asarray(step_hamiltonians, dtype=complex)
    if step_hamiltonians.ndim != 4:
        raise ValueError("expected shape (N, S, d, d)")
    count, steps, dim, _ = step_hamiltonians.shape
    dts = np.asarray(dts, dtype=float)
    if dts.ndim == 1:
        dts = np.broadcast_to(dts, (count, steps))
    unitaries = np.broadcast_to(
        np.eye(dim, dtype=complex), (count, dim, dim)
    ).copy()
    for step in range(steps):
        props = batched_step_propagators(
            step_hamiltonians[:, step], dts[:, step]
        )
        unitaries = np.einsum("nij,njk->nik", props, unitaries)
    return unitaries
