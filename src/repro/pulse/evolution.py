"""Time evolution under piecewise-constant Hamiltonians.

Propagators are computed by exact Hermitian eigendecomposition, which for
the 4x4 problems here is both faster and better conditioned than generic
``expm``.  Batched variants vectorize over thousands of parameter sets —
the hot path of coverage-set sampling (paper Alg. 2).

All entry points are written against :mod:`repro.kernels.backend`: on
the default numpy backend every operation is the literal numpy
expression the module always used (bit parity preserved); under
torch/cupy the stacked ``eigh`` and ``einsum`` contractions run on the
adapter namespace and results ride back to numpy at the public edges.
Inputs are normalized through the backend resolver once, at the edge —
Python lists of step matrices (``[ham]``, ``[dt]``) are accepted
everywhere without callers scattering their own ``np.asarray`` calls.
"""

from __future__ import annotations

import numpy as np

from ..kernels.backend import ArrayBackend, active_backend

__all__ = [
    "step_propagator",
    "propagate_piecewise",
    "batched_step_propagators",
    "batched_piecewise_propagators",
]


def step_propagator(hamiltonian: np.ndarray, dt: float) -> np.ndarray:
    """Exact ``exp(-i H dt)`` for a Hermitian ``H``."""
    backend = active_backend()
    hamiltonian = backend.asarray(hamiltonian, "complex")
    values, vectors = backend.eigh(hamiltonian)
    phases = backend.xp.exp(-1j * values * dt)
    return backend.to_numpy(
        (vectors * phases) @ backend.matrix_transpose(vectors.conj()),
        "complex",
    )


def propagate_piecewise(
    hamiltonians: list[np.ndarray] | np.ndarray,
    dts: list[float] | np.ndarray,
) -> np.ndarray:
    """Total propagator of a piecewise-constant schedule (first step first).

    Returns ``U = U_n ... U_2 U_1`` where ``U_k = exp(-i H_k dt_k)``.
    ``hamiltonians`` may be a Python list of step matrices or an
    ``(S, d, d)`` stack — both are normalized through the backend
    resolver here, once.  All step propagators come from one stacked
    eigendecomposition (:func:`batched_step_propagators`); only the
    ordered product remains sequential.
    """
    if len(hamiltonians) != len(dts):
        raise ValueError("need one dt per Hamiltonian step")
    if not len(hamiltonians):
        raise ValueError("schedule must contain at least one step")
    backend = active_backend()
    stacked = backend.asarray(hamiltonians, "complex")
    if stacked.ndim != 3:
        raise ValueError("expected (S, d, d) Hamiltonian steps")
    propagators = _batched_step_propagators(
        backend, stacked, backend.asarray(dts, "float")
    )
    unitary = backend.eye(stacked.shape[-1], "complex")
    for propagator in propagators:
        unitary = propagator @ unitary
    return backend.to_numpy(unitary, "complex")


def _batched_step_propagators(
    backend: ArrayBackend, hamiltonians, dt
):
    """Backend-array core of :func:`batched_step_propagators`."""
    values, vectors = backend.eigh(hamiltonians)
    if dt.ndim == 0:
        dt = backend.full(hamiltonians.shape[0], float(dt), "float")
    phases = backend.xp.exp(-1j * values * dt[:, None])
    return backend.einsum(
        "nij,nj,nkj->nik", vectors, phases, vectors.conj()
    )


def batched_step_propagators(
    hamiltonians: np.ndarray, dt: float | np.ndarray
) -> np.ndarray:
    """``exp(-i H_k dt_k)`` for a stack of Hermitian matrices ``(N, d, d)``."""
    backend = active_backend()
    return backend.to_numpy(
        _batched_step_propagators(
            backend,
            backend.asarray(hamiltonians, "complex"),
            backend.asarray(dt, "float"),
        ),
        "complex",
    )


def _batched_piecewise_propagators(
    backend: ArrayBackend, step_hamiltonians, dts
):
    """Backend-array core of :func:`batched_piecewise_propagators`."""
    xp = backend.xp
    if step_hamiltonians.ndim != 4:
        raise ValueError("expected shape (N, S, d, d)")
    count, steps, dim, _ = step_hamiltonians.shape
    if dts.ndim == 1:
        dts = xp.broadcast_to(dts, (count, steps))
    unitaries = backend.copy(
        xp.broadcast_to(backend.eye(dim, "complex"), (count, dim, dim))
    )
    for step in range(steps):
        props = _batched_step_propagators(
            backend, step_hamiltonians[:, step], dts[:, step]
        )
        unitaries = backend.einsum("nij,njk->nik", props, unitaries)
    return unitaries


def batched_piecewise_propagators(
    step_hamiltonians: np.ndarray, dts: np.ndarray
) -> np.ndarray:
    """Total propagators for ``N`` schedules of ``S`` steps each.

    Args:
        step_hamiltonians: array of shape ``(N, S, d, d)``.
        dts: array of shape ``(S,)`` or ``(N, S)``.

    Returns:
        Array of shape ``(N, d, d)`` with ``U_n = prod_s exp(-i H_ns dt_s)``
        applied in schedule order (step 0 acts first).
    """
    backend = active_backend()
    return backend.to_numpy(
        _batched_piecewise_propagators(
            backend,
            backend.asarray(step_hamiltonians, "complex"),
            backend.asarray(dts, "float"),
        ),
        "complex",
    )
