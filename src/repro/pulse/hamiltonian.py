"""Conversion–gain Hamiltonians (paper Eq. 1 and Eq. 9).

``H = gc (e^{i phi_c} a† b + h.c.) + gg (e^{i phi_g} a b + h.c.)
    + eps1(t) (a + a†) + eps2(t) (b + b†)``

The first two terms are the modulator-driven two-body interactions
(conversion and gain); the last two are the parallel 1Q drives applied
directly to the qubits during the 2Q pulse.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .operators import conversion_operator, drive_operator, gain_operator

__all__ = [
    "conversion_gain_hamiltonian",
    "parallel_drive_hamiltonian",
    "batched_hamiltonians",
    "ConversionGainParameters",
]

# Matrix-element index patterns for vectorized Hamiltonian assembly.
_XI_INDICES = ((0, 2), (2, 0), (1, 3), (3, 1))  # X on qubit 0
_IX_INDICES = ((0, 1), (1, 0), (2, 3), (3, 2))  # X on qubit 1


def conversion_gain_hamiltonian(
    gc: float, gg: float, phi_c: float = 0.0, phi_g: float = 0.0
) -> np.ndarray:
    """Bare conversion–gain Hamiltonian (Eq. 1) as a 4x4 Hermitian matrix."""
    return gc * conversion_operator(phi_c) + gg * gain_operator(phi_g)


def parallel_drive_hamiltonian(
    gc: float,
    gg: float,
    phi_c: float = 0.0,
    phi_g: float = 0.0,
    eps1: float = 0.0,
    eps2: float = 0.0,
) -> np.ndarray:
    """Parallel-driven Hamiltonian (Eq. 9) for one constant time step."""
    hamiltonian = conversion_gain_hamiltonian(gc, gg, phi_c, phi_g)
    if eps1:
        hamiltonian = hamiltonian + eps1 * drive_operator(0)
    if eps2:
        hamiltonian = hamiltonian + eps2 * drive_operator(1)
    return hamiltonian


def batched_hamiltonians(
    gc: float,
    gg: float,
    phi_c: np.ndarray,
    phi_g: np.ndarray,
    eps1: np.ndarray,
    eps2: np.ndarray,
) -> np.ndarray:
    """Assemble Eq. 9 Hamiltonians for stacked parameters.

    The batched counterpart of :func:`parallel_drive_hamiltonian`:
    ``phi_c``/``phi_g`` broadcast against the leading axes of
    ``eps1``/``eps2`` (shape ``(..., steps)``); returns
    ``(..., steps, 4, 4)``.  This is the assembly kernel every synthesis
    backend shares (templates stack ``(starts, steps)`` parameter grids
    through it before one batched propagation).
    """
    eps1 = np.asarray(eps1, dtype=float)
    eps2 = np.asarray(eps2, dtype=float)
    phi_c = np.broadcast_to(np.asarray(phi_c, float)[..., None], eps1.shape)
    phi_g = np.broadcast_to(np.asarray(phi_g, float)[..., None], eps1.shape)
    shape = eps1.shape + (4, 4)
    ham = np.zeros(shape, dtype=complex)
    # Conversion block {|01>, |10>}.
    ham[..., 2, 1] = gc * np.exp(1j * phi_c)
    ham[..., 1, 2] = gc * np.exp(-1j * phi_c)
    # Gain block {|00>, |11>}.
    ham[..., 0, 3] = gg * np.exp(1j * phi_g)
    ham[..., 3, 0] = gg * np.exp(-1j * phi_g)
    for row, col in _XI_INDICES:
        ham[..., row, col] += eps1
    for row, col in _IX_INDICES:
        ham[..., row, col] += eps2
    return ham


@dataclass(frozen=True)
class ConversionGainParameters:
    """Drive configuration of one 2Q basis-gate application.

    ``eps1``/``eps2`` hold one amplitude per discrete time step
    (``D[2Q]/D[1Q]`` steps in the paper); empty tuples mean no parallel
    drive.  ``duration`` is in normalized pulse units (fastest iSWAP = 1).
    """

    gc: float
    gg: float
    duration: float
    phi_c: float = 0.0
    phi_g: float = 0.0
    eps1: tuple[float, ...] = field(default=())
    eps2: tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.eps1 and self.eps2 and len(self.eps1) != len(self.eps2):
            raise ValueError("eps1 and eps2 must have equal step counts")

    @property
    def num_steps(self) -> int:
        """Number of piecewise-constant steps (1 when undriven)."""
        return max(len(self.eps1), len(self.eps2), 1)

    @property
    def theta_c(self) -> float:
        """Accumulated conversion angle ``gc * t``."""
        return self.gc * self.duration

    @property
    def theta_g(self) -> float:
        """Accumulated gain angle ``gg * t``."""
        return self.gg * self.duration

    def step_hamiltonians(self) -> list[np.ndarray]:
        """One Hamiltonian per piecewise-constant step."""
        steps = self.num_steps
        eps1 = self.eps1 or (0.0,) * steps
        eps2 = self.eps2 or (0.0,) * steps
        return [
            parallel_drive_hamiltonian(
                self.gc, self.gg, self.phi_c, self.phi_g, e1, e2
            )
            for e1, e2 in zip(eps1, eps2)
        ]
