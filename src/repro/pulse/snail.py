"""Synthetic SNAIL-modulator speed-limit characterization.

The paper measures the speed limit of a real SNAIL coupler by sweeping the
gain/conversion pump amplitudes and watching a monitoring qubit jump out of
its ground state when the coupler breaks down (Fig. 3c).  That hardware is
not available here, so this module implements the closest synthetic
equivalent:

* a phenomenological *breakdown boundary* in the ``(gc, gg)`` plane whose
  shape reproduces the paper's qualitative findings — conversion can be
  driven roughly twice as hard as gain and the boundary is non-linear —
  and whose anchor points are chosen so the durations in the paper's
  Table II ("SNAIL Characterized Speed Limit" block) come out exactly;
* a simulated characterization sweep: for each pump-amplitude pair the
  monitoring qubit's ground-state population is drawn from a binomial
  distribution around a logistic breakdown profile (shot noise included);
* the experimentalists' fitting procedure: thresholding each sweep column
  at 50% ground-state population to recover the boundary.

Downstream code (``repro.core.speed_limit.CharacterizedSpeedLimit``)
consumes only the fitted boundary, exactly as the paper's co-design study
consumes the measured white line of Fig. 3c.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.interpolate import PchipInterpolator

from ..quantum.random import as_rng

__all__ = ["SNAILModel", "CharacterizationSweep", "fit_boundary"]

#: Anchor points of the normalized breakdown boundary (gc, gg), chosen so
#: that the fastest iSWAP (conversion-only) takes exactly 1 pulse and the
#: CNOT/B-family rays hit the boundary at the durations the paper reports
#: for the characterized SNAIL (DBasis = 1.80 and 1.40 respectively).
_NORMALIZED_ANCHORS: tuple[tuple[float, float], ...] = (
    (0.0, 0.55),
    (np.pi / 4 / 1.8, np.pi / 4 / 1.8),  # beta = 1 (CNOT family)
    (3 * np.pi / 8 / 1.4, np.pi / 8 / 1.4),  # beta = 1/3 (B family)
    (np.pi / 2, 0.0),
)


@dataclass(frozen=True)
class CharacterizationSweep:
    """Result grid of a simulated pump-amplitude sweep (Fig. 3c)."""

    gc_values: np.ndarray  # MHz, shape (n_gc,)
    gg_values: np.ndarray  # MHz, shape (n_gg,)
    ground_population: np.ndarray  # shape (n_gg, n_gc), P(|g>)
    shots: int

    def column(self, index: int) -> np.ndarray:
        """Ground-state population along one conversion-amplitude column."""
        return self.ground_population[:, index]


@dataclass(frozen=True)
class SNAILModel:
    """Phenomenological SNAIL coupler with a drive-strength speed limit.

    Args:
        conversion_max_mhz: conversion-only breakdown amplitude (x-intercept).
        transition_width_mhz: width of the breakdown transition region.
    """

    conversion_max_mhz: float = 51.0
    transition_width_mhz: float = 1.2
    _boundary: PchipInterpolator = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.conversion_max_mhz <= 0:
            raise ValueError("conversion_max_mhz must be positive")
        if self.transition_width_mhz <= 0:
            raise ValueError("transition_width_mhz must be positive")
        scale = self.conversion_max_mhz / (np.pi / 2)
        anchors = np.array(_NORMALIZED_ANCHORS) * scale
        # Extrapolation matters: beyond the conversion-only intercept the
        # margin must keep decreasing so the sweep sees breakdown there.
        interpolator = PchipInterpolator(
            anchors[:, 0], anchors[:, 1], extrapolate=True
        )
        object.__setattr__(self, "_boundary", interpolator)

    @property
    def gain_max_mhz(self) -> float:
        """Gain-only breakdown amplitude (y-intercept)."""
        return float(self._boundary(0.0))

    def breakdown_boundary(self, gc_mhz: np.ndarray | float) -> np.ndarray:
        """True boundary ``gg(gc)`` in MHz; zero beyond the x-intercept."""
        gc = np.asarray(gc_mhz, dtype=float)
        out = self._boundary(np.clip(gc, 0.0, self.conversion_max_mhz))
        return np.where(gc >= self.conversion_max_mhz, 0.0, out)

    def _signed_margin(
        self, gc_mhz: np.ndarray, gg_mhz: np.ndarray
    ) -> np.ndarray:
        """Distance to breakdown: positive inside the operating region.

        Unlike :meth:`breakdown_boundary`, the margin keeps decreasing past
        the conversion-only intercept so over-driving at ``gg = 0`` still
        registers as broken.
        """
        gc = np.asarray(gc_mhz, dtype=float)
        gg = np.asarray(gg_mhz, dtype=float)
        return self._boundary(np.clip(gc, 0.0, None)) - gg

    def exceeds_speed_limit(
        self, gc_mhz: float, gg_mhz: float
    ) -> bool:
        """True when the pump pair lies beyond the breakdown boundary."""
        if gc_mhz >= self.conversion_max_mhz:
            return True
        return bool(gg_mhz > float(self.breakdown_boundary(gc_mhz)))

    def ground_state_probability(
        self, gc_mhz: np.ndarray, gg_mhz: np.ndarray
    ) -> np.ndarray:
        """Mean monitoring-qubit ground population for pump amplitudes.

        Smoothly interpolates from ~1 inside the operating region to ~0 in
        the chaotic regime through a logistic transition of width
        ``transition_width_mhz``.
        """
        margin = self._signed_margin(gc_mhz, gg_mhz)
        return 1.0 / (1.0 + np.exp(-margin / self.transition_width_mhz))

    def characterization_sweep(
        self,
        n_gc: int = 96,
        n_gg: int = 64,
        shots: int = 800,
        seed: int | np.random.Generator | None = 7,
    ) -> CharacterizationSweep:
        """Simulate the Fig. 3c pump sweep with binomial shot noise."""
        if n_gc < 2 or n_gg < 2:
            raise ValueError("sweep needs at least a 2x2 grid")
        if shots < 1:
            raise ValueError("shots must be positive")
        rng = as_rng(seed)
        gc_values = np.linspace(0.0, 1.15 * self.conversion_max_mhz, n_gc)
        gg_values = np.linspace(0.0, 1.6 * self.gain_max_mhz, n_gg)
        grid_gc, grid_gg = np.meshgrid(gc_values, gg_values)
        probabilities = self.ground_state_probability(grid_gc, grid_gg)
        counts = rng.binomial(shots, probabilities)
        return CharacterizationSweep(
            gc_values=gc_values,
            gg_values=gg_values,
            ground_population=counts / shots,
            shots=shots,
        )


def fit_boundary(
    sweep: CharacterizationSweep, threshold: float = 0.5
) -> tuple[np.ndarray, np.ndarray]:
    """Recover the speed-limit boundary from a characterization sweep.

    For each conversion amplitude, finds the gain amplitude at which the
    monitoring qubit's ground population crosses ``threshold`` (linear
    interpolation between grid rows), mirroring the white line of Fig. 3c.

    Returns:
        ``(gc_points, gg_points)`` sorted by increasing ``gc``; columns that
        never cross the threshold (fully broken or fully healthy) are
        dropped, except fully-healthy columns bounded by the sweep ceiling.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must be inside (0, 1)")
    gc_points: list[float] = []
    gg_points: list[float] = []
    gg_axis = sweep.gg_values
    for column_index, gc in enumerate(sweep.gc_values):
        population = sweep.column(column_index)
        if population[0] < threshold:
            # Broken even at zero gain: boundary passed; record intercept 0
            # only for the first such column to pin the x-intercept.
            if gc_points and gg_points[-1] > 0:
                gc_points.append(float(gc))
                gg_points.append(0.0)
            continue
        below = np.where(population < threshold)[0]
        if below.size == 0:
            continue  # never breaks within the swept range
        hi = below[0]
        lo = hi - 1
        # Linear interpolation between the last healthy and first broken row.
        p_lo, p_hi = population[lo], population[hi]
        fraction = (p_lo - threshold) / max(p_lo - p_hi, 1e-12)
        gg_cross = gg_axis[lo] + fraction * (gg_axis[hi] - gg_axis[lo])
        gc_points.append(float(gc))
        gg_points.append(float(gg_cross))
    if len(gc_points) < 4:
        raise ValueError("sweep did not resolve enough boundary points")
    order = np.argsort(gc_points)
    return np.asarray(gc_points)[order], np.asarray(gg_points)[order]
