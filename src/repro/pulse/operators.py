"""Operators for the two-qubit + coupler pulse model.

The paper's Hamiltonians (Eq. 1 and Eq. 9) act on two qubits coupled by a
parametrically driven modulator.  Within the computational subspace the
bosonic ladder operators reduce to qubit raising/lowering operators; this
module provides those plus generic n-qubit Pauli embeddings used by the
circuit-level fidelity checks.
"""

from __future__ import annotations

import numpy as np

from ..quantum.gates import I2, X, Y, Z

__all__ = [
    "LOWERING",
    "RAISING",
    "qubit_lowering",
    "embed_single",
    "pauli_string",
    "conversion_operator",
    "gain_operator",
    "drive_operator",
]

#: Single-qubit lowering operator ``|0><1|``.
LOWERING = np.array([[0, 1], [0, 0]], dtype=complex)
#: Single-qubit raising operator ``|1><0|``.
RAISING = LOWERING.conj().T

_PAULIS = {"I": I2, "X": X, "Y": Y, "Z": Z}


def embed_single(op: np.ndarray, qubit: int, num_qubits: int) -> np.ndarray:
    """Embed a single-qubit operator at position ``qubit`` of a register."""
    if not 0 <= qubit < num_qubits:
        raise ValueError(f"qubit {qubit} out of range for {num_qubits}")
    out = np.array([[1.0 + 0j]])
    for index in range(num_qubits):
        out = np.kron(out, op if index == qubit else I2)
    return out


def qubit_lowering(qubit: int, num_qubits: int = 2) -> np.ndarray:
    """Lowering operator for ``qubit`` in a ``num_qubits`` register."""
    return embed_single(LOWERING, qubit, num_qubits)


def pauli_string(label: str) -> np.ndarray:
    """Kronecker product of Paulis, e.g. ``pauli_string("XY")``."""
    if not label or any(ch not in _PAULIS for ch in label):
        raise ValueError(f"invalid Pauli string {label!r}")
    out = np.array([[1.0 + 0j]])
    for ch in label:
        out = np.kron(out, _PAULIS[ch])
    return out


def conversion_operator(phi: float = 0.0) -> np.ndarray:
    """Photon-exchange term ``e^{i phi} a† b + e^{-i phi} a b†`` (Eq. 1).

    With qubit operators this is the XY interaction restricted to the
    single-excitation block ``{|01>, |10>}``.
    """
    a = qubit_lowering(0)
    b = qubit_lowering(1)
    return np.exp(1j * phi) * a.conj().T @ b + np.exp(-1j * phi) * a @ b.conj().T


def gain_operator(phi: float = 0.0) -> np.ndarray:
    """Two-mode squeezing term ``e^{i phi} a b + e^{-i phi} a† b†`` (Eq. 1).

    Acts on the ``{|00>, |11>}`` block: pair creation/annihilation.
    """
    a = qubit_lowering(0)
    b = qubit_lowering(1)
    return np.exp(1j * phi) * a @ b + np.exp(-1j * phi) * a.conj().T @ b.conj().T


def drive_operator(qubit: int) -> np.ndarray:
    """Resonant 1Q X drive ``a + a†`` on the given qubit (Eq. 9)."""
    low = qubit_lowering(qubit)
    return low + low.conj().T
