"""Amplitude-damping (T1) decoherence simulation.

The paper's fidelity model (Eq. 10–11) asserts ``FQ = exp(-D/T1)`` per
qubit wire.  This module provides the microscopic check: evolve density
matrices under per-qubit amplitude-damping channels interleaved with the
circuit's gates and measure the actual state fidelity.  Used by the
ablation benchmark to validate the closed-form model against simulation.
"""

from __future__ import annotations

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.dag import asap_schedule
from ..circuits.simulation import apply_gate, simulate_statevector, zero_state

__all__ = [
    "amplitude_damping_kraus",
    "apply_channel",
    "evolve_with_damping",
    "state_fidelity",
    "simulate_circuit_fidelity",
]


def amplitude_damping_kraus(gamma: float) -> tuple[np.ndarray, np.ndarray]:
    """Kraus operators of the single-qubit amplitude-damping channel."""
    if not 0.0 <= gamma <= 1.0:
        raise ValueError("damping probability must be in [0, 1]")
    k0 = np.array([[1.0, 0.0], [0.0, np.sqrt(1.0 - gamma)]], dtype=complex)
    k1 = np.array([[0.0, np.sqrt(gamma)], [0.0, 0.0]], dtype=complex)
    return k0, k1


def apply_channel(
    rho: np.ndarray,
    kraus: tuple[np.ndarray, ...],
    qubit: int,
    num_qubits: int,
) -> np.ndarray:
    """Apply a single-qubit channel to one qubit of a density matrix."""
    from .operators import embed_single

    out = np.zeros_like(rho)
    for k in kraus:
        full = embed_single(k, qubit, num_qubits)
        out += full @ rho @ full.conj().T
    return out


def state_fidelity(rho: np.ndarray, psi: np.ndarray) -> float:
    """Fidelity ``<psi| rho |psi>`` of a mixed state against a pure one."""
    psi = np.asarray(psi, dtype=complex)
    return float(np.real(psi.conj() @ rho @ psi))


def evolve_with_damping(
    circuit: QuantumCircuit,
    t1: float,
    time_step: float = 0.25,
) -> np.ndarray:
    """Density-matrix evolution with idle/active amplitude damping.

    Follows the ASAP schedule: between consecutive schedule events every
    qubit damps for the elapsed wall-clock time (busy and idle qubits
    decay alike, matching the paper's whole-circuit-duration model).

    Capped at 6 qubits (64x64 density matrices).
    """
    if circuit.num_qubits > 6:
        raise ValueError("density-matrix evolution capped at 6 qubits")
    if t1 <= 0:
        raise ValueError("t1 must be positive")
    schedule = asap_schedule(circuit)
    dim = 2**circuit.num_qubits
    state = zero_state(circuit.num_qubits)
    rho = np.outer(state, state.conj())

    events = sorted(
        zip(schedule.start_times, range(len(circuit))),
        key=lambda pair: (pair[0], pair[1]),
    )
    clock = 0.0
    for start, index in events:
        elapsed = start - clock
        if elapsed > 1e-12:
            gamma = 1.0 - np.exp(-elapsed / t1)
            kraus = amplitude_damping_kraus(gamma)
            for qubit in range(circuit.num_qubits):
                rho = apply_channel(rho, kraus, qubit, circuit.num_qubits)
            clock = start
        gate = circuit[index]
        matrix = gate.to_matrix()
        # Conjugate the density matrix by the gate.
        rho = _apply_unitary_to_rho(rho, gate, circuit.num_qubits)
    # Damp through the final busy interval.
    remaining = schedule.total_duration - clock
    if remaining > 1e-12:
        gamma = 1.0 - np.exp(-remaining / t1)
        kraus = amplitude_damping_kraus(gamma)
        for qubit in range(circuit.num_qubits):
            rho = apply_channel(rho, kraus, qubit, circuit.num_qubits)
    return rho


def _apply_unitary_to_rho(
    rho: np.ndarray, gate, num_qubits: int
) -> np.ndarray:
    # rho -> U rho U†, reusing the statevector applier on both sides.
    rho = apply_gate(rho, gate, num_qubits)
    rho = apply_gate(rho.conj().T, gate, num_qubits).conj().T
    return rho


def simulate_circuit_fidelity(
    circuit: QuantumCircuit, t1: float
) -> tuple[float, float]:
    """Compare simulated vs closed-form total fidelity.

    Returns ``(simulated, model)`` where ``model = exp(-N D / T1)``
    (paper Eq. 10–11) and ``simulated`` is the state fidelity of the
    damped evolution against the ideal output state.
    """
    ideal = simulate_statevector(circuit)
    rho = evolve_with_damping(circuit, t1)
    simulated = state_fidelity(rho, ideal)
    duration = asap_schedule(circuit).total_duration
    model = float(np.exp(-circuit.num_qubits * duration / t1))
    return simulated, model
