"""Drive schedules: piecewise-constant pulse envelopes.

A :class:`ParallelDriveSchedule` bundles the modulator pumps (conversion
and gain) with per-step 1Q drive amplitudes and evaluates the resulting
unitary or its intermediate trajectory through the Weyl chamber.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..quantum.weyl import weyl_coordinates
from .evolution import propagate_piecewise
from .hamiltonian import ConversionGainParameters

__all__ = ["ParallelDriveSchedule", "trajectory_coordinates"]


@dataclass(frozen=True)
class ParallelDriveSchedule:
    """A single parallel-driven 2Q pulse (one basis-gate application)."""

    parameters: ConversionGainParameters

    @classmethod
    def from_drives(
        cls,
        gc: float,
        gg: float,
        duration: float,
        phi_c: float = 0.0,
        phi_g: float = 0.0,
        eps1: tuple[float, ...] = (),
        eps2: tuple[float, ...] = (),
    ) -> "ParallelDriveSchedule":
        """Convenience constructor mirroring Eq. 9's free parameters."""
        return cls(
            ConversionGainParameters(
                gc=gc,
                gg=gg,
                duration=duration,
                phi_c=phi_c,
                phi_g=phi_g,
                eps1=tuple(eps1),
                eps2=tuple(eps2),
            )
        )

    @property
    def step_duration(self) -> float:
        """Duration of one piecewise-constant step."""
        return self.parameters.duration / self.parameters.num_steps

    def unitary(self) -> np.ndarray:
        """Total 4x4 propagator of the pulse."""
        hams = self.parameters.step_hamiltonians()
        return propagate_piecewise(
            hams, [self.step_duration] * len(hams)
        )

    def partial_unitaries(self, substeps_per_step: int = 8) -> list[np.ndarray]:
        """Accumulated propagators sampled along the pulse (for trajectories).

        Returns ``n_steps * substeps_per_step + 1`` matrices starting at the
        identity and ending at :meth:`unitary`.
        """
        if substeps_per_step < 1:
            raise ValueError("substeps_per_step must be >= 1")
        hams = self.parameters.step_hamiltonians()
        dt = self.step_duration / substeps_per_step
        out = [np.eye(4, dtype=complex)]
        for ham in hams:
            for _ in range(substeps_per_step):
                out.append(
                    propagate_piecewise([ham], [dt]) @ out[-1]
                )
        return out


def trajectory_coordinates(
    unitaries: list[np.ndarray],
) -> np.ndarray:
    """Weyl-chamber coordinates along a list of accumulated unitaries."""
    return np.array([weyl_coordinates(u) for u in unitaries])
