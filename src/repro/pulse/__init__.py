"""Pulse-level substrate: Hamiltonians, time evolution, SNAIL model."""

from .decoherence import (
    amplitude_damping_kraus,
    evolve_with_damping,
    simulate_circuit_fidelity,
    state_fidelity,
)
from .evolution import (
    batched_piecewise_propagators,
    batched_step_propagators,
    propagate_piecewise,
    step_propagator,
)
from .hamiltonian import (
    ConversionGainParameters,
    conversion_gain_hamiltonian,
    parallel_drive_hamiltonian,
)
from .operators import (
    conversion_operator,
    drive_operator,
    gain_operator,
    pauli_string,
    qubit_lowering,
)
from .schedule import ParallelDriveSchedule, trajectory_coordinates
from .snail import CharacterizationSweep, SNAILModel, fit_boundary

__all__ = [
    "CharacterizationSweep",
    "ConversionGainParameters",
    "ParallelDriveSchedule",
    "SNAILModel",
    "amplitude_damping_kraus",
    "evolve_with_damping",
    "simulate_circuit_fidelity",
    "state_fidelity",
    "batched_piecewise_propagators",
    "batched_step_propagators",
    "conversion_gain_hamiltonian",
    "conversion_operator",
    "drive_operator",
    "fit_boundary",
    "gain_operator",
    "parallel_drive_hamiltonian",
    "pauli_string",
    "propagate_piecewise",
    "qubit_lowering",
    "step_propagator",
    "trajectory_coordinates",
]
