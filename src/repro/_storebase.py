"""Shared sqlite discipline for every persistent store in the repo.

Five stores grew the same connection management independently — the
job queue, the result store, the decomposition cache, the coverage
store, and the perf ledger.  Each carried the identical WAL journal
setup, fork-safe lazy reconnect, and (for the loud ones) the
schema-versioned ``meta`` table with migration refusal.  This module
is the one copy: a mixin a store class configures with class
attributes and, when needed, a couple of hook overrides.

Two failure policies coexist behind one surface:

* **loud** stores (queue, results, ledger) raise their configured
  error class when the database cannot be opened — durability was the
  point, so a broken store is a broken server;
* **degrade** stores (decomposition cache, coverage store) fall back
  to memory-only operation — a cache that cannot persist must never
  fail a compilation.

Schema mismatch is always loud, for both policies: silently serving
from an incompatible layout is worse than refusing.  A subclass may
override :meth:`_store_migrate` to upgrade old layouts in place
instead (the perf ledger's v1 -> v2 column add rides this hook).

On top of the connection discipline sits the key-range surface the
sharded service tier folds shards with: :meth:`iter_range` walks a
contiguous slice of the primary-key space, :meth:`row_count` sizes a
partition, and :meth:`merge` absorbs another same-layout database
first-writer-wins.  Stores with stronger merge semantics (the result
store refuses digest conflicts) override :meth:`merge` and keep the
rest.

This is the implementation module behind the public
:mod:`repro.service.store_base`.  It lives at the top of the package
and imports nothing from ``repro`` (stdlib only) because
``obs.ledger`` mixes it in at class-definition time while
``repro.obs`` must stay an import leaf: routing the import through
``repro.service`` (whose ``__init__`` pulls the whole compile stack)
from inside ``obs`` re-enters partially-initialized modules.  Stores
keep their own metrics/stats at call sites instead.
"""

from __future__ import annotations

import os
import sqlite3
from collections.abc import Iterator
from pathlib import Path

__all__ = ["SqliteStoreMixin", "StoreError", "detect_store_kind"]


class StoreError(RuntimeError):
    """A shared-discipline sqlite store could not be opened or merged."""


class SqliteStoreMixin:
    """Fork-safe, WAL-journaled, schema-versioned sqlite connection.

    Subclasses configure via class attributes:

    * ``_STORE_SCHEMA`` — integer version stamped into ``meta``;
    * ``_STORE_SCHEMA_KEY`` — the ``meta`` row name (historical stores
      disagree: ``'schema'`` vs the ledger's ``'schema_version'``);
    * ``_STORE_DDL`` — ``CREATE TABLE IF NOT EXISTS ...`` statements;
    * ``_STORE_ERROR`` — exception class raised on loud failures;
    * ``_STORE_DEGRADE`` — ``True`` turns open failures into
      memory-only fallback (:meth:`_store_degraded` fires once);
    * ``_STORE_SAME_THREAD`` — ``False`` for server-side stores opened
      on one thread and served from the event loop's;
    * ``_STORE_TABLE`` / ``_STORE_KEY`` — the primary table and its
      key column, powering ``iter_range``/``row_count``/``merge``;
    * ``_STORE_LABEL`` — human name used in default error messages.

    The mixin owns ``self.path`` / ``self._conn`` / ``self._pid``;
    subclasses call :meth:`_init_store` from ``__init__``.
    """

    _STORE_SCHEMA: int = 1
    _STORE_SCHEMA_KEY: str = "schema"
    _STORE_DDL: tuple[str, ...] = ()
    _STORE_ERROR: type[Exception] = StoreError
    _STORE_DEGRADE: bool = False
    _STORE_SAME_THREAD: bool = True
    _STORE_TABLE: str = ""
    _STORE_KEY: str = "key"
    _STORE_LABEL: str = "sqlite store"

    # -- connection ----------------------------------------------------------

    def _init_store(self, path: str | Path | None) -> None:
        """Set the connection state every store instance carries."""
        self.path: Path | None = Path(path) if path is not None else None
        self._conn: sqlite3.Connection | None = None
        self._pid = os.getpid()

    def _connection(self) -> sqlite3.Connection | None:
        """Open (or re-open after fork) the backing database.

        ``None`` means memory-only: either no path was configured, or a
        degrade-policy store hit an unusable database.
        """
        if self.path is None:
            return None
        if self._conn is not None and self._pid == os.getpid():
            return self._conn
        # Connections must never cross a fork; drop the parent's handle.
        self._conn = None
        self._pid = os.getpid()
        try:
            conn = self._open_db(self.path)
        except (OSError, sqlite3.Error) as exc:
            if self._STORE_DEGRADE:
                # Unusable store (read-only fs blocking the mkdir,
                # corrupted file, ...): degrade to memory-only rather
                # than failing the caller's workload.
                self.path = None
                self._store_degraded()
                return None
            raise self._STORE_ERROR(self._store_open_message(exc)) from exc
        self._conn = conn
        return conn

    def _open_db(self, path: Path) -> sqlite3.Connection:
        """Open ``path`` with pragmas, schema check, and table DDL.

        Raises the configured error class on schema mismatch and lets
        ``OSError``/``sqlite3.Error`` propagate for :meth:`_connection`
        to apply the loud/degrade policy.
        """
        path.parent.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(
            path, timeout=30.0, check_same_thread=self._STORE_SAME_THREAD
        )
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS meta ("
                "  key TEXT PRIMARY KEY, value TEXT NOT NULL)"
            )
            row = conn.execute(
                "SELECT value FROM meta WHERE key = ?",
                (self._STORE_SCHEMA_KEY,),
            ).fetchone()
            if row is None:
                conn.execute(
                    "INSERT INTO meta VALUES (?, ?)",
                    (self._STORE_SCHEMA_KEY, str(self._STORE_SCHEMA)),
                )
            elif not self._store_migrate(conn, int(row[0])):
                conn.close()
                raise self._STORE_ERROR(
                    self._store_schema_message(int(row[0]))
                )
            for statement in self._STORE_DDL:
                conn.execute(statement)
            conn.commit()
        except (OSError, sqlite3.Error):
            conn.close()
            raise
        return conn

    def _store_migrate(self, conn: sqlite3.Connection, found: int) -> bool:
        """Accept (and possibly upgrade) an existing schema version.

        Returns ``True`` when ``found`` is usable — either current, or
        migrated in place by an override.  ``False`` triggers the loud
        mismatch refusal.  Overrides must update the ``meta`` row when
        they migrate.
        """
        return found == self._STORE_SCHEMA

    def _store_degraded(self) -> None:
        """Hook: a degrade-policy store just fell back to memory-only."""

    def _store_open_message(self, exc: Exception) -> str:
        return f"cannot open {self._STORE_LABEL} at {self.path}: {exc}"

    def _store_schema_message(self, found: int) -> str:
        return (
            f"{self._STORE_LABEL} {self.path} has schema v{found}, this "
            f"build writes v{self._STORE_SCHEMA}; point it at a fresh "
            "path or migrate the old one"
        )

    def close(self) -> None:
        """Close the database handle (reopened lazily on next use)."""
        if self._conn is not None and self._pid == os.getpid():
            self._conn.close()
        self._conn = None

    # -- key-range surface ---------------------------------------------------

    def iter_range(self, lo: str = "", hi: str | None = None) -> Iterator[tuple]:
        """Rows of the primary table with key in ``[lo, hi)``, sorted.

        The half-open interval composes into gap-free partitions — the
        contract the digest-range shard router relies on.  ``hi=None``
        leaves the range unbounded above.  Memory-only stores yield
        nothing.
        """
        conn = self._connection()
        if conn is None or not self._STORE_TABLE:
            return
        sql = (
            f"SELECT * FROM {self._STORE_TABLE} "  # noqa: S608 - class-level names
            f"WHERE {self._STORE_KEY} >= ?"
        )
        params: list[str] = [lo]
        if hi is not None:
            sql += f" AND {self._STORE_KEY} < ?"
            params.append(hi)
        sql += f" ORDER BY {self._STORE_KEY}"
        yield from conn.execute(sql, params)

    def row_count(self) -> int:
        """Persisted rows in the primary table (0 when memory-only)."""
        conn = self._connection()
        if conn is None or not self._STORE_TABLE:
            return 0
        (count,) = conn.execute(
            f"SELECT COUNT(*) FROM {self._STORE_TABLE}"
        ).fetchone()
        return int(count)

    def merge(self, other_path: str | Path) -> int:
        """Fold another same-layout database into this one.

        First writer wins per key (``INSERT OR IGNORE``): existing rows
        are never overwritten, so repeated folds are idempotent.  The
        source is opened through the same schema check as the
        destination; a version mismatch refuses the merge.  Returns the
        number of rows absorbed.

        Stores whose rows carry semantic identity beyond the key (the
        result store's digests) override this with a conflict-refusing
        variant.
        """
        conn = self._connection()
        if conn is None or not self._STORE_TABLE:
            raise self._STORE_ERROR(
                f"cannot merge into a memory-only {self._STORE_LABEL}"
            )
        other_path = Path(other_path)
        if not other_path.exists():
            raise self._STORE_ERROR(
                f"no {self._STORE_LABEL} to merge at {other_path}"
            )
        if self.path is not None and other_path.resolve() == self.path.resolve():
            raise self._STORE_ERROR(
                f"refusing to merge {self._STORE_LABEL} {self.path} into itself"
            )
        source = self._open_db(other_path)
        try:
            rows = source.execute(
                f"SELECT * FROM {self._STORE_TABLE}"
            ).fetchall()
        finally:
            source.close()
        if not rows:
            return 0
        placeholders = ",".join("?" * len(rows[0]))
        absorbed = 0
        try:
            for row in rows:
                cursor = conn.execute(
                    f"INSERT OR IGNORE INTO {self._STORE_TABLE} "
                    f"VALUES ({placeholders})",
                    row,
                )
                absorbed += cursor.rowcount
            conn.commit()
        except sqlite3.Error as exc:
            raise self._STORE_ERROR(
                f"cannot merge {other_path} into {self._STORE_LABEL} "
                f"{self.path}: {exc}"
            ) from exc
        return absorbed


#: Primary-table name -> store kind, checked in declaration order (each
#: store database carries exactly one of these tables).
_KIND_TABLES = (
    ("results", "results"),
    ("templates", "decomp"),
    ("clouds", "coverage"),
    ("queue", "queue"),
    ("runs", "ledger"),
)


def detect_store_kind(path: str | Path) -> str:
    """Which store family a database belongs to, by its table names.

    Powers ``repro store merge`` auto-detection: returns ``"results"``,
    ``"decomp"``, ``"coverage"``, ``"queue"``, or ``"ledger"``.
    """
    path = Path(path)
    if not path.exists():
        raise StoreError(f"no store database at {path}")
    try:
        conn = sqlite3.connect(f"file:{path}?mode=ro", uri=True, timeout=30.0)
        try:
            names = {
                row[0]
                for row in conn.execute(
                    "SELECT name FROM sqlite_master WHERE type = 'table'"
                )
            }
        finally:
            conn.close()
    except sqlite3.Error as exc:
        raise StoreError(f"cannot read {path} as a sqlite store: {exc}") from exc
    for table, kind in _KIND_TABLES:
        if table in names:
            return kind
    raise StoreError(
        f"{path} is not a recognized repro store "
        f"(tables: {sorted(names) or 'none'})"
    )
