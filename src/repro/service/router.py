"""Digest-range shard router: the front tier of the sharded service.

One :class:`~repro.service.server.CompileServer` scales until its
worker pool saturates one machine's cores; past that the keyspace
itself must be split.  :class:`ShardRouter` partitions the job
identity-digest space (hex sha256, so uniformly distributed by
construction) into ``N`` contiguous ranges and routes every submitted
:class:`~repro.service.jobs.CompileJob` to the shard owning its
digest prefix.  Each shard is an ordinary, unmodified
:class:`CompileServer` with its own queue/result-store partition —
the router speaks the same client protocol downward that it serves
upward, so shards don't know they are shards.

Routing invariants:

* **Contiguity** — shard ``i`` owns the half-open bucket interval
  ``[ceil(i*K/N), ceil((i+1)*K/N))`` over ``K = 16**4`` digest-prefix
  buckets.  Ranges tile the keyspace exactly: every digest has one
  owner, and a shard's result-store partition covers one contiguous
  ``iter_range`` slice — the property ``repro store merge`` folds
  along.
* **Affinity** — identical jobs always land on the same shard, so the
  per-shard dedup tiers (result store, inflight subscription) keep
  their single-server semantics unchanged.  On top of that the router
  keeps a small LRU memo of successful results, answering repeats
  without a shard hop at all (``status: dedup_router``).
* **Transparency** — shard ndjson events stream back unchanged except
  for index remapping (client indices are submission-relative) and a
  ``shard`` tag; digests served through the router are bit-identical
  to the single-process path because the same worker body runs below.

Degradation: a dead shard fails *its digest range*, not the service.
The stream carries a ``shard_down`` event naming the shard, URL, and
hex range, then per-job failure results for the jobs stranded there —
so a client learns exactly which slice of the keyspace is degraded
(:attr:`ServiceClient.degraded_ranges`) while other ranges proceed.

Tracing: the router emits one ``service.route`` span per
(submission, shard) group and re-parents forwarded jobs under it, so
a traced client renders one Perfetto timeline spanning
client → router → shard → worker.

:func:`serve_sharded` is the one-command supervisor behind ``repro
serve --shards N``: fork N shard servers on OS-assigned ports (each
with ``.shardI``-suffixed store paths), run the router in the
foreground, and on drain fold the shard result stores into the
canonical ``--results-db`` via :meth:`ResultStore.merge`.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from ..obs import metrics, trace
from .client import ServiceClient, ServiceError
from .engine import ResultMergeError, ResultStore
from .jobs import CompileJob, CompileResult
from .server import (
    _SPAN_IDS,
    CompileServer,
    _end_event_stream,
    _read_http_request,
    _start_event_stream,
    _write_json_response,
    _write_stream_event,
)

__all__ = [
    "DigestRange",
    "RouterThread",
    "ShardRouter",
    "merge_shard_stores",
    "serve_sharded",
    "shard_index",
    "shard_ranges",
    "shard_store_path",
]

#: Hex digits of the identity digest used for routing.  Four digits
#: give 65536 buckets — enough to split evenly across any plausible
#: shard count while keeping range labels human-readable.
_PREFIX_DIGITS = 4
_KEYSPACE = 16**_PREFIX_DIGITS


@dataclass(frozen=True)
class DigestRange:
    """One shard's contiguous slice of the digest-prefix keyspace.

    Half-open over integer buckets ``[lo, hi)``; ``hi == 16**4`` means
    unbounded above.  ``key_bounds`` renders the same interval as hex
    string bounds compatible with the stores'
    :meth:`~repro._storebase.SqliteStoreMixin.iter_range`.
    """

    shard: int
    lo: int
    hi: int

    @property
    def lo_hex(self) -> str:
        return format(self.lo, f"0{_PREFIX_DIGITS}x")

    @property
    def hi_hex(self) -> str:
        return format(self.hi, f"0{_PREFIX_DIGITS + 1}x") \
            if self.hi >= _KEYSPACE else format(self.hi, f"0{_PREFIX_DIGITS}x")

    @property
    def label(self) -> str:
        return f"[{self.lo_hex}, {self.hi_hex})"

    def contains(self, digest: str) -> bool:
        return self.lo <= int(digest[:_PREFIX_DIGITS], 16) < self.hi

    def key_bounds(self) -> tuple[str, str | None]:
        """``(lo, hi)`` hex-string bounds for store ``iter_range``."""
        return self.lo_hex, (None if self.hi >= _KEYSPACE else self.hi_hex)


def shard_ranges(count: int) -> list[DigestRange]:
    """Tile the digest keyspace into ``count`` contiguous ranges."""
    if count < 1:
        raise ValueError("shard count must be >= 1")
    bounds = [(i * _KEYSPACE + count - 1) // count for i in range(count + 1)]
    bounds[-1] = _KEYSPACE
    return [
        DigestRange(shard=i, lo=bounds[i], hi=bounds[i + 1])
        for i in range(count)
    ]


def shard_index(digest: str, count: int) -> int:
    """The shard owning ``digest`` under :func:`shard_ranges`.

    ``bucket * count // KEYSPACE`` is the exact inverse of the
    ceil-partition above: ``shard_ranges(count)[shard_index(d, count)]
    .contains(d)`` holds for every digest.
    """
    return int(digest[:_PREFIX_DIGITS], 16) * count // _KEYSPACE


def shard_store_path(path: str | Path | None, shard: int) -> str | None:
    """A shard-private sibling of a store path (``x.shard0.sqlite``)."""
    if path is None:
        return None
    path = Path(path)
    return str(path.with_name(f"{path.stem}.shard{shard}{path.suffix}"))


class ShardRouter:
    """Route compile submissions across digest-range shard servers.

    Args:
        shard_urls: one ``http://host:port`` per shard, in range order
            (shard ``i`` owns ``shard_ranges(N)[i]``).
        host/port: the router's own bind address (``port=0`` → OS
            pick, resolved after startup).
        timeout: per-read timeout on shard streams, seconds.
        memo_size: LRU capacity of the router-level result memo
            (successful results only; 0 disables it).
    """

    def __init__(
        self,
        shard_urls: list[str],
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float = 120.0,
        memo_size: int = 256,
    ):
        if not shard_urls:
            raise ValueError("router needs at least one shard URL")
        self.shard_urls = list(shard_urls)
        self.count = len(self.shard_urls)
        self.ranges = shard_ranges(self.count)
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.memo_size = int(memo_size)
        self._memo: OrderedDict[str, dict] = OrderedDict()
        # Down-shard dials must fail fast: the stranded jobs' failure
        # results are blocking the client's stream.
        self._clients = [
            ServiceClient(
                url, timeout=self.timeout,
                connect_retries=1, backoff_base=0.05,
            )
            for url in self.shard_urls
        ]
        self._accepting = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._connections: set = set()

    # -- lifecycle -----------------------------------------------------------

    async def run(self, ready_callback=None) -> None:
        """Serve until :meth:`shutdown` fires (the main coroutine)."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._accepting = True
        server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = server.sockets[0].getsockname()[1]
        if ready_callback is not None:
            ready_callback(self)
        try:
            await self._stop_event.wait()
        finally:
            self._accepting = False
            for conn in list(self._connections):
                conn.close()
            server.close()
            await server.wait_closed()
            for client in self._clients:
                client.close()

    async def shutdown(self, drain: bool = True, stop_shards: bool = False) -> None:
        """Stop the router, optionally fanning shutdown out to shards.

        ``stop_shards`` is what the HTTP shutdown endpoint uses — one
        ``POST /v1/shutdown`` at the router stops the whole topology.
        Local-only shutdown (the default) leaves shards running, which
        is what test harnesses owning their own shard lifecycles want.
        """
        self._accepting = False
        if stop_shards:
            loop = asyncio.get_running_loop()

            async def stop_one(index: int) -> None:
                try:
                    await loop.run_in_executor(
                        None, lambda: self._clients[index].shutdown(drain)
                    )
                except ServiceError:
                    pass  # Already down — that's a stopped shard too.

            await asyncio.gather(
                *(stop_one(index) for index in range(self.count))
            )
        if self._stop_event is not None:
            self._stop_event.set()

    # -- HTTP ----------------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        self._connections.add(writer)
        try:
            while True:
                request = await _read_http_request(reader)
                if request is None:
                    break
                method, path, body = request
                if method == "GET" and path == "/v1/health":
                    await _write_json_response(writer, 200, await self._health())
                elif method == "GET" and path == "/v1/metrics":
                    await _write_json_response(
                        writer, 200, metrics.REGISTRY.snapshot()
                    )
                elif method == "POST" and path == "/v1/shutdown":
                    payload = json.loads(body or b"{}")
                    drain = bool(payload.get("drain", True))
                    await _write_json_response(
                        writer, 200,
                        {"ok": True, "drain": drain, "router": True},
                    )
                    asyncio.ensure_future(
                        self.shutdown(drain=drain, stop_shards=True)
                    )
                    break
                elif method == "POST" and path == "/v1/submit":
                    await self._handle_submit(writer, body)
                else:
                    await _write_json_response(
                        writer, 404, {"error": f"no route {method} {path}"}
                    )
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            pass
        except asyncio.CancelledError:
            # Loop teardown cancelled an idle keep-alive handler;
            # returning (not re-raising) keeps shutdown quiet.
            pass
        except Exception as exc:  # noqa: BLE001 - report, don't crash router
            try:
                await _write_json_response(
                    writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
                )
            except OSError:
                pass
        finally:
            self._connections.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (OSError, ConnectionResetError):
                pass

    async def _handle_submit(self, writer, body: bytes) -> None:
        if not self._accepting:
            await _write_json_response(
                writer, 503, {"error": "router is draining/stopped"}
            )
            return
        try:
            payload = json.loads(body or b"{}")
            jobs = [
                CompileJob.from_dict(item)
                for item in payload.get("jobs", [])
            ]
            priority = int(payload.get("priority", 0))
        except (ValueError, TypeError, KeyError) as exc:
            await _write_json_response(
                writer, 400, {"error": f"bad submission: {exc}"}
            )
            return
        if not jobs:
            await _write_json_response(
                writer, 400, {"error": "submission carries no jobs"}
            )
            return
        metrics.counter("repro.service.router.submissions").inc()
        await _start_event_stream(writer)
        await _write_stream_event(
            writer,
            {"event": "hello", "server_pid": os.getpid(),
             "count": len(jobs), "router": True, "shards": self.count},
        )
        settled = 0
        groups: dict[int, list[tuple[int, CompileJob]]] = {}
        for index, job in enumerate(jobs):
            digest = job.identity_digest()
            memo = self._memo_get(digest)
            if memo is not None:
                metrics.counter("repro.service.router.dedup_hits").inc()
                await _write_stream_event(
                    writer,
                    {"event": "accepted", "index": index, "key": digest,
                     "status": "dedup_router"},
                )
                await _write_stream_event(
                    writer,
                    {"event": "result", "index": index, "key": digest,
                     "ok": True, "dedup": True, "result": memo},
                )
                settled += 1
                continue
            groups.setdefault(shard_index(digest, self.count), []).append(
                (index, job)
            )
        events: asyncio.Queue = asyncio.Queue()
        loop = asyncio.get_running_loop()
        for shard, group in groups.items():
            metrics.counter(f"repro.service.shard.{shard}.jobs").inc(
                len(group)
            )
            loop.run_in_executor(
                None, self._forward_group, shard, group, priority, events, loop
            )
        while settled < len(jobs):
            event = await events.get()
            kind = event.get("event")
            if kind == "result":
                settled += 1
                self._memo_put(event)
                if "shard" in event:
                    metrics.counter(
                        f"repro.service.shard.{event['shard']}.results"
                    ).inc()
            elif kind == "shard_down":
                metrics.counter("repro.service.router.shard_down").inc()
                metrics.counter(
                    f"repro.service.shard.{event['shard']}.errors"
                ).inc()
            await _write_stream_event(writer, event)
        await _write_stream_event(
            writer, {"event": "done", "count": len(jobs)}
        )
        await _end_event_stream(writer)

    # -- forwarding (executor threads) ---------------------------------------

    def _forward_group(
        self, shard: int, group: list, priority: int, events, loop
    ) -> None:
        """Stream one shard's slice of a submission back to the loop.

        Runs on an executor thread (the shard client is blocking);
        every event crosses back via ``call_soon_threadsafe``.  Shard
        ``hello``/``done`` frames are swallowed (the router emits its
        own), indices are remapped to submission-relative, and the
        group's ``service.route`` span rides the last result's freight.
        """
        range_ = self.ranges[shard]
        client = self._clients[shard]
        start = time.perf_counter()
        context = next(
            (job.trace for _, job in group if job.trace is not None), None
        )
        span_id = f"{os.getpid():x}-r{next(_SPAN_IDS):x}"
        forwarded = []
        for _, job in group:
            if job.trace is not None:
                # Re-parent under the route span so shard-side
                # service.job spans nest inside the router hop.
                job = job.updated(trace={**job.trace, "parent_id": span_id})
            forwarded.append(job)

        def emit(event: dict) -> None:
            loop.call_soon_threadsafe(events.put_nowait, event)

        sub_to_orig = [orig for orig, _ in group]
        done_indices: set[int] = set()
        try:
            for event in client.submit_stream(forwarded, priority=priority):
                kind = event.get("event")
                if kind in ("hello", "done"):
                    continue
                if "index" in event:
                    orig = sub_to_orig[event["index"]]
                    event = {**event, "index": orig, "shard": shard}
                    if kind == "result":
                        done_indices.add(orig)
                        if len(done_indices) == len(group):
                            event = self._with_route_span(
                                event, context, span_id, start, range_,
                                len(group),
                            )
                emit(event)
        except ServiceError as exc:
            emit(
                {"event": "shard_down", "shard": shard,
                 "url": self.shard_urls[shard], "range": range_.label,
                 "error": str(exc)}
            )
            for orig, job in group:
                if orig in done_indices:
                    continue
                failure = CompileResult.failure(
                    job,
                    error=(
                        f"shard {shard} at {self.shard_urls[shard]} is "
                        f"unreachable; digest range {range_.label} "
                        f"degraded: {exc}"
                    ),
                )
                emit(
                    {"event": "result", "index": orig,
                     "key": job.identity_digest(), "ok": False,
                     "dedup": False, "shard": shard,
                     "result": failure.to_dict()}
                )

    def _with_route_span(
        self,
        event: dict,
        context: dict | None,
        span_id: str,
        start: float,
        range_: DigestRange,
        group_size: int,
    ) -> dict:
        """Attach the group's ``service.route`` span to result freight."""
        if context is None:
            return event
        span = trace.Span(
            name="service.route",
            trace_id=context.get("trace_id", ""),
            span_id=span_id,
            parent_id=context.get("parent_id"),
            start=start,
            duration=time.perf_counter() - start,
            pid=os.getpid(),
            attrs={
                "shard": range_.shard,
                "range": range_.label,
                "jobs": group_size,
            },
        )
        if trace.TRACER.enabled:
            trace.TRACER.spans.append(span)
        freight = dict(
            event.get("freight")
            or {"pid": os.getpid(), "spans": [], "metrics": {}}
        )
        freight["spans"] = list(freight.get("spans", ())) + [span.to_dict()]
        return {**event, "freight": freight}

    # -- memo ----------------------------------------------------------------

    def _memo_get(self, digest: str) -> dict | None:
        payload = self._memo.get(digest)
        if payload is not None:
            self._memo.move_to_end(digest)
        return payload

    def _memo_put(self, event: dict) -> None:
        if not self.memo_size or not event.get("ok"):
            return
        key = event.get("key")
        if not key:
            return
        self._memo[key] = event["result"]
        self._memo.move_to_end(key)
        while len(self._memo) > self.memo_size:
            self._memo.popitem(last=False)

    # -- health --------------------------------------------------------------

    async def _health(self) -> dict:
        """Aggregate shard healths; a down shard degrades its range."""
        loop = asyncio.get_running_loop()

        async def one(index: int) -> dict:
            try:
                return await loop.run_in_executor(
                    None, self._clients[index].health
                )
            except ServiceError as exc:
                return {"status": "down", "error": str(exc)}

        shard_health = list(
            await asyncio.gather(*(one(index) for index in range(self.count)))
        )
        degraded = [
            self.ranges[index].label
            for index, health in enumerate(shard_health)
            if health.get("status") not in ("ok", "draining")
        ]
        return {
            "status": "degraded" if degraded else (
                "ok" if self._accepting else "draining"
            ),
            "router": True,
            "pid": os.getpid(),
            "shards": [
                {"shard": index, "url": self.shard_urls[index],
                 "range": self.ranges[index].label, **health}
                for index, health in enumerate(shard_health)
            ],
            "degraded_ranges": degraded,
            "inflight": sum(
                int(h.get("inflight", 0)) for h in shard_health
            ),
            "queue_depth": sum(
                int(h.get("queue_depth", 0)) for h in shard_health
            ),
        }


class RouterThread:
    """A :class:`ShardRouter` on a background thread (tests, benches).

    Context manager, mirroring
    :class:`~repro.service.server.ServerThread`.  Stopping is local to
    the router — the shard servers' own lifecycles are untouched.
    """

    def __init__(self, shard_urls: list[str], **kwargs):
        self.router = ShardRouter(shard_urls, **kwargs)
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()

    @property
    def url(self) -> str:
        return f"http://{self.router.host}:{self.router.port}"

    def start(self) -> "RouterThread":
        self._thread = threading.Thread(
            target=self._main, name="repro-route", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("shard router failed to start in 30s")
        return self

    def _main(self) -> None:
        asyncio.run(
            self.router.run(ready_callback=lambda _r: self._ready.set())
        )

    def stop(self) -> None:
        loop = self.router._loop
        if loop is not None and loop.is_running():
            asyncio.run_coroutine_threadsafe(
                self.router.shutdown(stop_shards=False), loop
            )
        if self._thread is not None:
            self._thread.join(timeout=30)

    def __enter__(self) -> "RouterThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


# -- supervisor ---------------------------------------------------------------


def _run_shard(conn, kwargs: dict) -> None:
    """Forked shard body: run one CompileServer, report its port."""

    def ready(server: CompileServer) -> None:
        conn.send(server.port)
        conn.close()

    asyncio.run(CompileServer(**kwargs).run(ready_callback=ready))


def merge_shard_stores(results_path: str | Path, shards: int) -> int:
    """Fold every existing shard result partition into the canonical db.

    Returns the number of result rows absorbed.  Digest conflicts
    (:class:`ResultMergeError`) propagate — a determinism violation
    across shards must stop the fold, not half-apply it.
    """
    store = ResultStore(path=results_path)
    absorbed = 0
    try:
        for shard in range(shards):
            partition = shard_store_path(results_path, shard)
            if partition is not None and Path(partition).exists():
                absorbed += store.merge(partition)
    finally:
        store.close()
    return absorbed


def serve_sharded(
    host: str = "127.0.0.1",
    port: int = 8234,
    shards: int = 2,
    merge_on_drain: bool = True,
    queue_path: str | Path | None = None,
    results_path: str | Path | None = None,
    cache_path: str | Path | None = None,
    **kwargs,
) -> int:
    """Blocking entry point for ``repro serve --shards N``.

    Forks ``shards`` ordinary :class:`CompileServer` processes on
    OS-assigned ports — each with shard-private queue/results/cache
    paths derived from the given ones — then runs the digest-range
    router in the foreground.  A ``POST /v1/shutdown`` at the router
    drains the whole topology; afterwards (``merge_on_drain``) the
    shard result partitions are folded into the canonical
    ``results_path`` store.
    """
    try:
        context_mp = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        context_mp = multiprocessing.get_context("spawn")
    procs = []
    for shard in range(shards):
        receiver, sender = context_mp.Pipe(duplex=False)
        shard_kwargs = dict(
            kwargs,
            host=host,
            port=0,
            queue_path=shard_store_path(queue_path, shard),
            results_path=shard_store_path(results_path, shard),
            cache_path=shard_store_path(cache_path, shard),
        )
        process = context_mp.Process(
            target=_run_shard, args=(sender, shard_kwargs), daemon=False
        )
        process.start()
        sender.close()
        procs.append((process, receiver))
    urls = []
    for shard, (process, receiver) in enumerate(procs):
        if not receiver.poll(30):
            for doomed, _ in procs:
                doomed.terminate()
            raise RuntimeError(f"shard {shard} failed to start in 30s")
        urls.append(f"http://{host}:{receiver.recv()}")
    ranges = shard_ranges(shards)
    router = ShardRouter(urls, host=host, port=port)

    def announce(r: ShardRouter) -> None:
        print(
            f"repro shard router listening on http://{r.host}:{r.port} "
            f"({shards} shards)",
            flush=True,
        )
        for shard, url in enumerate(urls):
            print(
                f"  shard {shard}: {url} owns digests {ranges[shard].label}",
                flush=True,
            )

    try:
        asyncio.run(router.run(ready_callback=announce))
    except KeyboardInterrupt:
        print("repro serve: interrupted, stopping shards", flush=True)
        for process, _ in procs:
            process.terminate()
    for process, _ in procs:
        process.join(timeout=30)
    if merge_on_drain and results_path is not None:
        try:
            absorbed = merge_shard_stores(results_path, shards)
        except ResultMergeError as exc:
            print(f"repro serve: shard merge refused: {exc}", flush=True)
            return 1
        print(
            f"repro serve: folded {absorbed} shard result row(s) "
            f"into {results_path}",
            flush=True,
        )
    return 0
