"""Crash-safe priority queue backing the compile service.

The server schedules from an in-memory heap; this module is the
*durability* layer under it.  Every accepted job is written to a
sqlite table before it becomes schedulable, moves through
``pending -> running -> done`` status transitions as the scheduler
handles it, and — the point of the exercise — any row still
``pending`` or ``running`` when a server process starts is handed
back by :meth:`PersistentJobQueue.recover`: a server that crashed
mid-job resumes exactly the work it lost, attempts preserved.

The sqlite store discipline (WAL journal, fork-safe lazy connections,
schema-versioned ``meta`` table with a loud refusal on mismatch) comes
from :class:`~repro.service.store_base.SqliteStoreMixin`.
``path=None`` degrades to a memory-only queue with the same
interface, for tests and throwaway servers where durability is not
wanted.
"""

from __future__ import annotations

import json
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path

from .jobs import CompileJob
from .store_base import SqliteStoreMixin

__all__ = ["PersistentJobQueue", "QueueError", "QueuedJob"]

#: Queue schema version (bumped on incompatible layout changes).
_QUEUE_SCHEMA = 1


class QueueError(RuntimeError):
    """The persistent queue could not be opened or written."""


@dataclass
class QueuedJob:
    """One durable queue entry (the scheduler's unit of work)."""

    key: str
    job: CompileJob
    priority: int
    attempts: int
    submitted_at: float


class PersistentJobQueue(SqliteStoreMixin):
    """Sqlite-backed job ledger with pending/running/done lifecycle.

    Not itself a scheduler: ordering lives in the server's heap.  This
    class guarantees that whatever the heap held is reconstructible
    after a crash, and that completed work is never re-run.
    """

    _STORE_SCHEMA = _QUEUE_SCHEMA
    _STORE_DDL = (
        "CREATE TABLE IF NOT EXISTS queue ("
        "  key TEXT PRIMARY KEY,"
        "  payload TEXT NOT NULL,"
        "  priority INTEGER NOT NULL,"
        "  status TEXT NOT NULL,"
        "  attempts INTEGER NOT NULL,"
        "  submitted_at REAL NOT NULL)",
    )
    _STORE_ERROR = QueueError
    # check_same_thread off: constructed on the caller's thread, served
    # from the event loop's (single-writer per instance).
    _STORE_SAME_THREAD = False
    _STORE_TABLE = "queue"
    _STORE_LABEL = "job queue"

    def __init__(self, path: str | Path | None = None):
        self._init_store(path)
        #: Memory-only fallback rows, keyed like the sqlite table.
        self._rows: dict[str, dict] = {}
        if self.path is not None:
            self._connection()  # fail loudly at construction time

    # -- backend -------------------------------------------------------------

    def _store_schema_message(self, found: int) -> str:
        return (
            f"job queue {self.path} has schema v{found}, this "
            f"build writes v{_QUEUE_SCHEMA}; point the server at "
            "a fresh --queue path or migrate the old one"
        )

    def _execute(self, sql: str, params: tuple) -> None:
        conn = self._connection()
        if conn is None:
            return
        try:
            conn.execute(sql, params)
            conn.commit()
        except sqlite3.Error as exc:
            raise QueueError(
                f"cannot write job queue at {self.path}: {exc}"
            ) from exc

    # -- lifecycle -----------------------------------------------------------

    def put(self, key: str, job: CompileJob, priority: int = 0) -> QueuedJob:
        """Durably record a new pending job (before it is schedulable)."""
        now = time.time()
        entry = QueuedJob(
            key=key, job=job, priority=priority, attempts=0,
            submitted_at=now,
        )
        payload = job.to_json()
        if self.path is None:
            self._rows[key] = {
                "payload": payload, "priority": priority,
                "status": "pending", "attempts": 0, "submitted_at": now,
            }
        else:
            self._execute(
                "INSERT OR REPLACE INTO queue VALUES (?, ?, ?, ?, ?, ?)",
                (key, payload, priority, "pending", 0, now),
            )
        return entry

    def mark_running(self, key: str, attempts: int) -> None:
        """Transition a job to running with its current attempt count."""
        if self.path is None:
            row = self._rows.get(key)
            if row is not None:
                row["status"] = "running"
                row["attempts"] = attempts
            return
        self._execute(
            "UPDATE queue SET status = 'running', attempts = ? "
            "WHERE key = ?",
            (attempts, key),
        )

    def requeue(self, key: str, attempts: int) -> None:
        """Transition a job back to pending after a lost execution."""
        if self.path is None:
            row = self._rows.get(key)
            if row is not None:
                row["status"] = "pending"
                row["attempts"] = attempts
            return
        self._execute(
            "UPDATE queue SET status = 'pending', attempts = ? "
            "WHERE key = ?",
            (attempts, key),
        )

    def mark_done(self, key: str) -> None:
        """Drop a settled job from the durable queue."""
        if self.path is None:
            self._rows.pop(key, None)
            return
        self._execute("DELETE FROM queue WHERE key = ?", (key,))

    # -- recovery / introspection --------------------------------------------

    def recover(self) -> list[QueuedJob]:
        """Jobs a previous process left unfinished, oldest first.

        Both ``pending`` rows (accepted but never started) and
        ``running`` rows (started, then the server died) come back —
        a ``running`` row with no live server *is* a crashed job.
        Attempt counts are preserved so the bounded-requeue budget
        spans crashes.
        """
        if self.path is None:
            rows = [
                (key, row["payload"], row["priority"], row["attempts"],
                 row["submitted_at"])
                for key, row in self._rows.items()
                if row["status"] in ("pending", "running")
            ]
        else:
            conn = self._connection()
            rows = conn.execute(
                "SELECT key, payload, priority, attempts, submitted_at "
                "FROM queue WHERE status IN ('pending', 'running') "
                "ORDER BY submitted_at, key"
            ).fetchall()
        return [
            QueuedJob(
                key=key,
                job=CompileJob.from_dict(json.loads(payload)),
                priority=int(priority),
                attempts=int(attempts),
                submitted_at=float(submitted_at),
            )
            for key, payload, priority, attempts, submitted_at in rows
        ]

    def depth(self) -> int:
        """Unsettled entries (pending + running)."""
        if self.path is None:
            return sum(
                1 for row in self._rows.values()
                if row["status"] in ("pending", "running")
            )
        conn = self._connection()
        (count,) = conn.execute(
            "SELECT COUNT(*) FROM queue "
            "WHERE status IN ('pending', 'running')"
        ).fetchone()
        return int(count)
