"""Persistent store for coverage-set point clouds.

Coverage sets (paper Alg. 2) are pure functions of the template
parameters and the sampling seed, and they are *expensive*: thousands of
template propagations plus eight Nelder–Mead boosting runs per K.  The
historical cache was a per-directory pile of ``.npz`` files with an
in-process dict memo bolted on the side — invisible to the service
layer, unqueryable, and racy to clean up.

:class:`CoverageStore` promotes it to the same two-tier shape as
:class:`~repro.service.cache.DecompositionCache`:

* an in-memory LRU front of *assembled* :class:`CoverageSet` objects
  (hull construction from a cached cloud costs seconds at scale;
  repeated scoring sweeps like Fig. 5's SLF grid reuse the same sets
  dozens of times);
* an on-disk sqlite store of the raw per-K point clouds, shared by
  every worker process and persisted across runs, living at
  ``<REPRO_CACHE_DIR>/coverage.sqlite`` next to the legacy ``.npz``
  files it replaces.

Keyspace discipline matches the decomposition cache: the key string
encodes the template family (backend), every geometry-affecting
parameter, and the sampling seed — two builds share a row only when
they are the same computation.  Payloads are the exact float64 bytes of
the sampled clouds, so a warm load is bit-identical to the cold build
(coverage digests are part of the paper pipeline's contract).

The legacy per-directory ``.npz`` read path (and its one-release
absorption shim) is gone: a stale ``<key>.npz`` next to the store now
raises with a pointer at ``repro synth --coverage``, which rebuilds the
row straight into sqlite.
"""

from __future__ import annotations

import io
import sqlite3
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..obs import metrics
from .store_base import SqliteStoreMixin

__all__ = [
    "CoverageStoreStats",
    "CoverageStore",
    "default_coverage_store",
]

#: Cloud-store schema version (bumped on incompatible layout changes).
_COVERAGE_SCHEMA = 1


@dataclass
class CoverageStoreStats:
    """Hit/miss counters, split by which tier answered.

    Per-instance fields keep their historical semantics; every
    increment is additionally mirrored into the process-wide registry
    under ``repro.cache.coverage.<field>``.
    """

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    puts: int = 0

    _METRIC_PREFIX = "repro.cache.coverage"

    def __setattr__(self, name: str, value) -> None:
        if name in ("memory_hits", "disk_hits", "misses", "puts"):
            delta = value - getattr(self, name, 0)
            if delta > 0:
                metrics.counter(f"{self._METRIC_PREFIX}.{name}").inc(delta)
        object.__setattr__(self, name, value)

    @property
    def hits(self) -> int:
        """Total hits across all tiers."""
        return self.memory_hits + self.disk_hits

    def as_dict(self) -> dict[str, int]:
        """Plain-dict form for JSON reports."""
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "puts": self.puts,
        }


def _encode_clouds(clouds: list[np.ndarray]) -> bytes:
    """Exact npz-format bytes of a per-K cloud list."""
    buffer = io.BytesIO()
    np.savez_compressed(
        buffer,
        **{f"k{k}": np.asarray(cloud, dtype=float)
           for k, cloud in enumerate(clouds, start=1)},
    )
    return buffer.getvalue()


def _decode_clouds(payload: bytes, kmax: int) -> list[np.ndarray]:
    """Inverse of :func:`_encode_clouds`."""
    with np.load(io.BytesIO(payload)) as data:
        return [data[f"k{k}"] for k in range(1, kmax + 1)]


class CoverageStore(SqliteStoreMixin):
    """Two-tier (LRU + sqlite) store of coverage point clouds.

    Args:
        path: sqlite database file; ``None`` picks
            ``<coverage cache dir>/coverage.sqlite`` (the directory the
            legacy ``.npz`` memo used, so stale archives are caught).
        memory_size: LRU capacity for assembled coverage sets.
        persistent: ``False`` keeps only the in-memory tier (tests, or
            explicit no-disk flows).
    """

    _STORE_SCHEMA = _COVERAGE_SCHEMA
    _STORE_DDL = (
        "CREATE TABLE IF NOT EXISTS clouds ("
        "  key TEXT PRIMARY KEY,"
        "  kmax INTEGER NOT NULL,"
        "  payload BLOB NOT NULL)",
    )
    # A store that cannot persist must never fail a coverage build.
    _STORE_DEGRADE = True
    _STORE_TABLE = "clouds"
    _STORE_LABEL = "coverage store"

    def __init__(
        self,
        path: str | Path | None = None,
        memory_size: int = 64,
        persistent: bool = True,
    ):
        if memory_size < 1:
            raise ValueError("memory_size must be >= 1")
        self.persistent = bool(persistent)
        if self.persistent and path is None:
            from ..core.coverage import default_cache_dir

            path = default_cache_dir() / "coverage.sqlite"
        self._init_store(path if self.persistent else None)
        self.memory_size = int(memory_size)
        self._memory: OrderedDict[str, object] = OrderedDict()
        self.stats = CoverageStoreStats()

    def _store_degraded(self) -> None:
        self.persistent = False

    # -- assembled-set tier --------------------------------------------------

    def get_set(self, key: str):
        """Memoized assembled coverage set, or ``None``."""
        assembled = self._memory.get(key)
        if assembled is not None:
            self._memory.move_to_end(key)
            self.stats.memory_hits += 1
        return assembled

    def remember_set(self, key: str, coverage) -> None:
        """Keep an assembled coverage set in the LRU front."""
        self._memory[key] = coverage
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_size:
            self._memory.popitem(last=False)
            metrics.counter("repro.cache.coverage.evictions").inc()

    # -- cloud tier ----------------------------------------------------------

    def _legacy_npz_path(self, key: str) -> Path | None:
        if self.path is None:
            return None
        return self.path.parent / f"{key}.npz"

    def get_clouds(self, key: str, kmax: int) -> list[np.ndarray] | None:
        """Per-K point clouds from the sqlite store, or ``None``.

        Raises:
            RuntimeError: when the row is absent but a legacy
                ``<key>.npz`` archive sits next to the store — the npz
                read path is gone; rebuild via ``repro synth
                --coverage``.
        """
        conn = self._connection()
        if conn is not None:
            try:
                row = conn.execute(
                    "SELECT kmax, payload FROM clouds WHERE key = ?",
                    (key,),
                ).fetchone()
            except sqlite3.Error:
                row = None
            if row is not None:
                stored_kmax, payload = row
                if int(stored_kmax) >= kmax:
                    try:
                        clouds = _decode_clouds(payload, kmax)
                    except (OSError, KeyError, ValueError):
                        clouds = None
                    if clouds is not None:
                        self.stats.disk_hits += 1
                        return clouds
                # Corrupted or under-sized row: drop and rebuild.
                try:
                    conn.execute(
                        "DELETE FROM clouds WHERE key = ?", (key,)
                    )
                    conn.commit()
                except sqlite3.Error:
                    pass
        legacy = self._legacy_npz_path(key)
        if legacy is not None and legacy.exists():
            # The npz read/absorption shim lived for exactly one
            # release; it answered its last lookup in the previous one.
            raise RuntimeError(
                f"legacy coverage archive {legacy} is no longer "
                "readable: the npz tier was removed after its "
                "one-release migration window. Rebuild the row with "
                "'repro synth --basis <name> --coverage <K>' (the "
                "result persists in coverage.sqlite), then delete the "
                ".npz file."
            )
        self.stats.misses += 1
        return None

    def put_clouds(self, key: str, clouds: list[np.ndarray]) -> None:
        """Persist per-K clouds for a key (one write transaction)."""
        conn = self._connection()
        if conn is None:
            return
        self.stats.puts += 1
        payload = _encode_clouds(clouds)
        metrics.histogram(
            "repro.cache.coverage.write_bytes", metrics.BYTE_BUCKETS
        ).observe(len(payload))
        try:
            conn.execute(
                "INSERT OR REPLACE INTO clouds VALUES (?, ?, ?)",
                (key, len(clouds), payload),
            )
            conn.commit()
        except sqlite3.Error:
            pass  # A lost write is only a future rebuild.

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        """Assembled sets resident in the memory front."""
        return len(self._memory)

    def disk_entries(self) -> int:
        """Cloud rows in the persistent store (0 when memory-only)."""
        conn = self._connection()
        if conn is None:
            return 0
        try:
            (count,) = conn.execute(
                "SELECT COUNT(*) FROM clouds"
            ).fetchone()
        except sqlite3.Error:
            return 0
        return int(count)

    def clear(self, disk: bool = False) -> None:
        """Empty the memory tier (and optionally the persistent store)."""
        self._memory.clear()
        if disk:
            conn = self._connection()
            if conn is not None:
                try:
                    conn.execute("DELETE FROM clouds")
                    conn.commit()
                except sqlite3.Error:
                    pass


#: Per-process stores keyed by resolved sqlite path: tests and workers
#: repoint ``REPRO_CACHE_DIR`` mid-process, and entries from one
#: directory must not answer for another (same discipline as the
#: decomposition cache's per-path registry).
_PROCESS_STORES: dict[str, CoverageStore] = {}


def default_coverage_store() -> CoverageStore:
    """The shared per-process store for the current cache directory."""
    from ..core.coverage import default_cache_dir

    path = default_cache_dir() / "coverage.sqlite"
    key = str(path)
    store = _PROCESS_STORES.get(key)
    if store is None:
        store = _PROCESS_STORES[key] = CoverageStore(path=path)
    return store
