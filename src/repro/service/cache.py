"""Persistent decomposition cache for 2Q basis templates.

Basis translation classifies every consolidated 2Q block by its
canonical Weyl coordinates and asks a rule engine for the cheapest
covering template.  Those lookups are pure functions of the engine's
``cache_token`` (its name plus every template-affecting parameter) and
the coordinates — and workload suites repeat the same coordinate
classes thousands of times across trials, workloads, and runs.

:class:`DecompositionCache` memoizes them at two levels:

* an in-memory LRU front (per process, bounded, no locking needed);
* an on-disk sqlite store shared by every worker process and persisted
  across runs, under ``~/.cache/repro-decomp`` by default
  (``REPRO_DECOMP_CACHE_DIR`` overrides, mirroring the coverage cache's
  ``REPRO_CACHE_DIR``).

Basis translation batches its traffic per circuit through
:meth:`DecompositionCache.lookup_many`: keys are quantized up front for
the whole coordinate stack, memory hits answer immediately, the
remaining keys go to disk in one ``IN (...)`` query, and freshly
computed templates land in a single write transaction — instead of one
round-trip and one transaction per gate.  Pulse durations persist as
``float.hex()`` text, an exact, locale-independent round-trip format
(legacy ``repr``-formatted rows still parse).

Keys quantize coordinates on a grid two orders of magnitude finer than
the rule engines' classification tolerance (1e-6).  Two coordinates
share a bucket only when they differ by < 1e-8 — far inside the band
the engines themselves treat as the same class, except in the
measure-zero case of a coordinate sitting within half a grid step of a
classification threshold, where physically-degenerate targets may
alias.  Bit-exact repeats (the overwhelmingly common case: identical
blocks across trials, workers, and reruns of deterministic workloads)
always key identically.  A fully warm cache short-circuits
``template_for`` entirely, which also skips the lazy construction of
coverage-set hulls — the dominant cold cost of a fresh process.
"""

from __future__ import annotations

import os
import sqlite3
from collections import OrderedDict
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core.decomposition_rules import TemplateSpec
from ..obs import metrics
from .store_base import SqliteStoreMixin

__all__ = ["CacheStats", "DecompositionCache", "default_decomp_cache_dir"]

#: Template-store schema version (bumped on incompatible layout changes).
_CACHE_SCHEMA = 1

#: Quantization grid for cache keys (finer than the 1e-6 rule tolerance).
_KEY_DECIMALS = 8

#: Keys per ``IN (...)`` clause; sqlite's default variable limit is 999.
_SQL_CHUNK = 400


def _serialize_pulses(pulses: tuple[float, ...]) -> str:
    """Exact, stable text form of a pulse tuple (``float.hex`` joined)."""
    return ",".join(float(p).hex() for p in pulses)


def _parse_pulses(text: str) -> tuple[float, ...]:
    """Inverse of :func:`_serialize_pulses`; accepts legacy ``repr`` rows.

    ``float.hex`` output always carries an ``x`` (pulses are finite);
    decimal-formatted rows written by older stores never do, so the two
    formats are unambiguous.
    """
    values = []
    for token in text.split(","):
        if not token:
            continue
        values.append(
            float.fromhex(token) if "x" in token else float(token)
        )
    return tuple(values)


def default_decomp_cache_dir() -> Path:
    """Directory holding the persistent template store.

    Overridable via ``REPRO_DECOMP_CACHE_DIR``; defaults to
    ``~/.cache/repro-decomp``.
    """
    override = os.environ.get("REPRO_DECOMP_CACHE_DIR")
    base = Path(override) if override else Path.home() / ".cache" / "repro-decomp"
    base.mkdir(parents=True, exist_ok=True)
    return base


@dataclass
class CacheStats:
    """Hit/miss counters, split by which tier answered.

    Per-instance fields keep their historical semantics (tests assert
    on them per cache object); every increment is additionally mirrored
    into the process-wide registry under ``repro.cache.decomp.<field>``
    so cross-subsystem reports see one unified pipe.
    """

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    puts: int = 0

    _METRIC_PREFIX = "repro.cache.decomp"

    def __setattr__(self, name: str, value) -> None:
        # ``stats.misses += 1`` call sites stay untouched; the positive
        # delta rides into the registry here.
        if name in ("memory_hits", "disk_hits", "misses", "puts"):
            delta = value - getattr(self, name, 0)
            if delta > 0:
                metrics.counter(f"{self._METRIC_PREFIX}.{name}").inc(delta)
        object.__setattr__(self, name, value)

    @property
    def hits(self) -> int:
        """Total hits across both tiers."""
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    def as_dict(self) -> dict[str, int]:
        """Plain-dict form for JSON reports."""
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "puts": self.puts,
        }


class DecompositionCache(SqliteStoreMixin):
    """Two-tier (LRU + sqlite) store of decomposition templates.

    Args:
        path: sqlite database file; ``None`` picks
            ``default_decomp_cache_dir() / "templates.sqlite"``.  The
            parent directory is created on demand.
        memory_size: LRU front capacity (entries).  Evicted entries
            remain readable from disk.
        persistent: set ``False`` for a memory-only cache (tests, or
            ``--no-cache``-adjacent flows that still want per-process
            memoization).
    """

    _STORE_SCHEMA = _CACHE_SCHEMA
    _STORE_DDL = (
        "CREATE TABLE IF NOT EXISTS templates ("
        "  key TEXT PRIMARY KEY,"
        "  pulses TEXT NOT NULL,"
        "  layer_count INTEGER NOT NULL,"
        "  description TEXT NOT NULL)",
    )
    # A cache that cannot persist must never fail a compilation.
    _STORE_DEGRADE = True
    _STORE_TABLE = "templates"
    _STORE_LABEL = "decomposition cache"

    def __init__(
        self,
        path: str | Path | None = None,
        memory_size: int = 4096,
        persistent: bool = True,
    ):
        if memory_size < 1:
            raise ValueError("memory_size must be >= 1")
        self.persistent = bool(persistent)
        if self.persistent and path is None:
            path = default_decomp_cache_dir() / "templates.sqlite"
        self._init_store(path if self.persistent else None)
        self.memory_size = int(memory_size)
        self._memory: OrderedDict[str, TemplateSpec] = OrderedDict()
        self.stats = CacheStats()

    def _store_degraded(self) -> None:
        self.persistent = False

    # -- keys ----------------------------------------------------------------

    @staticmethod
    def key_for(rules_token: str, coords: np.ndarray) -> str:
        """Stable text key: rules cache token + grid-quantized coordinates."""
        c = np.round(np.asarray(coords, dtype=float), _KEY_DECIMALS)
        # Avoid distinct "-0.0" / "0.0" buckets for the same class.
        c = c + 0.0
        return (
            f"{rules_token}|{c[0]:.{_KEY_DECIMALS}f}"
            f"|{c[1]:.{_KEY_DECIMALS}f}|{c[2]:.{_KEY_DECIMALS}f}"
        )

    @staticmethod
    def keys_for(rules_token: str, coords: np.ndarray) -> list[str]:
        """Batched :meth:`key_for`: quantize a whole stack up front."""
        c = np.round(np.atleast_2d(np.asarray(coords, dtype=float)),
                     _KEY_DECIMALS)
        c = c + 0.0
        return [
            f"{rules_token}|{row[0]:.{_KEY_DECIMALS}f}"
            f"|{row[1]:.{_KEY_DECIMALS}f}|{row[2]:.{_KEY_DECIMALS}f}"
            for row in c
        ]

    # -- core operations -----------------------------------------------------

    def _remember(self, key: str, spec: TemplateSpec) -> None:
        self._memory[key] = spec
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_size:
            self._memory.popitem(last=False)
            metrics.counter("repro.cache.decomp.evictions").inc()

    def get(self, rules_token: str, coords: np.ndarray) -> TemplateSpec | None:
        """Cached template for a coordinate class, or ``None`` on miss."""
        key = self.key_for(rules_token, coords)
        spec = self._memory.get(key)
        if spec is not None:
            self._memory.move_to_end(key)
            self.stats.memory_hits += 1
            return spec
        conn = self._connection()
        if conn is not None:
            try:
                row = conn.execute(
                    "SELECT pulses, layer_count, description "
                    "FROM templates WHERE key = ?",
                    (key,),
                ).fetchone()
            except sqlite3.Error:
                row = None
            if row is not None:
                pulses_text, layer_count, description = row
                spec = TemplateSpec(
                    _parse_pulses(pulses_text), int(layer_count), description
                )
                self._remember(key, spec)
                self.stats.disk_hits += 1
                return spec
        self.stats.misses += 1
        return None

    def put(
        self, rules_token: str, coords: np.ndarray, spec: TemplateSpec
    ) -> None:
        """Store a template under its coordinate-class key."""
        self._put_rows([(self.key_for(rules_token, coords), spec)])

    def put_many(
        self,
        rules_token: str,
        coords: np.ndarray,
        specs: Sequence[TemplateSpec],
    ) -> None:
        """Store one template per coordinate row in a single transaction."""
        coords = np.atleast_2d(np.asarray(coords, dtype=float))
        if len(coords) != len(specs):
            raise ValueError("one spec per coordinate row required")
        keys = self.keys_for(rules_token, coords)
        self._put_rows(list(zip(keys, specs)))

    def _put_rows(self, rows: list[tuple[str, TemplateSpec]]) -> None:
        """Remember and persist (key, spec) pairs; one write transaction."""
        if not rows:
            return
        metrics.histogram(
            "repro.cache.decomp.write_rows", metrics.BATCH_SIZE_BUCKETS
        ).observe(len(rows))
        for key, spec in rows:
            self._remember(key, spec)
            self.stats.puts += 1
        conn = self._connection()
        if conn is not None:
            try:
                conn.executemany(
                    "INSERT OR REPLACE INTO templates VALUES (?, ?, ?, ?)",
                    [
                        (
                            key,
                            _serialize_pulses(spec.pulses),
                            spec.layer_count,
                            spec.description,
                        )
                        for key, spec in rows
                    ],
                )
                conn.commit()
            except sqlite3.Error:
                pass  # A lost write is only a future miss.

    def _select_rows(self, keys: list[str]) -> dict[str, TemplateSpec]:
        """One chunked ``IN (...)`` query over the persistent store."""
        conn = self._connection()
        if conn is None or not keys:
            return {}
        found: dict[str, TemplateSpec] = {}
        for start in range(0, len(keys), _SQL_CHUNK):
            chunk = keys[start : start + _SQL_CHUNK]
            placeholders = ",".join("?" * len(chunk))
            try:
                rows = conn.execute(
                    "SELECT key, pulses, layer_count, description "
                    f"FROM templates WHERE key IN ({placeholders})",
                    chunk,
                ).fetchall()
            except sqlite3.Error:
                return found
            for key, pulses_text, layer_count, description in rows:
                found[key] = TemplateSpec(
                    _parse_pulses(pulses_text), int(layer_count), description
                )
        return found

    def lookup(
        self,
        rules_token: str,
        coords: np.ndarray,
        factory: Callable[[], TemplateSpec],
    ) -> TemplateSpec:
        """Return the cached template, computing and storing on miss."""
        spec = self.get(rules_token, coords)
        if spec is None:
            spec = factory()
            self.put(rules_token, coords, spec)
        return spec

    def lookup_many(
        self,
        rules_token: str,
        coords: np.ndarray,
        factory_many: Callable[[np.ndarray], Sequence[TemplateSpec]],
    ) -> list[TemplateSpec]:
        """Batched :meth:`lookup` over stacked coordinate rows.

        This is the hook :func:`repro.transpiler.basis.translate_to_basis`
        calls once per circuit.  All keys are quantized up front; memory
        hits answer vectorized, the remaining unique keys go to disk in
        one ``IN (...)`` query, and only the still-missing unique
        coordinate classes reach ``factory_many`` — whose results are
        persisted in a single write transaction.  Hit/miss accounting
        matches the equivalent scalar :meth:`lookup` sequence — repeated
        keys within one batch count as memory hits after their first
        occurrence — provided the batch's unique keys fit the memory
        tier (they always do in practice: circuits carry far fewer
        coordinate classes than the default 4096-entry front).  A batch
        overflowing it still returns correct specs, but duplicates are
        credited as memory hits even though the scalar sequence would
        have evicted and re-fetched them.
        """
        coords = np.atleast_2d(np.asarray(coords, dtype=float))
        keys = self.keys_for(rules_token, coords)
        results: list[TemplateSpec | None] = [None] * len(keys)
        pending: dict[str, list[int]] = {}
        for index, key in enumerate(keys):
            spec = self._memory.get(key)
            if spec is not None and key not in pending:
                self._memory.move_to_end(key)
                self.stats.memory_hits += 1
                results[index] = spec
                continue
            pending.setdefault(key, []).append(index)
        if not pending:
            return results  # type: ignore[return-value]
        disk = self._select_rows(list(pending))
        missing_keys = []
        for key, indices in pending.items():
            spec = disk.get(key)
            if spec is None:
                missing_keys.append(key)
                continue
            self._remember(key, spec)
            self.stats.disk_hits += 1
            self.stats.memory_hits += len(indices) - 1
            for index in indices:
                results[index] = spec
        if missing_keys:
            rows = np.stack(
                [coords[pending[key][0]] for key in missing_keys]
            )
            computed = factory_many(rows)
            if len(computed) != len(missing_keys):
                raise ValueError(
                    "factory returned a wrong-length template sequence"
                )
            self.stats.misses += len(missing_keys)
            self._put_rows(list(zip(missing_keys, computed)))
            for key, spec in zip(missing_keys, computed):
                indices = pending[key]
                self.stats.memory_hits += len(indices) - 1
                for index in indices:
                    results[index] = spec
        return results  # type: ignore[return-value]

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        """Entries resident in the in-memory front."""
        return len(self._memory)

    def disk_entries(self) -> int:
        """Entries in the persistent store (0 when memory-only)."""
        conn = self._connection()
        if conn is None:
            return 0
        try:
            (count,) = conn.execute(
                "SELECT COUNT(*) FROM templates"
            ).fetchone()
        except sqlite3.Error:
            return 0
        return int(count)

    def token_entries(self, rules_token: str) -> int:
        """Persisted entries for one rule engine's keyspace."""
        conn = self._connection()
        if conn is None:
            return 0
        prefix = f"{rules_token}|"
        try:
            (count,) = conn.execute(
                "SELECT COUNT(*) FROM templates "
                "WHERE substr(key, 1, ?) = ?",
                (len(prefix), prefix),
            ).fetchone()
        except sqlite3.Error:
            return 0
        return int(count)

    def clear(self, disk: bool = False) -> None:
        """Empty the memory tier (and optionally the persistent store)."""
        self._memory.clear()
        if disk:
            conn = self._connection()
            if conn is not None:
                try:
                    conn.execute("DELETE FROM templates")
                    conn.commit()
                except sqlite3.Error:
                    pass
