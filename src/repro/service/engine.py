"""Batch compilation engine: a multiprocessing transpile farm.

:class:`BatchEngine` runs :class:`~repro.service.jobs.CompileJob` lists
through the full transpilation pipeline, either serially in-process
(``workers <= 1``) or across a ``multiprocessing`` pool.  Guarantees:

* **Determinism** — every job carries its own seed, per-trial RNG
  streams are spawned from it, and each worker calls the exact same
  ``repro.compile(...)`` the sequential path would, so a parallel run
  is byte-identical (per the circuit digest) to a sequential one
  regardless of worker count or cache state.
* **Retry** — a job that raises is retried up to ``retries`` times; the
  final failure is returned as an error result rather than poisoning
  the batch.
* **Progress** — an optional callback fires in the parent as each job
  settles.

Workers share the persistent :class:`DecompositionCache`, so repeated
2Q coordinate classes are templated once per suite (and reused across
runs).  :class:`ResultStore` aggregates per-workload statistics, and
:data:`SUITES` names the paper's workload suites for the CLI.
"""

from __future__ import annotations

import json
import math
import multiprocessing
import os
import sqlite3
import time
import traceback
from collections.abc import Callable, Iterator, Sequence
from pathlib import Path

from ..obs import metrics, trace
from ..obs import profile as obs_profile
from .cache import DecompositionCache, default_decomp_cache_dir
from .jobs import CompileJob, CompileResult, circuit_digest
from .store_base import SqliteStoreMixin

__all__ = [
    "BatchEngine",
    "ResultMergeError",
    "ResultStore",
    "ResultStoreError",
    "SUITES",
    "execute_job",
    "fan_out",
    "record_job_retry",
    "record_job_settled",
    "run_with_freight",
    "suite_jobs",
]


def fan_out(function, payloads: Sequence, workers: int) -> Iterator:
    """Stream ``function(payload)`` results over a worker pool.

    The service layer's one fan-out primitive: ``workers <= 1`` (or a
    single payload) runs serially in-process, otherwise a fork pool
    (spawn on non-POSIX platforms) streams results as they settle via
    ``imap_unordered``.  Both :class:`BatchEngine` compile rounds and
    the synthesis engine's multi-start refinements ride it, so pooling
    discipline (fork safety, streaming, worker-count invariance of the
    result set) lives in exactly one place.  ``function`` must be a
    module-level callable and payloads picklable.
    """
    payloads = list(payloads)
    if workers <= 1 or len(payloads) <= 1:
        for payload in payloads:
            yield function(payload)
        return
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        context = multiprocessing.get_context("spawn")
    with context.Pool(processes=min(workers, len(payloads))) as pool:
        yield from pool.imap_unordered(function, payloads)

#: Paper Table VII / Fig. 3b benchmark order.
_WORKLOAD_SUITE = (
    "quantum_volume",
    "vqe_linear",
    "ghz",
    "hlf",
    "qft",
    "adder",
    "qaoa",
    "vqe_full",
    "multiplier",
)


def _suite(
    workloads: Sequence[str],
    rules: Sequence[str],
    num_qubits: int,
    target: str,
    trials: int,
    seed: int,
) -> tuple[CompileJob, ...]:
    return tuple(
        CompileJob(
            workload=workload,
            num_qubits=num_qubits,
            rules=rule,
            trials=trials,
            seed=seed,
            target=target,
        )
        for workload in workloads
        for rule in rules
    )


#: Named job suites.  "table4"/"table5" run the optimized parallel-drive
#: flow over the full workload set (the same transpiles back both of the
#: paper's parallel-drive tables — they differ only in analysis, so the
#: names alias one job tuple); "table7" adds the baseline for the
#: published side-by-side; "smoke" is a seconds-scale sanity suite.
_PARALLEL_SUITE = _suite(_WORKLOAD_SUITE, ("parallel",), 16, "snail_4x4", 10, 7)
SUITES: dict[str, tuple[CompileJob, ...]] = {
    "smoke": _suite(
        ("ghz", "qft"), ("baseline", "parallel"), 8, "square_2x4", 2, 7
    ),
    "table4": _PARALLEL_SUITE,
    "table5": _PARALLEL_SUITE,
    "table7": _suite(
        _WORKLOAD_SUITE, ("baseline", "parallel"), 16, "snail_4x4", 10, 7
    ),
}


def suite_jobs(
    name: str,
    trials: int | None = None,
    seed: int | None = None,
    target: str | None = None,
    pipeline: str | None = None,
) -> list[CompileJob]:
    """Jobs of a named suite, optionally overriding knobs suite-wide.

    A ``target`` override retargets every job in the suite (the target
    must be large enough for the suite's register width — job
    validation enforces that); a ``pipeline`` override swaps every
    job's pass pipeline (e.g. ``"fast"`` for a latency smoke run).
    """
    try:
        jobs = SUITES[name]
    except KeyError:
        raise KeyError(
            f"unknown suite {name!r}; known: {sorted(SUITES)}"
        ) from None
    return [
        job.updated(trials=trials, seed=seed, target=target, pipeline=pipeline)
        for job in jobs
    ]


def _warm_rules(names: set[str]) -> None:
    """Force lazy coverage-set construction before forking workers.

    Children inherit (fork) or cheaply reload (spawn, via the on-disk
    point-cloud cache) the assembled sets instead of each paying the
    full Algorithm-2 build.  Coverage hulls are independent of a
    target's speed-limit scale and 1Q duration, so warming the default
    engines covers every target variant.
    """
    from ..core.decomposition_rules import build_rules

    with trace.span("batch.warm_rules", engines=len(names)):
        for name in sorted(names):
            rules = build_rules(name)
            if name == "baseline":
                _ = rules.coverage
            else:
                _ = rules.iswap_parallel_k1
                _ = rules.sqrt_parallel_k1
                _ = rules.sqrt_parallel_k2


#: Per-process cache instances keyed by resolved store path, so every
#: job a worker executes shares one sqlite connection and one warm
#: memory tier (instances survive fork; the connection is re-opened
#: lazily on first use in the child).
_PROCESS_CACHES: dict[str, DecompositionCache] = {}


def _cache_for(cache_path: str | Path | None) -> DecompositionCache:
    resolved = (
        Path(cache_path)
        if cache_path is not None
        else default_decomp_cache_dir() / "templates.sqlite"
    )
    key = str(resolved)
    cache = _PROCESS_CACHES.get(key)
    if cache is None:
        cache = _PROCESS_CACHES[key] = DecompositionCache(path=resolved)
    return cache


def execute_job(
    job: CompileJob,
    use_cache: bool = True,
    cache_path: str | Path | None = None,
    profile: bool = False,
) -> CompileResult:
    """Run one compile job to completion (also the pool worker body).

    Rides the :func:`repro.compile` facade: the job's embedded
    :class:`~repro.transpiler.compiler.CompilerConfig` names the
    pipeline, rule engine, and hardware target, and the target supplies
    every device-dependent ingredient (coupling map, speed-limit-scaled
    rules, per-edge schedule durations, fidelity model).  With
    ``profile=True`` the per-pass timing records come back on
    ``CompileResult.pass_profile``.
    """
    from ..circuits.workloads import get_workload
    from ..transpiler.compiler import compile as compile_circuit
    from ..transpiler.passes import PassProfile

    # Adopt the submitter's trace context: a no-op under fork (the
    # worker inherited the live tracer), the anchor under spawn or when
    # a job file carries a context from another process.
    trace.TRACER.activate(job.trace)
    start = time.perf_counter()
    pass_profile = PassProfile() if profile else None
    metrics.counter("repro.service.jobs").inc()
    with trace.span("job.run", job=job.label, seed=job.seed) as job_span:
        try:
            circuit = get_workload(
                job.workload, job.num_qubits, seed=job.workload_seed
            )
            cache = _cache_for(cache_path) if use_cache else None
            result = compile_circuit(
                circuit,
                config=job.config,
                seed=job.seed,
                cache=cache,
                profile=pass_profile,
            )
        except Exception:  # noqa: BLE001 - reported to the engine for retry
            wall_time = time.perf_counter() - start
            metrics.counter("repro.service.job_errors").inc()
            metrics.histogram("repro.service.job_seconds").observe(wall_time)
            job_span.set(outcome="error")
            return CompileResult.failure(
                job,
                error=traceback.format_exc(limit=20),
                wall_time=wall_time,
            )
        wall_time = time.perf_counter() - start
        metrics.histogram("repro.service.job_seconds").observe(wall_time)
        job_span.set(outcome="ok")
    return CompileResult(
        job=job,
        duration=result.duration,
        pulse_count=result.pulse_count,
        swap_count=result.swap_count,
        total_pulse_time=result.total_pulse_time,
        estimated_fidelity=(
            result.estimated_fidelity
            if result.estimated_fidelity is not None
            else math.nan
        ),
        trial_index=result.trial_index,
        digest=circuit_digest(result.circuit),
        gate_counts=dict(result.circuit.count_ops()),
        wall_time=wall_time,
        pass_profile=(
            pass_profile.to_dict() if pass_profile is not None else None
        ),
    )


def run_with_freight(
    function: Callable,
    *args,
    profile_interval: float | None = None,
    **kwargs,
):
    """Run ``function`` and capture its observability freight.

    The freight is what crosses a process boundary next to a result:
    the spans the call recorded, the metrics *delta*, and (when the
    parent runs the sampling profiler) the stack-sample delta.  Deltas
    — not absolute snapshots — because fork-pool workers inherit the
    parent's counts; shipping absolutes would double-count everything
    recorded before the fork.  Consumers ignore freight stamped with
    their own pid (serial in-process rounds).

    This is the one freight-capture path: both the
    :class:`BatchEngine` pool worker body and the compile service's
    per-job workers (``repro.service.server``) ride it, so the
    no-double-count discipline lives in exactly one place.

    ``fork()`` never carries threads into the child, so a worker whose
    parent had the sampler running arrives threadless:
    ``profile_interval`` tells it to restart the sampler before the
    body runs (and to start it fresh under ``spawn``).
    """
    marker = trace.TRACER.mark()
    before = metrics.REGISTRY.snapshot()
    samples_before = None
    if profile_interval is not None:
        obs_profile.enable_profiling(interval=profile_interval)
        samples_before = obs_profile.PROFILER.snapshot()
    result = function(*args, **kwargs)
    freight = {
        "pid": os.getpid(),
        "spans": trace.TRACER.drain_since(marker),
        "metrics": metrics.MetricsRegistry.delta(
            before, metrics.REGISTRY.snapshot()
        ),
    }
    if samples_before is not None:
        freight["profile"] = obs_profile.SamplingProfiler.delta(
            samples_before, obs_profile.PROFILER.snapshot()
        )
    return result, freight


def record_job_retry(count: int = 1) -> None:
    """Count a retry decision (one per re-attempted execution).

    Called exactly once, by whichever layer *decides* the retry — the
    :class:`BatchEngine` round loop for in-batch retries, the compile
    service for error-result requeues — never by the worker body, so
    the count survives freight merges without double-counting.
    """
    metrics.counter("repro.service.job_retries").inc(count)


def record_job_settled(result: CompileResult) -> None:
    """Record a job's final settlement (once per job, not per attempt).

    Observes ``repro.service.job_attempts`` with the *cumulative*
    attempt count and bumps ``repro.service.jobs_failed`` for final
    failures.  Settlement accounting must run in the settling process
    only (engine parent or service scheduler): a job whose worker died
    mid-run re-executes through ``execute_job`` — which counts
    per-execution metrics that ride the freight — but settles exactly
    once, so ``job_attempts.count`` equals the number of jobs even
    when executions outnumber them.
    """
    metrics.histogram(
        "repro.service.job_attempts", metrics.BATCH_SIZE_BUCKETS
    ).observe(result.attempts)
    if not result.ok:
        metrics.counter("repro.service.jobs_failed").inc()


def _execute_payload(payload: tuple) -> tuple[int, CompileResult, dict]:
    """Pool entry point: unpack (index, job, cache + profile config).

    The third element is the observability freight captured by
    :func:`run_with_freight` around the job body.
    """
    index, job, use_cache, cache_path, profile, profile_interval = payload
    result, freight = run_with_freight(
        execute_job,
        job,
        use_cache=use_cache,
        cache_path=cache_path,
        profile=profile,
        profile_interval=profile_interval,
    )
    return index, result, freight


class BatchEngine:
    """Farm compile jobs over worker processes with retry and progress.

    Args:
        workers: process count; ``<= 1`` runs serially in-process.
        use_cache: share a persistent :class:`DecompositionCache`
            between workers (``False`` disables all caching).
        cache_path: explicit sqlite path for the cache (defaults to the
            ``REPRO_DECOMP_CACHE_DIR``-resolved store).
        retries: extra attempts for a job whose worker raised.
        progress: ``callback(done, total, result)`` fired in the parent
            as each job settles (after its final attempt).
        warm_coverage: pre-build coverage sets in the parent before
            spawning a pool (ignored for serial runs, where laziness is
            part of the cache's cold/warm story).
        profile: collect per-pass timing/gate-count records for every
            job (returned on ``CompileResult.pass_profile``; aggregate
            with ``ResultStore.format_pass_profile``).
    """

    def __init__(
        self,
        workers: int | None = None,
        use_cache: bool = True,
        cache_path: str | Path | None = None,
        retries: int = 1,
        progress: Callable[[int, int, CompileResult], None] | None = None,
        warm_coverage: bool = True,
        profile: bool = False,
    ):
        if workers is None:
            workers = multiprocessing.cpu_count()
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.workers = max(1, int(workers))
        self.use_cache = bool(use_cache)
        self.cache_path = cache_path
        self.retries = int(retries)
        self.progress = progress
        self.warm_coverage = bool(warm_coverage)
        self.profile = bool(profile)

    # -- internals -----------------------------------------------------------

    def _payloads(
        self, indexed: list[tuple[int, CompileJob]]
    ) -> list[tuple]:
        path = (
            str(self.cache_path) if self.cache_path is not None else None
        )
        context = trace.TRACER.current_context()
        if context is not None:
            # Stamp the submitting span into each job so worker spans
            # parent under it even across a spawn boundary.
            payload_trace = context.to_dict()
            indexed = [
                (index, job.updated(trace=payload_trace))
                for index, job in indexed
            ]
        profile_interval = (
            obs_profile.PROFILER.interval
            if obs_profile.profiling_enabled()
            else None
        )
        return [
            (index, job, self.use_cache, path, self.profile,
             profile_interval)
            for index, job in indexed
        ]

    def _run_round(
        self, indexed: list[tuple[int, CompileJob]], pool_size: int
    ) -> Iterator[tuple[int, CompileResult]]:
        """Yield (index, result) pairs as they settle, streaming.

        Worker observability freight is merged into the parent tracer
        and registry here, as each job settles — so spans from a pool
        round land in the same buffer the serial path fills directly.
        """
        pid = os.getpid()
        for index, result, freight in fan_out(
            _execute_payload, self._payloads(indexed), pool_size
        ):
            if freight.get("pid") != pid:
                trace.TRACER.absorb(freight.get("spans", ()))
                delta = freight.get("metrics")
                if delta:
                    metrics.REGISTRY.merge_snapshot(delta)
                samples = freight.get("profile")
                if samples:
                    obs_profile.PROFILER.absorb(samples)
            yield index, result

    def _cache_covers(self, jobs: Sequence[CompileJob]) -> bool:
        """True when the persistent store has templates for every engine.

        Tokens are built per (rules, target) pair, because a target's
        speed-limit scale is part of the cache keyspace (fast/slow
        variants cache different template durations).  A populated
        keyspace means workers will mostly hit the cache, so
        pre-building coverage hulls in the parent would waste exactly
        the work the cache exists to skip.  (A partially-warm store can
        still miss; the first miss then builds lazily in that worker.)
        """
        if not self.use_cache:
            return False
        from ..targets import get_target

        cache = _cache_for(self.cache_path)
        pairs = {(job.rules, job.target) for job in jobs}
        return all(
            cache.token_entries(
                get_target(target).build_rules(name).cache_token
            )
            > 0
            for name, target in pairs
        )

    # -- API -----------------------------------------------------------------

    def run(self, jobs: Sequence[CompileJob]) -> list[CompileResult]:
        """Execute all jobs; results come back in job order."""
        jobs = list(jobs)
        if not jobs:
            return []
        pool_size = min(self.workers, len(jobs))
        metrics.counter("repro.service.jobs_queued").inc(len(jobs))
        with trace.span(
            "batch.run", jobs=len(jobs), workers=pool_size
        ):
            if pool_size > 1 and self.warm_coverage:
                if not self._cache_covers(jobs):
                    _warm_rules({job.rules for job in jobs})
            settled: dict[int, CompileResult] = {}
            pending = list(enumerate(jobs))
            done = 0
            for attempt in range(self.retries + 1):
                if not pending:
                    break
                still_failing: list[tuple[int, CompileJob]] = []
                # _run_round streams: progress fires as each job
                # settles, not after the whole round drains.
                for index, result in self._run_round(pending, pool_size):
                    if not result.ok and attempt < self.retries:
                        still_failing.append((index, jobs[index]))
                        record_job_retry()
                        continue
                    result = result.with_attempts(attempt + 1)
                    record_job_settled(result)
                    settled[index] = result
                    done += 1
                    if self.progress is not None:
                        self.progress(done, len(jobs), result)
                pending = still_failing
        return [settled[index] for index in range(len(jobs))]


class ResultStoreError(RuntimeError):
    """A persistent result store could not be opened or merged."""


class ResultMergeError(ResultStoreError):
    """Merging two stores found the same job with different digests.

    Carries ``conflicts``: a list of ``(job_key, ours, theirs)`` digest
    triples.  A conflict means two shards claim to have compiled the
    same fully-specified job to different circuits — a determinism
    violation that must be investigated, never silently resolved.
    """

    def __init__(self, conflicts: list[tuple[str, str, str]]):
        self.conflicts = conflicts
        preview = ", ".join(key[:12] for key, _, _ in conflicts[:4])
        super().__init__(
            f"{len(conflicts)} job(s) have conflicting result digests "
            f"across stores (keys {preview}{'…' if len(conflicts) > 4 else ''}); "
            "identical jobs must compile identically — refusing to merge"
        )


#: Result-store schema version (bumped on incompatible layout changes).
_RESULT_SCHEMA = 1


class ResultStore(SqliteStoreMixin):
    """Accumulate compile results and aggregate per-(workload, rules).

    The store is what table drivers and the CLI consume: it keeps the
    raw results (JSON-serializable) and derives suite-level statistics
    without re-running anything.

    With ``path`` set, successful results are additionally persisted to
    a sqlite table keyed by :meth:`CompileJob.identity_digest` — the
    compile service's warm dedup tier (a restarted server answers
    previously-compiled jobs without scheduling work) and the shard
    unit :meth:`merge` folds together.  Failed results stay in memory
    only: an error is not a reusable artifact, and persisting it would
    let a transient crash permanently shadow a job's real result.
    """

    _STORE_SCHEMA = _RESULT_SCHEMA
    _STORE_DDL = (
        "CREATE TABLE IF NOT EXISTS results ("
        "  job_key TEXT PRIMARY KEY,"
        "  digest TEXT NOT NULL,"
        "  payload TEXT NOT NULL,"
        "  recorded_at REAL NOT NULL)",
    )
    _STORE_ERROR = ResultStoreError
    # check_same_thread off: the compile server opens the store on its
    # constructing thread and serves it from the event loop's thread;
    # each instance stays single-writer.
    _STORE_SAME_THREAD = False
    _STORE_TABLE = "results"
    _STORE_KEY = "job_key"
    _STORE_LABEL = "result store"

    def __init__(
        self,
        results: Sequence[CompileResult] = (),
        path: str | Path | None = None,
    ):
        self._results: list[CompileResult] = []
        self._by_key: dict[str, CompileResult] = {}
        self._init_store(path)
        if self.path is not None:
            for result in self._load_persisted(self.path):
                self._results.append(result)
                self._by_key[result.job.identity_digest()] = result
        for result in results:
            self.add(result)

    # -- persistence ---------------------------------------------------------

    def _store_schema_message(self, found: int) -> str:
        return (
            f"result store {self.path} has schema v{found}, "
            f"this build writes v{_RESULT_SCHEMA}; migrate or "
            "point the server at a fresh --results-db path"
        )

    def _load_persisted(self, path: Path) -> list[CompileResult]:
        """All persisted results of the store at ``path`` (may be new)."""
        if not path.exists():
            # First open: create the schema eagerly so a crash before
            # the first result still leaves a well-formed store.
            self._connection()
            return []
        rows = self._connection().execute(
            "SELECT payload FROM results ORDER BY recorded_at, job_key"
        ).fetchall()
        return [CompileResult.from_dict(json.loads(p)) for (p,) in rows]

    def add(self, result: CompileResult) -> None:
        """Record one result (persisted when backed and successful)."""
        self._results.append(result)
        if not result.ok or not result.digest:
            return
        key = result.job.identity_digest()
        self._by_key[key] = result
        conn = self._connection()
        if conn is not None:
            try:
                conn.execute(
                    "INSERT OR REPLACE INTO results VALUES (?, ?, ?, ?)",
                    (key, result.digest, result.to_json(), time.time()),
                )
                conn.commit()
            except sqlite3.Error as exc:
                raise ResultStoreError(
                    f"cannot persist result to {self.path}: {exc}"
                ) from exc

    def get(self, job_key: str) -> CompileResult | None:
        """Successful result for a job identity digest, or ``None``."""
        return self._by_key.get(job_key)

    def __contains__(self, job_key: str) -> bool:
        return job_key in self._by_key

    def merge(self, other_path: str | Path) -> int:
        """Fold another store's persisted results into this one.

        This is the shard-merge primitive: N service nodes each write
        their own result db, then one node folds them together.
        Returns the number of results actually absorbed; same-key
        same-digest rows are idempotently skipped.  Same-key
        *different*-digest rows raise :class:`ResultMergeError` before
        anything is written — every conflict is collected first, so
        the exception names the full damage and the store is left
        untouched.
        """
        other_path = Path(other_path)
        if (
            self.path is not None
            and other_path.exists()
            and other_path.resolve() == self.path.resolve()
        ):
            raise ResultStoreError(
                f"refusing to merge result store {self.path} into itself"
            )
        other = ResultStore(path=other_path)
        try:
            fresh: list[CompileResult] = []
            conflicts: list[tuple[str, str, str]] = []
            for result in other.ok():
                key = result.job.identity_digest()
                mine = self._by_key.get(key)
                if mine is None:
                    fresh.append(result)
                elif mine.digest != result.digest:
                    conflicts.append((key, mine.digest, result.digest))
            if conflicts:
                raise ResultMergeError(conflicts)
            for result in fresh:
                self.add(result)
        finally:
            other.close()
        metrics.counter("repro.service.store_merged").inc(len(fresh))
        return len(fresh)

    @property
    def results(self) -> tuple[CompileResult, ...]:
        """All recorded results, in insertion order."""
        return tuple(self._results)

    def __len__(self) -> int:
        return len(self._results)

    def ok(self) -> list[CompileResult]:
        """Successful results only."""
        return [r for r in self._results if r.ok]

    def failures(self) -> list[CompileResult]:
        """Failed results only."""
        return [r for r in self._results if not r.ok]

    def best(
        self, workload: str, rules: str
    ) -> CompileResult | None:
        """Shortest-duration success for one (workload, rules) pair."""
        matches = [
            r
            for r in self.ok()
            if r.job.workload == workload and r.job.rules == rules
        ]
        if not matches:
            return None
        return min(matches, key=lambda r: r.duration)

    def summary(self) -> dict[str, dict]:
        """Aggregate statistics keyed by the job label."""
        grouped: dict[str, list[CompileResult]] = {}
        for result in self._results:
            grouped.setdefault(result.job.label, []).append(result)
        out: dict[str, dict] = {}
        for label, results in grouped.items():
            successes = [r for r in results if r.ok]
            entry: dict = {
                "jobs": len(results),
                "errors": len(results) - len(successes),
            }
            if successes:
                durations = [r.duration for r in successes]
                entry.update(
                    {
                        "best_duration": min(durations),
                        "mean_duration": sum(durations) / len(durations),
                        "mean_pulses": sum(
                            r.pulse_count for r in successes
                        )
                        / len(successes),
                        "mean_swaps": sum(
                            r.swap_count for r in successes
                        )
                        / len(successes),
                        "wall_time": sum(r.wall_time for r in successes),
                    }
                )
                fidelities = [
                    r.estimated_fidelity
                    for r in successes
                    if not math.isnan(r.estimated_fidelity)
                ]
                if fidelities:
                    entry["best_fidelity"] = max(fidelities)
            out[label] = entry
        return out

    def format_table(self) -> str:
        """Render the summary with the experiments table formatter."""
        from ..experiments.common import format_table

        rows = []
        for label, entry in sorted(self.summary().items()):
            if entry.get("errors") == entry["jobs"]:
                rows.append(
                    [label, "-", "-", "-", "-", "-", entry["errors"]]
                )
                continue
            fidelity = entry.get("best_fidelity")
            rows.append(
                [
                    label,
                    round(entry["best_duration"], 2),
                    "-" if fidelity is None else round(fidelity, 4),
                    round(entry["mean_pulses"], 1),
                    round(entry["mean_swaps"], 1),
                    round(entry["wall_time"], 2),
                    entry["errors"],
                ]
            )
        return format_table(
            ["job", "best dur", "best FT", "pulses", "swaps", "wall s",
             "errors"],
            rows,
        )

    def pass_profile(self):
        """Merge every result's per-pass records into one profile.

        Returns a :class:`~repro.transpiler.passes.PassProfile` (empty
        when no job ran with profiling enabled).
        """
        from ..transpiler.passes import PassProfile

        merged = PassProfile()
        for result in self._results:
            if result.pass_profile:
                merged.records.extend(
                    PassProfile.from_dict(result.pass_profile).records
                )
        return merged

    def format_pass_profile(self) -> str:
        """Render the suite-wide per-pass timing table."""
        profile = self.pass_profile()
        if not len(profile):
            return "no pass-profile records (run with profiling enabled)"
        return profile.format_table()

    def to_dict(self) -> dict:
        """JSON-compatible dump: raw results plus the summary."""
        return {
            "results": [r.to_dict() for r in self._results],
            "summary": self.summary(),
        }
