"""Batch compilation service: job farm + persistent decomposition cache.

The paper's workload studies (Tables IV-VII) transpile whole benchmark
suites best-of-N per circuit.  This package turns those one-off
``transpile()`` calls into a service:

* :mod:`repro.service.jobs`   — :class:`CompileJob` / :class:`CompileResult`
  descriptions with JSON round-trip, so suites can be queued, shipped to
  workers, and archived.  Jobs name a hardware target from
  :mod:`repro.targets` (the legacy ``coupling`` tuple deserializes via
  a deprecation shim — see the :mod:`repro.service.jobs` docstring for
  the migration and removal horizon);
* :mod:`repro.service.cache`  — :class:`DecompositionCache`, an LRU-fronted
  sqlite store of 2Q decomposition templates keyed by canonical Weyl
  coordinates, shared by every worker and persisted across runs;
* :mod:`repro.service.engine` — :class:`BatchEngine`, a multiprocessing
  farm with deterministic per-job seeding, retry-on-failure, and progress
  callbacks, plus :class:`ResultStore` aggregation and the named job
  :data:`SUITES`;
* :mod:`repro.service.coverage_store` — :class:`CoverageStore`, the
  LRU-fronted sqlite store of coverage-set point clouds the synthesis
  engine rides (replacing the legacy per-directory ``.npz`` memo);
* :mod:`repro.service.server` / :mod:`repro.service.client` — the
  network tier: :class:`CompileServer`, an asyncio job server with
  digest dedup, a crash-safe :class:`PersistentJobQueue`, streaming
  ndjson results, and bounded worker requeue; :class:`ServiceClient`,
  the blocking submit/stream client behind ``repro batch --submit``;
* :mod:`repro.service.router` — the sharded tier: :class:`ShardRouter`
  partitions the digest keyspace into contiguous ranges across N
  independent shard servers (``repro serve --shards N``), and
  :func:`merge_shard_stores` folds shard result partitions back into
  one canonical store;
* :mod:`repro.service.store_base` — :class:`SqliteStoreMixin`, the one
  copy of the WAL/fork-safe/schema-versioned sqlite discipline every
  persistent store rides, with the ``iter_range``/``merge`` key-range
  surface the shard fold uses.
"""

from __future__ import annotations

from .cache import CacheStats, DecompositionCache, default_decomp_cache_dir
from .client import (
    ServiceClient,
    ServiceError,
    ServiceTimeout,
    ServiceUnavailable,
    wait_until_ready,
)
from .coverage_store import (
    CoverageStore,
    CoverageStoreStats,
    default_coverage_store,
)
from .engine import (
    BatchEngine,
    ResultMergeError,
    ResultStore,
    ResultStoreError,
    SUITES,
    record_job_retry,
    record_job_settled,
    run_with_freight,
    suite_jobs,
)
from .jobs import CompileJob, CompileResult, circuit_digest
from .queue import PersistentJobQueue, QueuedJob, QueueError
from .router import (
    DigestRange,
    RouterThread,
    ShardRouter,
    merge_shard_stores,
    serve_sharded,
    shard_index,
    shard_ranges,
    shard_store_path,
)
from .server import CompileServer, ServerThread, serve
from .store_base import SqliteStoreMixin, StoreError, detect_store_kind

__all__ = [
    "BatchEngine",
    "CacheStats",
    "CompileJob",
    "CompileResult",
    "CompileServer",
    "CoverageStore",
    "CoverageStoreStats",
    "DecompositionCache",
    "DigestRange",
    "PersistentJobQueue",
    "QueueError",
    "QueuedJob",
    "ResultMergeError",
    "ResultStore",
    "ResultStoreError",
    "RouterThread",
    "SUITES",
    "ServerThread",
    "ServiceClient",
    "ServiceError",
    "ServiceTimeout",
    "ServiceUnavailable",
    "ShardRouter",
    "SqliteStoreMixin",
    "StoreError",
    "circuit_digest",
    "default_coverage_store",
    "default_decomp_cache_dir",
    "detect_store_kind",
    "merge_shard_stores",
    "record_job_retry",
    "record_job_settled",
    "run_with_freight",
    "serve",
    "serve_sharded",
    "shard_index",
    "shard_ranges",
    "shard_store_path",
    "suite_jobs",
    "wait_until_ready",
]
