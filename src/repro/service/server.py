"""Compile-as-a-service: the asyncio job server.

:class:`CompileServer` is the long-running network tier on top of the
batch machinery: it accepts :class:`~repro.service.jobs.CompileJob`
submissions over HTTP, dedups them by
:meth:`~repro.service.jobs.CompileJob.identity_digest` *before* any
work is scheduled, feeds a crash-safe priority queue
(:class:`~repro.service.queue.PersistentJobQueue`) into a pool of
forked worker processes running the same
:func:`~repro.service.engine.execute_job` body the
:class:`~repro.service.engine.BatchEngine` farms, streams per-job
progress and results back as JSON lines, and survives worker crashes
with bounded requeue plus exponential backoff.

Dedup tiers, checked in order at admission:

1. **Completed results** — the server's
   :class:`~repro.service.engine.ResultStore` (optionally sqlite-backed,
   so warm hits survive restarts) answers immediately, no scheduling.
2. **In-flight jobs** — an identical submission subscribes to the
   already-running job's completion instead of queueing a duplicate.

Workers below those tiers still share the persistent
:class:`~repro.service.cache.DecompositionCache` and coverage store,
so even a cold job reuses every previously-templated coordinate class.

Protocol (newline-delimited JSON over HTTP/1.1, keep-alive): every
connection serves requests in a loop until the client hangs up, so a
:class:`~repro.service.client.ServiceClient` reuses one TCP connection
across submissions instead of reconnecting per call.

* ``POST /v1/submit`` — body ``{"jobs": [job payloads], "priority": n}``;
  response streams one JSON object per line (``Transfer-Encoding:
  chunked``, one chunk per event, a terminal zero-chunk after the last
  — which is what lets ``http.client`` see the response end and reuse
  the connection): ``hello``, per-job ``accepted`` / ``running`` /
  ``requeued`` / ``result`` events, then ``done``.  ``result`` events
  carry the serialized :class:`~repro.service.jobs.CompileResult` plus
  observability freight (worker spans and metric deltas) so a traced
  client renders one client → server → worker Perfetto timeline.
* ``GET /v1/health`` — queue depth, inflight count, results held.
* ``GET /v1/metrics`` — the server's metrics-registry snapshot.
* ``POST /v1/shutdown`` — body ``{"drain": bool}``; drain finishes all
  queued work first, non-drain leaves unfinished rows in the durable
  queue for the next start (crash semantics, on purpose).

Trace context rides the network boundary exactly the way it rides the
process boundary: jobs carry ``CompileJob.trace``, workers activate it,
and the freight returns the spans — the server only *forwards*
per-job freight to the submitting connection and absorbs it locally,
while the client dedups by span id before absorbing, so in-process
test servers and standalone ``repro serve`` processes both produce a
single-copy timeline.

Scheduling notes: one forked process per job execution (crash
attribution is exact — a SIGKILLed worker is an ``EOFError`` on its
result pipe, never a poisoned pool), at most ``workers`` concurrent.
A requeued job holds its worker slot through its backoff sleep; with
bounded attempts and a capped backoff this idles a slot for at most a
few seconds, which keeps eligibility ordering trivially correct.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import json
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..obs import metrics, trace
from .engine import (
    ResultStore,
    execute_job,
    record_job_retry,
    record_job_settled,
    run_with_freight,
)
from .jobs import CompileJob, CompileResult
from .queue import PersistentJobQueue

__all__ = ["CompileServer", "ServerThread", "serve"]

#: Environment override for the per-execution worker delay (seconds).
#: A test/load-bench knob: lets lifecycle tests hold a job open long
#: enough to SIGKILL its worker, and lets the QPS bench simulate heavy
#: jobs, without touching job payloads.
WORKER_DELAY_ENV = "REPRO_SERVICE_WORKER_DELAY"

#: Distinct id stream for the server's hand-built ``service.job`` spans
#: (kept out of the tracer's own counter so ids never collide).
_SPAN_IDS = itertools.count(1)


# -- HTTP plumbing (shared with the shard router) ----------------------------


async def _read_http_request(reader):
    """One request off a (possibly reused) connection, or ``None`` at EOF."""
    line = await reader.readline()
    if not line:
        return None
    parts = line.decode("latin-1").split()
    if len(parts) < 2:
        return None
    method, path = parts[0].upper(), parts[1]
    length = 0
    while True:
        header = await reader.readline()
        if header in (b"\r\n", b"\n", b""):
            break
        name, _, value = header.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    body = await reader.readexactly(length) if length else b""
    return method, path, body


async def _write_json_response(writer, status: int, payload: dict) -> None:
    """One JSON control response; Content-Length keeps the conn reusable."""
    body = json.dumps(payload).encode()
    reason = {200: "OK", 404: "Not Found", 500: "Error",
              503: "Unavailable", 400: "Bad Request"}.get(status, "OK")
    writer.write(
        f"HTTP/1.1 {status} {reason}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: keep-alive\r\n\r\n".encode() + body
    )
    await writer.drain()


async def _start_event_stream(writer) -> None:
    """Open a chunked ndjson response (one event per chunk follows)."""
    writer.write(
        b"HTTP/1.1 200 OK\r\n"
        b"Content-Type: application/x-ndjson\r\n"
        b"Cache-Control: no-store\r\n"
        b"Transfer-Encoding: chunked\r\n"
        b"Connection: keep-alive\r\n\r\n"
    )
    await writer.drain()


async def _write_stream_event(writer, event: dict) -> None:
    line = json.dumps(event).encode() + b"\n"
    writer.write(f"{len(line):x}\r\n".encode() + line + b"\r\n")
    await writer.drain()


async def _end_event_stream(writer) -> None:
    """Terminal zero-chunk: marks the stream finished for http.client."""
    writer.write(b"0\r\n\r\n")
    await writer.drain()


def _env_worker_delay() -> float:
    value = os.environ.get(WORKER_DELAY_ENV)
    try:
        return float(value) if value else 0.0
    except ValueError:
        return 0.0


def _service_worker(conn, payload: tuple) -> None:
    """Forked per-job worker body: execute, ship (result, freight)."""
    job, use_cache, cache_path, delay = payload
    try:
        if delay:
            time.sleep(delay)
        result, freight = run_with_freight(
            execute_job, job, use_cache=use_cache, cache_path=cache_path
        )
        conn.send((result, freight))
    finally:
        conn.close()


def _collect_worker(receiver, process) -> tuple | None:
    """Blockingly await one worker's pipe; ``None`` means it died.

    Runs in an executor thread so the event loop never blocks.  A
    worker that was SIGKILLed (or OOM-killed, or segfaulted) closes
    its pipe end without sending — the ``EOFError`` is the crash
    signal the requeue path keys off.
    """
    try:
        item = receiver.recv()
    except (EOFError, OSError):
        item = None
    finally:
        receiver.close()
    process.join()
    return item


@dataclass
class _JobEntry:
    """One admitted (non-dedup'd) job and its subscribers."""

    key: str
    job: CompileJob
    priority: int
    attempts: int = 0
    enqueued_at: float = field(default_factory=time.perf_counter)
    #: ``(submission index, connection event queue)`` pairs; grows when
    #: identical submissions dedup onto this entry.
    subscribers: list = field(default_factory=list)

    def publish(self, event: dict) -> None:
        """Fan one event out to every subscriber with its own index."""
        for index, queue in self.subscribers:
            queue.put_nowait({**event, "index": index})


class CompileServer:
    """Async compile-job server over the batch-engine worker body.

    Args:
        host/port: bind address (``port=0`` lets the OS pick; the
            resolved port is readable after startup).
        workers: maximum concurrently-running job processes.
        use_cache/cache_path: decomposition-cache wiring, exactly as
            :class:`~repro.service.engine.BatchEngine` takes it.
        retries: extra executions granted per job after a failure or
            worker death (``retries=2`` → at most 3 executions).
        backoff_base/backoff_cap: exponential requeue backoff, seconds
            (``base * 2**(attempt-1)``, capped).
        queue_path: sqlite path for the crash-safe job queue (``None``
            → memory-only).
        results_path: sqlite path for the persistent result store that
            backs warm dedup across restarts (``None`` → memory-only).
        worker_delay: artificial per-execution delay in seconds
            (default: the ``REPRO_SERVICE_WORKER_DELAY`` env knob);
            tests and load benches only.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        use_cache: bool = True,
        cache_path: str | Path | None = None,
        retries: int = 2,
        backoff_base: float = 0.1,
        backoff_cap: float = 5.0,
        queue_path: str | Path | None = None,
        results_path: str | Path | None = None,
        worker_delay: float | None = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.host = host
        self.port = int(port)
        self.workers = int(workers)
        self.use_cache = bool(use_cache)
        self.cache_path = (
            str(cache_path) if cache_path is not None else None
        )
        self.retries = int(retries)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.worker_delay = (
            _env_worker_delay() if worker_delay is None else float(worker_delay)
        )
        self.queue = PersistentJobQueue(queue_path)
        self.results = ResultStore(path=results_path)
        self._inflight: dict[str, _JobEntry] = {}
        self._heap: list[tuple[int, int, str]] = []
        self._seq = itertools.count()
        self._tasks: set[asyncio.Task] = set()
        self._accepting = False
        self._draining = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._work_available: asyncio.Event | None = None
        self._slots: asyncio.Semaphore | None = None
        self._live_procs: set = set()
        #: Open client writers — keep-alive connections idle between
        #: requests must be force-closed at stop, or ``wait_closed``
        #: (which waits on handlers since 3.12.1) would hang on them.
        self._connections: set = set()

    # -- lifecycle -----------------------------------------------------------

    async def run(self, ready_callback=None) -> None:
        """Serve until :meth:`shutdown` completes (the main coroutine)."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._work_available = asyncio.Event()
        self._slots = asyncio.Semaphore(self.workers)
        self._accepting = True
        for queued in self.queue.recover():
            # A previous process left these unfinished — crash-safe
            # requeue.  Attempt counts survive so the retry budget
            # spans crashes too.
            metrics.counter("repro.service.recovered").inc()
            self._admit_entry(
                _JobEntry(
                    key=queued.key,
                    job=queued.job,
                    priority=queued.priority,
                    attempts=queued.attempts,
                ),
                persist=False,
            )
        server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = server.sockets[0].getsockname()[1]
        scheduler = asyncio.create_task(self._scheduler())
        if ready_callback is not None:
            ready_callback(self)
        try:
            await self._stop_event.wait()
        finally:
            self._accepting = False
            scheduler.cancel()
            for task in list(self._tasks):
                task.cancel()
            for proc in list(self._live_procs):
                if proc.is_alive():
                    proc.terminate()
            for conn in list(self._connections):
                conn.close()
            server.close()
            await server.wait_closed()
            self.results.close()
            self.queue.close()

    async def shutdown(self, drain: bool = True) -> None:
        """Stop the server; with ``drain`` finish all admitted work first.

        Non-drain shutdown intentionally leaves unsettled rows in the
        durable queue: the next server pointed at the same
        ``queue_path`` recovers and finishes them.
        """
        self._accepting = False
        self._draining = drain
        if drain:
            while self._inflight:
                await asyncio.sleep(0.02)
        if self._stop_event is not None:
            self._stop_event.set()

    # -- admission -----------------------------------------------------------

    def _update_gauges(self) -> None:
        metrics.gauge("repro.service.inflight").set(len(self._inflight))
        metrics.gauge("repro.service.queue_depth").set(self.queue.depth())

    def _admit_entry(self, entry: _JobEntry, persist: bool = True) -> None:
        """Make a fresh entry schedulable (durably recorded first)."""
        if persist:
            self.queue.put(entry.key, entry.job, entry.priority)
        self._inflight[entry.key] = entry
        heapq.heappush(
            self._heap, (entry.priority, next(self._seq), entry.key)
        )
        self._update_gauges()
        if self._work_available is not None:
            self._work_available.set()

    def _admit(
        self, index: int, job: CompileJob, priority: int, events
    ) -> list[dict]:
        """Route one submitted job through the dedup tiers.

        Returns the events to emit immediately; queued/inflight jobs
        additionally subscribe ``events`` for their later lifecycle.
        """
        key = job.identity_digest()
        metrics.counter("repro.service.submissions").inc()
        if job.trace is not None:
            # Join the submitter's trace so server-side spans (and the
            # workers below) land on the client's timeline.
            trace.TRACER.activate(job.trace)
        cached = self.results.get(key)
        if cached is not None:
            metrics.counter("repro.service.dedup_hits").inc()
            metrics.counter("repro.service.dedup_store").inc()
            return [
                {"event": "accepted", "index": index, "key": key,
                 "status": "dedup_store"},
                {"event": "result", "index": index, "key": key,
                 "ok": cached.ok, "dedup": True,
                 "result": cached.to_dict()},
            ]
        entry = self._inflight.get(key)
        if entry is not None:
            metrics.counter("repro.service.dedup_hits").inc()
            metrics.counter("repro.service.dedup_inflight").inc()
            entry.subscribers.append((index, events))
            return [
                {"event": "accepted", "index": index, "key": key,
                 "status": "dedup_inflight"},
            ]
        entry = _JobEntry(key=key, job=job, priority=priority)
        entry.subscribers.append((index, events))
        self._admit_entry(entry)
        return [
            {"event": "accepted", "index": index, "key": key,
             "status": "queued"},
        ]

    # -- scheduling ----------------------------------------------------------

    async def _scheduler(self) -> None:
        while True:
            await self._work_available.wait()
            self._work_available.clear()
            while self._heap:
                _, _, key = heapq.heappop(self._heap)
                entry = self._inflight.get(key)
                if entry is None:
                    continue
                await self._slots.acquire()
                task = asyncio.create_task(self._run_entry(entry))
                self._tasks.add(task)
                task.add_done_callback(self._task_done)

    def _task_done(self, task: asyncio.Task) -> None:
        self._tasks.discard(task)
        self._slots.release()
        if not task.cancelled() and task.exception() is not None:
            # A scheduler bug must not wedge the slot accounting; the
            # entry's subscribers already got a failure result.
            metrics.counter("repro.service.scheduler_errors").inc()

    async def _execute_once(self, entry: _JobEntry) -> tuple | None:
        """One forked execution; ``None`` signals a dead worker."""
        job = entry.job
        if job.trace is None and trace.TRACER.enabled:
            context = trace.TRACER.current_context()
            if context is not None:
                job = job.updated(trace=context.to_dict())
        try:
            context_mp = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context_mp = multiprocessing.get_context("spawn")
        receiver, sender = context_mp.Pipe(duplex=False)
        process = context_mp.Process(
            target=_service_worker,
            args=(
                sender,
                (job, self.use_cache, self.cache_path, self.worker_delay),
            ),
            daemon=True,
        )
        process.start()
        sender.close()
        self._live_procs.add(process)
        entry.publish(
            {"event": "running", "key": entry.key, "pid": process.pid,
             "attempt": entry.attempts}
        )
        try:
            return await asyncio.get_running_loop().run_in_executor(
                None, _collect_worker, receiver, process
            )
        finally:
            self._live_procs.discard(process)

    def _service_span(self, entry: _JobEntry, outcome: str) -> list[dict]:
        """Hand-built ``service.job`` span for the forwarded freight.

        Constructed explicitly (not via ``trace.span``) because
        concurrent entries interleave in the tracer buffer, which
        makes per-entry drain attribution racy; an explicit span is
        exact.  It is appended to the server's own tracer too, so a
        standalone ``repro serve`` export shows it — clients dedup by
        span id before absorbing, which keeps in-process test servers
        single-copy.
        """
        context = entry.job.trace
        if context is None:
            return []
        span = trace.Span(
            name="service.job",
            trace_id=context.get("trace_id", ""),
            span_id=f"{os.getpid():x}-s{next(_SPAN_IDS):x}",
            parent_id=context.get("parent_id"),
            start=entry.enqueued_at,
            duration=time.perf_counter() - entry.enqueued_at,
            pid=os.getpid(),
            attrs={
                "key": entry.key[:12],
                "job": entry.job.label,
                "attempts": entry.attempts,
                "outcome": outcome,
            },
        )
        if trace.TRACER.enabled:
            trace.TRACER.spans.append(span)
        return [span.to_dict()]

    async def _requeue(self, entry: _JobEntry, reason: str) -> None:
        """One requeue decision: durable state, metrics, event, backoff.

        ``repro.service.requeues`` counts scheduler requeue events and
        :func:`record_job_retry` counts retry decisions — both fire
        here and only here, so the server-side invariant holds:
        ``job_attempts.total - job_attempts.count == job_retries ==
        requeues`` once every job settles, no matter how executions
        were lost (a killed worker's own freight never arrives, so
        nothing it counted can double-count against these).
        """
        metrics.counter("repro.service.requeues").inc()
        record_job_retry()
        delay = min(
            self.backoff_cap,
            self.backoff_base * 2 ** (entry.attempts - 1),
        )
        self.queue.requeue(entry.key, entry.attempts)
        entry.publish(
            {"event": "requeued", "key": entry.key,
             "attempt": entry.attempts, "delay_s": delay,
             "reason": reason}
        )
        await asyncio.sleep(delay)

    async def _run_entry(self, entry: _JobEntry) -> None:
        """Drive one admitted job to settlement, requeueing as needed."""
        freight: dict = {}
        result: CompileResult | None = None
        while True:
            entry.attempts += 1
            self.queue.mark_running(entry.key, entry.attempts)
            item = await self._execute_once(entry)
            if item is None:
                # The worker process died without reporting — SIGKILL,
                # OOM, segfault.  Its per-execution metrics died with
                # it, which is exactly why settlement accounting runs
                # here and not in the worker.
                if self._stop_event is not None and self._stop_event.is_set():
                    # Forced shutdown terminated it; leave the queue
                    # row for recovery, report nothing.
                    self._inflight.pop(entry.key, None)
                    return
                if entry.attempts <= self.retries:
                    await self._requeue(entry, "worker_died")
                    continue
                result = CompileResult.failure(
                    entry.job,
                    error=(
                        "worker process died during execution "
                        f"(attempt {entry.attempts}; killed or crashed)"
                    ),
                )
                break
            result, freight = item
            self._absorb_freight(freight)
            if not result.ok and entry.attempts <= self.retries:
                await self._requeue(entry, "error")
                continue
            break
        result = result.with_attempts(entry.attempts)
        record_job_settled(result)
        self.queue.mark_done(entry.key)
        if result.ok:
            self.results.add(result)
        spans = list(freight.get("spans", ()))
        spans += self._service_span(
            entry, "ok" if result.ok else "error"
        )
        entry.publish(
            {"event": "result", "key": entry.key, "ok": result.ok,
             "dedup": False, "result": result.to_dict(),
             "freight": {
                 "pid": os.getpid(),
                 "spans": spans,
                 "metrics": freight.get("metrics", {}),
             }}
        )
        self._inflight.pop(entry.key, None)
        self._update_gauges()

    def _absorb_freight(self, freight: dict) -> None:
        """Merge a worker's freight into the server's own telemetry."""
        if freight.get("pid") == os.getpid():
            return
        trace.TRACER.absorb(freight.get("spans", ()))
        delta = freight.get("metrics")
        if delta:
            metrics.REGISTRY.merge_snapshot(delta)

    # -- HTTP ----------------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        self._connections.add(writer)
        try:
            # Keep-alive: serve requests until the client hangs up (or
            # asks for shutdown — terminal by construction).
            while True:
                request = await _read_http_request(reader)
                if request is None:
                    break
                method, path, body = request
                if method == "GET" and path == "/v1/health":
                    await _write_json_response(writer, 200, self._health())
                elif method == "GET" and path == "/v1/metrics":
                    await _write_json_response(
                        writer, 200, metrics.REGISTRY.snapshot()
                    )
                elif method == "POST" and path == "/v1/shutdown":
                    payload = json.loads(body or b"{}")
                    drain = bool(payload.get("drain", True))
                    await _write_json_response(
                        writer, 200, {"ok": True, "drain": drain}
                    )
                    asyncio.ensure_future(self.shutdown(drain=drain))
                    break
                elif method == "POST" and path == "/v1/submit":
                    await self._handle_submit(writer, body)
                else:
                    await _write_json_response(
                        writer, 404, {"error": f"no route {method} {path}"}
                    )
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            pass  # Client went away; its jobs still run to completion.
        except asyncio.CancelledError:
            # Loop teardown cancelled an idle keep-alive handler;
            # returning (not re-raising) keeps shutdown quiet.
            pass
        except Exception as exc:  # noqa: BLE001 - report, don't crash server
            try:
                await _write_json_response(
                    writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
                )
            except OSError:
                pass
        finally:
            self._connections.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (OSError, ConnectionResetError):
                pass

    async def _handle_submit(self, writer, body: bytes) -> None:
        if not self._accepting:
            await _write_json_response(
                writer, 503, {"error": "server is draining/stopped"}
            )
            return
        try:
            payload = json.loads(body or b"{}")
            jobs = [
                CompileJob.from_dict(item)
                for item in payload.get("jobs", [])
            ]
            priority = int(payload.get("priority", 0))
        except (ValueError, TypeError, KeyError) as exc:
            await _write_json_response(
                writer, 400, {"error": f"bad submission: {exc}"}
            )
            return
        if not jobs:
            await _write_json_response(
                writer, 400, {"error": "submission carries no jobs"}
            )
            return
        await _start_event_stream(writer)
        events: asyncio.Queue = asyncio.Queue()
        await _write_stream_event(
            writer,
            {"event": "hello", "server_pid": os.getpid(),
             "count": len(jobs)},
        )
        finished = 0
        for index, job in enumerate(jobs):
            for event in self._admit(index, job, priority, events):
                if event["event"] == "result":
                    finished += 1
                await _write_stream_event(writer, event)
        while finished < len(jobs):
            event = await events.get()
            await _write_stream_event(writer, event)
            if event["event"] == "result":
                finished += 1
        await _write_stream_event(
            writer, {"event": "done", "count": len(jobs)}
        )
        await _end_event_stream(writer)

    def _health(self) -> dict:
        return {
            "status": "ok" if self._accepting else "draining",
            "pid": os.getpid(),
            "workers": self.workers,
            "inflight": len(self._inflight),
            "queue_depth": self.queue.depth(),
            "results": len(self.results.ok()),
            "retries": self.retries,
        }


class ServerThread:
    """A :class:`CompileServer` on a background thread (tests, benches).

    Context manager: entering starts the loop thread and blocks until
    the server is accepting; exiting drains and joins.  The server
    shares the process's tracer/metrics registry, which is exactly
    what in-process tests want to assert against.
    """

    def __init__(self, **kwargs):
        self.server = CompileServer(**kwargs)
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()

    @property
    def url(self) -> str:
        return f"http://{self.server.host}:{self.server.port}"

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._main, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("compile server failed to start in 30s")
        return self

    def _main(self) -> None:
        asyncio.run(
            self.server.run(ready_callback=lambda _s: self._ready.set())
        )

    def stop(self, drain: bool = True) -> None:
        loop = self.server._loop
        if loop is not None and loop.is_running():
            asyncio.run_coroutine_threadsafe(
                self.server.shutdown(drain=drain), loop
            )
        if self._thread is not None:
            self._thread.join(timeout=30)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)


def serve(
    host: str = "127.0.0.1",
    port: int = 8234,
    **kwargs,
) -> int:
    """Blocking entry point for ``repro serve``."""
    server = CompileServer(host=host, port=port, **kwargs)

    def announce(s: CompileServer) -> None:
        print(
            f"repro compile service listening on http://{s.host}:{s.port} "
            f"(workers={s.workers}, retries={s.retries}, "
            f"queue={'durable' if s.queue.path else 'memory'}, "
            f"results={'durable' if s.results.path else 'memory'})",
            flush=True,
        )

    try:
        asyncio.run(server.run(ready_callback=announce))
    except KeyboardInterrupt:
        print("repro serve: interrupted, stopping", flush=True)
    return 0
