"""Compilation job and result records.

A :class:`CompileJob` is a complete, serializable description of one
compilation: which workload, at what width, with which seeds, under
which :class:`~repro.transpiler.compiler.CompilerConfig` (pipeline,
rule engine, hardware target, trial-loop knobs).  A
:class:`CompileResult` carries the scalar outcomes (plus a digest of
the compiled circuit for byte-level parity checks, and optionally the
per-pass timing profile) without shipping the circuit object itself
across process boundaries.

Both types round-trip through JSON, so suites can be queued from files
and results archived next to the paper artifacts.  Jobs embed their
config as a nested ``"config"`` object; flat pre-config payloads
(``rules``/``trials``/``scheduler``/``selection``/``target`` at the
top level) still load — those keys double as constructor conveniences.

Stage vocabulary (scheduler and selection names) is owned by the
transpiler layer: :data:`KNOWN_SCHEDULERS` and
:data:`KNOWN_SELECTIONS` re-export
:data:`repro.transpiler.passes.SCHEDULERS` and the live selection
registry instead of re-declaring tuples that could drift.

**Migration note (``coupling`` -> ``target``).**  Jobs used to carry a
``coupling: (rows, cols)`` square-lattice tuple; they now name a
:class:`~repro.targets.model.HardwareTarget` from the target registry
(``target="snail_4x4"`` by default — the paper's device).  The
deprecation shim that mapped ``coupling=(R, C)`` onto the dynamically
resolved ``square_RxC`` target was removed at the end of its announced
window (introduced PR 2, removal scheduled >= PR 4): the constructor no
longer accepts ``coupling``, and :meth:`CompileJob.from_dict` raises a
:class:`ValueError` naming the replacement when an archived payload
still carries the key.  Re-archive such payloads with
``target="square_RxC"``.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import InitVar, asdict, dataclass, field, fields, replace

from ..circuits.circuit import QuantumCircuit
from ..core.decomposition_rules import RULE_ENGINES
from ..targets import get_target
from ..transpiler.compiler import DEFAULT_TARGET, CompilerConfig
from ..transpiler.passes import SCHEDULERS, known_selections

__all__ = ["CompileJob", "CompileResult", "circuit_digest"]

#: Rule-engine names a job may request (shared with build_rules()).
KNOWN_RULES = RULE_ENGINES

#: Scheduling strategies a job may request — the transpiler layer's
#: tuple, not a local copy.
KNOWN_SCHEDULERS = SCHEDULERS

#: Best-trial criteria a job may request — a snapshot of the pluggable
#: selection registry at import time (validation always consults the
#: live registry via CompilerConfig).
KNOWN_SELECTIONS = known_selections()

#: Config-level keys accepted as constructor conveniences / overrides.
_CONFIG_KEYS = (
    "pipeline", "rules", "target", "trials", "scheduler", "selection",
)


def circuit_digest(circuit: QuantumCircuit) -> str:
    """SHA-256 over the exact gate stream of a compiled circuit.

    Two circuits share a digest iff they have the same width and the
    same ordered gates (name, qubits, bit-exact params and durations),
    which is the equality the batch engine's parity guarantee is stated
    in: parallel workers must reproduce sequential ``transpile()``
    byte-for-byte given the same seeds.
    """
    hasher = hashlib.sha256()
    hasher.update(f"q{circuit.num_qubits}\n".encode())
    for gate in circuit:
        params = ",".join(repr(float(p)) for p in gate.params)
        duration = "" if gate.duration is None else repr(float(gate.duration))
        hasher.update(
            f"{gate.name}|{gate.qubits}|{params}|{duration}\n".encode()
        )
    return hasher.hexdigest()


@dataclass(frozen=True)
class CompileJob:
    """One compilation request, fully determined by its fields.

    The compilation setup lives in the embedded ``config``; the job
    adds workload identity and seeds.  ``rules``/``trials``/
    ``scheduler``/``selection``/``target``/``pipeline`` are accepted as
    constructor conveniences that override the config (and remain
    readable as properties delegating to it), so pre-config call sites
    keep working unchanged.
    """

    workload: str
    num_qubits: int = 16
    config: CompilerConfig = None  # type: ignore[assignment] — see post_init
    seed: int = 7
    workload_seed: int | None = 11
    tag: str = ""
    #: Serialized tracing context (``TraceContext.to_dict()`` form)
    #: carried across the worker process boundary so spans emitted in
    #: workers parent under the submitting span.  Not part of job
    #: identity: excluded from equality and dropped from ``to_dict``
    #: when unset.
    trace: dict | None = field(default=None, repr=False, compare=False)
    #: Constructor-only config overrides (stored inside ``config``).
    rules: InitVar[str | None] = None
    trials: InitVar[int | None] = None
    scheduler: InitVar[str | None] = None
    selection: InitVar[str | None] = None
    target: InitVar[str | None] = None
    pipeline: InitVar[str | None] = None

    def __post_init__(
        self,
        rules: str | None,
        trials: int | None,
        scheduler: str | None,
        selection: str | None,
        target: str | None,
        pipeline: str | None,
    ) -> None:
        if self.config is None:
            config = CompilerConfig(
                pipeline=pipeline if pipeline is not None else "noise_aware",
                rules=rules if rules is not None else "parallel",
                target=target if target is not None else DEFAULT_TARGET,
                trials=trials,
                scheduler=scheduler,
                selection=selection,
            )
        else:
            config = self.config.with_overrides(
                pipeline=pipeline,
                rules=rules,
                target=target,
                trials=trials,
                scheduler=scheduler,
                selection=selection,
            )
        object.__setattr__(self, "config", config)
        if self.num_qubits < 2:
            raise ValueError("need at least two qubits")
        try:
            resolved = get_target(config.target)
        except KeyError as exc:
            raise ValueError(str(exc)) from None
        if resolved.num_qubits < self.num_qubits:
            raise ValueError(
                f"target {config.target!r} ({resolved.num_qubits} qubits) "
                f"too small for {self.num_qubits} qubits"
            )

    @property
    def label(self) -> str:
        """Human-readable id used in progress lines and summaries."""
        suffix = f":{self.tag}" if self.tag else ""
        return f"{self.workload}-{self.num_qubits}q-{self.config.rules}{suffix}"

    def updated(self, **overrides) -> "CompileJob":
        """Copy with job-level and/or config-level fields replaced.

        Accepts any dataclass field (``seed``, ``tag``, ...) plus the
        config-level keys (``trials``, ``target``, ``pipeline``, ...);
        ``None`` values are ignored, mirroring suite overrides.  Prefer
        this over ``dataclasses.replace`` — ``replace`` re-feeds the
        convenience properties as constructor overrides, which stomps a
        directly-replaced ``config``.
        """
        config = self.config.with_overrides(
            **{
                key: value
                for key, value in overrides.items()
                if key in _CONFIG_KEYS
            }
        )
        job_level = {
            key: value
            for key, value in overrides.items()
            if key not in _CONFIG_KEYS and value is not None
        }
        merged = {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name != "config"
        }
        merged.update(job_level)
        return CompileJob(config=config, **merged)

    def to_dict(self) -> dict:
        """Plain-python form (JSON-compatible; config nested)."""
        payload = asdict(self)
        if payload.get("trace") is None:
            payload.pop("trace", None)
        return payload

    def identity_digest(self) -> str:
        """SHA-256 over the job's canonical identity payload.

        This is the dedup key the compile service schedules by: two
        jobs share a digest iff they request the same compilation —
        same workload identity, seeds, and embedded config.  The
        ``trace`` field is excluded (propagation context, not
        identity; it is already ``compare=False`` for equality), so a
        resubmission carrying a different trace context still dedups
        against the in-flight or completed original.
        """
        payload = self.to_dict()
        payload.pop("trace", None)
        canonical = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()

    @classmethod
    def from_dict(cls, payload: dict) -> "CompileJob":
        """Inverse of :meth:`to_dict`.

        Also accepts flat pre-config payloads (top-level ``rules``/
        ``trials``/``scheduler``/``selection``/``target`` keys).
        Pre-target payloads carrying a ``coupling`` list are no longer
        shimmed (removal window >= PR 4, see the module docstring);
        they raise a :class:`ValueError` naming the replacement.
        """
        payload = dict(payload)
        if "coupling" in payload:
            rows_cols = payload["coupling"]
            hint = (
                f"'square_{rows_cols[0]}x{rows_cols[1]}'"
                if isinstance(rows_cols, (list, tuple))
                and len(rows_cols) == 2
                else "'square_RxC'"
            )
            raise ValueError(
                "CompileJob payloads no longer support 'coupling' "
                f"(shim removed; was deprecated since PR 2): pass "
                f"target={hint} instead"
            )
        config = payload.pop("config", None)
        if config is not None:
            payload["config"] = CompilerConfig.from_dict(config)
        return cls(**payload)

    def to_json(self) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CompileJob":
        """Parse a job from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


def _config_property(name: str, doc: str) -> property:
    """Read-only delegation CompileJob.<name> -> CompileJob.config."""

    def getter(self: CompileJob):
        return getattr(self.config, name)

    getter.__doc__ = doc
    return property(getter)


# The convenience kwargs stay readable as attributes: call sites and
# archived analysis code use job.rules / job.trials / job.target etc.
# (InitVar defaults would otherwise shadow these class attributes, so
# they are attached after the dataclass decorator has bound __init__.)
CompileJob.rules = _config_property("rules", "Rule-engine name.")
CompileJob.target = _config_property("target", "Hardware-target name.")
CompileJob.pipeline = _config_property("pipeline", "Pipeline name.")
CompileJob.trials = _config_property(
    "resolved_trials", "Trial count (pipeline default resolved)."
)
CompileJob.scheduler = _config_property(
    "resolved_scheduler", "Scheduler name (pipeline default resolved)."
)
CompileJob.selection = _config_property(
    "resolved_selection", "Selection strategy (pipeline default resolved)."
)


@dataclass(frozen=True)
class CompileResult:
    """Outcome of one job: scalar metrics plus a circuit digest."""

    job: CompileJob
    duration: float = math.nan
    pulse_count: int = 0
    swap_count: int = 0
    total_pulse_time: float = math.nan
    estimated_fidelity: float = math.nan
    trial_index: int = -1
    digest: str = ""
    gate_counts: dict[str, int] = field(default_factory=dict)
    wall_time: float = 0.0
    attempts: int = 1
    error: str | None = None
    #: Per-pass timing/gate-count records (PassProfile.to_dict() form)
    #: when the engine ran with profiling enabled.
    pass_profile: dict | None = None

    #: Float fields whose NaN sentinel serializes as ``null``.
    _NAN_NULL_FIELDS = ("duration", "total_pulse_time", "estimated_fidelity")

    @property
    def ok(self) -> bool:
        """True when the job compiled successfully."""
        return self.error is None

    @classmethod
    def failure(
        cls, job: CompileJob, error: str, wall_time: float = 0.0
    ) -> "CompileResult":
        """Record a failed attempt (metrics left at sentinel values)."""
        return cls(job=job, wall_time=wall_time, error=error)

    def with_attempts(self, attempts: int) -> "CompileResult":
        """Copy with the engine's final attempt count stamped in."""
        return replace(self, attempts=attempts)

    def to_dict(self) -> dict:
        """Plain-python form (strict-JSON compatible).

        NaN sentinels of failed jobs become ``null`` so the output stays
        parseable by RFC-compliant consumers (jq, JSON.parse, ...).
        """
        payload = asdict(self)
        payload["job"] = self.job.to_dict()
        for key in self._NAN_NULL_FIELDS:
            if math.isnan(payload[key]):
                payload[key] = None
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "CompileResult":
        """Inverse of :meth:`to_dict`.

        Results archived before the target subsystem lack
        ``estimated_fidelity``; it loads as NaN (unknown).  Results
        archived before the pass-manager redesign lack ``pass_profile``
        (loads as None) and carry flat job payloads (handled by
        :meth:`CompileJob.from_dict`).
        """
        payload = {
            key: value
            for key, value in payload.items()
            if key in {f.name for f in fields(cls)}
        }
        payload["job"] = CompileJob.from_dict(payload["job"])
        payload["gate_counts"] = dict(payload.get("gate_counts", {}))
        for key in cls._NAN_NULL_FIELDS:
            if payload.get(key) is None:
                payload[key] = math.nan
        return cls(**payload)

    def to_json(self) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CompileResult":
        """Parse a result from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))
