"""Compilation job and result records.

A :class:`CompileJob` is a complete, serializable description of one
best-of-N transpilation: which workload, at what width, onto which
hardware target, under which rule engine and scheduler, with which
seeds.  A :class:`CompileResult` carries the scalar outcomes (plus a
digest of the compiled circuit for byte-level parity checks) without
shipping the circuit object itself across process boundaries.

Both types round-trip through JSON, so suites can be queued from files
and results archived next to the paper artifacts.

**Migration note (``coupling`` -> ``target``).**  Jobs used to carry a
``coupling: (rows, cols)`` square-lattice tuple; they now name a
:class:`~repro.targets.model.HardwareTarget` from the target registry
(``target="snail_4x4"`` by default — the paper's device).  A
deprecation shim keeps old callers and archived job files working:
``CompileJob(coupling=(R, C))`` and payloads containing a ``coupling``
key map onto the dynamically resolved ``square_RxC`` target and emit a
:class:`DeprecationWarning`.  The shim is scheduled for removal two PRs
after its introduction (PR 2), i.e. any PR from PR 4 on may delete it;
until then new code must pass ``target=`` and never both fields.
"""

from __future__ import annotations

import hashlib
import json
import math
import warnings
from dataclasses import InitVar, asdict, dataclass, field, fields, replace

from ..circuits.circuit import QuantumCircuit
from ..core.decomposition_rules import RULE_ENGINES
from ..targets import get_target

__all__ = ["CompileJob", "CompileResult", "circuit_digest"]

#: Rule-engine names a job may request (shared with build_rules()).
KNOWN_RULES = RULE_ENGINES

#: Scheduling strategies a job may request (see circuits.dag).
KNOWN_SCHEDULERS = ("asap", "alap")

#: Best-trial criteria a job may request (see transpiler.pipeline).
KNOWN_SELECTIONS = ("fidelity", "duration")

#: The paper's device; jobs compile onto it unless told otherwise.
DEFAULT_TARGET = "snail_4x4"


def circuit_digest(circuit: QuantumCircuit) -> str:
    """SHA-256 over the exact gate stream of a compiled circuit.

    Two circuits share a digest iff they have the same width and the
    same ordered gates (name, qubits, bit-exact params and durations),
    which is the equality the batch engine's parity guarantee is stated
    in: parallel workers must reproduce sequential ``transpile()``
    byte-for-byte given the same seeds.
    """
    hasher = hashlib.sha256()
    hasher.update(f"q{circuit.num_qubits}\n".encode())
    for gate in circuit:
        params = ",".join(repr(float(p)) for p in gate.params)
        duration = "" if gate.duration is None else repr(float(gate.duration))
        hasher.update(
            f"{gate.name}|{gate.qubits}|{params}|{duration}\n".encode()
        )
    return hasher.hexdigest()


@dataclass(frozen=True)
class CompileJob:
    """One transpilation request, fully determined by its fields."""

    workload: str
    num_qubits: int = 16
    rules: str = "parallel"
    trials: int = 10
    seed: int = 7
    target: str = DEFAULT_TARGET
    scheduler: str = "alap"
    #: Best-trial criterion: "fidelity" (noise-aware, the default) or
    #: "duration" (the paper's shortest-critical-path rule).
    selection: str = "fidelity"
    workload_seed: int | None = 11
    tag: str = ""
    #: Deprecated constructor-only alias: a (rows, cols) square lattice,
    #: mapped onto the ``square_RxC`` dynamic target.  Remove >= PR 4.
    coupling: InitVar[tuple[int, int] | None] = None

    def __post_init__(self, coupling: tuple[int, int] | None) -> None:
        if coupling is not None:
            if self.target != DEFAULT_TARGET:
                raise ValueError(
                    "pass either target= or the deprecated coupling=, "
                    "not both"
                )
            warnings.warn(
                "CompileJob(coupling=(rows, cols)) is deprecated; pass "
                "target='square_RxC' (or a named preset) instead.  The "
                "shim will be removed from PR 4 on.",
                DeprecationWarning,
                stacklevel=3,
            )
            rows, cols = coupling
            object.__setattr__(self, "target", f"square_{rows}x{cols}")
        if self.rules not in KNOWN_RULES:
            raise ValueError(
                f"unknown rules {self.rules!r}; known: {KNOWN_RULES}"
            )
        if self.scheduler not in KNOWN_SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; "
                f"known: {KNOWN_SCHEDULERS}"
            )
        if self.selection not in KNOWN_SELECTIONS:
            raise ValueError(
                f"unknown selection {self.selection!r}; "
                f"known: {KNOWN_SELECTIONS}"
            )
        if self.trials < 1:
            raise ValueError("trials must be >= 1")
        if self.num_qubits < 2:
            raise ValueError("need at least two qubits")
        try:
            target = get_target(self.target)
        except KeyError as exc:
            raise ValueError(str(exc)) from None
        if target.num_qubits < self.num_qubits:
            raise ValueError(
                f"target {self.target!r} ({target.num_qubits} qubits) "
                f"too small for {self.num_qubits} qubits"
            )

    @property
    def label(self) -> str:
        """Human-readable id used in progress lines and summaries."""
        suffix = f":{self.tag}" if self.tag else ""
        return f"{self.workload}-{self.num_qubits}q-{self.rules}{suffix}"

    def to_dict(self) -> dict:
        """Plain-python form (JSON-compatible)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "CompileJob":
        """Inverse of :meth:`to_dict`.

        Also accepts pre-target payloads carrying a ``coupling`` list;
        those go through the deprecation shim (warning included).
        """
        payload = dict(payload)
        legacy = payload.pop("coupling", None)
        if legacy is not None:
            payload["coupling"] = tuple(legacy)
        return cls(**payload)

    def to_json(self) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CompileJob":
        """Parse a job from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class CompileResult:
    """Outcome of one job: scalar metrics plus a circuit digest."""

    job: CompileJob
    duration: float = math.nan
    pulse_count: int = 0
    swap_count: int = 0
    total_pulse_time: float = math.nan
    estimated_fidelity: float = math.nan
    trial_index: int = -1
    digest: str = ""
    gate_counts: dict[str, int] = field(default_factory=dict)
    wall_time: float = 0.0
    attempts: int = 1
    error: str | None = None

    #: Float fields whose NaN sentinel serializes as ``null``.
    _NAN_NULL_FIELDS = ("duration", "total_pulse_time", "estimated_fidelity")

    @property
    def ok(self) -> bool:
        """True when the job compiled successfully."""
        return self.error is None

    @classmethod
    def failure(
        cls, job: CompileJob, error: str, wall_time: float = 0.0
    ) -> "CompileResult":
        """Record a failed attempt (metrics left at sentinel values)."""
        return cls(job=job, wall_time=wall_time, error=error)

    def with_attempts(self, attempts: int) -> "CompileResult":
        """Copy with the engine's final attempt count stamped in."""
        return replace(self, attempts=attempts)

    def to_dict(self) -> dict:
        """Plain-python form (strict-JSON compatible).

        NaN sentinels of failed jobs become ``null`` so the output stays
        parseable by RFC-compliant consumers (jq, JSON.parse, ...).
        """
        payload = asdict(self)
        payload["job"] = self.job.to_dict()
        for key in self._NAN_NULL_FIELDS:
            if math.isnan(payload[key]):
                payload[key] = None
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "CompileResult":
        """Inverse of :meth:`to_dict`.

        Results archived before the target subsystem lack
        ``estimated_fidelity``; it loads as NaN (unknown).
        """
        payload = {
            key: value
            for key, value in payload.items()
            if key in {f.name for f in fields(cls)}
        }
        payload["job"] = CompileJob.from_dict(payload["job"])
        payload["gate_counts"] = dict(payload.get("gate_counts", {}))
        for key in cls._NAN_NULL_FIELDS:
            if payload.get(key) is None:
                payload[key] = math.nan
        return cls(**payload)

    def to_json(self) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CompileResult":
        """Parse a result from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))
