"""Compilation job and result records.

A :class:`CompileJob` is a complete, serializable description of one
best-of-N transpilation: which workload, at what width, onto which
lattice, under which rule engine, with which seeds.  A
:class:`CompileResult` carries the scalar outcomes (plus a digest of the
compiled circuit for byte-level parity checks) without shipping the
circuit object itself across process boundaries.

Both types round-trip through JSON, so suites can be queued from files
and results archived next to the paper artifacts.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass, field, replace

from ..circuits.circuit import QuantumCircuit

__all__ = ["CompileJob", "CompileResult", "circuit_digest"]

#: Rule-engine names a job may request.
KNOWN_RULES = ("baseline", "parallel")


def circuit_digest(circuit: QuantumCircuit) -> str:
    """SHA-256 over the exact gate stream of a compiled circuit.

    Two circuits share a digest iff they have the same width and the
    same ordered gates (name, qubits, bit-exact params and durations),
    which is the equality the batch engine's parity guarantee is stated
    in: parallel workers must reproduce sequential ``transpile()``
    byte-for-byte given the same seeds.
    """
    hasher = hashlib.sha256()
    hasher.update(f"q{circuit.num_qubits}\n".encode())
    for gate in circuit:
        params = ",".join(repr(float(p)) for p in gate.params)
        duration = "" if gate.duration is None else repr(float(gate.duration))
        hasher.update(
            f"{gate.name}|{gate.qubits}|{params}|{duration}\n".encode()
        )
    return hasher.hexdigest()


@dataclass(frozen=True)
class CompileJob:
    """One transpilation request, fully determined by its fields."""

    workload: str
    num_qubits: int = 16
    rules: str = "parallel"
    trials: int = 10
    seed: int = 7
    coupling: tuple[int, int] = (4, 4)
    workload_seed: int | None = 11
    tag: str = ""

    def __post_init__(self) -> None:
        if self.rules not in KNOWN_RULES:
            raise ValueError(
                f"unknown rules {self.rules!r}; known: {KNOWN_RULES}"
            )
        if self.trials < 1:
            raise ValueError("trials must be >= 1")
        if self.num_qubits < 2:
            raise ValueError("need at least two qubits")
        rows, cols = self.coupling
        if rows < 1 or cols < 1:
            raise ValueError("coupling lattice dimensions must be positive")
        if rows * cols < self.num_qubits:
            raise ValueError(
                f"{rows}x{cols} lattice too small for "
                f"{self.num_qubits} qubits"
            )

    @property
    def label(self) -> str:
        """Human-readable id used in progress lines and summaries."""
        suffix = f":{self.tag}" if self.tag else ""
        return f"{self.workload}-{self.num_qubits}q-{self.rules}{suffix}"

    def to_dict(self) -> dict:
        """Plain-python form (JSON-compatible)."""
        payload = asdict(self)
        payload["coupling"] = list(self.coupling)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "CompileJob":
        """Inverse of :meth:`to_dict`."""
        payload = dict(payload)
        payload["coupling"] = tuple(payload.get("coupling", (4, 4)))
        return cls(**payload)

    def to_json(self) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CompileJob":
        """Parse a job from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class CompileResult:
    """Outcome of one job: scalar metrics plus a circuit digest."""

    job: CompileJob
    duration: float = math.nan
    pulse_count: int = 0
    swap_count: int = 0
    total_pulse_time: float = math.nan
    trial_index: int = -1
    digest: str = ""
    gate_counts: dict[str, int] = field(default_factory=dict)
    wall_time: float = 0.0
    attempts: int = 1
    error: str | None = None

    @property
    def ok(self) -> bool:
        """True when the job compiled successfully."""
        return self.error is None

    @classmethod
    def failure(
        cls, job: CompileJob, error: str, wall_time: float = 0.0
    ) -> "CompileResult":
        """Record a failed attempt (metrics left at sentinel values)."""
        return cls(job=job, wall_time=wall_time, error=error)

    def with_attempts(self, attempts: int) -> "CompileResult":
        """Copy with the engine's final attempt count stamped in."""
        return replace(self, attempts=attempts)

    def to_dict(self) -> dict:
        """Plain-python form (strict-JSON compatible).

        NaN sentinels of failed jobs become ``null`` so the output stays
        parseable by RFC-compliant consumers (jq, JSON.parse, ...).
        """
        payload = asdict(self)
        payload["job"] = self.job.to_dict()
        for key in ("duration", "total_pulse_time"):
            if math.isnan(payload[key]):
                payload[key] = None
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "CompileResult":
        """Inverse of :meth:`to_dict`."""
        payload = dict(payload)
        payload["job"] = CompileJob.from_dict(payload["job"])
        payload["gate_counts"] = dict(payload.get("gate_counts", {}))
        for key in ("duration", "total_pulse_time"):
            if payload.get(key) is None:
                payload[key] = math.nan
        return cls(**payload)

    def to_json(self) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CompileResult":
        """Parse a result from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))
