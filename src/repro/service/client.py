"""Client for the compile service (`repro.service.server`).

:class:`ServiceClient` speaks the server's ndjson streaming protocol
over plain :mod:`http.client` — stdlib only, one connection per
request, ``Connection: close`` — and restores the in-process calling
convention on top of it: :meth:`ServiceClient.submit` takes
:class:`~repro.service.jobs.CompileJob` lists and returns
:class:`~repro.service.jobs.CompileResult` lists in submission order,
exactly like :meth:`~repro.service.engine.BatchEngine.run`, so
``repro batch --submit URL`` is a transport swap, not a code path.

Observability rides along in both directions:

* Outbound, the client stamps its tracer's current context into every
  job (``CompileJob.trace``), so server- and worker-side spans parent
  under the submitting span — one Perfetto timeline spans
  client → server → worker.
* Inbound, ``result`` events carry freight (worker spans + metric
  deltas).  The client absorbs it only when the server lives in a
  *different* process: an in-process :class:`ServerThread` shares this
  process's tracer and registry, and absorbing its freight would
  double-count every span and metric.

Failure taxonomy: :class:`ServiceUnavailable` when the server cannot
be reached (after bounded connect retries with exponential backoff),
:class:`ServiceTimeout` when a connected request stops producing bytes
for longer than ``timeout``, :class:`ServiceError` for protocol-level
failures (non-200 responses, malformed streams).
"""

from __future__ import annotations

import http.client
import json
import os
import socket
import time
from collections.abc import Iterator, Sequence
from urllib.parse import urlsplit

from ..obs import metrics, trace
from .jobs import CompileJob, CompileResult

__all__ = [
    "ServiceClient",
    "ServiceError",
    "ServiceTimeout",
    "ServiceUnavailable",
    "wait_until_ready",
]


class ServiceError(RuntimeError):
    """The compile service misbehaved at the protocol level."""


class ServiceUnavailable(ServiceError):
    """The compile service could not be reached (connect failed)."""


class ServiceTimeout(ServiceError):
    """A connected request produced no bytes within the timeout."""


def _parse_url(url: str) -> tuple[str, int]:
    parts = urlsplit(url if "//" in url else f"//{url}")
    if parts.scheme not in ("", "http"):
        raise ServiceError(
            f"compile service URLs are plain http, got {url!r}"
        )
    host = parts.hostname or "127.0.0.1"
    port = parts.port or 8234
    return host, port


class ServiceClient:
    """One compile-service endpoint, with retrying connect semantics.

    Args:
        url: ``http://host:port`` (scheme optional).
        timeout: per-read socket timeout in seconds — the longest the
            client will wait for the *next* stream event, not for the
            whole batch.
        connect_retries: extra connection attempts after a refused or
            unreachable connect, backed off exponentially.
        backoff_base/backoff_cap: the connect backoff schedule in
            seconds (``base * 2**attempt``, capped).
    """

    def __init__(
        self,
        url: str,
        timeout: float = 120.0,
        connect_retries: int = 4,
        backoff_base: float = 0.1,
        backoff_cap: float = 2.0,
    ):
        self.host, self.port = _parse_url(url)
        self.timeout = float(timeout)
        self.connect_retries = int(connect_retries)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- transport -----------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        """Open a connection, retrying refused connects with backoff."""
        last: Exception | None = None
        for attempt in range(self.connect_retries + 1):
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            try:
                conn.connect()
                return conn
            except (ConnectionError, socket.timeout, OSError) as exc:
                conn.close()
                last = exc
                if attempt < self.connect_retries:
                    time.sleep(
                        min(
                            self.backoff_cap,
                            self.backoff_base * 2**attempt,
                        )
                    )
        raise ServiceUnavailable(
            f"compile service at {self.url} unreachable after "
            f"{self.connect_retries + 1} attempts: {last}"
        ) from last

    def _request(
        self, method: str, path: str, payload: dict | None = None
    ) -> dict:
        """One non-streaming request; returns the decoded JSON body."""
        conn = self._connect()
        try:
            body = json.dumps(payload).encode() if payload is not None else None
            conn.request(
                method,
                path,
                body=body,
                headers={"Content-Type": "application/json"}
                if body
                else {},
            )
            response = conn.getresponse()
            text = response.read().decode()
            decoded = json.loads(text) if text else {}
            if response.status != 200:
                raise ServiceError(
                    f"{method} {path} -> {response.status}: "
                    f"{decoded.get('error', text)}"
                )
            return decoded
        except socket.timeout as exc:
            raise ServiceTimeout(
                f"{method} {path} timed out after {self.timeout}s"
            ) from exc
        finally:
            conn.close()

    # -- control plane -------------------------------------------------------

    def health(self) -> dict:
        """The server's health summary (``GET /v1/health``)."""
        return self._request("GET", "/v1/health")

    def server_metrics(self) -> dict:
        """The server's metrics-registry snapshot."""
        return self._request("GET", "/v1/metrics")

    def shutdown(self, drain: bool = True) -> dict:
        """Ask the server to stop (draining queued work by default)."""
        return self._request("POST", "/v1/shutdown", {"drain": drain})

    # -- submission ----------------------------------------------------------

    def submit_stream(
        self, jobs: Sequence[CompileJob], priority: int = 0
    ) -> Iterator[dict]:
        """Submit jobs and yield protocol events as they arrive.

        Events are the server's raw dicts (``hello`` / ``accepted`` /
        ``running`` / ``requeued`` / ``result`` / ``done``) — the
        granular form the SIGKILL tests and progress UIs want.  Result
        freight is absorbed into this process's tracer/registry here
        (cross-process servers only), so callers consuming the stream
        get stitched telemetry for free.
        """
        jobs = list(jobs)
        context = trace.TRACER.current_context()
        if context is not None:
            payload_trace = context.to_dict()
            jobs = [
                job if job.trace is not None
                else job.updated(trace=payload_trace)
                for job in jobs
            ]
        body = json.dumps(
            {"jobs": [job.to_dict() for job in jobs],
             "priority": int(priority)}
        ).encode()
        conn = self._connect()
        server_pid: int | None = None
        try:
            conn.request(
                "POST",
                "/v1/submit",
                body=body,
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            if response.status != 200:
                text = response.read().decode()
                try:
                    detail = json.loads(text).get("error", text)
                except ValueError:
                    detail = text
                raise ServiceError(
                    f"submit -> {response.status}: {detail}"
                )
            while True:
                line = response.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except ValueError as exc:
                    raise ServiceError(
                        f"malformed stream line: {line[:120]!r}"
                    ) from exc
                if event.get("event") == "hello":
                    server_pid = event.get("server_pid")
                if event.get("event") == "result":
                    self._absorb_freight(event, server_pid)
                yield event
                if event.get("event") == "done":
                    return
        except socket.timeout as exc:
            raise ServiceTimeout(
                f"submit stream stalled for {self.timeout}s "
                f"(server {self.url})"
            ) from exc
        finally:
            conn.close()

    def _absorb_freight(
        self, event: dict, server_pid: int | None
    ) -> None:
        """Stitch a result's telemetry into this process — once.

        An in-process server (``server_pid == os.getpid()``) already
        shares this process's tracer and metrics registry; absorbing
        its forwarded freight would double-count, so only freight from
        a genuinely remote server is merged.
        """
        freight = event.get("freight")
        if not freight or server_pid == os.getpid():
            return
        trace.TRACER.absorb(freight.get("spans", ()))
        delta = freight.get("metrics")
        if delta:
            metrics.REGISTRY.merge_snapshot(delta)

    def submit(
        self, jobs: Sequence[CompileJob], priority: int = 0
    ) -> list[CompileResult]:
        """Submit jobs, block, return results in submission order.

        The drop-in replacement for
        :meth:`~repro.service.engine.BatchEngine.run` — the digest
        parity guarantee is stated against exactly this method.
        """
        jobs = list(jobs)
        settled: dict[int, CompileResult] = {}
        for event in self.submit_stream(jobs, priority=priority):
            if event.get("event") != "result":
                continue
            settled[event["index"]] = CompileResult.from_dict(
                event["result"]
            )
        missing = [i for i in range(len(jobs)) if i not in settled]
        if missing:
            raise ServiceError(
                f"stream ended with {len(missing)} unsettled job(s) "
                f"(indices {missing[:8]})"
            )
        return [settled[index] for index in range(len(jobs))]


def wait_until_ready(
    url: str, timeout: float = 30.0, interval: float = 0.1
) -> dict:
    """Poll a server's health endpoint until it answers (or time out)."""
    client = ServiceClient(url, timeout=5.0, connect_retries=0)
    deadline = time.monotonic() + timeout
    last: Exception | None = None
    while time.monotonic() < deadline:
        try:
            return client.health()
        except ServiceError as exc:
            last = exc
            time.sleep(interval)
    raise ServiceUnavailable(
        f"compile service at {url} not ready after {timeout}s: {last}"
    ) from last
