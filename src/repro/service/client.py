"""Client for the compile service (`repro.service.server`).

:class:`ServiceClient` speaks the server's ndjson streaming protocol
over plain :mod:`http.client` — stdlib only, one *keep-alive*
connection per thread reused across requests and submit streams — and
restores the in-process calling convention on top of it:
:meth:`ServiceClient.submit` takes
:class:`~repro.service.jobs.CompileJob` lists and returns
:class:`~repro.service.jobs.CompileResult` lists in submission order,
exactly like :meth:`~repro.service.engine.BatchEngine.run`, so
``repro batch --submit URL`` is a transport swap, not a code path.

Transport discipline:

* Connections are cached per thread (``threading.local``) — two
  threads sharing one client never interleave requests on one socket.
* Submit streams arrive chunk-encoded; after the ``done`` event the
  client drains the terminal chunk so the connection is reusable.
* A cached connection the server has since dropped (restart, idle
  reap) is detected on the next request and transparently re-dialed
  once before giving up.
* Connect retries back off exponentially with *additive* jitter: the
  schedule is never shorter than ``base * 2**attempt`` (capped), but a
  fleet of clients re-dialing a restarting shard spreads out instead
  of stampeding in lockstep.

Observability rides along in both directions:

* Outbound, the client stamps its tracer's current context into every
  job (``CompileJob.trace``), so server- and worker-side spans parent
  under the submitting span — one Perfetto timeline spans
  client → server → worker.
* Inbound, ``result`` events carry freight (worker spans + metric
  deltas).  The client absorbs it only when the server lives in a
  *different* process: an in-process :class:`ServerThread` shares this
  process's tracer and registry, and absorbing its freight would
  double-count every span and metric.

Router awareness: when the endpoint is a :class:`ShardRouter` and a
shard is down, the stream carries ``shard_down`` events naming the
degraded digest range.  The client records them in
:attr:`ServiceClient.degraded_ranges` (reset per stream) and names the
ranges in the unsettled-jobs error, so callers learn *which slice of
the keyspace* is degraded, not just that something failed.

Failure taxonomy: :class:`ServiceUnavailable` when the server cannot
be reached (after bounded connect retries with exponential backoff),
:class:`ServiceTimeout` when a connected request stops producing bytes
for longer than ``timeout``, :class:`ServiceError` for protocol-level
failures (non-200 responses, malformed streams).
"""

from __future__ import annotations

import http.client
import json
import os
import random
import socket
import threading
import time
from collections.abc import Iterator, Sequence
from urllib.parse import urlsplit

from ..obs import metrics, trace
from .jobs import CompileJob, CompileResult

__all__ = [
    "ServiceClient",
    "ServiceError",
    "ServiceTimeout",
    "ServiceUnavailable",
    "wait_until_ready",
]


class ServiceError(RuntimeError):
    """The compile service misbehaved at the protocol level."""


class ServiceUnavailable(ServiceError):
    """The compile service could not be reached (connect failed)."""


class ServiceTimeout(ServiceError):
    """A connected request produced no bytes within the timeout."""


def _parse_url(url: str) -> tuple[str, int]:
    parts = urlsplit(url if "//" in url else f"//{url}")
    if parts.scheme not in ("", "http"):
        raise ServiceError(
            f"compile service URLs are plain http, got {url!r}"
        )
    host = parts.hostname or "127.0.0.1"
    port = parts.port or 8234
    return host, port


#: Errors that mean "the cached keep-alive connection went stale" —
#: the server closed it between requests (restart, shutdown, idle
#: reap).  One fresh re-dial is the correct response; anything past
#: that is a real outage.
_STALE_ERRORS = (
    http.client.NotConnected,
    http.client.CannotSendRequest,
    http.client.ResponseNotReady,
    http.client.BadStatusLine,
    ConnectionError,
)


class ServiceClient:
    """One compile-service endpoint, with retrying connect semantics.

    Args:
        url: ``http://host:port`` (scheme optional).
        timeout: per-read socket timeout in seconds — the longest the
            client will wait for the *next* stream event, not for the
            whole batch.
        connect_retries: extra connection attempts after a refused or
            unreachable connect, backed off exponentially.
        backoff_base/backoff_cap: the connect backoff schedule in
            seconds (``base * 2**attempt``, capped).
        backoff_jitter: additive jitter fraction — each backoff sleep
            is stretched by ``uniform(0, jitter)`` of itself, never
            shortened.
    """

    def __init__(
        self,
        url: str,
        timeout: float = 120.0,
        connect_retries: int = 4,
        backoff_base: float = 0.1,
        backoff_cap: float = 2.0,
        backoff_jitter: float = 0.25,
    ):
        self.host, self.port = _parse_url(url)
        self.timeout = float(timeout)
        self.connect_retries = int(connect_retries)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.backoff_jitter = float(backoff_jitter)
        self._local = threading.local()
        #: ``shard_down`` ranges seen on the most recent submit stream
        #: (router endpoints only): dicts with shard/url/range keys.
        self.degraded_ranges: list[dict] = []

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- transport -----------------------------------------------------------

    def close(self) -> None:
        """Drop this thread's cached connection (re-dialed on next use)."""
        conn = getattr(self._local, "conn", None)
        self._local.conn = None
        if conn is not None:
            conn.close()

    def _connect(self) -> http.client.HTTPConnection:
        """This thread's keep-alive connection, dialing if needed.

        Fresh dials retry refused/unreachable connects with capped
        exponential backoff plus additive jitter.
        """
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            return conn
        last: Exception | None = None
        for attempt in range(self.connect_retries + 1):
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            try:
                conn.connect()
                self._local.conn = conn
                return conn
            except (ConnectionError, socket.timeout, OSError) as exc:
                conn.close()
                last = exc
                if attempt < self.connect_retries:
                    delay = min(
                        self.backoff_cap,
                        self.backoff_base * 2**attempt,
                    )
                    time.sleep(
                        delay
                        * (1.0 + random.uniform(0.0, self.backoff_jitter))
                    )
        raise ServiceUnavailable(
            f"compile service at {self.url} unreachable after "
            f"{self.connect_retries + 1} attempts: {last}"
        ) from last

    def _send_request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        headers: dict | None = None,
    ) -> http.client.HTTPResponse:
        """Issue one request on the cached connection, re-dialing once.

        A stale keep-alive connection surfaces as a send/response
        error; the second pass runs on a guaranteed-fresh dial, so a
        failure there is a real outage, not staleness.
        """
        for fresh in (False, True):
            conn = self._connect()
            try:
                conn.request(method, path, body=body, headers=headers or {})
                return conn.getresponse()
            except socket.timeout:
                self.close()
                raise
            except _STALE_ERRORS as exc:
                self.close()
                if fresh:
                    raise ServiceUnavailable(
                        f"compile service at {self.url} dropped the "
                        f"connection: {exc}"
                    ) from exc
        raise AssertionError("unreachable")

    def _request(
        self, method: str, path: str, payload: dict | None = None
    ) -> dict:
        """One non-streaming request; returns the decoded JSON body."""
        body = json.dumps(payload).encode() if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        try:
            response = self._send_request(method, path, body, headers)
            text = response.read().decode()
        except socket.timeout as exc:
            self.close()
            raise ServiceTimeout(
                f"{method} {path} timed out after {self.timeout}s"
            ) from exc
        decoded = json.loads(text) if text else {}
        if response.status != 200:
            raise ServiceError(
                f"{method} {path} -> {response.status}: "
                f"{decoded.get('error', text)}"
            )
        return decoded

    # -- control plane -------------------------------------------------------

    def health(self) -> dict:
        """The server's health summary (``GET /v1/health``)."""
        return self._request("GET", "/v1/health")

    def server_metrics(self) -> dict:
        """The server's metrics-registry snapshot."""
        return self._request("GET", "/v1/metrics")

    def shutdown(self, drain: bool = True) -> dict:
        """Ask the server to stop (draining queued work by default)."""
        try:
            return self._request("POST", "/v1/shutdown", {"drain": drain})
        finally:
            # The server tears the connection down after a shutdown
            # response; don't leave the doomed socket cached.
            self.close()

    # -- submission ----------------------------------------------------------

    def submit_stream(
        self, jobs: Sequence[CompileJob], priority: int = 0
    ) -> Iterator[dict]:
        """Submit jobs and yield protocol events as they arrive.

        Events are the server's raw dicts (``hello`` / ``accepted`` /
        ``running`` / ``requeued`` / ``result`` / ``done``, plus
        ``shard_down`` behind a router) — the granular form the SIGKILL
        tests and progress UIs want.  Result freight is absorbed into
        this process's tracer/registry here (cross-process servers
        only), so callers consuming the stream get stitched telemetry
        for free.  After ``done`` the connection is kept alive for the
        next call; any other exit closes it.
        """
        jobs = list(jobs)
        context = trace.TRACER.current_context()
        if context is not None:
            payload_trace = context.to_dict()
            jobs = [
                job if job.trace is not None
                else job.updated(trace=payload_trace)
                for job in jobs
            ]
        body = json.dumps(
            {"jobs": [job.to_dict() for job in jobs],
             "priority": int(priority)}
        ).encode()
        self.degraded_ranges = []
        server_pid: int | None = None
        completed = False
        stream_conn: http.client.HTTPConnection | None = None
        try:
            response = self._send_request(
                "POST",
                "/v1/submit",
                body,
                {"Content-Type": "application/json"},
            )
            stream_conn = getattr(self._local, "conn", None)
            if response.status != 200:
                text = response.read().decode()
                try:
                    detail = json.loads(text).get("error", text)
                except ValueError:
                    detail = text
                completed = True  # body fully read; connection reusable
                raise ServiceError(
                    f"submit -> {response.status}: {detail}"
                )
            while True:
                line = response.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except ValueError as exc:
                    raise ServiceError(
                        f"malformed stream line: {line[:120]!r}"
                    ) from exc
                kind = event.get("event")
                if kind == "hello":
                    server_pid = event.get("server_pid")
                elif kind == "shard_down":
                    self.degraded_ranges.append(
                        {
                            "shard": event.get("shard"),
                            "url": event.get("url"),
                            "range": event.get("range"),
                        }
                    )
                elif kind == "result":
                    self._absorb_freight(event, server_pid)
                yield event
                if kind == "done":
                    # Drain the terminal chunk so http.client marks
                    # the response finished and the connection can
                    # carry the next request.
                    response.read()
                    completed = True
                    return
        except socket.timeout as exc:
            raise ServiceTimeout(
                f"submit stream stalled for {self.timeout}s "
                f"(server {self.url})"
            ) from exc
        finally:
            if not completed:
                # Abandoned or broken mid-stream: the socket is
                # mid-response and unusable.  Only drop it if it is
                # still the cached one (a later request on this
                # thread may already have re-dialed).
                if getattr(self._local, "conn", None) is stream_conn:
                    self._local.conn = None
                if stream_conn is not None:
                    stream_conn.close()

    def _absorb_freight(
        self, event: dict, server_pid: int | None
    ) -> None:
        """Stitch a result's telemetry into this process — once.

        An in-process server (``server_pid == os.getpid()``) already
        shares this process's tracer and metrics registry; absorbing
        its forwarded freight would double-count, so only freight from
        a genuinely remote server is merged.
        """
        freight = event.get("freight")
        if not freight or server_pid == os.getpid():
            return
        trace.TRACER.absorb(freight.get("spans", ()))
        delta = freight.get("metrics")
        if delta:
            metrics.REGISTRY.merge_snapshot(delta)

    def submit(
        self, jobs: Sequence[CompileJob], priority: int = 0
    ) -> list[CompileResult]:
        """Submit jobs, block, return results in submission order.

        The drop-in replacement for
        :meth:`~repro.service.engine.BatchEngine.run` — the digest
        parity guarantee is stated against exactly this method.
        """
        jobs = list(jobs)
        settled: dict[int, CompileResult] = {}
        for event in self.submit_stream(jobs, priority=priority):
            if event.get("event") != "result":
                continue
            settled[event["index"]] = CompileResult.from_dict(
                event["result"]
            )
        missing = [i for i in range(len(jobs)) if i not in settled]
        if missing:
            detail = ""
            if self.degraded_ranges:
                ranges = ", ".join(
                    str(entry.get("range")) for entry in self.degraded_ranges
                )
                detail = f"; degraded digest range(s): {ranges}"
            raise ServiceError(
                f"stream ended with {len(missing)} unsettled job(s) "
                f"(indices {missing[:8]}){detail}"
            )
        return [settled[index] for index in range(len(jobs))]


def wait_until_ready(
    url: str, timeout: float = 30.0, interval: float = 0.1
) -> dict:
    """Poll a server's health endpoint until it answers (or time out)."""
    client = ServiceClient(url, timeout=5.0, connect_retries=0)
    deadline = time.monotonic() + timeout
    last: Exception | None = None
    try:
        while time.monotonic() < deadline:
            try:
                return client.health()
            except ServiceError as exc:
                last = exc
                time.sleep(interval)
    finally:
        client.close()
    raise ServiceUnavailable(
        f"compile service at {url} not ready after {timeout}s: {last}"
    ) from last
