"""Shared sqlite store discipline (public home of the store mixin).

:class:`SqliteStoreMixin` is the one copy of the WAL-journaled,
fork-safe, schema-versioned connection management that the job queue,
result store, decomposition cache, coverage store, and perf ledger all
ride, plus the ``iter_range``/``row_count``/``merge`` key-range
surface the sharded service tier folds shard partitions with.

The implementation lives in :mod:`repro._storebase` — a stdlib-only
leaf module — so that :mod:`repro.obs.ledger` can mix it in without
importing the ``repro.service`` package (which would be circular:
``service`` pulls the compile stack, which reports into ``obs``).
Service-side code should import from here.
"""

from __future__ import annotations

from .._storebase import SqliteStoreMixin, StoreError, detect_store_kind

__all__ = ["SqliteStoreMixin", "StoreError", "detect_store_kind"]
