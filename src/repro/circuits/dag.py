"""Dependency analysis and duration-aware scheduling of circuits.

The paper's fidelity model (Eq. 8, 10, 11) needs the total circuit
duration along the critical path.  :func:`asap_schedule` assigns every
gate its earliest start given per-gate durations; :func:`alap_schedule`
assigns the latest start that still meets the same makespan.  Both
return start times, per-qubit busy intervals, and the overall makespan
— the makespan is identical (critical-path-tight) between the two, but
ALAP pushes slack gates later, which shortens each wire's exposed
window under the idle-aware decoherence accounting of
:class:`repro.transpiler.fidelity.HeterogeneousFidelityModel`.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import NamedTuple

from .circuit import QuantumCircuit
from .gate import Gate

__all__ = [
    "ScheduledCircuit",
    "WireActivity",
    "alap_schedule",
    "asap_schedule",
    "dependency_layers",
]


class WireActivity(NamedTuple):
    """Per-qubit timing summary of a schedule.

    ``first_start``/``last_end`` bound the wire's own gates; ``busy`` is
    the summed gate time on the wire and ``gates`` the gate count.  A
    wire with no gates reports ``(0.0, 0.0, 0.0, 0)``.
    """

    first_start: float
    last_end: float
    busy: float
    gates: int

    @property
    def span(self) -> float:
        """Window between the wire's first gate start and last gate end."""
        return self.last_end - self.first_start

    @property
    def idle_within_span(self) -> float:
        """Idle time between the wire's own gates."""
        return self.span - self.busy


@dataclass(frozen=True)
class ScheduledCircuit:
    """Timed schedule of a circuit (ASAP or ALAP)."""

    circuit: QuantumCircuit
    start_times: tuple[float, ...]
    durations: tuple[float, ...]
    qubit_finish_times: tuple[float, ...]

    @property
    def total_duration(self) -> float:
        """Makespan: the critical-path duration (paper Eq. 8)."""
        return max(self.qubit_finish_times, default=0.0)

    def wire_activity(self) -> tuple[WireActivity, ...]:
        """Per-qubit (first_start, last_end, busy, gates) summaries.

        This is the input to per-wire idle-window fidelity accounting:
        a wire's decoherence-exposed window runs from its first gate
        start to the makespan (the register is measured together), and
        time inside that window not spent in a gate is idle.
        """
        first = [0.0] * self.circuit.num_qubits
        last = [0.0] * self.circuit.num_qubits
        busy = [0.0] * self.circuit.num_qubits
        count = [0] * self.circuit.num_qubits
        for gate, start, duration in zip(
            self.circuit, self.start_times, self.durations
        ):
            for q in gate.qubits:
                if count[q] == 0 or start < first[q]:
                    first[q] = start
                last[q] = max(last[q], start + duration)
                busy[q] += duration
                count[q] += 1
        return tuple(
            WireActivity(first[q], last[q], busy[q], count[q])
            for q in range(self.circuit.num_qubits)
        )

    def critical_path(self) -> list[int]:
        """Indices of gates on one critical path, in execution order."""
        if not self.circuit.gates:
            return []
        ends = [s + d for s, d in zip(self.start_times, self.durations)]
        path: list[int] = []
        # Walk backwards from the last-finishing gate through its blocking
        # predecessor (the gate on a shared qubit that set its start time).
        index = max(range(len(ends)), key=ends.__getitem__)
        while True:
            path.append(index)
            start = self.start_times[index]
            if start <= 0.0:
                break
            predecessor = None
            for j in range(index - 1, -1, -1):
                if set(self.circuit[j].qubits) & set(self.circuit[index].qubits):
                    if abs(ends[j] - start) < 1e-9:
                        predecessor = j
                        break
            if predecessor is None:
                break
            index = predecessor
        return list(reversed(path))


def asap_schedule(
    circuit: QuantumCircuit,
    duration_of: Callable[[Gate], float] | None = None,
) -> ScheduledCircuit:
    """As-soon-as-possible schedule with per-gate durations.

    ``duration_of`` defaults to the gate's own ``duration`` attribute
    (missing durations count as 0, i.e. virtual gates).
    """

    def default_duration(gate: Gate) -> float:
        return gate.duration if gate.duration is not None else 0.0

    duration_of = duration_of or default_duration
    clock = [0.0] * circuit.num_qubits
    starts: list[float] = []
    durations: list[float] = []
    for gate in circuit:
        duration = float(duration_of(gate))
        if duration < 0:
            raise ValueError(f"negative duration for gate {gate.name}")
        start = max(clock[q] for q in gate.qubits)
        for q in gate.qubits:
            clock[q] = start + duration
        starts.append(start)
        durations.append(duration)
    return ScheduledCircuit(
        circuit=circuit,
        start_times=tuple(starts),
        durations=tuple(durations),
        qubit_finish_times=tuple(clock),
    )


def alap_schedule(
    circuit: QuantumCircuit,
    duration_of: Callable[[Gate], float] | None = None,
) -> ScheduledCircuit:
    """As-late-as-possible schedule with per-gate durations.

    Every gate starts at the latest time that still lets all of its
    qubit-order successors meet the ASAP makespan, so the total duration
    equals :func:`asap_schedule`'s exactly; only slack gates move.
    Delaying them shrinks each wire's window between first gate and
    measurement — the noise-aware choice when qubits idle in ``|0>``
    before their first gate.
    """

    def default_duration(gate: Gate) -> float:
        return gate.duration if gate.duration is not None else 0.0

    duration_of = duration_of or default_duration
    # Reverse pass: for each gate, the distance from the makespan back
    # to its start, constrained by later gates on shared qubits.
    offsets: list[float] = [0.0] * len(circuit)
    durations: list[float] = [0.0] * len(circuit)
    rev_clock = [0.0] * circuit.num_qubits
    for index in range(len(circuit) - 1, -1, -1):
        gate = circuit[index]
        duration = float(duration_of(gate))
        if duration < 0:
            raise ValueError(f"negative duration for gate {gate.name}")
        end_offset = max(rev_clock[q] for q in gate.qubits)
        for q in gate.qubits:
            rev_clock[q] = end_offset + duration
        offsets[index] = end_offset + duration
        durations[index] = duration
    makespan = max(rev_clock, default=0.0)
    starts = [makespan - offset for offset in offsets]
    finish = [0.0] * circuit.num_qubits
    for gate, start, duration in zip(circuit, starts, durations):
        for q in gate.qubits:
            finish[q] = max(finish[q], start + duration)
    return ScheduledCircuit(
        circuit=circuit,
        start_times=tuple(starts),
        durations=tuple(durations),
        qubit_finish_times=tuple(finish),
    )


def dependency_layers(circuit: QuantumCircuit) -> list[list[int]]:
    """Partition gate indices into parallel execution layers."""
    frontier = [0] * circuit.num_qubits
    layers: list[list[int]] = []
    for index, gate in enumerate(circuit):
        level = max(frontier[q] for q in gate.qubits)
        if level == len(layers):
            layers.append([])
        layers[level].append(index)
        for q in gate.qubits:
            frontier[q] = level + 1
    return layers
