"""Dependency analysis and duration-aware scheduling of circuits.

The paper's fidelity model (Eq. 8, 10, 11) needs the total circuit
duration along the critical path.  :func:`asap_schedule` assigns every
gate its earliest start given per-gate durations and returns start times,
per-qubit busy intervals, and the overall makespan.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from .circuit import QuantumCircuit
from .gate import Gate

__all__ = ["ScheduledCircuit", "asap_schedule", "dependency_layers"]


@dataclass(frozen=True)
class ScheduledCircuit:
    """ASAP schedule of a circuit."""

    circuit: QuantumCircuit
    start_times: tuple[float, ...]
    durations: tuple[float, ...]
    qubit_finish_times: tuple[float, ...]

    @property
    def total_duration(self) -> float:
        """Makespan: the critical-path duration (paper Eq. 8)."""
        return max(self.qubit_finish_times, default=0.0)

    def critical_path(self) -> list[int]:
        """Indices of gates on one critical path, in execution order."""
        if not self.circuit.gates:
            return []
        ends = [s + d for s, d in zip(self.start_times, self.durations)]
        path: list[int] = []
        # Walk backwards from the last-finishing gate through its blocking
        # predecessor (the gate on a shared qubit that set its start time).
        index = max(range(len(ends)), key=ends.__getitem__)
        while True:
            path.append(index)
            start = self.start_times[index]
            if start <= 0.0:
                break
            predecessor = None
            for j in range(index - 1, -1, -1):
                if set(self.circuit[j].qubits) & set(self.circuit[index].qubits):
                    if abs(ends[j] - start) < 1e-9:
                        predecessor = j
                        break
            if predecessor is None:
                break
            index = predecessor
        return list(reversed(path))


def asap_schedule(
    circuit: QuantumCircuit,
    duration_of: Callable[[Gate], float] | None = None,
) -> ScheduledCircuit:
    """As-soon-as-possible schedule with per-gate durations.

    ``duration_of`` defaults to the gate's own ``duration`` attribute
    (missing durations count as 0, i.e. virtual gates).
    """

    def default_duration(gate: Gate) -> float:
        return gate.duration if gate.duration is not None else 0.0

    duration_of = duration_of or default_duration
    clock = [0.0] * circuit.num_qubits
    starts: list[float] = []
    durations: list[float] = []
    for gate in circuit:
        duration = float(duration_of(gate))
        if duration < 0:
            raise ValueError(f"negative duration for gate {gate.name}")
        start = max(clock[q] for q in gate.qubits)
        for q in gate.qubits:
            clock[q] = start + duration
        starts.append(start)
        durations.append(duration)
    return ScheduledCircuit(
        circuit=circuit,
        start_times=tuple(starts),
        durations=tuple(durations),
        qubit_finish_times=tuple(clock),
    )


def dependency_layers(circuit: QuantumCircuit) -> list[list[int]]:
    """Partition gate indices into parallel execution layers."""
    frontier = [0] * circuit.num_qubits
    layers: list[list[int]] = []
    for index, gate in enumerate(circuit):
        level = max(frontier[q] for q in gate.qubits)
        if level == len(layers):
            layers.append([])
        layers[level].append(index)
        for q in gate.qubits:
            frontier[q] = level + 1
    return layers
