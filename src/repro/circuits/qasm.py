"""Minimal OpenQASM 2.0 export/import for the circuit IR.

Covers the gate vocabulary the workloads and transpiler emit.  Explicit
matrix gates (QV layers, consolidated blocks) are not expressible in
QASM 2 and are rejected on export.
"""

from __future__ import annotations

import re

import numpy as np

from .circuit import QuantumCircuit
from .gate import Gate

__all__ = ["to_qasm", "from_qasm"]

_EXPORT_NAMES = {
    "id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx",
    "rx", "ry", "rz", "p", "u3", "cx", "cz", "swap", "iswap",
    "cp", "rzz", "rxx", "ryy",
}

_GATE_PATTERN = re.compile(
    r"^\s*(?P<name>[a-z_][a-z0-9_]*)\s*"
    r"(?:\((?P<params>[^)]*)\))?\s*"
    r"(?P<qubits>q\[\d+\](?:\s*,\s*q\[\d+\])*)\s*;\s*$"
)
_QUBIT_PATTERN = re.compile(r"q\[(\d+)\]")


def to_qasm(circuit: QuantumCircuit) -> str:
    """Serialize a circuit to OpenQASM 2.0 text."""
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.num_qubits}];",
    ]
    for gate in circuit:
        if gate.matrix is not None or gate.name not in _EXPORT_NAMES:
            raise ValueError(
                f"gate {gate.name!r} is not expressible in OpenQASM 2"
            )
        params = ""
        if gate.params:
            params = "(" + ",".join(repr(float(p)) for p in gate.params) + ")"
        qubits = ",".join(f"q[{q}]" for q in gate.qubits)
        lines.append(f"{gate.name}{params} {qubits};")
    return "\n".join(lines) + "\n"


def from_qasm(text: str) -> QuantumCircuit:
    """Parse the QASM subset produced by :func:`to_qasm`."""
    circuit: QuantumCircuit | None = None
    for raw_line in text.splitlines():
        line = raw_line.split("//")[0].strip()
        if not line:
            continue
        if line.startswith(("OPENQASM", "include")):
            continue
        if line.startswith("qreg"):
            match = re.match(r"qreg\s+q\[(\d+)\]\s*;", line)
            if not match:
                raise ValueError(f"malformed qreg line: {raw_line!r}")
            circuit = QuantumCircuit(int(match.group(1)))
            continue
        if circuit is None:
            raise ValueError("gate statement before qreg declaration")
        match = _GATE_PATTERN.match(line)
        if not match:
            raise ValueError(f"cannot parse QASM line: {raw_line!r}")
        name = match.group("name")
        if name not in _EXPORT_NAMES:
            raise ValueError(f"unsupported QASM gate {name!r}")
        params = tuple(
            float(token)
            for token in (match.group("params") or "").split(",")
            if token.strip()
        )
        qubits = tuple(
            int(index) for index in _QUBIT_PATTERN.findall(
                match.group("qubits")
            )
        )
        circuit.append(Gate(name, qubits, params=params))
    if circuit is None:
        raise ValueError("no qreg declaration found")
    return circuit
