"""Statevector and unitary simulation of small circuits.

Used for correctness tests of the workload generators and the routing
pass (permutation-aware equivalence), not for the 16-qubit benchmark
runs, which only require scheduling.  Qubit 0 is the most significant
(leftmost) tensor factor, matching :mod:`repro.quantum.gates`.
"""

from __future__ import annotations

import numpy as np

from .circuit import QuantumCircuit
from .gate import Gate

__all__ = [
    "zero_state",
    "apply_gate",
    "simulate_statevector",
    "circuit_unitary",
    "permutation_matrix",
]

_MAX_UNITARY_QUBITS = 12


def zero_state(num_qubits: int) -> np.ndarray:
    """The all-zeros computational basis state."""
    state = np.zeros(2**num_qubits, dtype=complex)
    state[0] = 1.0
    return state


def apply_gate(state: np.ndarray, gate: Gate, num_qubits: int) -> np.ndarray:
    """Apply a gate to a state (or batch of states in the last axis).

    ``state`` may have shape ``(2**n,)`` or ``(2**n, batch)``.
    """
    matrix = gate.to_matrix()
    k = gate.num_qubits
    batch_shape = state.shape[1:]
    tensor = state.reshape((2,) * num_qubits + batch_shape)
    gate_tensor = matrix.reshape((2,) * (2 * k))
    # Contract the gate's input axes with the targeted qubit axes.
    in_axes = tuple(range(k, 2 * k))
    tensor = np.tensordot(gate_tensor, tensor, axes=(in_axes, gate.qubits))
    # tensordot puts the gate's output axes first; move them home.
    tensor = np.moveaxis(tensor, range(k), gate.qubits)
    return tensor.reshape(state.shape)


def simulate_statevector(
    circuit: QuantumCircuit, initial: np.ndarray | None = None
) -> np.ndarray:
    """Final statevector of a circuit applied to ``initial`` (default |0>)."""
    state = (
        zero_state(circuit.num_qubits)
        if initial is None
        else np.asarray(initial, dtype=complex)
    )
    expected = 2**circuit.num_qubits
    if state.shape[0] != expected:
        raise ValueError(f"state has dim {state.shape[0]}, expected {expected}")
    for gate in circuit:
        state = apply_gate(state, gate, circuit.num_qubits)
    return state


def circuit_unitary(circuit: QuantumCircuit) -> np.ndarray:
    """Full unitary of a circuit (capped at 12 qubits)."""
    if circuit.num_qubits > _MAX_UNITARY_QUBITS:
        raise ValueError(
            f"unitary simulation capped at {_MAX_UNITARY_QUBITS} qubits"
        )
    dim = 2**circuit.num_qubits
    unitary = np.eye(dim, dtype=complex)
    for gate in circuit:
        unitary = apply_gate(unitary, gate, circuit.num_qubits)
    return unitary


def permutation_matrix(permutation: dict[int, int], num_qubits: int) -> np.ndarray:
    """Unitary permuting qubits: logical ``q`` ends up at ``permutation[q]``.

    Used to check routed circuits, which implement the original circuit up
    to a final qubit relabeling left by inserted SWAPs.
    """
    dim = 2**num_qubits
    matrix = np.zeros((dim, dim), dtype=complex)
    for basis_index in range(dim):
        bits = [(basis_index >> (num_qubits - 1 - q)) & 1 for q in range(num_qubits)]
        permuted = [0] * num_qubits
        for q in range(num_qubits):
            permuted[permutation[q]] = bits[q]
        target = 0
        for bit in permuted:
            target = (target << 1) | bit
        matrix[target, basis_index] = 1.0
    return matrix
