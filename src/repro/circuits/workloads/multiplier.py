"""Fourier-basis (Draper) multiplier workload.

Computes ``|a>|b>|0> -> |a>|b>|a*b mod 2^(2*bits)>`` on ``4*bits`` qubits:
QFT on the output register, doubly controlled phase additions for every
partial product ``a_i * b_j * 2^(i+j)``, then the inverse QFT.  All
operations are 1Q/2Q; the doubly controlled phases use the standard
five-gate CCP decomposition.
"""

from __future__ import annotations

import numpy as np

from ..circuit import QuantumCircuit
from .qft import qft

__all__ = ["draper_multiplier", "multiplier_register_layout"]


def multiplier_register_layout(bits: int) -> dict[str, list[int]]:
    """Qubit indices of the a, b, and output registers (bit 0 = LSB)."""
    return {
        "a": list(range(bits)),
        "b": list(range(bits, 2 * bits)),
        "out": list(range(2 * bits, 4 * bits)),
    }


def _ccphase(
    circuit: QuantumCircuit, theta: float, control_a: int, control_b: int, target: int
) -> None:
    """Doubly controlled phase via the standard CP/CNOT construction."""
    circuit.cp(theta / 2, control_b, target)
    circuit.cx(control_a, control_b)
    circuit.cp(-theta / 2, control_b, target)
    circuit.cx(control_a, control_b)
    circuit.cp(theta / 2, control_a, target)


def draper_multiplier(bits: int, name: str = "multiplier") -> QuantumCircuit:
    """Out-of-place multiplier on ``4*bits`` qubits (e.g. 16 for bits=4)."""
    if bits < 1:
        raise ValueError("multiplier needs at least one bit per operand")
    layout = multiplier_register_layout(bits)
    out_bits = 2 * bits
    circuit = QuantumCircuit(4 * bits, name)
    out = layout["out"]

    # QFT over the output register, MSB-first ordering (out[-1] is the MSB,
    # matching the qft() builder applied to reversed output wires).
    msb_first = list(reversed(out))
    circuit.compose(qft(out_bits, with_swaps=False), qubits=msb_first)

    # Phase-space addition of each partial product 2^(i+j) a_i b_j.  In the
    # Fourier frame, adding 2^w rotates MSB-relative qubit t by pi/2^(t-w)
    # for t >= w; smaller t see full 2*pi turns (identity).
    for i, a_qubit in enumerate(layout["a"]):
        for j, b_qubit in enumerate(layout["b"]):
            weight = i + j
            for t in range(weight, out_bits):
                theta = np.pi / 2 ** (t - weight)
                target = msb_first[out_bits - 1 - t]
                _ccphase(circuit, theta, a_qubit, b_qubit, target)

    circuit.compose(
        qft(out_bits, with_swaps=False).inverse(), qubits=msb_first
    )
    return circuit
