"""Quantum Volume model circuits (random SU(4) brickwork)."""

from __future__ import annotations

from ...quantum.random import as_rng, haar_unitary
from ..circuit import QuantumCircuit

__all__ = ["quantum_volume"]


def quantum_volume(
    num_qubits: int,
    depth: int | None = None,
    seed: int | None = 17,
    name: str = "quantum_volume",
) -> QuantumCircuit:
    """Square QV circuit: ``depth`` layers of Haar-random SU(4) gates.

    Each layer randomly permutes the qubits and applies an independent
    Haar-random two-qubit unitary to each adjacent pair of the
    permutation — the model circuit family behind the Quantum Volume
    metric.  These generic gates are exactly the "Haar random targets"
    the paper's E[D[Haar]] score prices.
    """
    depth = depth if depth is not None else num_qubits
    if depth < 1:
        raise ValueError("depth must be >= 1")
    rng = as_rng(seed)
    circuit = QuantumCircuit(num_qubits, name)
    for _ in range(depth):
        permutation = rng.permutation(num_qubits)
        for index in range(0, num_qubits - 1, 2):
            a, b = int(permutation[index]), int(permutation[index + 1])
            circuit.unitary(haar_unitary(4, rng), (a, b), name="su4")
    return circuit
