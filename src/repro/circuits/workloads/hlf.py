"""Hidden Linear Function problem workload (Bravyi-Gosset-Koenig)."""

from __future__ import annotations

import numpy as np

from ...quantum.random import as_rng
from ..circuit import QuantumCircuit

__all__ = ["hidden_linear_function"]


def hidden_linear_function(
    num_qubits: int, seed: int | None = 5, name: str = "hlf"
) -> QuantumCircuit:
    """Constant-depth HLF circuit for a random symmetric binary matrix.

    ``H^n . [CZ_ij : A_ij = 1] . [S_i : A_ii = 1] . H^n``.
    """
    rng = as_rng(seed)
    adjacency = rng.integers(0, 2, size=(num_qubits, num_qubits))
    adjacency = np.triu(adjacency)
    adjacency = adjacency + np.triu(adjacency, 1).T  # symmetric

    circuit = QuantumCircuit(num_qubits, name)
    for qubit in range(num_qubits):
        circuit.h(qubit)
    for i in range(num_qubits):
        for j in range(i + 1, num_qubits):
            if adjacency[i, j]:
                circuit.cz(i, j)
    for i in range(num_qubits):
        if adjacency[i, i]:
            circuit.s(i)
    for qubit in range(num_qubits):
        circuit.h(qubit)
    return circuit
