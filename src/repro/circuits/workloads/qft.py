"""Quantum Fourier Transform workload."""

from __future__ import annotations

import numpy as np

from ..circuit import QuantumCircuit

__all__ = ["qft"]


def qft(
    num_qubits: int, with_swaps: bool = True, name: str = "qft"
) -> QuantumCircuit:
    """Textbook QFT: Hadamards, controlled phases, optional bit reversal.

    Controlled-phase angles ``pi / 2^k`` produce the small CPhase
    rotations near identity that motivate short fractional basis gates
    (paper Sec. IV).
    """
    circuit = QuantumCircuit(num_qubits, name)
    for target in range(num_qubits):
        circuit.h(target)
        for offset, control in enumerate(
            range(target + 1, num_qubits), start=1
        ):
            circuit.cp(np.pi / 2**offset, control, target)
    if with_swaps:
        for low in range(num_qubits // 2):
            circuit.swap(low, num_qubits - 1 - low)
    return circuit
