"""QAOA MaxCut workload on random 3-regular graphs."""

from __future__ import annotations

import networkx as nx
import numpy as np

from ...quantum.random import as_rng
from ..circuit import QuantumCircuit

__all__ = ["qaoa_maxcut"]


def qaoa_maxcut(
    num_qubits: int,
    layers: int = 3,
    degree: int = 3,
    seed: int | None = 11,
    name: str = "qaoa",
) -> QuantumCircuit:
    """QAOA ansatz for MaxCut on a random regular graph.

    The cost layers expand each ZZ term canonically into CNOT-RZ-CNOT
    (paper Sec. II-B: "the canonical expansion is into ZZ gates").
    """
    if num_qubits * degree % 2 != 0:
        raise ValueError("degree * num_qubits must be even")
    rng = as_rng(seed)
    graph = nx.random_regular_graph(
        degree, num_qubits, seed=int(rng.integers(2**31))
    )
    circuit = QuantumCircuit(num_qubits, name)
    for qubit in range(num_qubits):
        circuit.h(qubit)
    for _ in range(layers):
        gamma = float(rng.uniform(0, np.pi))
        beta = float(rng.uniform(0, np.pi))
        for a, b in sorted(graph.edges()):
            circuit.cx(a, b)
            circuit.rz(2 * gamma, b)
            circuit.cx(a, b)
        for qubit in range(num_qubits):
            circuit.rx(2 * beta, qubit)
    return circuit
