"""GHZ-state preparation workload."""

from __future__ import annotations

from ..circuit import QuantumCircuit

__all__ = ["ghz"]


def ghz(num_qubits: int, name: str = "ghz") -> QuantumCircuit:
    """Linear-depth GHZ preparation: H then a CNOT chain."""
    circuit = QuantumCircuit(num_qubits, name)
    circuit.h(0)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    return circuit
