"""Cuccaro ripple-carry adder workload.

Computes ``|a>|b> -> |a>|a+b>`` on ``2*bits + 2`` qubits (input carry and
output carry included).  Toffolis use the standard 6-CNOT decomposition so
the transpiler only ever sees 1Q/2Q gates.
"""

from __future__ import annotations

from ..circuit import QuantumCircuit

__all__ = ["cuccaro_adder", "adder_register_layout"]


def adder_register_layout(bits: int) -> dict[str, list[int]]:
    """Qubit indices of the carry-in, a, b, and carry-out registers.

    Register bit 0 is the least significant.  Layout (LSB first):
    ``[cin, a0, b0, a1, b1, ..., cout]``.
    """
    layout = {
        "cin": [0],
        "a": [1 + 2 * k for k in range(bits)],
        "b": [2 + 2 * k for k in range(bits)],
        "cout": [2 * bits + 1],
    }
    return layout


def _maj(circuit: QuantumCircuit, c: int, b: int, a: int) -> None:
    circuit.cx(a, b)
    circuit.cx(a, c)
    circuit.ccx(c, b, a)


def _uma(circuit: QuantumCircuit, c: int, b: int, a: int) -> None:
    circuit.ccx(c, b, a)
    circuit.cx(a, c)
    circuit.cx(c, b)


def cuccaro_adder(bits: int, name: str = "adder") -> QuantumCircuit:
    """Ripple-carry adder (Cuccaro et al. 2004) on ``2*bits + 2`` qubits."""
    if bits < 1:
        raise ValueError("adder needs at least one bit")
    layout = adder_register_layout(bits)
    circuit = QuantumCircuit(2 * bits + 2, name)
    a, b = layout["a"], layout["b"]
    cin, cout = layout["cin"][0], layout["cout"][0]

    carries = [cin] + a[:-1]
    for k in range(bits):
        _maj(circuit, carries[k], b[k], a[k])
    circuit.cx(a[-1], cout)
    for k in reversed(range(bits)):
        _uma(circuit, carries[k], b[k], a[k])
    return circuit
