"""Hardware-efficient VQE ansatz workloads (linear and full entanglement).

The paper evaluates two variants: "VQE L" with linear (chain)
entanglement and the much deeper "VQE F" with all-to-all entanglement.
"""

from __future__ import annotations

import numpy as np

from ...quantum.random import as_rng
from ..circuit import QuantumCircuit

__all__ = ["vqe_ansatz"]


def vqe_ansatz(
    num_qubits: int,
    entanglement: str = "linear",
    reps: int = 1,
    seed: int | None = 13,
    name: str | None = None,
) -> QuantumCircuit:
    """Two-local RY ansatz with CX entanglement.

    Args:
        entanglement: ``"linear"`` (nearest-neighbour chain) or ``"full"``
            (every ordered pair once per repetition).
        reps: number of entanglement repetitions; a final rotation layer
            closes the ansatz.
    """
    if entanglement not in ("linear", "full"):
        raise ValueError("entanglement must be 'linear' or 'full'")
    if reps < 1:
        raise ValueError("reps must be >= 1")
    rng = as_rng(seed)
    circuit = QuantumCircuit(
        num_qubits, name or f"vqe_{entanglement}"
    )

    def rotation_layer() -> None:
        for qubit in range(num_qubits):
            circuit.ry(float(rng.uniform(0, 2 * np.pi)), qubit)

    for _ in range(reps):
        rotation_layer()
        if entanglement == "linear":
            pairs = [(q, q + 1) for q in range(num_qubits - 1)]
        else:
            pairs = [
                (a, b)
                for a in range(num_qubits)
                for b in range(a + 1, num_qubits)
            ]
        for a, b in pairs:
            circuit.cx(a, b)
    rotation_layer()
    return circuit
