"""Benchmark workload registry (the circuits of paper Fig. 3b / Table VII).

``get_workload(name)`` builds each benchmark at its paper configuration:
16 logical qubits (the 4x4 lattice) unless the algorithm's structure
dictates otherwise.
"""

from __future__ import annotations

from collections.abc import Callable

from ..circuit import QuantumCircuit
from .adder import cuccaro_adder
from .ghz import ghz
from .hlf import hidden_linear_function
from .multiplier import draper_multiplier
from .qaoa import qaoa_maxcut
from .qft import qft
from .quantum_volume import quantum_volume
from .vqe import vqe_ansatz

__all__ = [
    "WORKLOADS",
    "get_workload",
    "cuccaro_adder",
    "draper_multiplier",
    "ghz",
    "hidden_linear_function",
    "qaoa_maxcut",
    "qft",
    "quantum_volume",
    "vqe_ansatz",
]


def _adder_16(num_qubits: int, seed: int | None) -> QuantumCircuit:
    if num_qubits % 2 != 0 or num_qubits < 4:
        raise ValueError("adder workload needs an even qubit count >= 4")
    return cuccaro_adder(bits=(num_qubits - 2) // 2)


def _multiplier_16(num_qubits: int, seed: int | None) -> QuantumCircuit:
    if num_qubits % 4 != 0:
        raise ValueError("multiplier workload needs a multiple of 4 qubits")
    return draper_multiplier(bits=num_qubits // 4)


#: name -> builder(num_qubits, seed) for every paper benchmark.
WORKLOADS: dict[str, Callable[[int, int | None], QuantumCircuit]] = {
    "ghz": lambda n, seed: ghz(n),
    "qft": lambda n, seed: qft(n),
    "hlf": lambda n, seed: hidden_linear_function(n, seed=seed),
    "qaoa": lambda n, seed: qaoa_maxcut(n, seed=seed),
    "adder": _adder_16,
    "multiplier": _multiplier_16,
    "vqe_linear": lambda n, seed: vqe_ansatz(
        n, entanglement="linear", reps=1, seed=seed, name="vqe_linear"
    ),
    "vqe_full": lambda n, seed: vqe_ansatz(
        n, entanglement="full", reps=2, seed=seed, name="vqe_full"
    ),
    "quantum_volume": lambda n, seed: quantum_volume(n, seed=seed),
}


def get_workload(
    name: str, num_qubits: int = 16, seed: int | None = 11
) -> QuantumCircuit:
    """Build a registered benchmark circuit."""
    try:
        builder = WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(WORKLOADS)}"
        ) from None
    return builder(num_qubits, seed)
