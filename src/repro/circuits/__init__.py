"""Circuit IR substrate: gates, circuits, scheduling, workloads."""

from .circuit import QuantumCircuit
from .dag import (
    ScheduledCircuit,
    WireActivity,
    alap_schedule,
    asap_schedule,
    dependency_layers,
)
from .gate import Gate, gate_matrix
from .qasm import from_qasm, to_qasm
from .simulation import (
    apply_gate,
    circuit_unitary,
    permutation_matrix,
    simulate_statevector,
    zero_state,
)
from .workloads import WORKLOADS, get_workload

__all__ = [
    "Gate",
    "QuantumCircuit",
    "ScheduledCircuit",
    "WORKLOADS",
    "WireActivity",
    "alap_schedule",
    "apply_gate",
    "asap_schedule",
    "circuit_unitary",
    "dependency_layers",
    "from_qasm",
    "gate_matrix",
    "get_workload",
    "permutation_matrix",
    "simulate_statevector",
    "to_qasm",
    "zero_state",
]
