"""Quantum circuit intermediate representation.

A thin, explicit list-of-gates IR: enough structure for the paper's
transpilation study (routing, consolidation, basis translation,
scheduling) without the weight of a full SDK.  Gates execute in list
order; commutation-based reordering is never attempted.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator

import numpy as np

from .gate import Gate

__all__ = ["QuantumCircuit"]


class QuantumCircuit:
    """A sequence of gates on ``num_qubits`` qubits."""

    def __init__(self, num_qubits: int, name: str = "circuit"):
        if num_qubits < 1:
            raise ValueError("circuit needs at least one qubit")
        self.num_qubits = int(num_qubits)
        self.name = name
        self._gates: list[Gate] = []

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, index):
        return self._gates[index]

    def __repr__(self) -> str:
        ops = dict(self.count_ops())
        return (
            f"QuantumCircuit({self.name!r}, qubits={self.num_qubits}, "
            f"gates={len(self)}, ops={ops})"
        )

    @property
    def gates(self) -> tuple[Gate, ...]:
        """Immutable view of the gate list."""
        return tuple(self._gates)

    # -- construction --------------------------------------------------------

    def append(self, gate: Gate) -> "QuantumCircuit":
        """Append a gate, validating qubit indices; returns self."""
        for qubit in gate.qubits:
            if not 0 <= qubit < self.num_qubits:
                raise ValueError(
                    f"gate {gate.name} on qubit {qubit} outside register "
                    f"of size {self.num_qubits}"
                )
        self._gates.append(gate)
        return self

    def add(self, name: str, qubits: Iterable[int], *params: float) -> "QuantumCircuit":
        """Append a registry gate by name."""
        return self.append(
            Gate(name=name, qubits=tuple(qubits), params=tuple(params))
        )

    # 1Q shorthands.
    def h(self, q: int):  # noqa: D102 - trivial shorthand
        return self.add("h", [q])

    def x(self, q: int):  # noqa: D102
        return self.add("x", [q])

    def y(self, q: int):  # noqa: D102
        return self.add("y", [q])

    def z(self, q: int):  # noqa: D102
        return self.add("z", [q])

    def s(self, q: int):  # noqa: D102
        return self.add("s", [q])

    def sdg(self, q: int):  # noqa: D102
        return self.add("sdg", [q])

    def t(self, q: int):  # noqa: D102
        return self.add("t", [q])

    def tdg(self, q: int):  # noqa: D102
        return self.add("tdg", [q])

    def sx(self, q: int):  # noqa: D102
        return self.add("sx", [q])

    def rx(self, theta: float, q: int):  # noqa: D102
        return self.add("rx", [q], theta)

    def ry(self, theta: float, q: int):  # noqa: D102
        return self.add("ry", [q], theta)

    def rz(self, theta: float, q: int):  # noqa: D102
        return self.add("rz", [q], theta)

    def p(self, lam: float, q: int):  # noqa: D102
        return self.add("p", [q], lam)

    def u3(self, theta: float, phi: float, lam: float, q: int):  # noqa: D102
        return self.add("u3", [q], theta, phi, lam)

    # 2Q shorthands.
    def cx(self, control: int, target: int):  # noqa: D102
        return self.add("cx", [control, target])

    def cz(self, a: int, b: int):  # noqa: D102
        return self.add("cz", [a, b])

    def cp(self, lam: float, a: int, b: int):  # noqa: D102
        return self.add("cp", [a, b], lam)

    def swap(self, a: int, b: int):  # noqa: D102
        return self.add("swap", [a, b])

    def iswap(self, a: int, b: int):  # noqa: D102
        return self.add("iswap", [a, b])

    def rzz(self, theta: float, a: int, b: int):  # noqa: D102
        return self.add("rzz", [a, b], theta)

    def unitary(
        self, matrix: np.ndarray, qubits: Iterable[int], name: str = "unitary"
    ) -> "QuantumCircuit":
        """Append an explicit-matrix gate."""
        qubits = tuple(qubits)
        return self.append(
            Gate(name=name, qubits=qubits, matrix=np.asarray(matrix, complex))
        )

    def ccx(self, a: int, b: int, c: int) -> "QuantumCircuit":
        """Toffoli via the standard 6-CNOT + T decomposition."""
        self.h(c)
        self.cx(b, c)
        self.tdg(c)
        self.cx(a, c)
        self.t(c)
        self.cx(b, c)
        self.tdg(c)
        self.cx(a, c)
        self.t(b)
        self.t(c)
        self.h(c)
        self.cx(a, b)
        self.t(a)
        self.tdg(b)
        self.cx(a, b)
        return self

    # -- combination ---------------------------------------------------------

    def copy(self, name: str | None = None) -> "QuantumCircuit":
        """Shallow copy (gates are immutable)."""
        out = QuantumCircuit(self.num_qubits, name or self.name)
        out._gates = list(self._gates)
        return out

    def compose(
        self, other: "QuantumCircuit", qubits: Iterable[int] | None = None
    ) -> "QuantumCircuit":
        """Append another circuit, optionally remapped onto ``qubits``."""
        if qubits is None:
            mapping = {q: q for q in range(other.num_qubits)}
        else:
            qubits = list(qubits)
            if len(qubits) != other.num_qubits:
                raise ValueError("qubit mapping size mismatch")
            mapping = dict(enumerate(qubits))
        for gate in other:
            self.append(gate.remapped(mapping))
        return self

    def inverse(self) -> "QuantumCircuit":
        """Circuit implementing the inverse unitary."""
        out = QuantumCircuit(self.num_qubits, f"{self.name}_dg")
        for gate in reversed(self._gates):
            out.append(gate.inverse())
        return out

    # -- analysis ------------------------------------------------------------

    def count_ops(self) -> Counter:
        """Histogram of gate names."""
        return Counter(gate.name for gate in self._gates)

    def two_qubit_gates(self) -> list[Gate]:
        """All gates acting on exactly two qubits."""
        return [g for g in self._gates if g.is_two_qubit]

    def depth(self) -> int:
        """Standard unit-duration circuit depth."""
        frontier = [0] * self.num_qubits
        for gate in self._gates:
            level = 1 + max(frontier[q] for q in gate.qubits)
            for q in gate.qubits:
                frontier[q] = level
        return max(frontier, default=0)
