"""Circuit-level gate representation.

A :class:`Gate` is a named operation on a tuple of qubit indices with
optional parameters, an optional explicit matrix (used for consolidated
2Q blocks and Quantum-Volume layers), and an optional duration in
normalized pulse units (attached by the transpiler's basis pass).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..quantum import gates as glib

__all__ = ["Gate", "gate_matrix", "KNOWN_GATES"]


def _fixed(matrix: np.ndarray):
    return lambda: matrix


#: Builders mapping gate name -> callable(*params) -> unitary matrix.
KNOWN_GATES: dict[str, object] = {
    "id": _fixed(glib.I2),
    "x": _fixed(glib.X),
    "y": _fixed(glib.Y),
    "z": _fixed(glib.Z),
    "h": _fixed(glib.H),
    "s": _fixed(glib.S),
    "sdg": _fixed(glib.SDG),
    "t": _fixed(glib.T),
    "tdg": _fixed(glib.TDG),
    "sx": _fixed(glib.SX),
    "rx": glib.rx,
    "ry": glib.ry,
    "rz": glib.rz,
    "p": glib.phase_gate,
    "u3": glib.u3,
    "cx": _fixed(glib.CNOT),
    "cz": _fixed(glib.CZ),
    "swap": _fixed(glib.SWAP),
    "iswap": _fixed(glib.ISWAP),
    "cp": glib.cphase,
    "rxx": glib.rxx,
    "ryy": glib.ryy,
    "rzz": glib.rzz,
    "can": glib.canonical_gate,
    "sqrt_iswap": _fixed(glib.SQRT_ISWAP),
    "b": _fixed(glib.B_GATE),
}

#: Gates whose inverse is itself.
_SELF_INVERSE = {"id", "x", "y", "z", "h", "cx", "cz", "swap", "rxx_pi"}
#: name -> inverse name for fixed Clifford-ish pairs.
_INVERSE_NAME = {"s": "sdg", "sdg": "s", "t": "tdg", "tdg": "t"}
#: Parameterized gates inverted by negating every parameter.
_NEGATE_PARAMS = {"rx", "ry", "rz", "p", "cp", "rxx", "ryy", "rzz", "can"}


@dataclass(frozen=True)
class Gate:
    """One operation in a circuit."""

    name: str
    qubits: tuple[int, ...]
    params: tuple[float, ...] = ()
    matrix: np.ndarray | None = field(default=None, compare=False)
    duration: float | None = None

    def __post_init__(self) -> None:
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"duplicate qubits in gate {self.name}: {self.qubits}")
        if not self.qubits:
            raise ValueError("gate must act on at least one qubit")

    @property
    def num_qubits(self) -> int:
        """Number of qubits the gate acts on."""
        return len(self.qubits)

    @property
    def is_two_qubit(self) -> bool:
        """True for 2Q gates (the ones routing/decomposition care about)."""
        return self.num_qubits == 2

    def to_matrix(self) -> np.ndarray:
        """Resolve the unitary matrix of this gate."""
        return gate_matrix(self)

    def inverse(self) -> "Gate":
        """Gate implementing the inverse unitary."""
        if self.matrix is not None:
            return replace(self, matrix=self.matrix.conj().T)
        if self.name in _SELF_INVERSE:
            return self
        if self.name in _INVERSE_NAME:
            return replace(self, name=_INVERSE_NAME[self.name])
        if self.name in _NEGATE_PARAMS:
            return replace(self, params=tuple(-p for p in self.params))
        if self.name == "iswap":
            # ISWAP uses the +i convention; its inverse is the canonical
            # gate CAN(pi/2, pi/2, 0), which carries -i entries.
            return replace(
                self, name="can", params=(np.pi / 2, np.pi / 2, 0.0)
            )
        if self.name == "sqrt_iswap":
            return replace(
                self, name="can", params=(np.pi / 4, np.pi / 4, 0.0)
            )
        if self.name == "u3":
            theta, phi, lam = self.params
            return replace(self, params=(-theta, -lam, -phi))
        if self.name == "sx":
            return replace(self, name="rx", params=(-np.pi / 2,))
        return replace(self, matrix=self.to_matrix().conj().T, name="unitary")

    def remapped(self, mapping: dict[int, int]) -> "Gate":
        """Gate with qubit indices translated through ``mapping``."""
        return replace(self, qubits=tuple(mapping[q] for q in self.qubits))


def gate_matrix(gate: Gate) -> np.ndarray:
    """Unitary matrix of a gate (explicit matrix wins over the registry)."""
    if gate.matrix is not None:
        matrix = np.asarray(gate.matrix, dtype=complex)
        expected = 2**gate.num_qubits
        if matrix.shape != (expected, expected):
            raise ValueError(
                f"gate {gate.name} has matrix shape {matrix.shape}, "
                f"expected {(expected, expected)}"
            )
        return matrix
    builder = KNOWN_GATES.get(gate.name)
    if builder is None:
        raise KeyError(f"no matrix known for gate {gate.name!r}")
    return builder(*gate.params)
