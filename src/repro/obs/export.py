"""Exporters: JSON-lines, Chrome trace-event, and summary tables.

Three consumers of one span/metrics model:

* :func:`write_jsonl` — one JSON object per line, the archival form
  (greppable, streamable, trivially diffable);
* :func:`to_chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event format (``chrome://tracing`` / `Perfetto
  <https://ui.perfetto.dev>`_ both load it): one ``X`` complete event
  per span, one *row per worker pid* via process-name metadata events,
  timestamps rebased to the earliest span;
* :func:`format_span_summary` / :func:`format_metrics_table` — human
  tables for terminals (what ``repro metrics`` prints).

Metrics snapshots persist as plain JSON next to the other paper
artifacts (``results_dir()/metrics.json`` by default) so ``repro
metrics`` can render counters from the *previous* traced run — the
registry itself dies with its process.

Both persisted forms are schema-versioned (``"schema"`` key, see
:data:`METRICS_SCHEMA_VERSION` / :data:`TRACE_SCHEMA_VERSION`): the
loaders refuse unrecognizable or future-versioned files with a
:class:`SchemaError` carrying an actionable message instead of letting
a ``KeyError`` surface three frames deep in a formatter.
"""

from __future__ import annotations

import json
from pathlib import Path

from .trace import Span

__all__ = [
    "METRICS_SCHEMA_VERSION",
    "SchemaError",
    "TRACE_SCHEMA_VERSION",
    "default_metrics_path",
    "format_chrome_trace_summary",
    "format_metrics_table",
    "format_span_summary",
    "load_chrome_trace",
    "load_metrics_snapshot",
    "to_chrome_trace",
    "to_jsonl",
    "validate_metrics_snapshot",
    "write_chrome_trace",
    "write_jsonl",
    "write_metrics_snapshot",
]

#: Version stamped into persisted metrics snapshots (metrics.json).
METRICS_SCHEMA_VERSION = 1

#: Version stamped into exported Chrome traces (trace.json).
TRACE_SCHEMA_VERSION = 1


class SchemaError(ValueError):
    """A persisted artifact this build cannot read.

    ``args[0]`` is a user-facing, actionable message — CLI consumers
    print it verbatim (exit 2) instead of a traceback.
    """


def _span_dicts(spans) -> list[dict]:
    """Normalize a span sequence to plain dicts."""
    return [s.to_dict() if isinstance(s, Span) else dict(s) for s in spans]


# -- JSON lines --------------------------------------------------------------


def to_jsonl(spans) -> str:
    """One JSON object per line, span order preserved."""
    return "\n".join(
        json.dumps(item, sort_keys=True) for item in _span_dicts(spans)
    )


def write_jsonl(spans, path: str | Path) -> Path:
    """Write :func:`to_jsonl` output to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = to_jsonl(spans)
    path.write_text(text + "\n" if text else "", encoding="utf-8")
    return path


# -- Chrome trace-event format -----------------------------------------------


def to_chrome_trace(spans, main_pid: int | None = None) -> dict:
    """Chrome trace-event JSON (Perfetto-loadable) for a span list.

    Every span becomes an ``X`` (complete) event on its process's row;
    ``ts`` is microseconds rebased to the earliest span so traces start
    at zero.  ``M`` metadata events name each row (``repro main`` for
    ``main_pid``, ``worker <pid>`` otherwise) so multi-process runs read
    as one aligned timeline, one row per worker pid.
    """
    items = _span_dicts(spans)
    events: list[dict] = []
    if not items:
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "schema": TRACE_SCHEMA_VERSION,
        }
    origin = min(item["start"] for item in items)
    pids = []
    for item in items:
        if item["pid"] not in pids:
            pids.append(item["pid"])
        args = dict(item["attrs"])
        if item.get("parent_id"):
            args["parent_id"] = item["parent_id"]
        args["span_id"] = item["span_id"]
        events.append(
            {
                "name": item["name"],
                "ph": "X",
                "ts": (item["start"] - origin) * 1e6,
                "dur": item["duration"] * 1e6,
                "pid": item["pid"],
                "tid": item["pid"],
                "args": args,
            }
        )
    for pid in pids:
        label = "repro main" if pid == main_pid else f"worker {pid}"
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": pid,
                "args": {"name": label},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "schema": TRACE_SCHEMA_VERSION,
    }


def write_chrome_trace(
    spans, path: str | Path, main_pid: int | None = None
) -> Path:
    """Write :func:`to_chrome_trace` output to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(to_chrome_trace(spans, main_pid=main_pid)),
        encoding="utf-8",
    )
    return path


# -- human tables ------------------------------------------------------------


def format_span_summary(spans) -> str:
    """Per-name aggregate table: calls, total/mean ms, processes."""
    from ..experiments.common import format_table

    items = _span_dicts(spans)
    if not items:
        return "no spans recorded (tracing off?)"
    grouped: dict[str, list[dict]] = {}
    for item in items:
        grouped.setdefault(item["name"], []).append(item)
    rows = []
    for name, group in grouped.items():
        total = sum(item["duration"] for item in group)
        rows.append(
            [
                name,
                len(group),
                round(1000.0 * total, 2),
                round(1000.0 * total / len(group), 2),
                len({item["pid"] for item in group}),
            ]
        )
    rows.sort(key=lambda row: -row[2])
    return format_table(
        ["span", "count", "total ms", "mean ms", "pids"], rows
    )


def format_metrics_table(snapshot: dict) -> str:
    """Counters/gauges/histograms of one snapshot as aligned tables."""
    from ..experiments.common import format_table

    sections: list[str] = []
    counters = snapshot.get("counters", {})
    if counters:
        rows = [[name, counters[name]] for name in sorted(counters)]
        sections.append(format_table(["counter", "value"], rows))
    gauges = snapshot.get("gauges", {})
    if gauges:
        rows = [[name, gauges[name]] for name in sorted(gauges)]
        sections.append(format_table(["gauge", "value"], rows))
    histograms = snapshot.get("histograms", {})
    if histograms:
        rows = []
        for name in sorted(histograms):
            payload = histograms[name]
            count = payload["count"]
            mean = payload["total"] / count if count else 0.0
            rows.append([name, count, round(payload["total"], 4),
                         round(mean, 6)])
        sections.append(
            format_table(["histogram", "count", "total", "mean"], rows)
        )
    if not sections:
        return "no metrics recorded"
    return "\n\n".join(sections)


# -- metrics persistence -----------------------------------------------------


def default_metrics_path() -> Path:
    """Where traced runs drop their registry snapshot."""
    from ..experiments.common import results_dir

    return results_dir() / "metrics.json"


def write_metrics_snapshot(
    snapshot: dict, path: str | Path | None = None
) -> Path:
    """Persist a registry snapshot as JSON; returns the path written.

    The snapshot is stamped with :data:`METRICS_SCHEMA_VERSION` so
    later builds can refuse it pointedly instead of misreading it.
    """
    path = Path(path) if path is not None else default_metrics_path()
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"schema": METRICS_SCHEMA_VERSION, **snapshot}
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8"
    )
    return path


def validate_metrics_snapshot(payload, source: str = "snapshot") -> dict:
    """Check a loaded snapshot's shape and schema version.

    Accepts unstamped (pre-versioning) snapshots for compatibility;
    rejects non-objects, unknown-versioned, and shapeless payloads
    with a :class:`SchemaError` naming ``source``.
    """
    if not isinstance(payload, dict):
        raise SchemaError(
            f"{source} is not a JSON object; expected a metrics "
            "snapshot written by 'repro trace'"
        )
    schema = payload.get("schema")
    if schema is not None and schema != METRICS_SCHEMA_VERSION:
        raise SchemaError(
            f"{source} has metrics schema v{schema}, but this build "
            f"reads v{METRICS_SCHEMA_VERSION}; re-run 'repro trace' "
            "with this build to regenerate it"
        )
    if not any(
        key in payload for key in ("counters", "gauges", "histograms")
    ):
        raise SchemaError(
            f"{source} has no counters/gauges/histograms sections; "
            "it does not look like a metrics snapshot — regenerate it "
            "with 'repro trace <command>'"
        )
    return payload


def load_metrics_snapshot(path: str | Path | None = None) -> dict:
    """Read and validate a :func:`write_metrics_snapshot` snapshot.

    Raises :class:`FileNotFoundError` when the file is absent and
    :class:`SchemaError` when it is unreadable or unrecognizable.
    """
    path = Path(path) if path is not None else default_metrics_path()
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SchemaError(
            f"{path} is not valid JSON ({exc}); delete it and re-run "
            "'repro trace <command>' to regenerate the snapshot"
        ) from None
    return validate_metrics_snapshot(payload, source=str(path))


def load_chrome_trace(path: str | Path) -> dict:
    """Read and validate a :func:`write_chrome_trace` export.

    Raises :class:`FileNotFoundError` when the file is absent and
    :class:`SchemaError` when it is unreadable, not a trace-event
    document, or stamped with a schema this build does not know.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SchemaError(
            f"{path} is not valid JSON ({exc}); re-run "
            "'repro trace <command>' to regenerate the trace"
        ) from None
    if not isinstance(payload, dict) or not isinstance(
        payload.get("traceEvents"), list
    ):
        raise SchemaError(
            f"{path} has no traceEvents list; it does not look like a "
            "Chrome trace export — regenerate it with "
            "'repro trace <command>'"
        )
    schema = payload.get("schema")
    if schema is not None and schema != TRACE_SCHEMA_VERSION:
        raise SchemaError(
            f"{path} has trace schema v{schema}, but this build reads "
            f"v{TRACE_SCHEMA_VERSION}; re-run 'repro trace' with this "
            "build to regenerate it"
        )
    return payload


def format_chrome_trace_summary(payload: dict) -> str:
    """Per-name aggregate table for a loaded Chrome trace export.

    The offline twin of :func:`format_span_summary`: same columns,
    sourced from a ``trace.json`` on disk instead of the live tracer.
    """
    from ..experiments.common import format_table

    events = [
        event
        for event in payload.get("traceEvents", [])
        if event.get("ph") == "X"
    ]
    if not events:
        return "no spans in trace (empty run, or tracing was off?)"
    grouped: dict[str, list[dict]] = {}
    for event in events:
        grouped.setdefault(event.get("name", "?"), []).append(event)
    rows = []
    for name, group in grouped.items():
        total_us = sum(event.get("dur", 0.0) for event in group)
        rows.append(
            [
                name,
                len(group),
                round(total_us / 1e3, 2),
                round(total_us / 1e3 / len(group), 2),
                len({event.get("pid") for event in group}),
            ]
        )
    rows.sort(key=lambda row: -row[2])
    return format_table(
        ["span", "count", "total ms", "mean ms", "pids"], rows
    )
