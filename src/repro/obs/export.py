"""Exporters: JSON-lines, Chrome trace-event, and summary tables.

Three consumers of one span/metrics model:

* :func:`write_jsonl` — one JSON object per line, the archival form
  (greppable, streamable, trivially diffable);
* :func:`to_chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event format (``chrome://tracing`` / `Perfetto
  <https://ui.perfetto.dev>`_ both load it): one ``X`` complete event
  per span, one *row per worker pid* via process-name metadata events,
  timestamps rebased to the earliest span;
* :func:`format_span_summary` / :func:`format_metrics_table` — human
  tables for terminals (what ``repro metrics`` prints).

Metrics snapshots persist as plain JSON next to the other paper
artifacts (``results_dir()/metrics.json`` by default) so ``repro
metrics`` can render counters from the *previous* traced run — the
registry itself dies with its process.
"""

from __future__ import annotations

import json
from pathlib import Path

from .trace import Span

__all__ = [
    "default_metrics_path",
    "format_metrics_table",
    "format_span_summary",
    "load_metrics_snapshot",
    "to_chrome_trace",
    "to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
    "write_metrics_snapshot",
]


def _span_dicts(spans) -> list[dict]:
    """Normalize a span sequence to plain dicts."""
    return [s.to_dict() if isinstance(s, Span) else dict(s) for s in spans]


# -- JSON lines --------------------------------------------------------------


def to_jsonl(spans) -> str:
    """One JSON object per line, span order preserved."""
    return "\n".join(
        json.dumps(item, sort_keys=True) for item in _span_dicts(spans)
    )


def write_jsonl(spans, path: str | Path) -> Path:
    """Write :func:`to_jsonl` output to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = to_jsonl(spans)
    path.write_text(text + "\n" if text else "", encoding="utf-8")
    return path


# -- Chrome trace-event format -----------------------------------------------


def to_chrome_trace(spans, main_pid: int | None = None) -> dict:
    """Chrome trace-event JSON (Perfetto-loadable) for a span list.

    Every span becomes an ``X`` (complete) event on its process's row;
    ``ts`` is microseconds rebased to the earliest span so traces start
    at zero.  ``M`` metadata events name each row (``repro main`` for
    ``main_pid``, ``worker <pid>`` otherwise) so multi-process runs read
    as one aligned timeline, one row per worker pid.
    """
    items = _span_dicts(spans)
    events: list[dict] = []
    if not items:
        return {"traceEvents": events, "displayTimeUnit": "ms"}
    origin = min(item["start"] for item in items)
    pids = []
    for item in items:
        if item["pid"] not in pids:
            pids.append(item["pid"])
        args = dict(item["attrs"])
        if item.get("parent_id"):
            args["parent_id"] = item["parent_id"]
        args["span_id"] = item["span_id"]
        events.append(
            {
                "name": item["name"],
                "ph": "X",
                "ts": (item["start"] - origin) * 1e6,
                "dur": item["duration"] * 1e6,
                "pid": item["pid"],
                "tid": item["pid"],
                "args": args,
            }
        )
    for pid in pids:
        label = "repro main" if pid == main_pid else f"worker {pid}"
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": pid,
                "args": {"name": label},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    spans, path: str | Path, main_pid: int | None = None
) -> Path:
    """Write :func:`to_chrome_trace` output to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(to_chrome_trace(spans, main_pid=main_pid)),
        encoding="utf-8",
    )
    return path


# -- human tables ------------------------------------------------------------


def format_span_summary(spans) -> str:
    """Per-name aggregate table: calls, total/mean ms, processes."""
    from ..experiments.common import format_table

    items = _span_dicts(spans)
    if not items:
        return "no spans recorded (tracing off?)"
    grouped: dict[str, list[dict]] = {}
    for item in items:
        grouped.setdefault(item["name"], []).append(item)
    rows = []
    for name, group in grouped.items():
        total = sum(item["duration"] for item in group)
        rows.append(
            [
                name,
                len(group),
                round(1000.0 * total, 2),
                round(1000.0 * total / len(group), 2),
                len({item["pid"] for item in group}),
            ]
        )
    rows.sort(key=lambda row: -row[2])
    return format_table(
        ["span", "count", "total ms", "mean ms", "pids"], rows
    )


def format_metrics_table(snapshot: dict) -> str:
    """Counters/gauges/histograms of one snapshot as aligned tables."""
    from ..experiments.common import format_table

    sections: list[str] = []
    counters = snapshot.get("counters", {})
    if counters:
        rows = [[name, counters[name]] for name in sorted(counters)]
        sections.append(format_table(["counter", "value"], rows))
    gauges = snapshot.get("gauges", {})
    if gauges:
        rows = [[name, gauges[name]] for name in sorted(gauges)]
        sections.append(format_table(["gauge", "value"], rows))
    histograms = snapshot.get("histograms", {})
    if histograms:
        rows = []
        for name in sorted(histograms):
            payload = histograms[name]
            count = payload["count"]
            mean = payload["total"] / count if count else 0.0
            rows.append([name, count, round(payload["total"], 4),
                         round(mean, 6)])
        sections.append(
            format_table(["histogram", "count", "total", "mean"], rows)
        )
    if not sections:
        return "no metrics recorded"
    return "\n\n".join(sections)


# -- metrics persistence -----------------------------------------------------


def default_metrics_path() -> Path:
    """Where traced runs drop their registry snapshot."""
    from ..experiments.common import results_dir

    return results_dir() / "metrics.json"


def write_metrics_snapshot(
    snapshot: dict, path: str | Path | None = None
) -> Path:
    """Persist a registry snapshot as JSON; returns the path written."""
    path = Path(path) if path is not None else default_metrics_path()
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(snapshot, indent=2, sort_keys=True), encoding="utf-8"
    )
    return path


def load_metrics_snapshot(path: str | Path | None = None) -> dict:
    """Read a snapshot written by :func:`write_metrics_snapshot`."""
    path = Path(path) if path is not None else default_metrics_path()
    return json.loads(path.read_text(encoding="utf-8"))
