"""Unified observability: tracing, metrics, exporters.

The three pieces live in sibling modules and share nothing but the
span/snapshot data shapes:

* :mod:`repro.obs.trace` — span-based tracer whose context crosses
  the ``BatchEngine``/``fan_out`` process boundary inside
  :class:`~repro.service.jobs.CompileJob`;
* :mod:`repro.obs.metrics` — process-wide counter/gauge/histogram
  registry every subsystem reports through
  (``repro.<subsystem>.<name>``);
* :mod:`repro.obs.export` — JSON-lines, Chrome trace-event
  (Perfetto-loadable), and human-table exporters plus metrics
  snapshot persistence.
"""

from .export import (
    default_metrics_path,
    format_metrics_table,
    format_span_summary,
    load_metrics_snapshot,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_metrics_snapshot,
)
from .metrics import (
    BATCH_SIZE_BUCKETS,
    REGISTRY,
    TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
)
from .trace import (
    TRACER,
    Span,
    TraceContext,
    Tracer,
    disable_tracing,
    enable_tracing,
    span,
    tracing_enabled,
)

__all__ = [
    "BATCH_SIZE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "Span",
    "TIME_BUCKETS",
    "TRACER",
    "TraceContext",
    "Tracer",
    "counter",
    "default_metrics_path",
    "disable_tracing",
    "enable_tracing",
    "format_metrics_table",
    "format_span_summary",
    "gauge",
    "histogram",
    "load_metrics_snapshot",
    "span",
    "to_chrome_trace",
    "to_jsonl",
    "tracing_enabled",
    "write_chrome_trace",
    "write_jsonl",
    "write_metrics_snapshot",
]
