"""Unified observability: tracing, metrics, profiling, exporters, ledger.

The pieces live in sibling modules and share nothing but the
span/snapshot data shapes:

* :mod:`repro.obs.trace` — span-based tracer whose context crosses
  the ``BatchEngine``/``fan_out`` process boundary inside
  :class:`~repro.service.jobs.CompileJob`;
* :mod:`repro.obs.metrics` — process-wide counter/gauge/histogram
  registry every subsystem reports through
  (``repro.<subsystem>.<name>``);
* :mod:`repro.obs.profile` — background-thread stack sampler whose
  samples attribute to the active span and ship across the worker
  boundary like metric deltas (collapsed-stack / flamegraph export);
* :mod:`repro.obs.export` — JSON-lines, Chrome trace-event
  (Perfetto-loadable), and human-table exporters plus schema-versioned
  metrics/trace persistence;
* :mod:`repro.obs.ledger` — the historical tier: a schema-versioned
  sqlite time-series of bench/metrics samples per git sha, with the
  noise-aware regression sentinel ``repro perf check`` gates on.
"""

from .export import (
    METRICS_SCHEMA_VERSION,
    TRACE_SCHEMA_VERSION,
    SchemaError,
    default_metrics_path,
    format_chrome_trace_summary,
    format_metrics_table,
    format_span_summary,
    load_chrome_trace,
    load_metrics_snapshot,
    to_chrome_trace,
    to_jsonl,
    validate_metrics_snapshot,
    write_chrome_trace,
    write_jsonl,
    write_metrics_snapshot,
)
from .ledger import (
    LEDGER_SCHEMA_VERSION,
    GateConfig,
    LedgerError,
    MetricComparison,
    PerfLedger,
    RunStamp,
    default_ledger_path,
    direction_for,
    ingest_file,
    samples_from_bench_artifact,
    samples_from_metrics_snapshot,
    samples_from_pytest_benchmark,
)
from .metrics import (
    BATCH_SIZE_BUCKETS,
    REGISTRY,
    TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
)
from .profile import (
    DEFAULT_INTERVAL_S,
    PROFILER,
    SamplingProfiler,
    disable_profiling,
    enable_profiling,
    format_self_time_table,
    profiling_enabled,
    to_collapsed,
    write_collapsed,
)
from .trace import (
    TRACER,
    Span,
    TraceContext,
    Tracer,
    disable_tracing,
    enable_tracing,
    span,
    tracing_enabled,
)

__all__ = [
    "BATCH_SIZE_BUCKETS",
    "Counter",
    "DEFAULT_INTERVAL_S",
    "Gauge",
    "GateConfig",
    "Histogram",
    "LEDGER_SCHEMA_VERSION",
    "LedgerError",
    "METRICS_SCHEMA_VERSION",
    "MetricComparison",
    "MetricsRegistry",
    "PROFILER",
    "PerfLedger",
    "REGISTRY",
    "RunStamp",
    "SamplingProfiler",
    "SchemaError",
    "Span",
    "TIME_BUCKETS",
    "TRACER",
    "TRACE_SCHEMA_VERSION",
    "TraceContext",
    "Tracer",
    "counter",
    "default_ledger_path",
    "default_metrics_path",
    "direction_for",
    "disable_profiling",
    "disable_tracing",
    "enable_profiling",
    "enable_tracing",
    "format_chrome_trace_summary",
    "format_metrics_table",
    "format_self_time_table",
    "format_span_summary",
    "gauge",
    "histogram",
    "ingest_file",
    "load_chrome_trace",
    "load_metrics_snapshot",
    "profiling_enabled",
    "samples_from_bench_artifact",
    "samples_from_metrics_snapshot",
    "samples_from_pytest_benchmark",
    "span",
    "to_chrome_trace",
    "to_collapsed",
    "to_jsonl",
    "tracing_enabled",
    "validate_metrics_snapshot",
    "write_chrome_trace",
    "write_collapsed",
    "write_jsonl",
    "write_metrics_snapshot",
]
