"""Span-based tracer with cross-process context propagation.

A *span* is one timed, named region of work (``pass.Route``,
``job.run``, ``synth.refine``) with free-form attributes, a process id,
and a parent link — the tree the Chrome trace-event export renders.
Usage::

    from repro.obs import trace

    with trace.span("kak.decompose", n=256):
        ...

When tracing is off (the default) ``span()`` returns a cached null
context manager — no allocation, no clock reads — so instrumentation
can live permanently in hot paths.  Tracing turns on via
:func:`enable_tracing`, the ``REPRO_TRACE`` environment variable
(any value but ``0/false/off/no``), or
``CompilerConfig(trace=True)``.

Cross-process propagation: the parent serializes its
:class:`TraceContext` (trace id + current span id) into each
:class:`~repro.service.jobs.CompileJob`; the worker activates it, so
worker spans parent correctly even under ``spawn`` (under ``fork`` the
inherited span stack already parents them).  Workers ship the spans
they emitted back with their results (see
``repro.service.engine._execute_payload``) and the parent merges them
with :meth:`Tracer.absorb` — same-pid spans are skipped, so the serial
in-process path never duplicates its own buffer.

Span timestamps are ``time.perf_counter()`` readings: on the platforms
the fork pool runs on this is ``CLOCK_MONOTONIC``, shared across
processes on one machine, so parent and worker spans align on one
timeline without clock juggling.
"""

from __future__ import annotations

import itertools
import os
import uuid
from dataclasses import dataclass, field
from time import perf_counter

__all__ = [
    "Span",
    "TraceContext",
    "Tracer",
    "TRACER",
    "disable_tracing",
    "enable_tracing",
    "span",
    "tracing_enabled",
]


def _env_tracing_enabled() -> bool:
    """Whether ``REPRO_TRACE`` asks for tracing (off when unset)."""
    value = os.environ.get("REPRO_TRACE")
    if value is None:
        return False
    return value.strip().lower() not in {"", "0", "false", "off", "no"}


@dataclass
class Span:
    """One finished timed region."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    start: float  # perf_counter seconds (machine-wide monotonic)
    duration: float  # seconds
    pid: int
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Plain-python form (JSON-compatible)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "pid": self.pid,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=payload["name"],
            trace_id=payload["trace_id"],
            span_id=payload["span_id"],
            parent_id=payload.get("parent_id"),
            start=payload["start"],
            duration=payload["duration"],
            pid=payload["pid"],
            attrs=dict(payload.get("attrs", {})),
        )


@dataclass(frozen=True)
class TraceContext:
    """Serializable propagation handle: trace id + parent span id."""

    trace_id: str
    parent_id: str | None = None

    def to_dict(self) -> dict:
        """Plain-python form carried inside :class:`CompileJob`."""
        return {"trace_id": self.trace_id, "parent_id": self.parent_id}

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceContext":
        """Inverse of :meth:`to_dict`."""
        return cls(
            trace_id=payload["trace_id"],
            parent_id=payload.get("parent_id"),
        )


class _NullSpan:
    """The cached do-nothing context manager tracing-off returns."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set(self, **attrs) -> None:
        """No-op attribute update."""


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager recording one span into its tracer."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span_id", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def set(self, **attrs) -> None:
        """Attach/overwrite attributes before the span closes."""
        self._attrs.update(attrs)

    def __enter__(self) -> "_ActiveSpan":
        tracer = self._tracer
        self._span_id = f"{os.getpid():x}-{next(tracer._ids):x}"
        tracer._stack.append(self._span_id)
        tracer._names.append(self._name)
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = perf_counter() - self._start
        tracer = self._tracer
        # The stack is per-process; a fork between enter and exit leaves
        # the parent's open span ids on the child's stack, which is
        # exactly the parenting the child's spans should see.
        if tracer._stack and tracer._stack[-1] == self._span_id:
            tracer._stack.pop()
            if tracer._names:
                tracer._names.pop()
        parent = (
            tracer._stack[-1] if tracer._stack else tracer._root_parent
        )
        if exc_type is not None:
            self._attrs["error"] = exc_type.__name__
        tracer.spans.append(
            Span(
                name=self._name,
                trace_id=tracer.trace_id or "",
                span_id=self._span_id,
                parent_id=parent,
                start=self._start,
                duration=duration,
                pid=os.getpid(),
                attrs=self._attrs,
            )
        )


class Tracer:
    """Process-local span collector with explicit cross-process merge."""

    def __init__(self, enabled: bool | None = None):
        self.enabled = (
            _env_tracing_enabled() if enabled is None else bool(enabled)
        )
        self.trace_id: str | None = None
        self.spans: list[Span] = []
        self._stack: list[str] = []
        self._names: list[str] = []
        self._root_parent: str | None = None
        self._ids = itertools.count(1)

    # -- switches ------------------------------------------------------------

    def enable(self, trace_id: str | None = None) -> None:
        """Turn span collection on (idempotent; keeps an active trace)."""
        self.enabled = True
        if trace_id is not None:
            self.trace_id = trace_id
        elif self.trace_id is None:
            self.trace_id = uuid.uuid4().hex[:16]

    def disable(self) -> None:
        """Turn span collection off (buffered spans stay readable)."""
        self.enabled = False

    def clear(self) -> None:
        """Drop buffered spans and context (fresh run)."""
        self.spans.clear()
        self._stack.clear()
        self._names.clear()
        self._root_parent = None
        self.trace_id = None

    # -- spans ---------------------------------------------------------------

    def span(self, name: str, **attrs):
        """A timed region context manager (cached no-op when disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        if self.trace_id is None:
            self.trace_id = uuid.uuid4().hex[:16]
        return _ActiveSpan(self, name, attrs)

    def active_span_name(self) -> str | None:
        """Name of the innermost open span (None outside any span).

        Safe to call from another thread while spans open and close:
        the sampling profiler reads it between list mutations, so a
        momentary race is answered with ``None`` rather than an
        exception.
        """
        try:
            return self._names[-1]
        except IndexError:
            return None

    # -- propagation ---------------------------------------------------------

    def current_context(self) -> TraceContext | None:
        """The serializable handle a child process should adopt."""
        if not self.enabled or self.trace_id is None:
            return None
        parent = self._stack[-1] if self._stack else self._root_parent
        return TraceContext(trace_id=self.trace_id, parent_id=parent)

    def activate(self, context: TraceContext | dict | None) -> None:
        """Adopt a parent's context (no-op when already in that trace).

        Under ``fork`` the child inherits the parent's live stack and
        trace id, so activation changes nothing; under ``spawn`` (or in
        a fresh process) it enables tracing and anchors root-less spans
        under the parent's current span.
        """
        if context is None:
            return
        if isinstance(context, dict):
            context = TraceContext.from_dict(context)
        if self.enabled and self.trace_id == context.trace_id:
            return
        self.enable(trace_id=context.trace_id)
        if not self._stack:
            self._root_parent = context.parent_id

    def mark(self) -> int:
        """Buffer position marker (pair with :meth:`drain_since`)."""
        return len(self.spans)

    def drain_since(self, marker: int) -> list[dict]:
        """Serialized spans recorded after ``marker`` (for shipping)."""
        return [s.to_dict() for s in self.spans[marker:]]

    def absorb(self, payload: list[dict]) -> int:
        """Merge spans shipped from another process; returns count kept.

        Spans stamped with this process's own pid are skipped: they are
        already in the local buffer (the serial in-process execution
        path ships the same spans it just recorded).
        """
        pid = os.getpid()
        kept = 0
        for item in payload:
            if item.get("pid") == pid:
                continue
            self.spans.append(Span.from_dict(item))
            kept += 1
        return kept


#: The process-wide tracer (workers inherit it over fork).
TRACER = Tracer()


def span(name: str, **attrs):
    """Open a span on the process tracer (no-op when tracing is off)."""
    if not TRACER.enabled:  # fast path: no dict/closure work at all
        return _NULL_SPAN
    return TRACER.span(name, **attrs)


def tracing_enabled() -> bool:
    """Whether the process tracer is collecting spans."""
    return TRACER.enabled


def enable_tracing(trace_id: str | None = None) -> None:
    """Turn on the process tracer (see :meth:`Tracer.enable`)."""
    TRACER.enable(trace_id=trace_id)


def disable_tracing() -> None:
    """Turn off the process tracer (buffer kept)."""
    TRACER.disable()
