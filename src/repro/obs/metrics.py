"""Process-wide metrics registry: counters, gauges, histograms.

One registry per process unifies every subsystem's accounting —
decomposition-cache and coverage-store tier hits, per-pass wall times,
synthesis start pricing, batch-engine job lifecycle, kernel batch sizes
— behind a single ``repro.obs.metrics`` API instead of the per-class
stat dataclasses that used to be invisible to each other.

Naming convention: ``repro.<subsystem>.<name>`` (dots only, no spaces),
e.g. ``repro.cache.decomp.memory_hits``, ``repro.pass.seconds.Route``,
``repro.service.job_retries``.  The registry is the *pipe*, not the
policy: instruments are created on demand by the first caller and
shared by name afterwards.

Hot-path discipline: incrementing a :class:`Counter` is a plain python
int add; :class:`Histogram` observation is one ``bisect`` plus three
adds.  There is no locking — the repo's parallelism is process-based
(fork pools), and per-process registries are merged explicitly across
the boundary via :meth:`MetricsRegistry.snapshot` /
:meth:`MetricsRegistry.merge_snapshot` (the batch engine ships each
worker job's *delta* back with its result, so fork-inherited counts are
never double-counted).
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Sequence

__all__ = [
    "BATCH_SIZE_BUCKETS",
    "BYTE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "TIME_BUCKETS",
    "counter",
    "gauge",
    "histogram",
]

#: Fixed bucket boundaries for wall-time histograms (seconds).  Fixed
#: boundaries keep cross-process merging a pure element-wise add.
TIME_BUCKETS: tuple[float, ...] = (
    1e-5, 3.2e-5, 1e-4, 3.2e-4, 1e-3, 3.2e-3, 1e-2, 3.2e-2,
    0.1, 0.32, 1.0, 3.2, 10.0, 32.0,
)

#: Fixed bucket boundaries for batch-size histograms (elements).
BATCH_SIZE_BUCKETS: tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096,
)

#: Fixed bucket boundaries for payload-size histograms (bytes).
BYTE_BUCKETS: tuple[float, ...] = (
    256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304,
    16777216, 67108864,
)


class Counter:
    """Monotonic event count.  ``inc`` is a plain int add."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the count."""
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """Last-written value (queue depths, worker counts, sizes)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """Fixed-boundary distribution: bucket counts plus sum/count.

    Bucket ``i`` counts observations ``<= bounds[i]``; one overflow
    bucket catches the rest.  Boundaries are fixed at creation so two
    processes observing into same-named histograms merge element-wise.
    """

    __slots__ = ("name", "bounds", "counts", "total", "count")

    def __init__(self, name: str, bounds: Sequence[float]):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be sorted and non-empty")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        """Mean observed value (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count})"


class MetricsRegistry:
    """Name-keyed instrument registry with snapshot/merge support."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument access ---------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on demand)."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on demand)."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, bounds: Sequence[float] = TIME_BUCKETS
    ) -> Histogram:
        """The histogram under ``name`` (created with ``bounds`` once).

        ``bounds`` only applies on first creation; later callers share
        the existing instrument whatever boundaries they pass.
        """
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, bounds)
        return instrument

    # -- snapshot / merge ----------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-compatible dump of every instrument's current state."""
        return {
            "counters": {
                name: c.value for name, c in self._counters.items()
            },
            "gauges": {name: g.value for name, g in self._gauges.items()},
            "histograms": {
                name: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "total": h.total,
                    "count": h.count,
                }
                for name, h in self._histograms.items()
            },
        }

    @staticmethod
    def delta(before: dict, after: dict) -> dict:
        """The monotonic difference between two snapshots.

        This is what crosses a process boundary: a fork-pool worker
        inherits the parent's counts, so shipping its absolute snapshot
        back would double-count everything up to the fork.  Counters
        and histogram counts subtract; gauges take the ``after`` level.
        """
        counters = {
            name: value - before.get("counters", {}).get(name, 0)
            for name, value in after.get("counters", {}).items()
        }
        histograms = {}
        for name, h in after.get("histograms", {}).items():
            prior = before.get("histograms", {}).get(name)
            if prior is None or prior["bounds"] != h["bounds"]:
                histograms[name] = h
                continue
            histograms[name] = {
                "bounds": h["bounds"],
                "counts": [
                    a - b for a, b in zip(h["counts"], prior["counts"])
                ],
                "total": h["total"] - prior["total"],
                "count": h["count"] - prior["count"],
            }
        return {
            "counters": {k: v for k, v in counters.items() if v},
            "gauges": dict(after.get("gauges", {})),
            "histograms": {
                k: v for k, v in histograms.items() if v["count"]
            },
        }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a snapshot (usually a delta) into this registry."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, payload in snapshot.get("histograms", {}).items():
            instrument = self.histogram(name, payload["bounds"])
            if list(instrument.bounds) != list(payload["bounds"]):
                raise ValueError(
                    f"histogram {name!r} bounds mismatch on merge"
                )
            for index, count in enumerate(payload["counts"]):
                instrument.counts[index] += count
            instrument.total += payload["total"]
            instrument.count += payload["count"]

    def reset(self) -> None:
        """Drop every instrument (tests and fresh CLI runs)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- rendering -----------------------------------------------------------

    def format_table(self) -> str:
        """Aligned text rendering of the current state."""
        from .export import format_metrics_table

        return format_metrics_table(self.snapshot())


#: The process-wide registry every subsystem reports through.
REGISTRY = MetricsRegistry()


def counter(name: str) -> Counter:
    """Process-wide counter (see :meth:`MetricsRegistry.counter`)."""
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    """Process-wide gauge (see :meth:`MetricsRegistry.gauge`)."""
    return REGISTRY.gauge(name)


def histogram(
    name: str, bounds: Sequence[float] = TIME_BUCKETS
) -> Histogram:
    """Process-wide histogram (see :meth:`MetricsRegistry.histogram`)."""
    return REGISTRY.histogram(name, bounds)
