"""Sampling profiler that attributes stacks to the active span.

A daemon thread wakes every ``interval`` seconds, reads the main
thread's frame stack via ``sys._current_frames()``, and counts one
sample against the key ``"<active span>;<root frame>;...;<leaf
frame>"`` — natively the collapsed-stack format flamegraph tooling
consumes (``flamegraph.pl``, speedscope, inferno).  Prefixing the
current span name means a flamegraph groups first by *semantic* phase
(``pass.Route``, ``synth.refine``) and only then by call stack, and the
per-span self-time table falls out of the same counters.

The sampler only ever *reads* foreign frames — the profiled code runs
unmodified, so overhead is one stack walk per tick (~200/s at the 5 ms
default) regardless of how hot the profiled path is.

Cross-process: ``fork()`` does not carry threads into the child, so a
worker inheriting an enabled profiler has no sampler thread.  Workers
call :func:`ensure_running` on entry (pid + liveness check restarts the
thread), then ship their sample *delta* back through the same freight
channel spans and metric deltas use (``snapshot()``/``delta()``/
``absorb()`` mirror :class:`~repro.obs.metrics.MetricsRegistry`), and
the parent merges counts keyed by identical strings.

Activation mirrors the tracer: :func:`enable_profiling`, the
``REPRO_PROFILE`` environment variable (truthy → 5 ms default, a number
→ that interval in milliseconds), ``CompilerConfig(profile=True)``, or
``repro trace --profile``.
"""

from __future__ import annotations

import os
import sys
import threading
from pathlib import Path
from time import sleep

__all__ = [
    "DEFAULT_INTERVAL_S",
    "PROFILER",
    "SamplingProfiler",
    "disable_profiling",
    "enable_profiling",
    "ensure_running",
    "format_self_time_table",
    "profiling_enabled",
    "to_collapsed",
    "write_collapsed",
]

#: Default wall-clock gap between samples (5 ms ≈ 200 samples/s).
DEFAULT_INTERVAL_S = 0.005

#: Frames deeper than this are dropped (leaf side) to bound key size.
_MAX_DEPTH = 64

#: Placeholder span segment for samples taken outside any span.
NO_SPAN = "(no span)"


def _env_profile_interval() -> float | None:
    """Interval ``REPRO_PROFILE`` asks for, or None when off.

    Unset/``0``/``false``/``off``/``no`` → off; other non-numeric
    truthy values → the default interval; a number → that many
    milliseconds between samples.
    """
    value = os.environ.get("REPRO_PROFILE")
    if value is None:
        return None
    value = value.strip().lower()
    if value in {"", "0", "false", "off", "no"}:
        return None
    try:
        return float(value) / 1000.0
    except ValueError:
        return DEFAULT_INTERVAL_S


def _format_stack(frame) -> list[str]:
    """Root-first ``module:function`` frames of one thread's stack."""
    frames: list[str] = []
    while frame is not None and len(frames) < _MAX_DEPTH:
        code = frame.f_code
        frames.append(f"{Path(code.co_filename).stem}:{code.co_name}")
        frame = frame.f_back
    frames.reverse()
    return frames


class SamplingProfiler:
    """Background-thread stack sampler with fork-safe sample shipping.

    Samples accumulate in ``self.samples`` as ``collapsed-key ->
    count``; the key's first ``;``-segment is the span active when the
    sample landed.  All mutation happens on the sampler thread;
    readers take inexpensive dict copies (GIL-atomic enough for
    monotonically growing counters).
    """

    def __init__(self, interval: float | None = None):
        env_interval = _env_profile_interval()
        self.interval = (
            interval if interval is not None
            else (env_interval or DEFAULT_INTERVAL_S)
        )
        self.enabled = env_interval is not None
        self.samples: dict[str, int] = {}
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._pid = os.getpid()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Start (or restart after fork) the sampler thread."""
        self.enabled = True
        if (
            self._thread is not None
            and self._thread.is_alive()
            and self._pid == os.getpid()
        ):
            return
        # After fork the inherited thread object is dead and the stop
        # event may be stale; rebuild both.
        self._pid = os.getpid()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run,
            name="repro-profiler",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop sampling (buffered samples stay readable)."""
        self.enabled = False
        self._stop.set()
        thread = self._thread
        if thread is not None and thread.is_alive() \
                and self._pid == os.getpid():
            thread.join(timeout=1.0)
        self._thread = None

    def clear(self) -> None:
        """Drop accumulated samples (fresh run)."""
        self.samples = {}

    def ensure_running(self) -> None:
        """Restart the sampler if enabled but threadless (post-fork)."""
        if self.enabled:
            self.start()

    # -- the sampler thread --------------------------------------------------

    def _run(self) -> None:
        from .trace import TRACER

        main_ident = threading.main_thread().ident
        stop = self._stop
        while not stop.wait(self.interval):
            frame = sys._current_frames().get(main_ident)
            if frame is None:
                continue
            span_name = TRACER.active_span_name() or NO_SPAN
            key = ";".join([span_name, *_format_stack(frame)])
            self.samples[key] = self.samples.get(key, 0) + 1

    # -- shipping (mirrors MetricsRegistry snapshot/delta/absorb) ------------

    def snapshot(self) -> dict[str, int]:
        """Point-in-time copy of the sample counters."""
        return dict(self.samples)

    @staticmethod
    def delta(
        before: dict[str, int], after: dict[str, int]
    ) -> dict[str, int]:
        """Samples accumulated between two snapshots."""
        out: dict[str, int] = {}
        for key, count in after.items():
            gained = count - before.get(key, 0)
            if gained > 0:
                out[key] = gained
        return out

    def absorb(self, payload: dict[str, int]) -> int:
        """Merge counts shipped from another process; returns total."""
        absorbed = 0
        for key, count in payload.items():
            if count <= 0:
                continue
            self.samples[key] = self.samples.get(key, 0) + int(count)
            absorbed += int(count)
        return absorbed


#: The process-wide profiler (workers restart its thread after fork).
PROFILER = SamplingProfiler()


def profiling_enabled() -> bool:
    """Whether the process profiler is (or should be) sampling."""
    return PROFILER.enabled


def enable_profiling(interval: float | None = None) -> None:
    """Start the process profiler (idempotent)."""
    if interval is not None:
        PROFILER.interval = interval
    PROFILER.start()


def disable_profiling() -> None:
    """Stop the process profiler (samples kept)."""
    PROFILER.stop()


def ensure_running() -> None:
    """Module-level :meth:`SamplingProfiler.ensure_running` shortcut."""
    PROFILER.ensure_running()


# -- exports -----------------------------------------------------------------


def to_collapsed(samples: dict[str, int] | None = None) -> str:
    """Collapsed-stack text (``key count`` lines, flamegraph-ready)."""
    samples = samples if samples is not None else PROFILER.samples
    return "\n".join(
        f"{key} {count}" for key, count in sorted(samples.items())
    )


def write_collapsed(
    path: str | Path, samples: dict[str, int] | None = None
) -> Path:
    """Write :func:`to_collapsed` output to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = to_collapsed(samples)
    path.write_text(text + "\n" if text else "", encoding="utf-8")
    return path


def format_self_time_table(
    samples: dict[str, int] | None = None,
    interval: float | None = None,
) -> str:
    """Per-span self-time table from the sample counters.

    Self time is estimated as ``samples * interval`` — the profiler's
    view of where wall-clock actually went, grouped by the span that
    was active (the first collapsed-key segment).
    """
    from ..experiments.common import format_table

    samples = samples if samples is not None else PROFILER.samples
    interval = interval if interval is not None else PROFILER.interval
    if not samples:
        return "no profile samples (profiler off, or run too short?)"
    per_span: dict[str, int] = {}
    for key, count in samples.items():
        span_name = key.split(";", 1)[0]
        per_span[span_name] = per_span.get(span_name, 0) + count
    total = sum(per_span.values())
    rows = []
    for span_name, count in sorted(
        per_span.items(), key=lambda item: -item[1]
    ):
        rows.append(
            [
                span_name,
                count,
                round(count * interval, 3),
                round(100.0 * count / total, 1),
            ]
        )
    return format_table(["span", "samples", "est s", "%"], rows)
