"""Persistent performance ledger: bench/metrics history + regression gate.

Every PR emits one-shot perf evidence — pytest-benchmark JSON,
``results/*_bench.json`` experiment artifacts, ``repro trace`` metrics
snapshots — and until now CI uploaded those artifacts and forgot them.
The :class:`PerfLedger` is the historical tier of the observability
subsystem: a schema-versioned sqlite time-series store where every
ingested run is stamped with its git sha, branch, timestamp, host, and
python/numpy versions, so speedup claims become trajectories instead of
screenshots.

Keyspace/atomic-write discipline is the shared
:class:`~repro.service.store_base.SqliteStoreMixin` contract (WAL
journal, fork-safe lazy reconnect, schema-versioned ``meta`` table,
one write transaction per logical operation) — the ledger pioneered
the pattern and now rides the one unified copy alongside the caches,
the job queue, and the result store.  Unlike the caches, the ledger
is *loud* on an unusable store — a cache that degrades to memory
loses nothing but speed, while a ledger that silently drops history
defeats its purpose — so schema mismatches raise :class:`LedgerError`
with a pointed message instead of degrading.

The regression sentinel rides on top: :meth:`PerfLedger.compare_latest`
compares the newest run against the median of the previous *N* runs
per metric, with a noise floor (median absolute deviation) and
per-metric tolerances (:class:`GateConfig`).  ``repro perf check``
turns its verdicts into an exit code, which is what CI gates on.

Metric direction is inferred from the name: ``*_s``/``*_seconds``/
``*_ms``/``*_bytes``/``*_ratio`` are lower-is-better, ``*speedup``/
``*_per_s`` higher-is-better, anything else informational (recorded,
listed, never gated).
"""

from __future__ import annotations

import json
import math
import os
import platform
import sqlite3
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path

# Imported from the stdlib-only leaf, not repro.service.store_base:
# obs must not pull the service package at import time (circular).
from .._storebase import SqliteStoreMixin

__all__ = [
    "BENCH_ARTIFACT_SCHEMA",
    "GateConfig",
    "LEDGER_SCHEMA_VERSION",
    "LedgerError",
    "MetricComparison",
    "PerfLedger",
    "RunStamp",
    "default_ledger_path",
    "direction_for",
    "ingest_file",
    "samples_from_bench_artifact",
    "samples_from_metrics_snapshot",
    "samples_from_pytest_benchmark",
]

#: Version of the sqlite layout below; bump on incompatible changes.
#: v2 added ``runs.array_backend`` (migrated in place from v1).
LEDGER_SCHEMA_VERSION = 2

#: Version of the ``results/*_bench.json`` envelope written by
#: ``benchmarks/_artifact.py`` (kind/schema/stamp/metrics keys).
#: Ingestion refuses artifacts stamped with a different version.
BENCH_ARTIFACT_SCHEMA = 1

#: Name suffixes that imply a gate direction.  Checked in order; the
#: first match wins.  Everything else is informational (never gated).
_LOWER_SUFFIXES = ("_s", "_seconds", "_ms", "_ns", "_bytes", "_ratio")
_HIGHER_SUFFIXES = ("speedup", "_per_s", "_per_sec", "_qps")


class LedgerError(RuntimeError):
    """An unusable ledger (unknown schema, unreadable file, bad input).

    Carries a user-facing, actionable message — CLI paths print
    ``exc.args[0]`` verbatim instead of a traceback.
    """


def default_ledger_path() -> Path:
    """Where the perf ledger lives unless told otherwise.

    ``REPRO_PERF_LEDGER`` overrides; the default sits next to the other
    paper artifacts at ``results_dir()/perf.sqlite``.
    """
    override = os.environ.get("REPRO_PERF_LEDGER")
    if override:
        return Path(override)
    from ..experiments.common import results_dir

    return results_dir() / "perf.sqlite"


def direction_for(metric: str) -> str | None:
    """Gate direction a metric name implies (``lower``/``higher``/None).

    Higher-better suffixes win ties: ``throughput_per_s`` must read as
    a rate, not as a ``_s`` duration.
    """
    for suffix in _HIGHER_SUFFIXES:
        if metric.endswith(suffix):
            return "higher"
    for suffix in _LOWER_SUFFIXES:
        if metric.endswith(suffix):
            return "lower"
    return None


def _git(*args: str) -> str | None:
    """One git plumbing call, or ``None`` outside a repo / without git."""
    try:
        out = subprocess.run(
            ["git", *args],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


@dataclass(frozen=True)
class RunStamp:
    """Provenance of one recorded run.

    ``collect()`` fills every field from the environment: git first,
    then the CI variables GitHub Actions exports (detached-HEAD
    checkouts report ``HEAD`` for the branch, so ``GITHUB_REF_NAME``
    wins when present), then ``unknown``.
    """

    recorded_at: float
    git_sha: str
    branch: str
    host: str
    python_version: str
    numpy_version: str
    source: str = "manual"
    note: str = ""
    #: Active kernel array backend (``repro.kernels.backend``) when the
    #: run was recorded — numpy and torch timings must never be
    #: compared against each other silently.
    array_backend: str = "numpy"

    @classmethod
    def collect(cls, source: str = "manual", note: str = "") -> "RunStamp":
        """Stamp the current process/checkout."""
        import numpy as np

        from ..kernels.backend import active_backend

        sha = os.environ.get("GITHUB_SHA") or _git("rev-parse", "HEAD")
        branch = os.environ.get("GITHUB_REF_NAME") or _git(
            "rev-parse", "--abbrev-ref", "HEAD"
        )
        return cls(
            recorded_at=time.time(),
            git_sha=(sha or "unknown")[:40],
            branch=branch or "unknown",
            host=platform.node() or "unknown",
            python_version=platform.python_version(),
            numpy_version=np.__version__,
            source=source,
            note=note,
            array_backend=active_backend().name,
        )

    def as_dict(self) -> dict:
        """Plain-dict form (JSON-compatible)."""
        return {
            "recorded_at": self.recorded_at,
            "git_sha": self.git_sha,
            "branch": self.branch,
            "host": self.host,
            "python_version": self.python_version,
            "numpy_version": self.numpy_version,
            "source": self.source,
            "note": self.note,
            "array_backend": self.array_backend,
        }


# -- ingestion ---------------------------------------------------------------


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool) \
        and math.isfinite(value)


def samples_from_pytest_benchmark(payload: dict) -> dict[str, float]:
    """Metrics from a pytest-benchmark JSON document.

    One ``<name>.mean_s`` / ``<name>.min_s`` pair per benchmark entry
    (both lower-is-better by suffix).
    """
    samples: dict[str, float] = {}
    for entry in payload.get("benchmarks", ()):
        name = entry.get("name") or entry.get("fullname")
        stats = entry.get("stats")
        if not name or not isinstance(stats, dict):
            continue
        name = name.replace(";", "_")
        for stat_key, suffix in (("mean", "mean_s"), ("min", "min_s")):
            value = stats.get(stat_key)
            if _is_number(value):
                samples[f"pytest.{name}.{suffix}"] = float(value)
    return samples


def samples_from_bench_artifact(payload: dict, kind: str) -> dict[str, float]:
    """Metrics from a ``results/*_bench.json`` experiment artifact.

    Artifacts written through ``benchmarks/_artifact.py`` carry an
    explicit ``"metrics"`` block — that is ingested verbatim (prefixed
    with the artifact kind).  Legacy artifacts fall back to a shallow
    numeric flatten: entries of a ``"benchmarks"`` list keyed by their
    ``kernel``/``name`` field, plus numeric top-level values.
    """
    samples: dict[str, float] = {}
    explicit = payload.get("metrics")
    if isinstance(explicit, dict):
        for name, value in explicit.items():
            if _is_number(value):
                samples[f"{kind}.{name}"] = float(value)
        return samples
    for index, entry in enumerate(payload.get("benchmarks", ())):
        if not isinstance(entry, dict):
            continue
        label = entry.get("kernel") or entry.get("name") or str(index)
        if _is_number(entry.get("n")):
            label = f"{label}.n{int(entry['n'])}"
        for key, value in entry.items():
            if key == "n" or not _is_number(value):
                continue
            samples[f"{kind}.{label}.{key}"] = float(value)
    for key, value in payload.items():
        if key != "schema" and _is_number(value):
            samples[f"{kind}.{key}"] = float(value)
    return samples


def samples_from_metrics_snapshot(payload: dict) -> dict[str, float]:
    """Metrics from an ``obs`` registry snapshot (``metrics.json``).

    Counters and gauges record verbatim; histograms record their mean
    and count.  All informational (counter levels depend on workload
    size, so they are history, not gates).
    """
    samples: dict[str, float] = {}
    for name, value in payload.get("counters", {}).items():
        if _is_number(value):
            samples[f"{name}.count"] = float(value)
    for name, value in payload.get("gauges", {}).items():
        if _is_number(value):
            samples[f"{name}.gauge"] = float(value)
    for name, hist in payload.get("histograms", {}).items():
        count = hist.get("count", 0)
        if _is_number(count) and count:
            samples[f"{name}.hist_count"] = float(count)
            total = hist.get("total", 0.0)
            if _is_number(total):
                samples[f"{name}.hist_mean"] = float(total) / float(count)
    return samples


def ingest_file(path: str | Path) -> dict[str, float]:
    """Metrics from one artifact file, dispatched on its shape.

    Recognizes pytest-benchmark JSON (``machine_info`` + per-entry
    ``stats``), ``obs`` metrics snapshots (``counters``/``histograms``),
    and bench artifacts (stamped or legacy).  Raises
    :class:`LedgerError` with an actionable message on unreadable or
    unrecognizable input.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise LedgerError(
            f"no artifact at {path}; run the benchmarks first "
            "(e.g. 'pytest benchmarks/bench_kernels.py') or pass an "
            "existing BENCH_*.json / results/*_bench.json path"
        ) from None
    except (OSError, json.JSONDecodeError) as exc:
        raise LedgerError(
            f"cannot parse {path} as JSON ({exc}); perf ledger ingestion "
            "expects pytest-benchmark JSON, a *_bench.json artifact, or "
            "a metrics.json snapshot"
        ) from None
    if not isinstance(payload, dict):
        raise LedgerError(
            f"{path} is not a JSON object; nothing to ingest"
        )
    if "benchmarks" in payload and "machine_info" in payload:
        return samples_from_pytest_benchmark(payload)
    if "counters" in payload or "histograms" in payload:
        from .export import SchemaError, validate_metrics_snapshot

        try:
            validate_metrics_snapshot(payload, source=str(path))
        except SchemaError as exc:
            raise LedgerError(str(exc)) from None
        return samples_from_metrics_snapshot(payload)
    schema = payload.get("schema")
    if schema is not None and int(schema) != BENCH_ARTIFACT_SCHEMA:
        raise LedgerError(
            f"{path} carries bench-artifact schema v{schema}, but this "
            f"build reads v{BENCH_ARTIFACT_SCHEMA}; regenerate it "
            "(scripts/refresh_results.sh) instead of ingesting a stale "
            "committed artifact"
        )
    kind = payload.get("kind") or path.stem.removesuffix("_bench")
    if kind.startswith("BENCH_"):
        kind = kind[len("BENCH_"):]
    return samples_from_bench_artifact(payload, str(kind))


# -- the store ---------------------------------------------------------------


class PerfLedger(SqliteStoreMixin):
    """Schema-versioned sqlite time-series store of perf samples.

    Layout (``LEDGER_SCHEMA_VERSION`` in a ``meta`` table):

    * ``runs`` — one row per recorded run, stamped with the
      :class:`RunStamp` fields;
    * ``samples`` — ``(run_id, metric) -> value`` with the inferred
      gate direction denormalized per row (so history stays readable
      even if the inference rules evolve).

    Connection discipline (WAL, fork-safe reconnect, loud schema
    refusal) comes from the shared store mixin
    (:mod:`repro.service.store_base`); the ledger predates it and
    contributed the pattern.
    """

    _STORE_SCHEMA = LEDGER_SCHEMA_VERSION
    # Historical meta key: the ledger shipped before the shared mixin
    # standardized on 'schema', and existing dbs must keep opening.
    _STORE_SCHEMA_KEY = "schema_version"
    _STORE_DDL = (
        "CREATE TABLE IF NOT EXISTS runs ("
        "  id INTEGER PRIMARY KEY AUTOINCREMENT,"
        "  recorded_at REAL NOT NULL,"
        "  git_sha TEXT NOT NULL,"
        "  branch TEXT NOT NULL,"
        "  host TEXT NOT NULL,"
        "  python_version TEXT NOT NULL,"
        "  numpy_version TEXT NOT NULL,"
        "  source TEXT NOT NULL,"
        "  note TEXT NOT NULL,"
        "  array_backend TEXT NOT NULL DEFAULT 'numpy')",
        "CREATE TABLE IF NOT EXISTS samples ("
        "  run_id INTEGER NOT NULL REFERENCES runs(id),"
        "  metric TEXT NOT NULL,"
        "  value REAL NOT NULL,"
        "  direction TEXT,"
        "  PRIMARY KEY (run_id, metric))",
        "CREATE INDEX IF NOT EXISTS samples_by_metric "
        "ON samples (metric, run_id)",
    )
    _STORE_ERROR = LedgerError
    _STORE_LABEL = "perf ledger"

    def __init__(self, path: str | Path | None = None):
        self._init_store(
            Path(path) if path is not None else default_ledger_path()
        )

    # -- connection ----------------------------------------------------------

    def _store_migrate(self, conn: sqlite3.Connection, found: int) -> bool:
        if found == 1:
            # In-place v1 -> v2 migration: one new stamped column.
            # History recorded before the column existed is numpy by
            # construction (no other backend existed then).
            conn.execute(
                "ALTER TABLE runs ADD COLUMN array_backend TEXT"
                " NOT NULL DEFAULT 'numpy'"
            )
            conn.execute(
                "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                (str(LEDGER_SCHEMA_VERSION),),
            )
            return True
        return found == LEDGER_SCHEMA_VERSION

    def _store_schema_message(self, found: int) -> str:
        return (
            f"perf ledger {self.path} has schema v{found}, but "
            f"this build reads v{LEDGER_SCHEMA_VERSION}; point "
            "--ledger (or REPRO_PERF_LEDGER) at a fresh path, or "
            "re-record history with a matching build"
        )

    def _store_open_message(self, exc: Exception) -> str:
        return (
            f"cannot open perf ledger at {self.path}: {exc}; pass "
            "--ledger PATH (or set REPRO_PERF_LEDGER) to a writable "
            "location"
        )

    # -- writing -------------------------------------------------------------

    def record(
        self, samples: dict[str, float], stamp: RunStamp | None = None
    ) -> int:
        """Record one run (all samples in a single transaction).

        Returns the new run id.  An empty sample dict is refused — a
        run with no samples would silently become the "current run"
        every later ``check`` compares against.
        """
        if not samples:
            raise LedgerError(
                "refusing to record a run with no samples; check that the "
                "ingested artifacts contain numeric metrics"
            )
        stamp = stamp if stamp is not None else RunStamp.collect()
        conn = self._connection()
        cursor = conn.execute(
            "INSERT INTO runs (recorded_at, git_sha, branch, host,"
            " python_version, numpy_version, source, note, array_backend)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                stamp.recorded_at,
                stamp.git_sha,
                stamp.branch,
                stamp.host,
                stamp.python_version,
                stamp.numpy_version,
                stamp.source,
                stamp.note,
                stamp.array_backend,
            ),
        )
        run_id = int(cursor.lastrowid)
        conn.executemany(
            "INSERT OR REPLACE INTO samples VALUES (?, ?, ?, ?)",
            [
                (run_id, metric, float(value), direction_for(metric))
                for metric, value in sorted(samples.items())
            ],
        )
        conn.commit()
        return run_id

    # -- reading -------------------------------------------------------------

    def runs(self, limit: int | None = None) -> list[dict]:
        """Recorded runs, newest first, with their sample counts."""
        conn = self._connection()
        query = (
            "SELECT r.id, r.recorded_at, r.git_sha, r.branch, r.host,"
            " r.python_version, r.numpy_version, r.source, r.note,"
            " r.array_backend, COUNT(s.metric)"
            " FROM runs r LEFT JOIN samples s ON s.run_id = r.id"
            " GROUP BY r.id ORDER BY r.id DESC"
        )
        if limit is not None:
            query += f" LIMIT {int(limit)}"
        rows = conn.execute(query).fetchall()
        keys = (
            "id", "recorded_at", "git_sha", "branch", "host",
            "python_version", "numpy_version", "source", "note",
            "array_backend", "samples",
        )
        return [dict(zip(keys, row)) for row in rows]

    def latest_run_id(self) -> int | None:
        """Id of the newest recorded run (None on an empty ledger)."""
        row = self._connection().execute(
            "SELECT MAX(id) FROM runs"
        ).fetchone()
        return int(row[0]) if row and row[0] is not None else None

    def samples_for_run(self, run_id: int) -> dict[str, float]:
        """All samples of one run."""
        rows = self._connection().execute(
            "SELECT metric, value FROM samples WHERE run_id = ?",
            (run_id,),
        ).fetchall()
        return {metric: value for metric, value in rows}

    def run_array_backend(self, run_id: int) -> str:
        """The array backend a run was stamped with ('numpy' default)."""
        row = self._connection().execute(
            "SELECT array_backend FROM runs WHERE id = ?", (run_id,)
        ).fetchone()
        return str(row[0]) if row and row[0] else "numpy"

    def metric_history(
        self,
        metric: str,
        limit: int | None = None,
        array_backend: str | None = None,
    ) -> list[tuple[int, float]]:
        """``(run_id, value)`` pairs for one metric, newest first.

        ``array_backend`` restricts history to runs stamped with that
        backend — the filter :meth:`compare_latest` applies so numpy
        baselines never gate torch/cupy runs (or vice versa).
        """
        params: tuple = (metric,)
        if array_backend is None:
            query = (
                "SELECT run_id, value FROM samples WHERE metric = ?"
                " ORDER BY run_id DESC"
            )
        else:
            query = (
                "SELECT s.run_id, s.value FROM samples s"
                " JOIN runs r ON r.id = s.run_id"
                " WHERE s.metric = ? AND r.array_backend = ?"
                " ORDER BY s.run_id DESC"
            )
            params = (metric, array_backend)
        if limit is not None:
            query += f" LIMIT {int(limit)}"
        return [
            (int(run_id), float(value))
            for run_id, value in
            self._connection().execute(query, params).fetchall()
        ]

    def metrics(self, contains: str | None = None) -> list[str]:
        """Distinct metric names (optionally substring-filtered)."""
        rows = self._connection().execute(
            "SELECT DISTINCT metric FROM samples ORDER BY metric"
        ).fetchall()
        names = [row[0] for row in rows]
        if contains:
            names = [name for name in names if contains in name]
        return names

    # -- the sentinel --------------------------------------------------------

    def compare_latest(
        self, config: "GateConfig | None" = None
    ) -> list["MetricComparison"]:
        """Latest run vs. the median of the previous ``window`` runs.

        Metrics without any prior history are reported with a ``None``
        baseline (new metrics never fail a gate).  Baselines only come
        from runs stamped with the latest run's array backend — a torch
        run is never judged against numpy history, or vice versa.
        Raises :class:`LedgerError` when the ledger holds no runs at
        all.
        """
        config = config if config is not None else GateConfig()
        latest = self.latest_run_id()
        if latest is None:
            raise LedgerError(
                f"perf ledger {self.path} holds no runs; run "
                "'repro perf record' first"
            )
        backend = self.run_array_backend(latest)
        current = self.samples_for_run(latest)
        comparisons = []
        for metric in sorted(current):
            history = [
                value
                for run_id, value in self.metric_history(
                    metric, array_backend=backend
                )
                if run_id != latest
            ][: config.window]
            comparisons.append(
                MetricComparison.build(
                    metric=metric,
                    current=current[metric],
                    history=history,
                    direction=direction_for(metric),
                    tolerance=config.tolerance_for(metric),
                )
            )
        return comparisons


@dataclass(frozen=True)
class GateConfig:
    """Regression-gate knobs: baseline window + per-metric tolerances.

    ``overrides`` maps metric-name *prefixes* to tolerances; the
    longest matching prefix wins, else ``default_tolerance``.  Loadable
    from JSON (``{"default_tolerance": 0.25, "window": 5,
    "overrides": {"kernels.": 0.5}}``) so a repo can check in its gate
    policy next to the benchmarks.
    """

    default_tolerance: float = 0.2
    window: int = 5
    noise_factor: float = 3.0
    overrides: dict[str, float] = field(default_factory=dict)

    def tolerance_for(self, metric: str) -> float:
        """The tolerance governing one metric (longest prefix wins)."""
        best = None
        for prefix in self.overrides:
            if metric.startswith(prefix):
                if best is None or len(prefix) > len(best):
                    best = prefix
        return self.overrides[best] if best else self.default_tolerance

    @classmethod
    def from_file(cls, path: str | Path) -> "GateConfig":
        """Load a gate policy from a JSON file (pointed errors)."""
        path = Path(path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise LedgerError(
                f"no gate config at {path}; expected JSON like "
                '{"default_tolerance": 0.2, "window": 5, '
                '"overrides": {"kernels.": 0.5}}'
            ) from None
        except (OSError, json.JSONDecodeError) as exc:
            raise LedgerError(
                f"cannot parse gate config {path}: {exc}"
            ) from None
        known = {"default_tolerance", "window", "noise_factor", "overrides"}
        unknown = set(payload) - known
        if unknown:
            raise LedgerError(
                f"gate config {path} has unknown keys {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        return cls(**payload)


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


@dataclass(frozen=True)
class MetricComparison:
    """One metric's verdict: current vs. noise-aware baseline.

    The gate trips when the current value lands beyond the tolerance
    band *and* beyond the noise floor: for lower-is-better metrics,
    ``current > baseline * (1 + tolerance) + noise_factor * MAD``
    (mirrored for higher-is-better).  The MAD term keeps single-run
    jitter on genuinely noisy metrics from tripping a tight tolerance;
    the multiplicative band keeps real slowdowns from hiding inside
    wide noise on stable metrics.
    """

    metric: str
    current: float
    baseline: float | None
    mad: float
    window_used: int
    direction: str | None
    tolerance: float
    regressed: bool
    improved: bool

    @classmethod
    def build(
        cls,
        metric: str,
        current: float,
        history: list[float],
        direction: str | None,
        tolerance: float,
        noise_factor: float = 3.0,
    ) -> "MetricComparison":
        """Judge one metric against its history."""
        if not history:
            return cls(
                metric=metric, current=current, baseline=None, mad=0.0,
                window_used=0, direction=direction, tolerance=tolerance,
                regressed=False, improved=False,
            )
        baseline = _median(history)
        mad = _median([abs(value - baseline) for value in history])
        regressed = improved = False
        if direction == "lower":
            regressed = current > baseline * (1 + tolerance) + noise_factor * mad
            improved = current < baseline * (1 - tolerance) - noise_factor * mad
        elif direction == "higher":
            regressed = current < baseline * (1 - tolerance) - noise_factor * mad
            improved = current > baseline * (1 + tolerance) + noise_factor * mad
        return cls(
            metric=metric, current=current, baseline=baseline, mad=mad,
            window_used=len(history), direction=direction,
            tolerance=tolerance, regressed=regressed, improved=improved,
        )

    @property
    def ratio(self) -> float | None:
        """current / baseline (None without a baseline)."""
        if self.baseline is None or self.baseline == 0:
            return None
        return self.current / self.baseline

    @property
    def status(self) -> str:
        """One-word verdict for tables: new/ok/faster/REGRESSED/info."""
        if self.baseline is None:
            return "new"
        if self.direction is None:
            return "info"
        if self.regressed:
            return "REGRESSED"
        if self.improved:
            return "improved"
        return "ok"
