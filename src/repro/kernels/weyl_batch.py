"""Batched Weyl-coordinate extraction with exact scalar parity.

:func:`weyl_coordinates_many` vectorizes the standard eigenphase recipe
(magic-basis conjugation, gram-spectrum splitting, chamber folding) over
an ``(N, 4, 4)`` stack.  Every step replicates the scalar
:func:`repro.quantum.weyl.weyl_coordinates` sequence operation-for-
operation: numpy's stacked ``det``/``matmul``/``eigvals`` gufuncs invoke
the same LAPACK/BLAS routines per 4x4 slice as their 2-D counterparts,
and the folding arithmetic below performs the identical elementary float
operations per row.  The batched result is therefore bit-identical to a
scalar loop — including on degenerate spectra (CNOT, SWAP, iSWAP) that
sit exactly on classification boundaries — which is what lets the
compiler's basis-translation pass batch per circuit without perturbing
pinned digests or decomposition-cache keys.

The kernel is written against :mod:`repro.kernels.backend`: on the
default numpy backend every operation is the literal numpy expression
(bit parity preserved); under torch/cupy the same code runs on the
adapter namespace and the result rides back to numpy at the public edge
with ``allclose``-level agreement.

Defensively, any row whose folded coordinates fail chamber validation is
recomputed through the exact scalar :func:`repro.quantum.kak.kak_decompose`
(which handles degenerate spectra via simultaneous diagonalization); with
the exact replication above this path is never expected to trigger.
"""

from __future__ import annotations

import numpy as np

from ..quantum.gates import MAGIC_BASIS
from .backend import ArrayBackend, active_backend

__all__ = ["canonicalize_coordinates_many", "weyl_coordinates_many"]

#: Chamber-boundary epsilon — must match repro.quantum.weyl._ATOL.
_ATOL = 1e-9
#: Unitarity-check tolerances of repro.quantum.linalg.is_unitary
#: (np.allclose defaults: rtol 1e-5 with the module's atol 1e-9).
_UNITARY_ATOL = 1e-9
_UNITARY_RTOL = 1e-5

_HALF_PI = np.pi / 2
_MAGIC_DAG = MAGIC_BASIS.conj().T


def _canonicalize(backend: ArrayBackend, coords):
    """Chamber fold on a validated ``(N, 3)`` backend array.

    Applies the exact scalar operation sequence (mod pi, descending
    sort, pairwise flip, boundary snaps, base-plane and rear-edge
    mirrors) with per-row convergence tracking; stays on the backend's
    device throughout.
    """
    xp = backend.xp
    c = backend.copy(coords)
    active = backend.full(len(c), True, "bool")
    for _ in range(16):
        if not active.any():
            break
        rows = backend.mod(c[active], np.pi)
        rows = backend.sort_rows_descending(rows)
        overflow = rows[:, 0] + rows[:, 1] > np.pi + _ATOL
        flipped = rows[overflow]
        flipped[:, 0] = np.pi - flipped[:, 0]
        flipped[:, 1] = np.pi - flipped[:, 1]
        rows[overflow] = flipped
        c[active] = rows
        indices = backend.flatnonzero(active)
        active[indices[~overflow]] = False
    if active.any():  # pragma: no cover - defensive; mirrors the scalar cap
        raise RuntimeError(
            f"canonicalization failed for {coords[active][0]!r}"
        )
    c = backend.sort_rows_descending(c)
    c[xp.abs(c) < _ATOL] = 0.0
    c[xp.abs(c - np.pi) < _ATOL] = np.pi
    base = (xp.abs(c[:, 2]) <= _ATOL) & (c[:, 0] > _HALF_PI + _ATOL)
    if base.any():
        mirrored = c[base]
        mirrored[:, 0] = np.pi - mirrored[:, 0]
        c[base] = backend.sort_rows_descending(mirrored)
    rear = (xp.abs(c[:, 0] + c[:, 1] - np.pi) <= _ATOL) & (c[:, 2] > _ATOL)
    if rear.any():
        rows = c[rear]
        left = np.pi - rows[:, 0]
        right = np.pi - rows[:, 1]
        rows[:, 0] = backend.maximum(left, right)
        rows[:, 1] = backend.minimum(left, right)
        c[rear] = backend.sort_rows_descending(rows)
    return c


def canonicalize_coordinates_many(coords) -> np.ndarray:
    """Vectorized :func:`repro.quantum.weyl.canonicalize_coordinates`.

    Folds each row into the canonical Weyl chamber; bit-identical to a
    scalar loop on the numpy backend.

    Raises:
        ValueError: when ``coords`` is not an (N, 3) array.
        RuntimeError: when any row fails to converge (defensive; the
            fold converges in <= 3 steps for finite inputs).
    """
    backend = active_backend()
    coords = backend.xp.atleast_2d(backend.asarray(coords, "float"))
    if coords.ndim != 2 or coords.shape[1] != 3:
        raise ValueError("expected an (N, 3) coordinate array")
    return backend.to_numpy(_canonicalize(backend, coords), "float")


def _in_chamber_mask(backend: ArrayBackend, c, atol: float = 1e-7):
    """Vectorized :func:`repro.quantum.weyl.in_weyl_chamber`."""
    c1, c2, c3 = c[:, 0], c[:, 1], c[:, 2]
    ok = (c1 + atol >= c2) & (c2 >= c3 - atol) & (c3 >= -atol)
    ok &= (c1 <= np.pi + atol) & (c1 + c2 <= np.pi + atol)
    ok &= ~((c3 <= _ATOL) & (c1 > _HALF_PI + max(atol, _ATOL)))
    return ok


def _nonunitary_rows(backend: ArrayBackend, unitaries):
    """Indices of rows failing the scalar unitarity check."""
    xp = backend.xp
    products = unitaries @ backend.matrix_transpose(unitaries.conj())
    identity = backend.eye(4, "complex")
    close = xp.isclose(
        products, identity, rtol=_UNITARY_RTOL, atol=_UNITARY_ATOL
    )
    return backend.flatnonzero(~close.reshape(len(close), -1).all(1))


def weyl_coordinates_many(unitaries) -> np.ndarray:
    """Canonical Weyl coordinates of a stacked ``(N, 4, 4)`` unitary array.

    Bit-identical to calling :func:`repro.quantum.weyl.weyl_coordinates`
    per slice (the scalar function delegates here with a batch of one).

    Raises:
        ValueError: when the input is not a stack of 4x4 unitaries.
    """
    backend = active_backend()
    xp = backend.xp
    unitaries = backend.asarray(unitaries, "complex")
    if unitaries.ndim != 3 or unitaries.shape[1:] != (4, 4):
        raise ValueError(
            f"expected a stack of 4x4 unitaries, got shape "
            f"{tuple(unitaries.shape)}"
        )
    if len(unitaries) == 0:
        return np.zeros((0, 3))
    from ..obs import metrics

    metrics.histogram(
        "repro.kernels.weyl_batch", metrics.BATCH_SIZE_BUCKETS
    ).observe(len(unitaries))
    bad = _nonunitary_rows(backend, unitaries)
    if len(bad):
        raise ValueError(
            f"matrix {int(bad[0])} of {len(unitaries)} is not unitary"
        )

    # SU(4) normalization: principal 4th root of the determinant, the
    # same branch as linalg.to_special_unitary (det ** (1/4) == ** 0.25).
    dets = backend.det(unitaries)
    special = unitaries / (dets**0.25)[:, None, None]
    # Magic-basis conjugation, evaluated (M† @ U) @ M like the scalar path.
    magic_dag = backend.asarray(_MAGIC_DAG, "complex")
    magic_basis = backend.asarray(MAGIC_BASIS, "complex")
    magic = (magic_dag @ special) @ magic_basis
    gram = backend.matrix_transpose(magic) @ magic
    eigenvalues = backend.eigvals(gram)

    # Half-phases in units of pi, branch (-1/4, 3/4], sorted descending.
    half = -xp.angle(eigenvalues) / (2 * np.pi)
    half = xp.where(half <= -0.25, half + 1.0, half)
    half = backend.sort_rows_descending(half)
    # det(gram) == 1 forces each row sum to an integer; fold it to zero
    # by lowering the largest entries.  Python's round() is half-to-even,
    # as is np.rint; the slice semantics of `half[:total]` (clamped at 4,
    # wrapping for negative totals) are reproduced exactly.
    totals = backend.astype(backend.rint(half.sum(1)), "int")
    effective = xp.where(
        totals >= 0,
        backend.minimum(totals, 4),
        backend.maximum(totals + 4, 0),
    )
    half = half - (backend.arange(4)[None, :] < effective[:, None])
    half = backend.sort_rows_descending(half)

    c1 = (half[:, 0] + half[:, 1]) * np.pi
    c2 = (half[:, 0] + half[:, 2]) * np.pi
    c3 = (half[:, 1] + half[:, 2]) * np.pi
    negative = c3 < 0  # mirror into the chamber (transpose class)
    c1 = xp.where(negative, np.pi - c1, c1)
    c3 = xp.where(negative, -c3, c3)
    coords = _canonicalize(backend, backend.stack([c1, c2, c3], 1))

    invalid = ~(
        _in_chamber_mask(backend, coords)
        & xp.isfinite(coords).all(1)
    )
    if invalid.any():  # pragma: no cover - defensive, parity is exact
        from ..quantum.kak import kak_decompose

        for index in backend.flatnonzero(invalid):
            fixed = kak_decompose(
                backend.to_numpy(unitaries[int(index)], "complex")
            ).coordinates
            coords[int(index)] = backend.asarray(fixed, "float")
    return backend.to_numpy(coords, "float")
